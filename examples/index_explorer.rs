//! Index explorer: inspect the offline phase — pre-computation cost, index
//! shape, and how much work each pruning rule saves on a real query.
//!
//! ```text
//! cargo run --release --example index_explorer
//! ```

use topl_icde::core::topl::PruningToggles;
use topl_icde::prelude::*;

fn main() {
    let graph = DatasetSpec::new(DatasetKind::DblpLike, 4_000, 3).generate();
    println!(
        "DBLP-like co-authorship graph: {} authors, {} co-author edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Offline phase with explicit configuration.
    let config = PrecomputeConfig {
        r_max: 3,
        thresholds: vec![0.1, 0.2, 0.3],
        signature_bits: 128,
        parallel: true,
        num_threads: None,
        num_shards: None,
    };
    let start = std::time::Instant::now();
    let index = IndexBuilder::new(config)
        .with_fanout(8)
        .with_leaf_capacity(16)
        .build(&graph);
    println!(
        "offline phase finished in {:.2?}: {} nodes, height {}, fan-out {}, leaf capacity {}",
        start.elapsed(),
        index.node_count(),
        index.height(),
        index.fanout(),
        index.leaf_capacity()
    );

    // Show how the aggregates look for a few vertices.
    println!("\nsample pre-computed aggregates (radius 2):");
    for v in graph.vertices().take(5) {
        let agg = index.precomputed.aggregate(v, 2);
        println!(
            "  {v}: region size {}, support bound {}, score bounds {:?}",
            agg.region_size,
            agg.support_upper_bound,
            agg.score_upper_bounds
                .iter()
                .map(|s| format!("{s:.1}"))
                .collect::<Vec<_>>()
        );
    }

    // Run the same query under each pruning configuration (the Fig. 4 study).
    let query = TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3, 4]), 4, 2, 0.2, 5);
    let processor = TopLProcessor::new(&graph, &index);
    println!("\npruning ablation on one query (k=4, r=2, theta=0.2, L=5):");
    for (label, toggles) in [
        ("no pruning           ", PruningToggles::none()),
        ("keyword              ", PruningToggles::keyword_only()),
        ("keyword+support      ", PruningToggles::keyword_support()),
        ("keyword+support+score", PruningToggles::all()),
    ] {
        let answer = processor
            .run_with_toggles(&query, toggles)
            .expect("valid query");
        println!(
            "  {label} | {:>7} pruned | {:>5} refined | {:>8.2?} | best score {:.1}",
            answer.stats.total_pruned_candidates(),
            answer.stats.candidates_refined,
            answer.elapsed,
            answer.best_score().max(0.0)
        );
    }
}
