//! The paper's Example 1: a sales manager looks for seed communities of
//! movie enthusiasts to seed a group-buying campaign.
//!
//! The example builds a small hand-labelled social network (topics like
//! "movies", "books", "jewelry"), runs a Top3-ICDE query for customers
//! interested in movies, and reports who gets the coupons and how far the
//! word-of-mouth effect reaches.
//!
//! ```text
//! cargo run --release --example online_marketing
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use topl_icde::graph::keywords::KeywordInterner;
use topl_icde::prelude::*;

/// Builds an Amazon-like co-purchase backbone and overlays human-readable
/// interest topics on every user.
fn build_marketing_network(interner: &mut KeywordInterner) -> SocialNetwork {
    let topics = [
        "movies",
        "books",
        "food",
        "jewelry",
        "crafts",
        "health",
        "wellness",
        "home-decor",
        "cosmetics",
        "skincare",
        "sports",
        "travel",
    ];
    let topic_ids: Vec<Keyword> = topics.iter().map(|t| interner.intern(t)).collect();

    // Topology: co-purchase style graph with hubs and triangles.
    let mut graph = DatasetSpec::new(DatasetKind::AmazonLike, 3_000, 7).generate();

    // Re-assign keywords with a skew: "movies" is a mainstream topic, niche
    // topics are rarer — mirroring Figure 1(b) of the paper.
    let mut rng = StdRng::seed_from_u64(99);
    for v in graph.vertices().collect::<Vec<_>>() {
        let mut set = KeywordSet::new();
        if rng.gen_bool(0.45) {
            set.insert(topic_ids[0]); // movies
        }
        while set.len() < 2 {
            set.insert(topic_ids[rng.gen_range(0..topic_ids.len())]);
        }
        graph.set_keyword_set(v, set);
    }
    graph
}

fn main() {
    let mut interner = KeywordInterner::new();
    let graph = build_marketing_network(&mut interner);
    println!(
        "marketing network: {} customers, {} co-purchase relations",
        graph.num_vertices(),
        graph.num_edges()
    );

    let index = IndexBuilder::new(PrecomputeConfig::default()).build(&graph);

    // The campaign targets movie fans; communities must be tight (4-truss,
    // radius 2) so group-buying discounts make sense.
    let movie = interner.get("movies").expect("interned above");
    let query = TopLQuery::new(KeywordSet::from_iter([movie]), 4, 2, 0.2, 3);
    let answer = TopLProcessor::new(&graph, &index)
        .run(&query)
        .expect("valid query");

    println!("\ncampaign plan: top-{} movie-fan communities", query.l);
    let mut total_coupons = 0usize;
    let mut total_reach = 0usize;
    for (rank, community) in answer.communities.iter().enumerate() {
        total_coupons += community.len();
        total_reach += community.influenced_only();
        println!(
            "  community #{rank}: {} coupon recipients around {}, expected organic reach {} users \
             (influence score {:.1})",
            community.len(),
            community.center,
            community.influenced_only(),
            community.influential_score
        );
    }
    println!(
        "\ntotals: {} coupons issued, ~{} additional customers reached via word of mouth",
        total_coupons, total_reach
    );
    println!(
        "online query time: {:.2?} ({} candidate communities pruned before refinement)",
        answer.elapsed,
        answer.stats.total_pruned_candidates()
    );
}
