//! Quickstart: build a small synthetic social network, construct the offline
//! index once, and answer a TopL-ICDE query online.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use topl_icde::prelude::*;

fn main() {
    // 1. A synthetic small-world social network with uniformly distributed
    //    keywords (2 000 users, keyword domain of 50 topics).
    let graph = DatasetSpec::new(DatasetKind::Uniform, 2_000, 42).generate();
    println!(
        "graph: {} users, {} relationships, avg degree {:.1}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.average_degree()
    );

    // 2. Offline phase (run once per graph): pre-compute per-vertex bounds
    //    and build the tree index over them.
    let offline_start = std::time::Instant::now();
    let index = IndexBuilder::new(PrecomputeConfig::default()).build(&graph);
    println!(
        "offline phase: {} index nodes, height {}, built in {:.2?}",
        index.node_count(),
        index.height(),
        offline_start.elapsed()
    );

    // 3. Online phase: find the top-5 most influential seed communities whose
    //    members are interested in at least one of the query topics.
    let query = TopLQuery::new(
        KeywordSet::from_ids([0, 1, 2, 3, 4]), // query topics
        4,                                     // k-truss support
        2,                                     // radius r
        0.2,                                   // influence threshold theta
        5,                                     // L
    );
    let answer = TopLProcessor::new(&graph, &index)
        .run(&query)
        .expect("valid query");

    println!(
        "\ntop-{} most influential communities ({:.2?} online):",
        query.l, answer.elapsed
    );
    for (rank, community) in answer.communities.iter().enumerate() {
        println!(
            "  #{rank}: center {} | {} members | influences {} further users | score {:.2}",
            community.center,
            community.len(),
            community.influenced_only(),
            community.influential_score,
        );
    }
    println!(
        "\npruning: {} candidates pruned, {} refined",
        answer.stats.total_pruned_candidates(),
        answer.stats.candidates_refined
    );
}
