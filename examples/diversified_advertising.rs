//! DTopL-ICDE in action: pick a *set* of communities whose influenced
//! audiences overlap as little as possible.
//!
//! A plain TopL-ICDE answer can return several communities that all influence
//! the same users — wasted advertising budget, since a customer buys the
//! product once. The diversified variant selects L communities maximising the
//! collective (non-double-counted) influence. This example runs both and
//! compares the effective reach.
//!
//! ```text
//! cargo run --release --example diversified_advertising
//! ```

use topl_icde::core::dtopl::{DTopLProcessor, DTopLQuery, DTopLStrategy};
use topl_icde::influence::{DiversityState, InfluenceConfig, InfluenceEvaluator};
use topl_icde::prelude::*;

fn main() {
    let graph = DatasetSpec::new(DatasetKind::Gaussian, 2_500, 17).generate();
    let index = IndexBuilder::new(PrecomputeConfig::default()).build(&graph);
    println!(
        "social network: {} users, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Gaussian keyword ids cluster around the middle of the domain (25 for
    // the default |Σ| = 50), so query the popular mid-domain topics.
    let base = TopLQuery::new(KeywordSet::from_ids([23, 24, 25, 26, 27]), 3, 2, 0.2, 4);

    // Plain TopL-ICDE: the L individually most influential communities.
    let topl = TopLProcessor::new(&graph, &index)
        .run(&base)
        .expect("valid query");

    // DTopL-ICDE: L communities with the highest *collective* influence.
    let dquery = DTopLQuery::with_default_multiplier(base.clone());
    let dtopl = DTopLProcessor::new(&graph, &index)
        .run(&dquery, DTopLStrategy::GreedyWithPruning)
        .expect("valid query");

    // Compare the two selections by their diversity score (Eq. (6)).
    let evaluator = InfluenceEvaluator::new(&graph, InfluenceConfig { theta: base.theta });
    let mut topl_state = DiversityState::new();
    for c in &topl.communities {
        topl_state.add(&evaluator.influenced_community(&c.vertices));
    }

    println!("\nTopL-ICDE selection (individually best):");
    for c in &topl.communities {
        println!(
            "  center {} | {} members | score {:.1}",
            c.center,
            c.len(),
            c.influential_score
        );
    }
    println!(
        "  -> collective (de-duplicated) influence: {:.1} over {} users",
        topl_state.score(),
        topl_state.covered_vertices()
    );

    println!("\nDTopL-ICDE selection (collectively best):");
    for c in &dtopl.communities {
        println!(
            "  center {} | {} members | score {:.1}",
            c.center,
            c.len(),
            c.influential_score
        );
    }
    println!(
        "  -> collective influence (diversity score): {:.1}",
        dtopl.diversity_score
    );

    let gain = dtopl.diversity_score - topl_state.score();
    println!(
        "\ndiversified selection gains {:.1} influence ({:+.1}%) over the plain top-L pick, \
         using {} lazy-greedy gain evaluations avoided by Lemma 9",
        gain,
        100.0 * gain / topl_state.score().max(1e-9),
        dtopl.stats.diversity_pruned
    );
}
