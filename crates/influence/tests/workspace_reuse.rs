//! Property tests for the epoch-stamp reset bug class on the influence side:
//! `single_source_upp` and `influenced_community` must produce bit-identical
//! results through a reused [`TraversalWorkspace`] across many consecutive
//! calls on random graphs, and across the epoch-counter wraparound.

use icde_graph::workspace::TraversalWorkspace;
use icde_graph::{GraphBuilder, SocialNetwork, VertexId, VertexSubset};
use icde_influence::mia::{max_influence_path_with, single_source_upp_with};
use icde_influence::{InfluenceConfig, InfluenceEvaluator};
use proptest::prelude::*;

/// Deterministic random graph from an (n, seed) pair with asymmetric
/// directed probabilities in (0, 1].
fn random_graph(n: usize, seed: u64) -> SocialNetwork {
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut builder = GraphBuilder::with_vertices(n);
    for _ in 0..2 * n {
        let a = (next() % n as u64) as u32;
        let b = (next() % n as u64) as u32;
        let p_ab = (1 + next() % 999) as f64 / 1000.0;
        let p_ba = (1 + next() % 999) as f64 / 1000.0;
        builder.try_add_edge(VertexId(a), VertexId(b), p_ab, p_ba);
    }
    builder
        .build()
        .expect("try_add_edge admits only valid edges")
}

fn graph_strategy(max_vertices: usize) -> impl Strategy<Value = SocialNetwork> {
    (2usize..max_vertices, any::<u64>()).prop_map(|(n, seed)| random_graph(n, seed))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn single_source_upp_is_bit_identical_through_a_reused_workspace(
        g in graph_strategy(32),
    ) {
        let mut reused = TraversalWorkspace::new();
        for source in g.vertices() {
            for floor in [0.0, 0.05, 0.3, 0.7] {
                let a = single_source_upp_with(&mut reused, &g, source, floor);
                let b = single_source_upp_with(
                    &mut TraversalWorkspace::new(), &g, source, floor,
                );
                // exact equality: probabilities are products along identical
                // best paths, independent of workspace history
                prop_assert_eq!(&a, &b, "source {} floor {}", source, floor);
            }
        }
    }

    #[test]
    fn influenced_community_is_bit_identical_through_a_reused_workspace(
        g in graph_strategy(24),
    ) {
        let eval = InfluenceEvaluator::new(&g, InfluenceConfig::new(0.2));
        let mut reused = TraversalWorkspace::new();
        for v in g.vertices() {
            // grow a two-vertex seed where possible to exercise multi-source
            let mut seed = VertexSubset::from_iter([v]);
            if let Some((n, _)) = g.neighbors(v).first() {
                seed.insert(n);
            }
            for theta in [0.05, 0.2, 0.5] {
                let a = eval.influenced_community_with_theta_in(&mut reused, &seed, theta);
                let b = eval.influenced_community_with_theta_in(
                    &mut TraversalWorkspace::new(), &seed, theta,
                );
                prop_assert_eq!(a.influential_score().to_bits(), b.influential_score().to_bits());
                prop_assert_eq!(a.len(), b.len());
                for (vertex, cpp) in a.iter() {
                    prop_assert_eq!(cpp.to_bits(), b.cpp(vertex).to_bits(), "vertex {}", vertex);
                }
            }
        }
    }

    #[test]
    fn mixed_traversals_survive_the_epoch_wraparound(g in graph_strategy(24)) {
        // interleave upp, mip and cpp expansions on one workspace across the
        // epoch wrap; every call must match a fresh-workspace run
        let eval = InfluenceEvaluator::new(&g, InfluenceConfig::new(0.1));
        let mut reused = TraversalWorkspace::new();
        let _ = single_source_upp_with(&mut reused, &g, VertexId(0), 0.0);
        reused.force_epoch(u32::MAX - 4);
        for i in 0..9u32 {
            let source = VertexId(i % g.num_vertices() as u32);
            let a = single_source_upp_with(&mut reused, &g, source, 0.1);
            let b = single_source_upp_with(&mut TraversalWorkspace::new(), &g, source, 0.1);
            prop_assert_eq!(&a, &b);

            let target = VertexId((source.0 + 1) % g.num_vertices() as u32);
            let ma = max_influence_path_with(&mut reused, &g, source, target);
            let mb = max_influence_path_with(&mut TraversalWorkspace::new(), &g, source, target);
            prop_assert_eq!(ma, mb);

            let seed = VertexSubset::from_iter([source]);
            let ca = eval.influenced_community_with_theta_in(&mut reused, &seed, 0.1);
            let cb = eval.influenced_community_with_theta_in(
                &mut TraversalWorkspace::new(), &seed, 0.1,
            );
            prop_assert_eq!(ca.influential_score().to_bits(), cb.influential_score().to_bits());
            prop_assert_eq!(ca, cb);
        }
    }
}
