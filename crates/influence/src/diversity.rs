//! Diversity scores for DTopL-ICDE (Eq. (6)).
//!
//! The diversity score of a set `S` of seed communities is
//! `D(S) = Σ_v max_{g ∈ S} cpp(g, v)`: every user counts once, with the best
//! influence any selected community exerts on them. The paper proves the
//! score is **monotone** and **submodular**, which is what makes the lazy
//! greedy algorithm (Lemma 9 / Algorithm 4) both correct and effective.
//!
//! [`DiversityState`] keeps the running per-vertex maximum, so the marginal
//! gain of a candidate — `ΔD_g(S) = D(S ∪ {g}) − D(S)` — is computed in time
//! proportional to the candidate's influenced community, not to `|S|`.

use crate::influenced::InfluencedCommunity;
use icde_graph::{VertexId, Weight};
use std::collections::HashMap;

/// The diversity score `D(S)` of a set of influenced communities (Eq. (6)).
///
/// Vertices outside every influenced community contribute 0 (their `cpp` is
/// below the threshold for every selected community).
pub fn diversity_score(communities: &[&InfluencedCommunity]) -> Weight {
    let mut best: HashMap<VertexId, Weight> = HashMap::new();
    for community in communities {
        for (v, p) in community.iter() {
            let entry = best.entry(v).or_insert(0.0);
            if p > *entry {
                *entry = p;
            }
        }
    }
    best.values().sum()
}

/// The marginal gain `ΔD_g(S)` of adding `candidate` to the set whose
/// per-vertex maxima are already accumulated in `selected`.
pub fn marginal_gain(selected: &[&InfluencedCommunity], candidate: &InfluencedCommunity) -> Weight {
    let mut state = DiversityState::new();
    for s in selected {
        state.add(s);
    }
    state.gain(candidate)
}

/// Incrementally maintained diversity state: for every vertex touched by a
/// selected community, the best `cpp` seen so far.
#[derive(Debug, Clone, Default)]
pub struct DiversityState {
    best: HashMap<VertexId, Weight>,
    total: Weight,
}

impl DiversityState {
    /// Creates an empty state (`D(∅) = 0`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current diversity score `D(S)`.
    pub fn score(&self) -> Weight {
        self.total
    }

    /// Number of distinct vertices influenced by the selected set.
    pub fn covered_vertices(&self) -> usize {
        self.best.len()
    }

    /// Marginal gain `ΔD_g(S)` of adding `candidate` without modifying the
    /// state.
    pub fn gain(&self, candidate: &InfluencedCommunity) -> Weight {
        let mut gain = 0.0;
        for (v, p) in candidate.iter() {
            let current = self.best.get(&v).copied().unwrap_or(0.0);
            if p > current {
                gain += p - current;
            }
        }
        gain
    }

    /// Adds `candidate` to the selected set, updating the per-vertex maxima;
    /// returns the realised marginal gain.
    pub fn add(&mut self, candidate: &InfluencedCommunity) -> Weight {
        let mut gain = 0.0;
        for (v, p) in candidate.iter() {
            let entry = self.best.entry(v).or_insert(0.0);
            if p > *entry {
                gain += p - *entry;
                *entry = p;
            }
        }
        self.total += gain;
        gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::influenced::{InfluenceConfig, InfluenceEvaluator};
    use icde_graph::{SocialNetwork, VertexSubset};

    /// Two hubs (0 and 6) with partially overlapping neighbourhoods.
    fn two_hub_graph() -> SocialNetwork {
        let mut b = icde_graph::GraphBuilder::with_vertices(9);
        for n in [1u32, 2, 3, 4] {
            b.add_symmetric_edge(VertexId(0), VertexId(n), 0.8);
        }
        for n in [3u32, 4, 5, 7, 8] {
            b.add_symmetric_edge(VertexId(6), VertexId(n), 0.8);
        }
        b.build().unwrap()
    }

    fn communities(g: &SocialNetwork) -> (InfluencedCommunity, InfluencedCommunity) {
        let eval = InfluenceEvaluator::new(g, InfluenceConfig::new(0.5));
        let a = eval.influenced_community(&VertexSubset::from_iter([VertexId(0)]));
        let b = eval.influenced_community(&VertexSubset::from_iter([VertexId(6)]));
        (a, b)
    }

    #[test]
    fn single_community_diversity_equals_score() {
        let g = two_hub_graph();
        let (a, _) = communities(&g);
        assert!((diversity_score(&[&a]) - a.influential_score()).abs() < 1e-12);
        assert_eq!(diversity_score(&[]), 0.0);
    }

    #[test]
    fn overlap_reduces_combined_diversity() {
        let g = two_hub_graph();
        let (a, b) = communities(&g);
        let combined = diversity_score(&[&a, &b]);
        let sum = a.influential_score() + b.influential_score();
        assert!(
            combined < sum,
            "overlapping communities must not double-count"
        );
        assert!(combined >= a.influential_score().max(b.influential_score()));
    }

    #[test]
    fn diversity_is_monotone() {
        let g = two_hub_graph();
        let (a, b) = communities(&g);
        assert!(diversity_score(&[&a, &b]) >= diversity_score(&[&a]) - 1e-12);
        assert!(diversity_score(&[&a, &b]) >= diversity_score(&[&b]) - 1e-12);
    }

    #[test]
    fn diversity_is_submodular() {
        // gain of b w.r.t. {} must be >= gain of b w.r.t. {a}
        let g = two_hub_graph();
        let (a, b) = communities(&g);
        let gain_empty = marginal_gain(&[], &b);
        let gain_after_a = marginal_gain(&[&a], &b);
        assert!(gain_after_a <= gain_empty + 1e-12);
    }

    #[test]
    fn state_matches_batch_computation() {
        let g = two_hub_graph();
        let (a, b) = communities(&g);
        let mut state = DiversityState::new();
        let gain_a = state.add(&a);
        assert!((gain_a - a.influential_score()).abs() < 1e-12);
        let predicted_gain_b = state.gain(&b);
        let realised_gain_b = state.add(&b);
        assert!((predicted_gain_b - realised_gain_b).abs() < 1e-12);
        assert!((state.score() - diversity_score(&[&a, &b])).abs() < 1e-12);
        assert_eq!(state.covered_vertices(), diversity_covered(&[&a, &b]));
    }

    fn diversity_covered(communities: &[&InfluencedCommunity]) -> usize {
        let mut set = std::collections::HashSet::new();
        for c in communities {
            for (v, _) in c.iter() {
                set.insert(v);
            }
        }
        set.len()
    }

    #[test]
    fn gain_of_duplicate_community_is_zero() {
        let g = two_hub_graph();
        let (a, _) = communities(&g);
        let mut state = DiversityState::new();
        state.add(&a);
        assert!(state.gain(&a).abs() < 1e-12);
        assert!(state.add(&a).abs() < 1e-12);
    }
}
