//! The Maximum Influence Arborescence (MIA) model.
//!
//! * Eq. (1): the propagation probability of a concrete path is the product
//!   of its edge activation probabilities.
//! * Eq. (2): the maximum influence path `MIP_{u,v}` is the path with the
//!   largest propagation probability.
//! * Eq. (3): the user-to-user propagation probability `upp(u, v)` is the
//!   probability of that path.
//!
//! Because edge probabilities lie in `(0, 1]`, maximising a product is the
//! same as minimising the sum of `-ln p`, so `upp` is computed best-first
//! over products directly (no logarithm needed: keys only shrink along a
//! path). [`single_source_upp`] drives that search through the
//! [`TraversalWorkspace`]'s monotone bucket queue — quantised `-ln p`
//! buckets drained in order, with stale entries re-checked against the
//! per-vertex best value so the computed probabilities stay bit-identical to
//! the binary-heap formulation. [`max_influence_path`] keeps a strict
//! best-first heap (also workspace-owned) because its early exit at the
//! target needs exact pop order.
//!
//! Sources or targets the graph does not contain yield `None`/zero results
//! instead of panicking (stale [`VertexId`]s from a pre-update snapshot are
//! a legitimate caller state).

use icde_graph::workspace::{with_thread_workspace, ProbEntry, TraversalWorkspace};
use icde_graph::{SocialNetwork, VertexId, Weight};

/// Eq. (1): propagation probability of the concrete path `u_1, ..., u_m`.
///
/// Returns `None` if any consecutive pair is not an edge; a path with fewer
/// than two vertices has probability 1 (the empty product).
pub fn path_propagation_probability(g: &SocialNetwork, path: &[VertexId]) -> Option<Weight> {
    let mut probability = 1.0;
    for pair in path.windows(2) {
        probability *= g.activation_probability(pair[0], pair[1]).ok()?;
    }
    Some(probability)
}

/// Eqs. (2)–(3): the maximum influence path from `source` to `target` and its
/// propagation probability, or `None` if `target` is unreachable, the best
/// path probability is 0, or either endpoint is not a vertex of the graph.
pub fn max_influence_path(
    g: &SocialNetwork,
    source: VertexId,
    target: VertexId,
) -> Option<(Vec<VertexId>, Weight)> {
    with_thread_workspace(|ws| max_influence_path_with(ws, g, source, target))
}

/// [`max_influence_path`] against a caller-owned workspace.
pub fn max_influence_path_with(
    ws: &mut TraversalWorkspace,
    g: &SocialNetwork,
    source: VertexId,
    target: VertexId,
) -> Option<(Vec<VertexId>, Weight)> {
    if !g.contains_vertex(source) || !g.contains_vertex(target) {
        return None;
    }
    if source == target {
        return Some((vec![source], 1.0));
    }
    ws.begin(g.num_vertices());
    ws.set_prob(source, 1.0);
    ws.heap_push(ProbEntry {
        probability: 1.0,
        vertex: source,
    });

    while let Some(ProbEntry {
        probability,
        vertex,
    }) = ws.heap_pop()
    {
        if !ws.try_expand(vertex, probability) {
            continue;
        }
        if vertex == target {
            break;
        }
        for (n, p) in g.outgoing(vertex) {
            let candidate = probability * p;
            if candidate > ws.prob(n) {
                ws.set_prob(n, candidate);
                ws.set_parent(n, vertex);
                ws.heap_push(ProbEntry {
                    probability: candidate,
                    vertex: n,
                });
            }
        }
    }

    let best = ws.prob(target);
    if best <= 0.0 {
        return None;
    }
    // reconstruct the path
    let mut path = vec![target];
    let mut cursor = target;
    while let Some(p) = ws.parent(cursor) {
        path.push(p);
        cursor = p;
    }
    path.reverse();
    debug_assert_eq!(path.first(), Some(&source));
    Some((path, best))
}

/// Eq. (3): the user-to-user propagation probability `upp(u, v)`.
///
/// Returns 0.0 when `v` is unreachable from `u`; `upp(u, u) = 1` for
/// vertices the graph contains.
pub fn user_propagation_probability(
    g: &SocialNetwork,
    source: VertexId,
    target: VertexId,
) -> Weight {
    max_influence_path(g, source, target).map_or(0.0, |(_, p)| p)
}

/// Single-source `upp(source, ·)` to every vertex, truncated at `floor`: any
/// vertex whose best path probability falls below `floor` is reported as 0.
///
/// The MIA model truncates propagation exactly this way (paths cheaper than
/// the threshold cannot put a vertex into the influenced community), which
/// bounds the explored region. A `source` outside the graph yields all
/// zeros.
pub fn single_source_upp(g: &SocialNetwork, source: VertexId, floor: Weight) -> Vec<Weight> {
    let mut best = Vec::new();
    single_source_upp_into(g, source, floor, &mut best);
    best
}

/// [`single_source_upp`] into a **caller-owned output buffer**: `out` is
/// cleared, resized to `n` zeros and filled in place, so batch callers (one
/// `upp` per candidate source, thousands of sources) amortise the dense
/// result materialisation the same way [`TraversalWorkspace`] amortises the
/// scratch state — the ROADMAP follow-up from PR 3.
pub fn single_source_upp_into(
    g: &SocialNetwork,
    source: VertexId,
    floor: Weight,
    out: &mut Vec<Weight>,
) {
    with_thread_workspace(|ws| single_source_upp_with_into(ws, g, source, floor, out))
}

/// [`single_source_upp`] against a caller-owned workspace.
pub fn single_source_upp_with(
    ws: &mut TraversalWorkspace,
    g: &SocialNetwork,
    source: VertexId,
    floor: Weight,
) -> Vec<Weight> {
    let mut best = Vec::new();
    single_source_upp_with_into(ws, g, source, floor, &mut best);
    best
}

/// The fully amortised variant: caller-owned workspace *and* caller-owned
/// output buffer.
pub fn single_source_upp_with_into(
    ws: &mut TraversalWorkspace,
    g: &SocialNetwork,
    source: VertexId,
    floor: Weight,
    out: &mut Vec<Weight>,
) {
    out.clear();
    out.resize(g.num_vertices(), 0.0);
    if !g.contains_vertex(source) {
        return;
    }
    ws.begin(g.num_vertices());
    ws.set_prob(source, 1.0);
    ws.bucket_push(1.0, source);
    while let Some((probability, vertex)) = ws.bucket_pop() {
        if probability < ws.prob(vertex) {
            continue; // a better probability was recorded since this push
        }
        if !ws.try_expand(vertex, probability) {
            continue; // already expanded at this probability (settled)
        }
        for (n, p) in g.outgoing(vertex) {
            let candidate = probability * p;
            if candidate >= floor && candidate > ws.prob(n) {
                ws.set_prob(n, candidate);
                ws.bucket_push(candidate, n);
            }
        }
    }
    for &v in ws.touched() {
        out[v.index()] = ws.prob(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icde_graph::KeywordSet;

    /// Graph:
    /// 0 -0.9- 1 -0.9- 2      (path with strong links)
    ///  \------0.5------/      (direct weak link 0-2)
    /// 2 -0.6- 3
    fn diamond() -> SocialNetwork {
        let mut b = icde_graph::GraphBuilder::with_vertices(4);
        b.add_symmetric_edge(VertexId(0), VertexId(1), 0.9);
        b.add_symmetric_edge(VertexId(1), VertexId(2), 0.9);
        b.add_symmetric_edge(VertexId(0), VertexId(2), 0.5);
        b.add_symmetric_edge(VertexId(2), VertexId(3), 0.6);
        b.build().unwrap()
    }

    #[test]
    fn path_probability_is_product() {
        let g = diamond();
        let p = path_propagation_probability(&g, &[VertexId(0), VertexId(1), VertexId(2)]).unwrap();
        assert!((p - 0.81).abs() < 1e-12);
        let direct = path_propagation_probability(&g, &[VertexId(0), VertexId(2)]).unwrap();
        assert!((direct - 0.5).abs() < 1e-12);
        // missing edge
        assert!(path_propagation_probability(&g, &[VertexId(0), VertexId(3)]).is_none());
        // trivial paths
        assert_eq!(path_propagation_probability(&g, &[VertexId(0)]), Some(1.0));
        assert_eq!(path_propagation_probability(&g, &[]), Some(1.0));
    }

    #[test]
    fn mip_prefers_two_hop_strong_path() {
        let g = diamond();
        let (path, p) = max_influence_path(&g, VertexId(0), VertexId(2)).unwrap();
        assert_eq!(path, vec![VertexId(0), VertexId(1), VertexId(2)]);
        assert!((p - 0.81).abs() < 1e-12);
    }

    #[test]
    fn upp_values() {
        let g = diamond();
        assert!((user_propagation_probability(&g, VertexId(0), VertexId(2)) - 0.81).abs() < 1e-12);
        assert!(
            (user_propagation_probability(&g, VertexId(0), VertexId(3)) - 0.81 * 0.6).abs() < 1e-12
        );
        assert_eq!(
            user_propagation_probability(&g, VertexId(1), VertexId(1)),
            1.0
        );
    }

    #[test]
    fn unreachable_vertices_have_zero_upp() {
        // diamond plus an isolated vertex 4
        let mut b = icde_graph::GraphBuilder::with_vertices(5);
        b.add_symmetric_edge(VertexId(0), VertexId(1), 0.9);
        b.add_symmetric_edge(VertexId(1), VertexId(2), 0.9);
        b.add_symmetric_edge(VertexId(0), VertexId(2), 0.5);
        b.add_symmetric_edge(VertexId(2), VertexId(3), 0.6);
        let g = b.build().unwrap();
        let isolated = VertexId(4);
        assert_eq!(user_propagation_probability(&g, VertexId(0), isolated), 0.0);
        assert!(max_influence_path(&g, VertexId(0), isolated).is_none());
    }

    #[test]
    fn stale_vertices_yield_none_and_zeros() {
        let g = diamond();
        let stale = VertexId(42);
        // the reflexive case must not fabricate a path for a vertex the
        // graph does not contain
        assert!(max_influence_path(&g, stale, stale).is_none());
        assert!(max_influence_path(&g, VertexId(0), stale).is_none());
        assert!(max_influence_path(&g, stale, VertexId(0)).is_none());
        assert_eq!(user_propagation_probability(&g, stale, stale), 0.0);
        let upp = single_source_upp(&g, stale, 0.0);
        assert_eq!(upp.len(), g.num_vertices());
        assert!(upp.iter().all(|&p| p == 0.0));
    }

    #[test]
    fn empty_graph_has_no_paths() {
        let g = SocialNetwork::new();
        assert!(max_influence_path(&g, VertexId(0), VertexId(0)).is_none());
        assert_eq!(
            user_propagation_probability(&g, VertexId(0), VertexId(1)),
            0.0
        );
        assert!(single_source_upp(&g, VertexId(0), 0.0).is_empty());
    }

    #[test]
    fn upp_is_directional_when_weights_differ() {
        let mut builder = icde_graph::GraphBuilder::new();
        let a = builder.add_vertex(KeywordSet::new());
        let b = builder.add_vertex(KeywordSet::new());
        builder.add_edge(a, b, 0.9, 0.2);
        let g = builder.build().unwrap();
        assert!((user_propagation_probability(&g, a, b) - 0.9).abs() < 1e-12);
        assert!((user_propagation_probability(&g, b, a) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn single_source_matches_pairwise() {
        let g = diamond();
        let all = single_source_upp(&g, VertexId(0), 0.0);
        for v in g.vertices() {
            let pairwise = user_propagation_probability(&g, VertexId(0), v);
            assert!((all[v.index()] - pairwise).abs() < 1e-12, "vertex {v}");
        }
    }

    #[test]
    fn floor_truncates_weak_influence() {
        let g = diamond();
        let all = single_source_upp(&g, VertexId(0), 0.5);
        // 0 -> 3 has probability 0.486 < 0.5, truncated to 0
        assert_eq!(all[3], 0.0);
        assert!(all[2] >= 0.5);
    }

    #[test]
    fn upp_never_exceeds_one_and_never_increases_along_paths() {
        let g = diamond();
        for u in g.vertices() {
            let from_u = single_source_upp(&g, u, 0.0);
            for v in g.vertices() {
                assert!(from_u[v.index()] <= 1.0 + 1e-12);
                // extending a path by one edge cannot increase probability
                for (w, p) in g.outgoing(v) {
                    assert!(from_u[w.index()] >= from_u[v.index()] * p - 1e-12);
                }
            }
        }
    }

    #[test]
    fn reused_output_buffer_matches_fresh_allocation() {
        let g = diamond();
        let mut ws = TraversalWorkspace::new();
        // a deliberately dirty, oversized buffer must be fully overwritten
        let mut buffer = vec![99.0; 17];
        for source in g.vertices() {
            for floor in [0.0, 0.3, 0.6] {
                single_source_upp_with_into(&mut ws, &g, source, floor, &mut buffer);
                let fresh = single_source_upp(&g, source, floor);
                assert_eq!(buffer.len(), g.num_vertices());
                assert_eq!(buffer, fresh, "source {source} floor {floor}");
            }
        }
        // stale sources clear the buffer to zeros too
        single_source_upp_into(&g, VertexId(77), 0.0, &mut buffer);
        assert!(buffer.iter().all(|&p| p == 0.0));
        assert_eq!(buffer.len(), g.num_vertices());
    }

    #[test]
    fn reused_workspace_matches_fresh_workspace() {
        let g = diamond();
        let mut reused = TraversalWorkspace::new();
        for source in g.vertices() {
            for floor in [0.0, 0.3, 0.6] {
                let with_reuse = single_source_upp_with(&mut reused, &g, source, floor);
                let fresh =
                    single_source_upp_with(&mut TraversalWorkspace::new(), &g, source, floor);
                // bit-identical, not just approximately equal
                assert_eq!(with_reuse, fresh, "source {source} floor {floor}");
            }
            let a = max_influence_path_with(&mut reused, &g, source, VertexId(3));
            let b =
                max_influence_path_with(&mut TraversalWorkspace::new(), &g, source, VertexId(3));
            assert_eq!(a, b);
        }
    }
}
