//! Monte-Carlo Independent Cascade (IC) simulation.
//!
//! The MIA model used throughout the paper is itself an approximation of the
//! Independent Cascade diffusion process (Kempe et al.): it keeps only the
//! single most probable influence path to each user. This module provides a
//! reference IC simulator so that
//!
//! * tests can check that MIA-based influential scores are *correlated* with
//!   simulated spreads (communities ranked higher by `σ(g)` should not spread
//!   less when actually simulated), and
//! * applications can re-validate a chosen seed community with the more
//!   expensive but less biased estimator before committing a campaign to it.
//!
//! The simulator activates the seed set, then repeatedly gives every newly
//! activated user one chance to activate each inactive neighbour `v` with
//! probability `p_{u,v}`, until no new activation happens; the *spread* is
//! the number of activated users, averaged over `runs` rounds.

use icde_graph::{SocialNetwork, VertexId, VertexSubset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Result of a Monte-Carlo IC estimation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpreadEstimate {
    /// Mean number of activated users (seed included) over all runs.
    pub mean_spread: f64,
    /// Sample standard deviation of the spread.
    pub std_dev: f64,
    /// Number of simulation runs.
    pub runs: usize,
}

impl SpreadEstimate {
    /// Half-width of a crude 95% confidence interval (`1.96 · σ / √runs`).
    pub fn confidence_half_width(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            1.96 * self.std_dev / (self.runs as f64).sqrt()
        }
    }
}

/// Runs one IC cascade from `seed` and returns the number of activated users.
pub fn simulate_cascade_once<R: Rng>(g: &SocialNetwork, seed: &VertexSubset, rng: &mut R) -> usize {
    let mut active = vec![false; g.num_vertices()];
    let mut frontier: Vec<VertexId> = Vec::with_capacity(seed.len());
    for v in seed.iter() {
        if !active[v.index()] {
            active[v.index()] = true;
            frontier.push(v);
        }
    }
    let mut activated = frontier.len();
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &u in &frontier {
            for (v, p) in g.outgoing(u) {
                if !active[v.index()] && rng.gen_bool(p.clamp(0.0, 1.0)) {
                    active[v.index()] = true;
                    activated += 1;
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    activated
}

/// Estimates the expected IC spread of `seed` over `runs` Monte-Carlo rounds
/// with a fixed RNG seed (reproducible).
pub fn estimate_spread(
    g: &SocialNetwork,
    seed: &VertexSubset,
    runs: usize,
    rng_seed: u64,
) -> SpreadEstimate {
    assert!(runs > 0, "at least one simulation run is required");
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let samples: Vec<f64> = (0..runs)
        .map(|_| simulate_cascade_once(g, seed, &mut rng) as f64)
        .collect();
    let mean = samples.iter().sum::<f64>() / runs as f64;
    let variance = if runs > 1 {
        samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (runs as f64 - 1.0)
    } else {
        0.0
    };
    SpreadEstimate {
        mean_spread: mean,
        std_dev: variance.sqrt(),
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::influenced::{InfluenceConfig, InfluenceEvaluator};
    use icde_graph::generators::{DatasetKind, DatasetSpec};
    use icde_graph::KeywordSet;

    #[test]
    fn spread_always_includes_the_seed() {
        let g = DatasetSpec::new(DatasetKind::Uniform, 200, 1).generate();
        let seed = VertexSubset::from_iter([VertexId(0), VertexId(1)]);
        let estimate = estimate_spread(&g, &seed, 20, 7);
        assert!(estimate.mean_spread >= seed.len() as f64);
        assert!(estimate.mean_spread <= g.num_vertices() as f64);
        assert!(estimate.confidence_half_width() >= 0.0);
    }

    #[test]
    fn deterministic_for_fixed_rng_seed() {
        let g = DatasetSpec::new(DatasetKind::Zipf, 150, 2).generate();
        let seed = VertexSubset::from_iter([VertexId(3)]);
        let a = estimate_spread(&g, &seed, 10, 42);
        let b = estimate_spread(&g, &seed, 10, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn isolated_seed_spreads_nowhere() {
        let mut b = icde_graph::GraphBuilder::new();
        let a = b.add_vertex(KeywordSet::new());
        b.add_vertex(KeywordSet::new());
        let g = b.build().unwrap();
        let estimate = estimate_spread(&g, &VertexSubset::from_iter([a]), 5, 1);
        assert_eq!(estimate.mean_spread, 1.0);
        assert_eq!(estimate.std_dev, 0.0);
    }

    #[test]
    fn larger_seeds_spread_at_least_as_far() {
        // Monte-Carlo estimates fluctuate, so compare means with a slack of a
        // few standard errors; the larger seed contains the smaller one plus
        // two extra users, so its expected spread is strictly larger.
        let g = DatasetSpec::new(DatasetKind::Uniform, 300, 9).generate();
        let small = VertexSubset::from_iter([VertexId(0)]);
        let large = VertexSubset::from_iter([VertexId(0), VertexId(10), VertexId(20)]);
        let s = estimate_spread(&g, &small, 200, 5);
        let l = estimate_spread(&g, &large, 200, 5);
        let slack = 3.0 * (s.confidence_half_width() + l.confidence_half_width()).max(0.5);
        assert!(
            l.mean_spread + slack >= s.mean_spread,
            "large {} vs small {} (slack {slack})",
            l.mean_spread,
            s.mean_spread
        );
    }

    #[test]
    fn mia_score_correlates_with_simulated_spread() {
        // Rank a handful of 1-hop-ball "communities" by MIA score and by
        // simulated spread; the two rankings must agree on which of the
        // extreme pair is larger (weak but meaningful correlation check).
        let g = DatasetSpec::new(DatasetKind::AmazonLike, 400, 11).generate();
        let evaluator = InfluenceEvaluator::new(&g, InfluenceConfig::new(0.1));
        let centers: Vec<VertexId> = (0..8u32).map(VertexId).collect();
        let mut scored: Vec<(f64, f64)> = centers
            .iter()
            .map(|&c| {
                let ball = icde_graph::traversal::hop_subgraph(&g, c, 1);
                let mia = evaluator.influential_score(&ball);
                let sim = estimate_spread(&g, &ball, 30, 13).mean_spread;
                (mia, sim)
            })
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let lowest = scored.first().unwrap();
        let highest = scored.last().unwrap();
        assert!(
            highest.1 >= lowest.1,
            "community with the larger MIA score should not spread less: {scored:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_runs_panics() {
        let g = DatasetSpec::new(DatasetKind::Uniform, 50, 1).generate();
        let _ = estimate_spread(&g, &VertexSubset::from_iter([VertexId(0)]), 0, 1);
    }
}
