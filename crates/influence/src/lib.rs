//! # icde-influence — MIA propagation model for TopL-ICDE
//!
//! Implements the influence-propagation substrate of the paper
//! (Section II-B and Eqs. (1)–(6)):
//!
//! * [`mia`] — the Maximum Influence Arborescence model: path propagation
//!   probabilities, maximum influence paths and the user-to-user propagation
//!   probability `upp(u, v)` computed by a max-product Dijkstra,
//! * [`influenced`] — community-to-user propagation `cpp(g, v)`, the
//!   influenced community `g^Inf` expansion used by
//!   `calculate_influence(g, θ)` and the influential score `σ(g)`,
//! * [`diversity`] — the diversity score `D(S)` of a set of communities, its
//!   marginal gains `ΔD_g(S)` and the incremental state used by the
//!   DTopL-ICDE greedy algorithm.

pub mod diversity;
pub mod influenced;
pub mod mia;
pub mod simulation;

pub use diversity::{diversity_score, DiversityState};
pub use influenced::{InfluenceConfig, InfluenceEvaluator, InfluencedCommunity};
pub use mia::{
    max_influence_path, path_propagation_probability, single_source_upp, single_source_upp_into,
    user_propagation_probability,
};
pub use simulation::{estimate_spread, SpreadEstimate};
