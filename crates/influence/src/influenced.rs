//! Influenced communities and influential scores.
//!
//! Given a seed community `g` and a threshold `θ`, the influenced community
//! `g^Inf` (Definition 3) contains every vertex `v` with community-to-user
//! propagation probability `cpp(g, v) ≥ θ` (Eq. (4); members of the seed have
//! `cpp = 1`). The influential score `σ(g)` (Eq. (5)) sums those
//! probabilities over `g^Inf`.
//!
//! The expansion mirrors the paper's `calculate_influence(g, θ)` discussion
//! (Section VI-B): a multi-source, max-product Dijkstra seeded with every
//! community member at probability 1, expanding frontier vertices through
//! `cpp(g, v_new) = max_{u ∈ g^Inf} cpp(g, u) · p_{u, v_new}` and stopping as
//! soon as a candidate's probability would drop below `θ`. Because edge
//! probabilities are ≤ 1, probabilities only decrease along paths, so the
//! cut-off is exact rather than heuristic.
//!
//! The expansion runs through a [`TraversalWorkspace`] (epoch-stamped best
//! values plus the monotone bucket queue) with *settled-skip* semantics: an
//! entry popped at a probability equal to one already expanded is dropped,
//! so equal-probability duplicates — common under symmetric edge weights —
//! no longer re-expand their whole neighbourhood.

use icde_graph::workspace::{with_thread_workspace, TraversalWorkspace};
use icde_graph::{SocialNetwork, VertexId, VertexSubset, Weight};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Parameters of influence evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InfluenceConfig {
    /// Influence threshold `θ ∈ [0, 1)`: vertices with `cpp(g, v) < θ` are
    /// outside the influenced community.
    pub theta: Weight,
}

impl InfluenceConfig {
    /// Creates a config after validating `0 ≤ θ < 1`.
    ///
    /// # Panics
    /// Panics if θ is outside `[0, 1)`.
    pub fn new(theta: Weight) -> Self {
        assert!(
            (0.0..1.0).contains(&theta),
            "theta must be in [0, 1), got {theta}"
        );
        InfluenceConfig { theta }
    }
}

impl Default for InfluenceConfig {
    /// The paper's default threshold θ = 0.2 (Table III).
    fn default() -> Self {
        InfluenceConfig { theta: 0.2 }
    }
}

/// The influenced community `g^Inf` of one seed community: every member's
/// community-to-user propagation probability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InfluencedCommunity {
    /// `cpp(g, v)` for every vertex of `g^Inf` (seed members map to 1.0).
    cpp: HashMap<VertexId, Weight>,
    /// Number of seed vertices.
    seed_size: usize,
    /// Threshold used during expansion.
    theta: Weight,
    /// Influential score accumulated in deterministic expansion order (see
    /// [`InfluencedCommunity::influential_score`]).
    score: Weight,
}

impl InfluencedCommunity {
    /// Number of vertices in `g^Inf` (seed members included).
    pub fn len(&self) -> usize {
        self.cpp.len()
    }

    /// Returns `true` if the influenced community is empty (only possible for
    /// an empty seed).
    pub fn is_empty(&self) -> bool {
        self.cpp.is_empty()
    }

    /// Number of seed vertices.
    pub fn seed_size(&self) -> usize {
        self.seed_size
    }

    /// Number of influenced vertices outside the seed.
    pub fn influenced_only_count(&self) -> usize {
        self.cpp.len() - self.seed_size
    }

    /// The threshold `θ` the community was expanded with.
    pub fn theta(&self) -> Weight {
        self.theta
    }

    /// `cpp(g, v)`, or 0.0 if `v` is outside the influenced community.
    pub fn cpp(&self, v: VertexId) -> Weight {
        self.cpp.get(&v).copied().unwrap_or(0.0)
    }

    /// Returns `true` if `v` belongs to `g^Inf`.
    pub fn contains(&self, v: VertexId) -> bool {
        self.cpp.contains_key(&v)
    }

    /// Iterates over `(vertex, cpp)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.cpp.iter().map(|(v, p)| (*v, *p))
    }

    /// The influential score `σ(g)` (Eq. (5)): the sum of all `cpp` values.
    ///
    /// The value is accumulated during the expansion in deterministic
    /// (bucket-drain) order, so the same seed community always yields the
    /// exact same floating-point score regardless of hash-map iteration
    /// order.
    pub fn influential_score(&self) -> Weight {
        self.score
    }

    /// The vertex set of `g^Inf`.
    pub fn vertex_set(&self) -> VertexSubset {
        VertexSubset::from_iter(self.cpp.keys().copied())
    }

    /// Number of vertices shared with another influenced community.
    pub fn overlap(&self, other: &InfluencedCommunity) -> usize {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.cpp.keys().filter(|v| large.contains(**v)).count()
    }
}

/// Evaluates influence propagation over one social network.
///
/// Borrowing the graph once lets callers evaluate many seed communities
/// without re-validating the configuration each time.
#[derive(Debug, Clone, Copy)]
pub struct InfluenceEvaluator<'g> {
    graph: &'g SocialNetwork,
    config: InfluenceConfig,
}

impl<'g> InfluenceEvaluator<'g> {
    /// Creates an evaluator for `graph` with the given configuration.
    pub fn new(graph: &'g SocialNetwork, config: InfluenceConfig) -> Self {
        InfluenceEvaluator { graph, config }
    }

    /// The threshold θ this evaluator uses.
    pub fn theta(&self) -> Weight {
        self.config.theta
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g SocialNetwork {
        self.graph
    }

    /// Expands the influenced community `g^Inf` of `seed` under the
    /// evaluator's threshold (the paper's `calculate_influence(g, θ)`).
    pub fn influenced_community(&self, seed: &VertexSubset) -> InfluencedCommunity {
        self.influenced_community_with_theta(seed, self.config.theta)
    }

    /// Expands `g^Inf` with an explicit threshold, which is how the offline
    /// pre-computation evaluates the same seed under several thresholds
    /// `θ_1 < θ_2 < ... < θ_m` (Algorithm 2).
    pub fn influenced_community_with_theta(
        &self,
        seed: &VertexSubset,
        theta: Weight,
    ) -> InfluencedCommunity {
        with_thread_workspace(|ws| self.influenced_community_with_theta_in(ws, seed, theta))
    }

    /// [`influenced_community_with_theta`] against a caller-owned workspace
    /// (the offline pre-computation evaluates thousands of regions per
    /// worker thread and amortises the scratch state across all of them).
    ///
    /// [`influenced_community_with_theta`]:
    /// InfluenceEvaluator::influenced_community_with_theta
    pub fn influenced_community_with_theta_in(
        &self,
        ws: &mut TraversalWorkspace,
        seed: &VertexSubset,
        theta: Weight,
    ) -> InfluencedCommunity {
        ws.begin(self.graph.num_vertices());
        let mut score = 0.0;
        for v in seed.iter() {
            ws.set_prob(v, 1.0);
            score += 1.0;
            ws.bucket_push(1.0, v);
        }
        // effective floor: members always qualify; influenced vertices need
        // probability >= theta (a theta of 0 admits any positive probability)
        while let Some((probability, vertex)) = ws.bucket_pop() {
            if probability < ws.prob(vertex) {
                continue; // stale: a better probability was recorded since
            }
            if !ws.try_expand(vertex, probability) {
                continue; // settled: an equal duplicate was already expanded
            }
            for (n, p) in self.graph.outgoing(vertex) {
                if seed.contains(n) {
                    continue; // members already have cpp = 1
                }
                let candidate = probability * p;
                if candidate < theta || candidate <= 0.0 {
                    continue;
                }
                let current = ws.prob(n);
                if candidate > current {
                    ws.set_prob(n, candidate);
                    score += candidate - current;
                    ws.bucket_push(candidate, n);
                }
            }
        }
        let mut cpp: HashMap<VertexId, Weight> = HashMap::with_capacity(ws.touched().len());
        for &v in ws.touched() {
            cpp.insert(v, ws.prob(v));
        }
        InfluencedCommunity {
            cpp,
            seed_size: seed.len(),
            theta,
            score,
        }
    }

    /// The influential score `σ(g)` of a seed community (Eq. (5)).
    pub fn influential_score(&self, seed: &VertexSubset) -> Weight {
        self.influenced_community(seed).influential_score()
    }

    /// Computes `σ_z(seed)` for **every** threshold in `thresholds` with a
    /// single influence expansion (the offline phase's Algorithm 2 inner
    /// loop; the naive formulation runs `m = |thresholds|` full expansions).
    ///
    /// Borrows this thread's shared workspace; see
    /// [`multi_threshold_scores_in`] for the caller-owned-workspace variant
    /// and the correctness argument.
    ///
    /// [`multi_threshold_scores_in`]:
    /// InfluenceEvaluator::multi_threshold_scores_in
    pub fn multi_threshold_scores(&self, seed: &VertexSubset, thresholds: &[f64]) -> Vec<f64> {
        with_thread_workspace(|ws| self.multi_threshold_scores_in(ws, seed, thresholds))
    }

    /// [`multi_threshold_scores`] against a caller-owned workspace.
    ///
    /// **Why one expansion suffices.** Every edge probability is ≤ 1, so
    /// along any path the running product is nonincreasing: every *prefix*
    /// of a max-influence path has probability ≥ its endpoint's `cpp`. A
    /// max-product Dijkstra truncated at `θ_min = min(thresholds)` therefore
    /// settles every vertex whose true `cpp` clears **any** of the
    /// thresholds, and settles it at exactly the value the per-threshold
    /// expansion at `θ_z ≤ cpp` would have computed (the optimal path never
    /// dips below `cpp ≥ θ_z ≥ θ_min` at any prefix, so no cutoff ever
    /// discards it). `σ_z` is then the sum of the settled `cpp` values that
    /// reach `θ_z`, accumulated in deterministic first-touch order — the
    /// same seed always yields the exact same floating-point scores.
    ///
    /// `thresholds` need not be sorted; each returned score is aligned with
    /// its input position. Scores match the per-threshold reference path
    /// within floating-point summation order (≤ 1e-9 in practice), and the
    /// settled `cpp` values themselves are bit-identical.
    ///
    /// [`multi_threshold_scores`]: InfluenceEvaluator::multi_threshold_scores
    pub fn multi_threshold_scores_in(
        &self,
        ws: &mut TraversalWorkspace,
        seed: &VertexSubset,
        thresholds: &[f64],
    ) -> Vec<f64> {
        let mut out = vec![0.0; thresholds.len()];
        self.multi_threshold_scores_into(ws, seed.iter(), thresholds, &mut out);
        out
    }

    /// The allocation-free core of [`multi_threshold_scores_in`]: takes the
    /// seed as a plain vertex iterator (the offline phase feeds BFS-order
    /// region prefixes without materialising a `VertexSubset`) and writes
    /// the scores into a caller-owned slice. Nothing is allocated per call
    /// — probabilities are read straight off the workspace and no influenced
    /// community map is built.
    ///
    /// # Panics
    /// Panics if `out.len() != thresholds.len()`, or if any threshold lies
    /// outside `[0, 1)` — a `θ_z ≥ 1` would silently drop seed members
    /// (`cpp = 1.0 < θ_z`) from `σ_z` where the per-threshold reference
    /// counts them unconditionally, so out-of-range input fails loudly
    /// instead (the same domain [`InfluenceConfig::new`] enforces).
    ///
    /// [`multi_threshold_scores_in`]:
    /// InfluenceEvaluator::multi_threshold_scores_in
    pub fn multi_threshold_scores_into(
        &self,
        ws: &mut TraversalWorkspace,
        seed: impl IntoIterator<Item = VertexId>,
        thresholds: &[f64],
        out: &mut [f64],
    ) {
        assert_eq!(out.len(), thresholds.len(), "one output slot per threshold");
        assert!(
            thresholds.iter().all(|t| (0.0..1.0).contains(t)),
            "thresholds must lie in [0, 1)"
        );
        out.fill(0.0);
        let theta_min = thresholds.iter().copied().fold(f64::INFINITY, f64::min);
        ws.begin(self.graph.num_vertices());
        for v in seed {
            ws.set_prob(v, 1.0);
            ws.bucket_push(1.0, v);
        }
        while let Some((probability, vertex)) = ws.bucket_pop() {
            if probability < ws.prob(vertex) {
                continue; // stale: a better probability was recorded since
            }
            if !ws.try_expand(vertex, probability) {
                continue; // settled: an equal duplicate was already expanded
            }
            for (n, p) in self.graph.outgoing(vertex) {
                let candidate = probability * p;
                if candidate < theta_min || candidate <= 0.0 {
                    continue;
                }
                // seed members sit at probability 1.0, so `candidate > current`
                // also keeps them (and any already-better vertex) untouched
                let current = ws.prob(n);
                if candidate > current {
                    ws.set_prob(n, candidate);
                    ws.bucket_push(candidate, n);
                }
            }
        }
        // deterministic drain: `touched` records first-touch order, which is
        // fully determined by the seed order and the graph
        for &v in ws.touched() {
            let cpp = ws.prob(v);
            for (z, &theta_z) in thresholds.iter().enumerate() {
                if cpp >= theta_z {
                    out[z] += cpp;
                }
            }
        }
    }

    /// Community-to-user propagation probability `cpp(g, v)` (Eq. (4)),
    /// honouring the threshold truncation (vertices outside `g^Inf` report 0).
    pub fn community_to_user(&self, seed: &VertexSubset, v: VertexId) -> Weight {
        if seed.contains(v) {
            1.0
        } else {
            self.influenced_community(seed).cpp(v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mia::user_propagation_probability;

    /// Line 0-1-2-3-4 with strong probabilities plus a side vertex 5 attached
    /// to 1.
    fn line_graph() -> SocialNetwork {
        let mut b = icde_graph::GraphBuilder::with_vertices(6);
        b.add_symmetric_edge(VertexId(0), VertexId(1), 0.8);
        b.add_symmetric_edge(VertexId(1), VertexId(2), 0.8);
        b.add_symmetric_edge(VertexId(2), VertexId(3), 0.8);
        b.add_symmetric_edge(VertexId(3), VertexId(4), 0.8);
        b.add_symmetric_edge(VertexId(1), VertexId(5), 0.3);
        b.build().unwrap()
    }

    #[test]
    fn config_validation() {
        assert_eq!(InfluenceConfig::default().theta, 0.2);
        assert_eq!(InfluenceConfig::new(0.0).theta, 0.0);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn config_rejects_out_of_range() {
        let _ = InfluenceConfig::new(1.0);
    }

    #[test]
    fn seed_members_have_cpp_one() {
        let g = line_graph();
        let eval = InfluenceEvaluator::new(&g, InfluenceConfig::new(0.2));
        let seed = VertexSubset::from_iter([VertexId(1), VertexId(2)]);
        let inf = eval.influenced_community(&seed);
        assert_eq!(inf.cpp(VertexId(1)), 1.0);
        assert_eq!(inf.cpp(VertexId(2)), 1.0);
        assert_eq!(inf.seed_size(), 2);
        assert_eq!(eval.community_to_user(&seed, VertexId(1)), 1.0);
    }

    #[test]
    fn expansion_respects_threshold() {
        let g = line_graph();
        let seed = VertexSubset::from_iter([VertexId(0)]);
        // theta = 0.5: cpp along the line is 0.8, 0.64, 0.512, 0.4096, so the
        // influenced community stops after vertex 3
        let eval = InfluenceEvaluator::new(&g, InfluenceConfig::new(0.5));
        let inf = eval.influenced_community(&seed);
        assert!(inf.contains(VertexId(1)));
        assert!(inf.contains(VertexId(2)));
        assert!(inf.contains(VertexId(3)));
        assert!((inf.cpp(VertexId(3)) - 0.512).abs() < 1e-12);
        assert!(!inf.contains(VertexId(4)));
        assert_eq!(inf.cpp(VertexId(4)), 0.0);
        assert!(!inf.contains(VertexId(5)));
    }

    #[test]
    fn expansion_matches_pairwise_upp() {
        // For a single-vertex seed, cpp(g, v) must equal upp(u, v) whenever
        // it clears the threshold (Eq. (4)).
        let g = line_graph();
        let seed = VertexSubset::from_iter([VertexId(0)]);
        let eval = InfluenceEvaluator::new(&g, InfluenceConfig::new(0.1));
        let inf = eval.influenced_community(&seed);
        for v in g.vertices() {
            let upp = user_propagation_probability(&g, VertexId(0), v);
            if v == VertexId(0) {
                assert_eq!(inf.cpp(v), 1.0);
            } else if upp >= 0.1 {
                assert!(
                    (inf.cpp(v) - upp).abs() < 1e-12,
                    "vertex {v}: {} vs {upp}",
                    inf.cpp(v)
                );
            } else {
                assert_eq!(inf.cpp(v), 0.0, "vertex {v}");
            }
        }
    }

    #[test]
    fn multi_source_takes_maximum() {
        let g = line_graph();
        let seed = VertexSubset::from_iter([VertexId(0), VertexId(4)]);
        let eval = InfluenceEvaluator::new(&g, InfluenceConfig::new(0.1));
        let inf = eval.influenced_community(&seed);
        // vertex 2 is reachable from both ends at 0.64
        let upp0 = user_propagation_probability(&g, VertexId(0), VertexId(2));
        let upp4 = user_propagation_probability(&g, VertexId(4), VertexId(2));
        assert!((inf.cpp(VertexId(2)) - upp0.max(upp4)).abs() < 1e-12);
    }

    #[test]
    fn influential_score_sums_cpp() {
        let g = line_graph();
        let seed = VertexSubset::from_iter([VertexId(1)]);
        let eval = InfluenceEvaluator::new(&g, InfluenceConfig::new(0.3));
        let inf = eval.influenced_community(&seed);
        // members: 1 (1.0); influenced: 0 (0.8), 2 (0.8), 5 (0.3), 3 (0.64),
        // 4 (0.512)
        let expected = 1.0 + 0.8 + 0.8 + 0.3 + 0.64 + 0.512;
        assert!(
            (inf.influential_score() - expected).abs() < 1e-9,
            "{}",
            inf.influential_score()
        );
        assert_eq!(inf.len(), 6);
        assert_eq!(inf.influenced_only_count(), 5);
        assert!((eval.influential_score(&seed) - expected).abs() < 1e-9);
    }

    #[test]
    fn score_is_monotone_in_theta() {
        // Higher thresholds can only shrink the influenced community and its
        // score — the property the influential-score pruning bound relies on.
        let g = line_graph();
        let seed = VertexSubset::from_iter([VertexId(2)]);
        let eval = InfluenceEvaluator::new(&g, InfluenceConfig::default());
        let mut last = f64::INFINITY;
        for theta in [0.0, 0.1, 0.2, 0.3, 0.5, 0.8] {
            let score = eval
                .influenced_community_with_theta(&seed, theta)
                .influential_score();
            assert!(score <= last + 1e-12, "theta={theta}");
            last = score;
        }
    }

    #[test]
    fn score_is_monotone_in_seed_growth() {
        // Adding vertices to the seed can only increase the score (the basis
        // of using sigma(hop(v, r)) as an upper bound in Algorithm 2).
        let g = line_graph();
        let eval = InfluenceEvaluator::new(&g, InfluenceConfig::new(0.2));
        let small = VertexSubset::from_iter([VertexId(1)]);
        let large = VertexSubset::from_iter([VertexId(1), VertexId(2), VertexId(3)]);
        assert!(eval.influential_score(&large) >= eval.influential_score(&small));
    }

    #[test]
    fn empty_seed_has_empty_influence() {
        let g = line_graph();
        let eval = InfluenceEvaluator::new(&g, InfluenceConfig::new(0.2));
        let inf = eval.influenced_community(&VertexSubset::new());
        assert!(inf.is_empty());
        assert_eq!(inf.influential_score(), 0.0);
        assert_eq!(inf.len(), 0);
    }

    #[test]
    fn overlap_counts_shared_vertices() {
        let g = line_graph();
        let eval = InfluenceEvaluator::new(&g, InfluenceConfig::new(0.3));
        let a = eval.influenced_community(&VertexSubset::from_iter([VertexId(0)]));
        let b = eval.influenced_community(&VertexSubset::from_iter([VertexId(4)]));
        let overlap = a.overlap(&b);
        assert_eq!(overlap, b.overlap(&a));
        assert!(overlap >= 1, "both reach the middle of the line");
    }

    #[test]
    fn symmetric_probabilities_expand_each_vertex_once() {
        // Equal-probability duplicate heap entries used to slip past the
        // `probability < cpp[v]` stale check and re-expand their whole
        // neighbourhood. With settled-skip semantics every vertex expands at
        // most once when no strict improvement occurs.
        let mut b = icde_graph::GraphBuilder::with_vertices(6);
        for i in 0..6u32 {
            // 6-cycle, perfectly symmetric weights
            b.add_symmetric_edge(VertexId(i), VertexId((i + 1) % 6), 0.5);
        }
        let g = b.build().unwrap();
        let eval = InfluenceEvaluator::new(&g, InfluenceConfig::new(0.1));
        // symmetric seed: vertices 0 and 3 reach 1, 2, 4, 5 at identical
        // probabilities from both sides
        let seed = VertexSubset::from_iter([VertexId(0), VertexId(3)]);

        let mut ws = TraversalWorkspace::new();
        let inf = eval.influenced_community_with_theta_in(&mut ws, &seed, 0.1);
        assert!(
            ws.expansions() <= inf.len(),
            "{} expansions for {} members",
            ws.expansions(),
            inf.len()
        );

        // cpp must equal the max over the seeds' pairwise upp, and the score
        // their sum
        let mut expected_score = 0.0;
        for v in g.vertices() {
            let expected = if seed.contains(v) {
                1.0
            } else {
                let upp = g
                    .vertices()
                    .filter(|s| seed.contains(*s))
                    .map(|s| user_propagation_probability(&g, s, v))
                    .fold(0.0f64, f64::max);
                if upp >= 0.1 {
                    upp
                } else {
                    0.0
                }
            };
            assert!((inf.cpp(v) - expected).abs() < 1e-12, "vertex {v}");
            expected_score += expected;
        }
        assert!((inf.influential_score() - expected_score).abs() < 1e-9);

        // and the run is reproducible bit-for-bit through the same reused
        // workspace
        let again = eval.influenced_community_with_theta_in(&mut ws, &seed, 0.1);
        assert_eq!(inf, again);
        assert_eq!(inf.influential_score(), again.influential_score());
    }

    #[test]
    fn reused_workspace_matches_fresh_workspace() {
        let g = line_graph();
        let eval = InfluenceEvaluator::new(&g, InfluenceConfig::new(0.2));
        let mut reused = TraversalWorkspace::new();
        for v in g.vertices() {
            let seed = VertexSubset::from_iter([v]);
            let with_reuse = eval.influenced_community_with_theta_in(&mut reused, &seed, 0.2);
            let fresh =
                eval.influenced_community_with_theta_in(&mut TraversalWorkspace::new(), &seed, 0.2);
            assert_eq!(with_reuse, fresh);
            assert_eq!(with_reuse.influential_score(), fresh.influential_score());
        }
    }

    #[test]
    fn multi_threshold_scores_match_per_threshold_expansions() {
        let g = line_graph();
        let eval = InfluenceEvaluator::new(&g, InfluenceConfig::new(0.0));
        let thresholds = [0.1, 0.2, 0.3, 0.5, 0.8];
        let mut ws = TraversalWorkspace::new();
        for a in g.vertices() {
            for b in g.vertices() {
                let seed = VertexSubset::from_iter([a, b]);
                let shared = eval.multi_threshold_scores_in(&mut ws, &seed, &thresholds);
                for (z, &theta) in thresholds.iter().enumerate() {
                    let reference = eval
                        .influenced_community_with_theta_in(&mut ws, &seed, theta)
                        .influential_score();
                    assert!(
                        (shared[z] - reference).abs() < 1e-9,
                        "seed {{{a}, {b}}} theta {theta}: {} vs {reference}",
                        shared[z]
                    );
                }
            }
        }
    }

    #[test]
    fn multi_threshold_scores_handle_unsorted_thresholds_and_zero() {
        let g = line_graph();
        let eval = InfluenceEvaluator::new(&g, InfluenceConfig::new(0.0));
        let seed = VertexSubset::from_iter([VertexId(0)]);
        // unsorted input: each output stays aligned with its position
        let shuffled = eval.multi_threshold_scores(&seed, &[0.5, 0.0, 0.2]);
        for (z, &theta) in [0.5, 0.0, 0.2].iter().enumerate() {
            let reference = eval
                .influenced_community_with_theta(&seed, theta)
                .influential_score();
            assert!((shuffled[z] - reference).abs() < 1e-9, "theta {theta}");
        }
        // empty seed: all zeros
        let empty = eval.multi_threshold_scores(&VertexSubset::new(), &[0.1, 0.2]);
        assert_eq!(empty, vec![0.0, 0.0]);
    }

    #[test]
    fn multi_threshold_scores_into_is_reproducible_and_reusable() {
        let g = line_graph();
        let eval = InfluenceEvaluator::new(&g, InfluenceConfig::new(0.0));
        let thresholds = [0.1, 0.3];
        let mut ws = TraversalWorkspace::new();
        let mut out_a = [0.0; 2];
        let mut out_b = [7.0; 2]; // stale garbage must be overwritten
        let seed = [VertexId(1), VertexId(3)];
        eval.multi_threshold_scores_into(&mut ws, seed.iter().copied(), &thresholds, &mut out_a);
        eval.multi_threshold_scores_into(&mut ws, seed.iter().copied(), &thresholds, &mut out_b);
        assert_eq!(out_a.map(f64::to_bits), out_b.map(f64::to_bits));
        let fresh = eval.multi_threshold_scores_in(
            &mut TraversalWorkspace::new(),
            &VertexSubset::from_iter(seed),
            &thresholds,
        );
        assert_eq!(
            out_a
                .to_vec()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            fresh.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn vertex_set_matches_membership() {
        let g = line_graph();
        let eval = InfluenceEvaluator::new(&g, InfluenceConfig::new(0.2));
        let inf = eval.influenced_community(&VertexSubset::from_iter([VertexId(2)]));
        let set = inf.vertex_set();
        assert_eq!(set.len(), inf.len());
        for v in set.iter() {
            assert!(inf.contains(v));
        }
    }
}
