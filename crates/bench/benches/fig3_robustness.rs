//! Criterion counterpart of Figure 3: robustness of the online TopL-ICDE
//! query time under each Table III parameter, on the Uniform synthetic graph.
//!
//! Each group sweeps one parameter; the other parameters stay at their
//! defaults, exactly as in the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icde_bench::params::{
    ExperimentParams, QUERY_KEYWORDS_VALUES, RADIUS_VALUES, RESULT_SIZE_VALUES, SUPPORT_VALUES,
    THETA_VALUES,
};
use icde_bench::workload::{sample_topl_query, Workload};
use icde_core::topl::TopLProcessor;
use icde_graph::generators::DatasetKind;

const BENCH_SCALE: usize = 1_000;

fn bench_online_parameter_sweeps(c: &mut Criterion) {
    let base = ExperimentParams::at_scale(BENCH_SCALE);
    let workload = Workload::build(DatasetKind::Uniform, &base);

    // Figure 3(a): theta
    let mut group = c.benchmark_group("fig3a_theta");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &theta in &THETA_VALUES {
        let query = sample_topl_query(&base.clone().with_theta(theta));
        group.bench_with_input(BenchmarkId::from_parameter(theta), &query, |b, q| {
            b.iter(|| {
                TopLProcessor::new(&workload.graph, &workload.index)
                    .run(q)
                    .unwrap()
            })
        });
    }
    group.finish();

    // Figure 3(b): |Q|
    let mut group = c.benchmark_group("fig3b_query_keywords");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &q_size in &QUERY_KEYWORDS_VALUES {
        let query = sample_topl_query(&base.clone().with_query_keywords(q_size));
        group.bench_with_input(BenchmarkId::from_parameter(q_size), &query, |b, q| {
            b.iter(|| {
                TopLProcessor::new(&workload.graph, &workload.index)
                    .run(q)
                    .unwrap()
            })
        });
    }
    group.finish();

    // Figure 3(c): k
    let mut group = c.benchmark_group("fig3c_support");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &k in &SUPPORT_VALUES {
        let query = sample_topl_query(&base.clone().with_support(k));
        group.bench_with_input(BenchmarkId::from_parameter(k), &query, |b, q| {
            b.iter(|| {
                TopLProcessor::new(&workload.graph, &workload.index)
                    .run(q)
                    .unwrap()
            })
        });
    }
    group.finish();

    // Figure 3(d): r
    let mut group = c.benchmark_group("fig3d_radius");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &r in &RADIUS_VALUES {
        let query = sample_topl_query(&base.clone().with_radius(r));
        group.bench_with_input(BenchmarkId::from_parameter(r), &query, |b, q| {
            b.iter(|| {
                TopLProcessor::new(&workload.graph, &workload.index)
                    .run(q)
                    .unwrap()
            })
        });
    }
    group.finish();

    // Figure 3(e): L
    let mut group = c.benchmark_group("fig3e_result_size");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &l in &RESULT_SIZE_VALUES {
        let query = sample_topl_query(&base.clone().with_result_size(l));
        group.bench_with_input(BenchmarkId::from_parameter(l), &query, |b, q| {
            b.iter(|| {
                TopLProcessor::new(&workload.graph, &workload.index)
                    .run(q)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_graph_scalability(c: &mut Criterion) {
    // Figure 3(h) (scaled down): online time vs graph size.
    let mut group = c.benchmark_group("fig3h_graph_size");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[500usize, 1_000, 2_000] {
        let params = ExperimentParams::at_scale(n);
        let workload = Workload::build(DatasetKind::Uniform, &params);
        let query = workload.topl_query();
        group.bench_with_input(BenchmarkId::from_parameter(n), &workload, |b, w| {
            b.iter(|| TopLProcessor::new(&w.graph, &w.index).run(&query).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_online_parameter_sweeps,
    bench_graph_scalability
);
criterion_main!(benches);
