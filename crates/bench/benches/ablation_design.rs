//! Ablation benches for the design decisions called out in DESIGN.md (these
//! go beyond the paper's figures):
//!
//! * keyword-signature width `B` — wider signatures reduce hash-collision
//!   false positives in keyword pruning at the cost of index size,
//! * index fan-out `γ` — shallower trees mean fewer heap operations but
//!   looser per-entry bounds,
//! * offline pre-computation cost — sequential vs parallel (crossbeam).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icde_bench::params::ExperimentParams;
use icde_bench::workload::sample_topl_query;
use icde_core::index::IndexBuilder;
use icde_core::precompute::{PrecomputeConfig, PrecomputedData};
use icde_core::topl::TopLProcessor;
use icde_graph::generators::{DatasetKind, DatasetSpec};

const BENCH_SCALE: usize = 800;

fn graph() -> icde_graph::SocialNetwork {
    let params = ExperimentParams::at_scale(BENCH_SCALE);
    DatasetSpec::new(DatasetKind::Uniform, params.graph_size, params.seed)
        .with_keyword_domain(params.keyword_domain)
        .with_keywords_per_vertex(params.keywords_per_vertex)
        .generate()
}

fn bench_signature_width(c: &mut Criterion) {
    let g = graph();
    let params = ExperimentParams::at_scale(BENCH_SCALE);
    let query = sample_topl_query(&params);
    let mut group = c.benchmark_group("ablation_bitvector_width");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &bits in &[32usize, 128, 512] {
        let config = PrecomputeConfig {
            signature_bits: bits,
            ..Default::default()
        };
        let index = IndexBuilder::new(config).build(&g);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &index, |b, idx| {
            b.iter(|| TopLProcessor::new(&g, idx).run(&query).unwrap())
        });
    }
    group.finish();
}

fn bench_index_fanout(c: &mut Criterion) {
    let g = graph();
    let params = ExperimentParams::at_scale(BENCH_SCALE);
    let query = sample_topl_query(&params);
    let data = PrecomputedData::compute(&g, PrecomputeConfig::default());
    let mut group = c.benchmark_group("ablation_index_fanout");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &fanout in &[2usize, 8, 32] {
        let index = IndexBuilder::new(PrecomputeConfig::default())
            .with_fanout(fanout)
            .build_from_precomputed(&g, data.clone());
        group.bench_with_input(BenchmarkId::from_parameter(fanout), &index, |b, idx| {
            b.iter(|| TopLProcessor::new(&g, idx).run(&query).unwrap())
        });
    }
    group.finish();
}

fn bench_offline_parallelism(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("ablation_offline_precompute");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (label, parallel) in [("sequential", false), ("parallel", true)] {
        let config = PrecomputeConfig {
            parallel,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, cfg| {
            b.iter(|| PrecomputedData::compute(&g, cfg.clone()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_signature_width,
    bench_index_fanout,
    bench_offline_parallelism
);
criterion_main!(benches);
