//! Criterion counterpart of Figure 4: pruning-rule ablation.
//!
//! Measures the online query time under the three pruning configurations the
//! paper compares (keyword only, keyword + support, keyword + support +
//! score), plus a no-pruning configuration as an extra reference point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icde_bench::params::ExperimentParams;
use icde_bench::workload::Workload;
use icde_core::topl::{PruningToggles, TopLProcessor};
use icde_graph::generators::DatasetKind;

const BENCH_SCALE: usize = 1_000;

fn bench_fig4(c: &mut Criterion) {
    let params = ExperimentParams::at_scale(BENCH_SCALE);
    let combos: [(&str, PruningToggles); 4] = [
        ("none", PruningToggles::none()),
        ("keyword", PruningToggles::keyword_only()),
        ("keyword+support", PruningToggles::keyword_support()),
        ("keyword+support+score", PruningToggles::all()),
    ];

    let mut group = c.benchmark_group("fig4_pruning_ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for kind in [DatasetKind::Uniform, DatasetKind::AmazonLike] {
        let workload = Workload::build(kind, &params);
        let query = workload.topl_query();
        for (label, toggles) in combos {
            let id = BenchmarkId::new(label, kind.label());
            group.bench_with_input(id, &workload, |b, w| {
                b.iter(|| {
                    TopLProcessor::new(&w.graph, &w.index)
                        .run_with_toggles(&query, toggles)
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
