//! Graph-substrate micro-benchmarks over the frozen CSR store.
//!
//! Every phase of the TopL-ICDE pipeline reduces to three adjacency-bound
//! primitives: bounded BFS over r-hop balls (Algorithm 2 / radius pruning),
//! triangle counting via sorted-slice intersection (truss supports, Lemma 3),
//! and single-source best-probability Dijkstra (MIA `upp`, Eqs. 1–3). This
//! bench tracks them on the paper-default 50k-vertex small-world graph so CSR
//! regressions surface immediately; `BENCH_2.json` (written by
//! `experiments bench2`) records the trajectory against the PR-1
//! adjacency-list baseline.
//!
//! Run: `cargo bench -p icde-bench --bench graph_primitives`
//! CI smoke: `cargo bench -p icde-bench --bench graph_primitives -- --test`

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use icde_graph::generators::{small_world, SmallWorldConfig};
use icde_graph::traversal::bfs_within;
use icde_graph::{SocialNetwork, VertexId};
use icde_influence::mia::single_source_upp;
use icde_truss::triangle::count_triangles;
use std::time::Duration;

const SCALE: usize = 50_000;
const SEED: u64 = 20240614;

fn graph() -> SocialNetwork {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(SEED);
    small_world(&SmallWorldConfig::paper_default(SCALE), &mut rng)
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_primitives");
    group
        .sample_size(5)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("build_50k_small_world", |b| b.iter(|| black_box(graph())));
    group.finish();
}

fn bench_triangles(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("graph_primitives");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("triangle_count_50k", |b| {
        b.iter(|| black_box(count_triangles(&g)))
    });
    group.finish();
}

fn bench_rhop_bfs(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("graph_primitives");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("rhop_bfs_r3_x2000", |b| {
        b.iter(|| {
            let mut reached = 0usize;
            for i in 0..2000 {
                let v = VertexId::from_index(i * (SCALE / 2000));
                reached += bfs_within(&g, v, 3).distances.len();
            }
            black_box(reached)
        })
    });
    group.finish();
}

fn bench_upp(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("graph_primitives");
    group
        .sample_size(5)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("single_source_upp_x200", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for i in 0..200 {
                let v = VertexId::from_index(i * (SCALE / 200));
                acc += single_source_upp(&g, v, 0.01).iter().sum::<f64>();
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(
    graph_primitives,
    bench_build,
    bench_triangles,
    bench_rhop_bfs,
    bench_upp
);
criterion_main!(graph_primitives);
