//! Traversal-workspace micro-benchmarks.
//!
//! Tracks the two primitives the [`TraversalWorkspace`] refactor targets —
//! bounded r-hop BFS and the single-source max-product Dijkstra — in three
//! borrowing modes: the thread-local wrapper (what casual callers get), an
//! explicit caller-owned workspace (what batch callers like the offline
//! pre-computation use) and a deliberately fresh workspace per call (the
//! allocation-bound behaviour the refactor removed, kept as an in-tree
//! regression baseline).
//!
//! Run: `cargo bench -p icde-bench --bench traversal`
//! CI smoke: `cargo bench -p icde-bench --bench traversal -- --test`
//!
//! [`TraversalWorkspace`]: icde_graph::workspace::TraversalWorkspace

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use icde_graph::generators::{small_world, SmallWorldConfig};
use icde_graph::traversal::{bfs_within, bfs_within_with};
use icde_graph::workspace::TraversalWorkspace;
use icde_graph::{SocialNetwork, VertexId};
use icde_influence::mia::{single_source_upp, single_source_upp_with};
use std::time::Duration;

const SCALE: usize = 50_000;
const SEED: u64 = 20240614;
const BFS_CALLS: usize = 500;
const UPP_CALLS: usize = 50;

fn graph() -> SocialNetwork {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(SEED);
    small_world(&SmallWorldConfig::paper_default(SCALE), &mut rng)
}

fn bfs_source(i: usize) -> VertexId {
    VertexId::from_index(i * (SCALE / BFS_CALLS))
}

fn upp_source(i: usize) -> VertexId {
    VertexId::from_index(i * (SCALE / UPP_CALLS))
}

fn bench_bfs_modes(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("traversal");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("bfs_r3_thread_workspace", |b| {
        b.iter(|| {
            let mut reached = 0usize;
            for i in 0..BFS_CALLS {
                reached += bfs_within(&g, bfs_source(i), 3).distances.len();
            }
            black_box(reached)
        })
    });
    group.bench_function("bfs_r3_owned_workspace", |b| {
        let mut ws = TraversalWorkspace::new();
        b.iter(|| {
            let mut reached = 0usize;
            for i in 0..BFS_CALLS {
                reached += bfs_within_with(&mut ws, &g, bfs_source(i), 3)
                    .distances
                    .len();
            }
            black_box(reached)
        })
    });
    group.bench_function("bfs_r3_fresh_workspace", |b| {
        b.iter(|| {
            let mut reached = 0usize;
            for i in 0..BFS_CALLS {
                reached += bfs_within_with(&mut TraversalWorkspace::new(), &g, bfs_source(i), 3)
                    .distances
                    .len();
            }
            black_box(reached)
        })
    });
    group.finish();
}

fn bench_upp_modes(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("traversal");
    group
        .sample_size(5)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("upp_thread_workspace", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for i in 0..UPP_CALLS {
                acc += single_source_upp(&g, upp_source(i), 0.01)
                    .iter()
                    .sum::<f64>();
            }
            black_box(acc)
        })
    });
    group.bench_function("upp_owned_workspace", |b| {
        let mut ws = TraversalWorkspace::new();
        b.iter(|| {
            let mut acc = 0.0f64;
            for i in 0..UPP_CALLS {
                acc += single_source_upp_with(&mut ws, &g, upp_source(i), 0.01)
                    .iter()
                    .sum::<f64>();
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(traversal, bench_bfs_modes, bench_upp_modes);
criterion_main!(traversal);
