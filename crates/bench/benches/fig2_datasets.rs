//! Criterion counterpart of Figure 2: online TopL-ICDE query time vs the
//! ATindex competitor on every dataset family.
//!
//! The graphs are scaled down (Criterion repeats each measurement many
//! times); the `experiments` binary regenerates the figure at larger scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icde_bench::params::ExperimentParams;
use icde_bench::workload::Workload;
use icde_core::baseline::atindex::ATIndex;
use icde_core::topl::TopLProcessor;
use icde_graph::generators::DatasetKind;

const BENCH_SCALE: usize = 600;

fn bench_fig2(c: &mut Criterion) {
    let params = ExperimentParams::at_scale(BENCH_SCALE);
    let mut group = c.benchmark_group("fig2_topl_vs_atindex");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for kind in DatasetKind::ALL {
        let workload = Workload::build(kind, &params);
        let query = workload.topl_query();
        let atindex = ATIndex::build(&workload.graph);

        group.bench_with_input(
            BenchmarkId::new("TopL-ICDE", kind.label()),
            &workload,
            |b, w| {
                b.iter(|| {
                    TopLProcessor::new(&w.graph, &w.index)
                        .run(&query)
                        .expect("valid query")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("ATindex", kind.label()),
            &workload,
            |b, w| b.iter(|| atindex.run(&w.graph, &query)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
