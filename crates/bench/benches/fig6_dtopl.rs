//! Criterion counterpart of Figure 6: DTopL-ICDE processing.
//!
//! * strategies per dataset (Greedy_WP vs Greedy_WoP vs Optimal) — Fig. 6(a),
//! * sweep over the result size L — Fig. 6(b),
//! * sweep over the candidate multiplier n — Fig. 6(c).
//!
//! The Optimal strategy only runs with a tiny `n·L` (it enumerates all
//! subsets), mirroring the paper's use of Optimal on small settings only.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icde_bench::params::ExperimentParams;
use icde_bench::workload::{sample_dtopl_query, Workload};
use icde_core::dtopl::{DTopLProcessor, DTopLStrategy};
use icde_graph::generators::DatasetKind;

const BENCH_SCALE: usize = 1_000;

fn bench_strategies(c: &mut Criterion) {
    let params = ExperimentParams::at_scale(BENCH_SCALE).with_result_size(3);
    let mut group = c.benchmark_group("fig6a_strategies");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for kind in [DatasetKind::Uniform, DatasetKind::Zipf] {
        let workload = Workload::build(kind, &params);
        let query = workload.dtopl_query();
        for (label, strategy) in [
            ("Greedy_WP", DTopLStrategy::GreedyWithPruning),
            ("Greedy_WoP", DTopLStrategy::GreedyWithoutPruning),
            ("Optimal", DTopLStrategy::Optimal),
        ] {
            let id = BenchmarkId::new(label, kind.label());
            group.bench_with_input(id, &workload, |b, w| {
                b.iter(|| {
                    DTopLProcessor::new(&w.graph, &w.index)
                        .run(&query, strategy)
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

fn bench_parameter_sweeps(c: &mut Criterion) {
    let base = ExperimentParams::at_scale(BENCH_SCALE);
    let workload = Workload::build(DatasetKind::Uniform, &base);

    let mut group = c.benchmark_group("fig6b_result_size");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &l in &[2usize, 5, 10] {
        let query = sample_dtopl_query(&base.clone().with_result_size(l));
        group.bench_with_input(BenchmarkId::from_parameter(l), &query, |b, q| {
            b.iter(|| {
                DTopLProcessor::new(&workload.graph, &workload.index)
                    .run(q, DTopLStrategy::GreedyWithPruning)
                    .unwrap()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig6c_multiplier");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[2usize, 5, 10] {
        let query = sample_dtopl_query(&base.clone().with_multiplier(n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &query, |b, q| {
            b.iter(|| {
                DTopLProcessor::new(&workload.graph, &workload.index)
                    .run(q, DTopLStrategy::GreedyWithPruning)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_parameter_sweeps);
criterion_main!(benches);
