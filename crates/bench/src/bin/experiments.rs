//! Experiment driver regenerating every table and figure of the paper.
//!
//! ```text
//! cargo run -p icde-bench --release --bin experiments -- all
//! cargo run -p icde-bench --release --bin experiments -- fig2 --scale 10000
//! cargo run -p icde-bench --release --bin experiments -- fig3h --max-scale 50000
//! cargo run -p icde-bench --release --bin experiments -- fig6a --optimal --json
//! ```
//!
//! Available experiments: `table2`, `fig2`, `fig3a`..`fig3h`, `fig4`, `fig5`,
//! `fig6a`..`fig6e`, `offline` (index-construction cost), and `all`.
//!
//! Options:
//! * `--scale N` — number of vertices per generated graph (default 5 000);
//!   the paper's default is 250 000, which also works but takes much longer.
//! * `--max-scale N` — upper bound for the scalability sweeps (fig3h, fig6d).
//! * `--optimal` — include the exponential Optimal strategy in fig6a.
//! * `--json` — additionally print every table as JSON.
//! * `--seed N` — RNG seed for graph generation and query sampling.

use icde_bench::figures;
use icde_bench::params::{ExperimentParams, GRAPH_SIZE_VALUES};
use icde_bench::report::{seconds, Table};
use icde_bench::workload::Workload;
use icde_graph::generators::DatasetKind;

struct Options {
    experiments: Vec<String>,
    scale: usize,
    max_scale: usize,
    include_optimal: bool,
    json: bool,
    seed: u64,
    /// `None` means each bench's own full scale ([`SNAPSHOT_SCALE`] for
    /// bench3–bench8, [`BENCH9_SCALE`] for bench9).
    bench_scale: Option<usize>,
    /// Shard count for bench9 (defaults to the bench's worker count).
    shards: Option<usize>,
}

fn parse_options() -> Options {
    let mut options = Options {
        experiments: Vec::new(),
        scale: icde_bench::params::DEFAULT_SCALE,
        max_scale: 50_000,
        include_optimal: false,
        json: false,
        seed: 20240614,
        bench_scale: None,
        shards: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                options.scale = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--scale requires a number");
                    std::process::exit(2);
                });
            }
            "--max-scale" => {
                i += 1;
                options.max_scale = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--max-scale requires a number");
                    std::process::exit(2);
                });
            }
            "--bench-scale" => {
                i += 1;
                options.bench_scale =
                    Some(args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--bench-scale requires a number");
                        std::process::exit(2);
                    }));
            }
            "--shards" => {
                i += 1;
                options.shards =
                    Some(args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--shards requires a number");
                        std::process::exit(2);
                    }));
            }
            "--seed" => {
                i += 1;
                options.seed = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed requires a number");
                    std::process::exit(2);
                });
            }
            "--optimal" => options.include_optimal = true,
            "--json" => options.json = true,
            "--help" | "-h" => {
                print_usage();
                std::process::exit(0);
            }
            other if other.starts_with("--") => {
                eprintln!("unknown option {other}");
                print_usage();
                std::process::exit(2);
            }
            name => options.experiments.push(name.to_string()),
        }
        i += 1;
    }
    if options.experiments.is_empty() {
        options.experiments.push("all".to_string());
    }
    options
}

fn print_usage() {
    eprintln!(
        "usage: experiments [table2|fig2|fig3a..fig3h|fig4|fig5|fig6a..fig6e|offline|bench2|bench3|bench4|bench5|bench6|bench7|bench8|bench9|all]... \
         [--scale N] [--max-scale N] [--bench-scale N] [--shards N] [--optimal] [--json] [--seed N]"
    );
    eprintln!(
        "  bench2: time the CSR graph primitives on the 50k small-world graph and \
         write the BENCH_2.json perf snapshot (not part of `all`)"
    );
    eprintln!(
        "  bench3: time the TraversalWorkspace-backed primitives, verify checksums \
         against the pre-workspace reference implementations and write the \
         BENCH_3.json perf snapshot (not part of `all`). --bench-scale N shrinks \
         the graph for smoke runs, writing BENCH_3_smoke.json instead"
    );
    eprintln!(
        "  bench4: time JSON vs binary-snapshot loading of the graph + tree index \
         (mmap zero-copy and buffered fallback), verify every loader is bit-identical \
         and write the BENCH_4.json perf snapshot (not part of `all`). --bench-scale N \
         shrinks the graph for smoke runs, writing BENCH_4_smoke.json instead"
    );
    eprintln!(
        "  bench5: time the offline pre-computation engine (frontier-incremental, \
         one expansion for all thresholds, work-stealing scatter) against the \
         in-tree reference path, verify the tables are bit-identical (scores \
         within 1e-9) and write the BENCH_5.json perf snapshot (not part of \
         `all`). --bench-scale N shrinks the graph for smoke runs, writing \
         BENCH_5_smoke.json instead"
    );
    eprintln!(
        "  bench6: time the progressive bound-driven online TopL engine against \
         the eager reference formulation of Algorithm 3, verify the answers are \
         bit-identical and write the BENCH_6.json perf snapshot (not part of \
         `all`). --bench-scale N shrinks the graph for smoke runs, writing \
         BENCH_6_smoke.json instead"
    );
    eprintln!(
        "  bench7: serve a Zipf-skewed query stream through the concurrent \
         runtime (worker pool, hot snapshot swap, canonicalised query LRU) at \
         one worker vs a multi-worker pool, verify every answer bit-identical \
         to the single-threaded kernel and write the BENCH_7.json perf snapshot \
         (not part of `all`). --bench-scale N shrinks the graph for smoke runs, \
         writing BENCH_7_smoke.json instead"
    );
    eprintln!(
        "  bench8: drive a sustained Zipf insert/delete edge stream through \
         the delta-overlay maintenance loop (overlay patches, affected-ball \
         refresh, compaction) sequentially and then concurrently against the \
         serving runtime, verify every interleaved answer bit-identical to a \
         from-scratch rebuild at the same logical graph state and write the \
         BENCH_8.json perf snapshot (not part of `all`). --bench-scale N \
         shrinks the graph for smoke runs, writing BENCH_8_smoke.json instead"
    );
    eprintln!(
        "  bench9: build the sharded offline engine on a 1,000,000-vertex \
         locality small-world graph (contiguous vertex-range shards, \
         ball-cover-sized per-worker scratch, shard-affine work stealing), \
         verify the sharded build bit-identical to the sequential unsharded \
         engine before timing, record per-phase wall times + peak RSS + \
         measured-vs-naive worker scratch, and write the BENCH_9.json perf \
         snapshot (not part of `all`). --bench-scale N shrinks the graph for \
         smoke runs, writing BENCH_9_smoke.json instead; --shards N overrides \
         the shard count (default 16)"
    );
}

fn emit(table: &Table, json: bool) {
    println!("{table}");
    if json {
        println!("{}", table.to_json());
    }
    println!();
}

/// Offline cost report: graph generation, pre-computation + index build time
/// and index shape per dataset (not a paper figure, but needed to interpret
/// the online numbers).
fn offline_report(params: &ExperimentParams) -> Table {
    let mut table = Table::new(
        "Offline phase: generation and index construction",
        &[
            "dataset",
            "generation (s)",
            "offline (s)",
            "index nodes",
            "height",
        ],
    );
    for kind in DatasetKind::ALL {
        let workload = Workload::build(kind, params);
        table.push_row(vec![
            kind.label().to_string(),
            seconds(workload.generation_time),
            seconds(workload.offline_time),
            workload.index.node_count().to_string(),
            workload.index.height().to_string(),
        ]);
    }
    table
}

fn scalability_sizes(max_scale: usize) -> Vec<usize> {
    GRAPH_SIZE_VALUES
        .iter()
        .copied()
        .filter(|s| *s <= max_scale)
        .collect()
}

fn main() {
    let options = parse_options();
    // bench3–bench8 archive at SNAPSHOT_SCALE; bench9's full scale is the
    // million-vertex line
    let bench_scale = options
        .bench_scale
        .unwrap_or(icde_bench::perf::SNAPSHOT_SCALE);
    let params = ExperimentParams::at_scale(options.scale).with_seed(options.seed);
    println!(
        "# TopL-ICDE experiment harness — scale {} vertices, seed {}\n",
        options.scale, options.seed
    );

    let run_all = options.experiments.iter().any(|e| e == "all");
    let wants = |name: &str| run_all || options.experiments.iter().any(|e| e == name);

    // The perf snapshot runs a fixed-scale workload and writes a file, so it
    // is opt-in only (not part of `all`).
    if options.experiments.iter().any(|e| e == "bench2") {
        println!("# bench2: timing graph primitives on the 50k small-world graph ...");
        let json = icde_bench::perf::bench2_snapshot_json();
        std::fs::write("BENCH_2.json", &json).expect("write BENCH_2.json");
        println!("{json}");
        println!("\nwrote BENCH_2.json");
    }

    if options.experiments.iter().any(|e| e == "bench3") {
        println!(
            "# bench3: timing workspace-backed graph primitives on the {}-vertex \
             small-world graph (checksums verified against reference implementations) ...",
            bench_scale
        );
        let json = icde_bench::perf::bench3_snapshot_json(bench_scale);
        // smoke runs at reduced scale must not clobber the archived snapshot
        let path = if bench_scale == icde_bench::perf::SNAPSHOT_SCALE {
            "BENCH_3.json"
        } else {
            "BENCH_3_smoke.json"
        };
        std::fs::write(path, &json).expect("write BENCH_3 snapshot");
        println!("{json}");
        println!("\nwrote {path}");
    }

    if options.experiments.iter().any(|e| e == "bench4") {
        println!(
            "# bench4: timing JSON vs binary-snapshot loading of the {}-vertex \
             small-world graph + index (fingerprints verified bit-identical across \
             all loaders) ...",
            bench_scale
        );
        let json = icde_bench::perf::bench4_snapshot_json(bench_scale);
        // smoke runs at reduced scale must not clobber the archived snapshot
        let path = if bench_scale == icde_bench::perf::SNAPSHOT_SCALE {
            "BENCH_4.json"
        } else {
            "BENCH_4_smoke.json"
        };
        std::fs::write(path, &json).expect("write BENCH_4 snapshot");
        println!("{json}");
        println!("\nwrote {path}");
    }

    if options.experiments.iter().any(|e| e == "bench5") {
        println!(
            "# bench5: timing the offline pre-computation engine overhaul on the \
             {}-vertex small-world graph (reference vs engine, tables verified \
             bit-identical) ...",
            bench_scale
        );
        let json = icde_bench::perf::bench5_snapshot_json(bench_scale);
        // smoke runs at reduced scale must not clobber the archived snapshot
        let path = if bench_scale == icde_bench::perf::SNAPSHOT_SCALE {
            "BENCH_5.json"
        } else {
            "BENCH_5_smoke.json"
        };
        std::fs::write(path, &json).expect("write BENCH_5 snapshot");
        println!("{json}");
        println!("\nwrote {path}");
    }

    if options.experiments.iter().any(|e| e == "bench6") {
        println!(
            "# bench6: timing the progressive online TopL engine on the {}-vertex \
             small-world graph (answers verified bit-identical to the eager \
             reference) ...",
            bench_scale
        );
        let json = icde_bench::perf::bench6_snapshot_json(bench_scale);
        // smoke runs at reduced scale must not clobber the archived snapshot
        let path = if bench_scale == icde_bench::perf::SNAPSHOT_SCALE {
            "BENCH_6.json"
        } else {
            "BENCH_6_smoke.json"
        };
        std::fs::write(path, &json).expect("write BENCH_6 snapshot");
        println!("{json}");
        println!("\nwrote {path}");
    }

    if options.experiments.iter().any(|e| e == "bench7") {
        println!(
            "# bench7: serving a Zipf-skewed query stream through the concurrent \
             runtime on the {}-vertex small-world graph (every answer verified \
             bit-identical to the single-threaded kernel, snapshot hot-swapped \
             mid-run) ...",
            bench_scale
        );
        let json = icde_bench::perf::bench7_snapshot_json(bench_scale);
        // smoke runs at reduced scale must not clobber the archived snapshot
        let path = if bench_scale == icde_bench::perf::SNAPSHOT_SCALE {
            "BENCH_7.json"
        } else {
            "BENCH_7_smoke.json"
        };
        std::fs::write(path, &json).expect("write BENCH_7 snapshot");
        println!("{json}");
        println!("\nwrote {path}");
    }

    if options.experiments.iter().any(|e| e == "bench8") {
        println!(
            "# bench8: driving a Zipf insert/delete stream through the \
             delta-overlay maintenance loop on the {}-vertex small-world graph \
             (every interleaved answer verified bit-identical to a from-scratch \
             rebuild at the same logical state) ...",
            bench_scale
        );
        let json = icde_bench::perf::bench8_snapshot_json(bench_scale);
        // smoke runs at reduced scale must not clobber the archived snapshot
        let path = if bench_scale == icde_bench::perf::SNAPSHOT_SCALE {
            "BENCH_8.json"
        } else {
            "BENCH_8_smoke.json"
        };
        std::fs::write(path, &json).expect("write BENCH_8 snapshot");
        println!("{json}");
        println!("\nwrote {path}");
    }

    if options.experiments.iter().any(|e| e == "bench9") {
        let scale9 = options
            .bench_scale
            .unwrap_or(icde_bench::perf::BENCH9_SCALE);
        let shards = options.shards.unwrap_or(16);
        println!(
            "# bench9: building the sharded offline engine on the {scale9}-vertex \
             locality small-world graph ({shards} shards; sharded build verified \
             bit-identical to the sequential unsharded engine before timing) ..."
        );
        let json = icde_bench::perf::bench9_snapshot_json(scale9, shards);
        // smoke runs at reduced scale must not clobber the archived snapshot
        let path = if scale9 == icde_bench::perf::BENCH9_SCALE {
            "BENCH_9.json"
        } else {
            "BENCH_9_smoke.json"
        };
        std::fs::write(path, &json).expect("write BENCH_9 snapshot");
        println!("{json}");
        let rss = icde_bench::perf::peak_rss_bytes();
        println!(
            "\npeak RSS (VmHWM): {:.1} MiB",
            rss as f64 / (1024.0 * 1024.0)
        );
        println!("wrote {path}");
    }

    if wants("table2") {
        emit(&figures::table2_dataset_statistics(&params), options.json);
    }
    if wants("offline") {
        emit(&offline_report(&params), options.json);
    }
    if wants("fig2") {
        emit(&figures::fig2_datasets(&params), options.json);
    }
    if wants("fig3a") {
        emit(&figures::fig3_theta(&params), options.json);
    }
    if wants("fig3b") {
        emit(&figures::fig3_query_keywords(&params), options.json);
    }
    if wants("fig3c") {
        emit(&figures::fig3_support(&params), options.json);
    }
    if wants("fig3d") {
        emit(&figures::fig3_radius(&params), options.json);
    }
    if wants("fig3e") {
        emit(&figures::fig3_result_size(&params), options.json);
    }
    if wants("fig3f") {
        emit(&figures::fig3_keywords_per_vertex(&params), options.json);
    }
    if wants("fig3g") {
        emit(&figures::fig3_keyword_domain(&params), options.json);
    }
    if wants("fig3h") {
        let sizes = scalability_sizes(options.max_scale);
        emit(&figures::fig3_graph_size(&params, &sizes), options.json);
    }
    if wants("fig4") {
        let (pruned, time) = figures::fig4_ablation(&params);
        emit(&pruned, options.json);
        emit(&time, options.json);
    }
    if wants("fig5") {
        emit(&figures::fig5_case_study(&params), options.json);
    }
    if wants("fig6a") {
        emit(
            &figures::fig6_datasets(&params, options.include_optimal),
            options.json,
        );
    }
    if wants("fig6b") {
        emit(&figures::fig6_result_size(&params), options.json);
    }
    if wants("fig6c") {
        emit(&figures::fig6_multiplier(&params), options.json);
    }
    if wants("fig6d") {
        let sizes = scalability_sizes(options.max_scale);
        emit(&figures::fig6_graph_size(&params, &sizes), options.json);
    }
    if wants("fig6e") {
        emit(&figures::fig6_accuracy(&params), options.json);
    }
}
