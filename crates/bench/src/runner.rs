//! Timed executions of our approach and the baselines.
//!
//! Each function runs one method against one prepared [`Workload`] and
//! returns a [`Measurement`] with the wall-clock time (the metric the paper
//! reports) plus the numbers the figures need (answer scores, pruning
//! counters, diversity scores, accuracy).

use crate::workload::Workload;
use icde_core::baseline::atindex::ATIndex;
use icde_core::baseline::bruteforce::brute_force_topl;
use icde_core::dtopl::{DTopLProcessor, DTopLStrategy};
use icde_core::stats::PruningStats;
use icde_core::topl::{PruningToggles, TopLProcessor};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// The outcome of running one method once.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Measurement {
    /// Method label (e.g. "TopL-ICDE", "ATindex", "Greedy_WP").
    pub method: String,
    /// Online wall-clock time.
    pub wall_clock: Duration,
    /// Number of communities returned.
    pub answers: usize,
    /// Best influential score among the answers (0.0 when empty).
    pub best_score: f64,
    /// Diversity score (DTopL methods only; 0.0 otherwise).
    pub diversity_score: f64,
    /// Pruning counters (methods that track them).
    pub stats: PruningStats,
}

impl Measurement {
    /// Wall-clock time in seconds (the unit of every figure in the paper).
    pub fn seconds(&self) -> f64 {
        self.wall_clock.as_secs_f64()
    }
}

/// Runs our TopL-ICDE processor (Algorithm 3) with all pruning rules.
pub fn run_topl(workload: &Workload) -> Measurement {
    run_topl_with_toggles(workload, PruningToggles::all(), "TopL-ICDE")
}

/// Runs our TopL-ICDE processor with an explicit pruning configuration
/// (the Figure 4 ablation study).
pub fn run_topl_with_toggles(
    workload: &Workload,
    toggles: PruningToggles,
    label: &str,
) -> Measurement {
    run_topl_query(workload, &workload.topl_query(), toggles, label)
}

/// Runs our TopL-ICDE processor against an explicit query (used by the
/// parameter sweeps of Figure 3, which reuse one workload with many queries).
pub fn run_topl_query(
    workload: &Workload,
    query: &icde_core::query::TopLQuery,
    toggles: PruningToggles,
    label: &str,
) -> Measurement {
    let start = Instant::now();
    let answer = TopLProcessor::new(&workload.graph, &workload.index)
        .run_with_toggles(query, toggles)
        .expect("workload queries are always valid");
    let wall_clock = start.elapsed();
    Measurement {
        method: label.to_string(),
        wall_clock,
        answers: answer.communities.len(),
        best_score: answer.best_score().max(0.0),
        diversity_score: 0.0,
        stats: answer.stats,
    }
}

/// Runs the ATindex competitor (offline truss decomposition is *not* charged
/// to the online time, mirroring the paper's setup).
pub fn run_atindex(workload: &Workload) -> Measurement {
    let query = workload.topl_query();
    let at = ATIndex::build(&workload.graph);
    let start = Instant::now();
    let answer = at.run(&workload.graph, &query);
    let wall_clock = start.elapsed();
    Measurement {
        method: "ATindex".to_string(),
        wall_clock,
        answers: answer.communities.len(),
        best_score: answer.best_score().max(0.0),
        diversity_score: 0.0,
        stats: answer.stats,
    }
}

/// Runs the brute-force exhaustive method (used for sanity rows, not part of
/// the paper's figures).
pub fn run_bruteforce(workload: &Workload) -> Measurement {
    let query = workload.topl_query();
    let start = Instant::now();
    let answer = brute_force_topl(&workload.graph, &query);
    let wall_clock = start.elapsed();
    Measurement {
        method: "BruteForce".to_string(),
        wall_clock,
        answers: answer.communities.len(),
        best_score: answer.best_score().max(0.0),
        diversity_score: 0.0,
        stats: answer.stats,
    }
}

/// Runs one DTopL-ICDE strategy with the workload's default query.
pub fn run_dtopl(workload: &Workload, strategy: DTopLStrategy) -> Measurement {
    run_dtopl_query(workload, &workload.dtopl_query(), strategy)
}

/// Runs one DTopL-ICDE strategy against an explicit query (Figure 6 sweeps).
pub fn run_dtopl_query(
    workload: &Workload,
    query: &icde_core::dtopl::DTopLQuery,
    strategy: DTopLStrategy,
) -> Measurement {
    let label = match strategy {
        DTopLStrategy::GreedyWithPruning => "Greedy_WP",
        DTopLStrategy::GreedyWithoutPruning => "Greedy_WoP",
        DTopLStrategy::Optimal => "Optimal",
    };
    let start = Instant::now();
    let answer = DTopLProcessor::new(&workload.graph, &workload.index)
        .run(query, strategy)
        .expect("workload queries are always valid");
    let wall_clock = start.elapsed();
    Measurement {
        method: label.to_string(),
        wall_clock,
        answers: answer.communities.len(),
        best_score: answer
            .communities
            .iter()
            .map(|c| c.influential_score)
            .fold(0.0, f64::max),
        diversity_score: answer.diversity_score,
        stats: answer.stats,
    }
}

/// The DTopL-ICDE accuracy metric of Figure 6(e): the ratio of the greedy
/// diversity score to the optimal diversity score (1.0 when both are empty).
pub fn dtopl_accuracy(workload: &Workload) -> f64 {
    let greedy = run_dtopl(workload, DTopLStrategy::GreedyWithPruning);
    let optimal = run_dtopl(workload, DTopLStrategy::Optimal);
    if optimal.diversity_score <= 0.0 {
        1.0
    } else {
        greedy.diversity_score / optimal.diversity_score
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ExperimentParams;
    use icde_graph::generators::DatasetKind;

    fn workload() -> Workload {
        Workload::build(
            DatasetKind::Uniform,
            &ExperimentParams::at_scale(250).with_keyword_domain(10),
        )
    }

    #[test]
    fn topl_and_baselines_agree_on_scores() {
        let w = workload();
        let ours = run_topl(&w);
        let at = run_atindex(&w);
        let bf = run_bruteforce(&w);
        assert!(ours.answers > 0);
        assert!((ours.best_score - at.best_score).abs() < 1e-6);
        assert!((ours.best_score - bf.best_score).abs() < 1e-6);
        assert!(ours.seconds() >= 0.0);
    }

    #[test]
    fn ablation_configurations_run() {
        let w = workload();
        let kw = run_topl_with_toggles(&w, PruningToggles::keyword_only(), "keyword");
        let ks = run_topl_with_toggles(&w, PruningToggles::keyword_support(), "keyword+support");
        let all = run_topl_with_toggles(&w, PruningToggles::all(), "all");
        assert_eq!(kw.best_score, ks.best_score);
        assert_eq!(kw.best_score, all.best_score);
        // more rules => no more candidate regions need refinement
        let attempted =
            |m: &Measurement| m.stats.candidates_refined + m.stats.candidates_without_community;
        assert!(attempted(&all) <= attempted(&ks));
        assert!(attempted(&ks) <= attempted(&kw));
    }

    #[test]
    fn dtopl_strategies_and_accuracy() {
        let w = workload();
        let wp = run_dtopl(&w, DTopLStrategy::GreedyWithPruning);
        let wop = run_dtopl(&w, DTopLStrategy::GreedyWithoutPruning);
        assert!((wp.diversity_score - wop.diversity_score).abs() < 1e-6);
        let accuracy = dtopl_accuracy(&w);
        assert!(
            (0.63..=1.0 + 1e-9).contains(&accuracy),
            "accuracy {accuracy}"
        );
    }
}
