//! Plain-text table rendering for the experiment harness.
//!
//! Every figure driver returns a [`Table`]; the `experiments` binary prints
//! it in an aligned, monospace layout comparable to the rows/series the paper
//! reports, and can additionally emit the same data as JSON for archival in
//! EXPERIMENTS.md.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A rectangular table of strings with a title and column headers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table caption (e.g. "Figure 3(a): wall clock time vs theta").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; every row must have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width does not match the header width.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serialises the table as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("tables are always serialisable")
    }

    fn column_widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.column_widths();
        writeln!(f, "== {} ==", self.title)?;
        let header_line: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:<w$}"))
            .collect();
        writeln!(f, "{}", header_line.join("  "))?;
        let separator: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "{}", separator.join("  "))?;
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        Ok(())
    }
}

/// Formats a duration in seconds with three decimals, the unit of every
/// figure in the paper.
pub fn seconds(duration: std::time::Duration) -> String {
    format!("{:.3}", duration.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("Example", &["dataset", "time (s)"]);
        t.push_row(vec!["Uni".into(), "1.234".into()]);
        t.push_row(vec!["Amazon*".into(), "10.5".into()]);
        let text = t.to_string();
        assert!(text.contains("== Example =="));
        assert!(text.contains("dataset"));
        assert!(text.contains("Amazon*"));
        // all lines after the title have the same width structure
        let lines: Vec<&str> = text.lines().skip(1).collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("Bad", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn json_roundtrip() {
        let mut t = Table::new("J", &["x"]);
        t.push_row(vec!["1".into()]);
        let back: Table = serde_json::from_str(&t.to_json()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(seconds(Duration::from_millis(1500)), "1.500");
        assert_eq!(seconds(Duration::ZERO), "0.000");
    }
}
