//! Graph-primitive perf snapshots (`BENCH_N.json` trajectory).
//!
//! The criterion benches under `benches/graph_primitives.rs` are for
//! interactive profiling; this module produces the **archived** numbers: a
//! JSON snapshot of the three adjacency-bound primitives every pipeline phase
//! reduces to (bounded BFS, triangle counting, single-source `upp`), plus the
//! builder freeze itself, on the paper-default 50k-vertex small-world graph.
//! `experiments bench2` writes `BENCH_2.json` so the repository carries a
//! perf trajectory across PRs, with the PR-1 adjacency-list baseline embedded
//! for the primitives measured before the CSR refactor.

use icde_graph::generators::{small_world, SmallWorldConfig};
use icde_graph::traversal::bfs_within;
use icde_graph::{SocialNetwork, VertexId};
use icde_influence::mia::single_source_upp;
use icde_truss::triangle::count_triangles;
use serde::Value;
use std::time::Instant;

/// Scale and RNG seed of the snapshot workload (matches
/// `benches/graph_primitives.rs`).
pub const SNAPSHOT_SCALE: usize = 50_000;
/// RNG seed for the snapshot graph.
pub const SNAPSHOT_SEED: u64 = 20240614;

/// PR-1 (adjacency-list `Vec<Vec<…>>` store) timings of the same workloads,
/// captured on the reference build machine immediately before the CSR
/// refactor. `None` means the workload was not measured pre-refactor.
const PR1_BASELINE_MILLIS: [(&str, Option<f64>); 4] = [
    ("build_50k_small_world", None),
    ("triangle_count_50k", Some(8.32)),
    ("rhop_bfs_r3_x2000", Some(20.35)),
    ("single_source_upp_x200", Some(118.42)),
];

/// One timed workload: median of `runs` executions.
fn time_median<F: FnMut() -> u64>(runs: usize, mut f: F) -> (f64, u64) {
    let mut samples = Vec::with_capacity(runs);
    let mut checksum = 0u64;
    for _ in 0..runs {
        let t = Instant::now();
        checksum = f();
        samples.push(t.elapsed().as_secs_f64() * 1e3);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    (samples[samples.len() / 2], checksum)
}

fn snapshot_graph() -> SocialNetwork {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(SNAPSHOT_SEED);
    small_world(&SmallWorldConfig::paper_default(SNAPSHOT_SCALE), &mut rng)
}

/// Runs the snapshot workloads and renders the `BENCH_2.json` document.
/// Returns the pretty-printed JSON.
pub fn bench2_snapshot_json() -> String {
    let (build_ms, _) = time_median(5, || snapshot_graph().num_edges() as u64);
    let g = snapshot_graph();

    let (tri_ms, tri) = time_median(9, || count_triangles(&g));
    let (bfs_ms, reached) = time_median(9, || {
        let mut reached = 0u64;
        for i in 0..2000 {
            let v = VertexId::from_index(i * (SNAPSHOT_SCALE / 2000));
            reached += bfs_within(&g, v, 3).distances.len() as u64;
        }
        reached
    });
    let (upp_ms, _) = time_median(5, || {
        let mut acc = 0.0f64;
        for i in 0..200 {
            let v = VertexId::from_index(i * (SNAPSHOT_SCALE / 200));
            acc += single_source_upp(&g, v, 0.01).iter().sum::<f64>();
        }
        acc.to_bits()
    });

    let measured = [
        ("build_50k_small_world", build_ms),
        ("triangle_count_50k", tri_ms),
        ("rhop_bfs_r3_x2000", bfs_ms),
        ("single_source_upp_x200", upp_ms),
    ];
    let mut results = Vec::new();
    for ((name, millis), (bname, baseline)) in measured.iter().zip(PR1_BASELINE_MILLIS) {
        debug_assert_eq!(*name, bname);
        let mut entry = vec![
            ("name".to_string(), Value::Str(name.to_string())),
            (
                "millis".to_string(),
                Value::Float((millis * 1e3).round() / 1e3),
            ),
        ];
        if let Some(base) = baseline {
            entry.push(("baseline_pr1_millis".to_string(), Value::Float(base)));
            entry.push((
                "speedup_vs_pr1".to_string(),
                Value::Float((base / millis * 1e2).round() / 1e2),
            ));
        }
        results.push(Value::Object(entry));
    }

    let doc = Value::Object(vec![
        ("snapshot".to_string(), Value::Str("BENCH_2".to_string())),
        (
            "description".to_string(),
            Value::Str(
                "Graph-primitive timings on the frozen CSR store (PR 2). Baselines are the \
                 PR-1 adjacency-list store on the same machine, same workloads."
                    .to_string(),
            ),
        ),
        (
            "workload".to_string(),
            Value::Object(vec![
                (
                    "graph".to_string(),
                    Value::Str("small_world paper_default".to_string()),
                ),
                ("vertices".to_string(), Value::UInt(g.num_vertices() as u64)),
                ("edges".to_string(), Value::UInt(g.num_edges() as u64)),
                ("seed".to_string(), Value::UInt(SNAPSHOT_SEED)),
                ("triangles".to_string(), Value::UInt(tri)),
                ("bfs_reached".to_string(), Value::UInt(reached)),
            ]),
        ),
        ("results".to_string(), Value::Array(results)),
    ]);
    serde_json::to_string_pretty(&doc).expect("snapshot document serialises")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_table_matches_workload_names() {
        // names in the baseline table must stay aligned with the measured
        // workloads (zip order is load-bearing)
        let names: Vec<&str> = PR1_BASELINE_MILLIS.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "build_50k_small_world",
                "triangle_count_50k",
                "rhop_bfs_r3_x2000",
                "single_source_upp_x200"
            ]
        );
    }
}
