//! Graph-primitive perf snapshots (`BENCH_N.json` trajectory).
//!
//! The criterion benches under `benches/` are for interactive profiling;
//! this module produces the **archived** numbers: a JSON snapshot of the
//! three adjacency-bound primitives every pipeline phase reduces to (bounded
//! BFS, triangle counting, single-source `upp`), plus the builder freeze
//! itself, on the paper-default 50k-vertex small-world graph.
//!
//! * `experiments bench2` writes `BENCH_2.json` — the CSR-store snapshot
//!   against the PR-1 adjacency-list baseline.
//! * `experiments bench3` writes `BENCH_3.json` — the
//!   [`TraversalWorkspace`]-backed snapshot (reused scratch arrays + the
//!   monotone bucket queue) against the BENCH_2 baselines. Before timing
//!   anything, the workloads are re-run through naive reference
//!   implementations (per-call allocations, `VecDeque`, `BinaryHeap`) and
//!   the checksums must match bit-for-bit, proving the workspace rewiring
//!   changed nothing but speed.
//! * `experiments bench4` writes `BENCH_4.json` — **persistence loading**:
//!   the same 50k small-world graph plus its tree index saved as JSON and as
//!   binary snapshots, then loaded back through every path (JSON parse,
//!   `mmap` zero-copy, buffered fallback). Content fingerprints must be
//!   bit-identical across all loaders and a fixed TopL query must return
//!   bit-identical answers off each load before any timing is reported.
//! * `experiments bench5` writes `BENCH_5.json` — the **offline
//!   pre-computation engine**: the pre-overhaul reference path (one influence
//!   expansion per vertex/radius/threshold) vs the frontier-incremental
//!   multi-threshold work-stealing engine, with structural fingerprints
//!   asserted bit-identical and every score bound within 1e-9 before any
//!   timing is reported.
//! * `experiments bench6` writes `BENCH_6.json` — the **progressive online
//!   engine**: the eager reference formulation of Algorithm 3 vs the
//!   progressive bound-driven kernel, with the answer asserted bit-identical
//!   to the eager reference before any timing is reported.
//! * `experiments bench7` writes `BENCH_7.json` — the **concurrent serving
//!   runtime**: a Zipf-skewed query stream served by the worker pool (hot
//!   snapshot swap mid-run, sharded canonicalised-query LRU) at one worker
//!   vs a multi-worker pool, with every answer asserted bit-identical to the
//!   single-threaded kernel before any throughput is reported.
//! * `experiments bench8` writes `BENCH_8.json` — the **D-TopL streaming
//!   update loop**: a sustained Zipf insert/delete edge stream applied as
//!   delta-overlay patches by the [`StreamingMaintainer`] (incremental
//!   support patching, affected-ball aggregate refresh, threshold-triggered
//!   compaction), first through a sequential exactness gate where the live
//!   pair is asserted bit-identical to a from-scratch rebuild at **every**
//!   batch state, then concurrently against the serving runtime with Zipf
//!   query clients measuring updates/sec, compactions, query p50 and
//!   snapshot staleness. The baseline is the pre-overlay status quo: a full
//!   graph + index rebuild per edge update.
//! * `experiments bench9` writes `BENCH_9.json` — the **sharded offline
//!   engine** at the million-vertex line: the full offline build on a
//!   1 000 000-vertex locality-dominated small-world graph partitioned into
//!   contiguous vertex-range shards, each worker carrying only
//!   ball-cover-sized scratch (paged traversal workspaces + a sparse
//!   signature arena) instead of dense n-sized arrays plus a full-graph
//!   signature table. Before any timing, the sharded build is asserted
//!   bit-identical (structural fingerprint *and* float scores) to the
//!   sequential unsharded engine at a cross-checkable scale. The snapshot
//!   records per-phase wall times, peak RSS (`VmHWM`), measured per-worker
//!   scratch vs the naive n-per-worker projection (must be ≥ 4× smaller),
//!   and query + streaming-update legs over the built index.
//!
//! [`StreamingMaintainer`]: icde_core::streaming::StreamingMaintainer
//!
//! [`TraversalWorkspace`]: icde_graph::workspace::TraversalWorkspace

use icde_core::index::{CommunityIndex, IndexBuilder};
use icde_core::persist;
use icde_core::precompute::{PrecomputeConfig, PrecomputedData};
use icde_core::query::TopLQuery;
use icde_core::serving::{QueryTicket, ServingConfig, ServingRuntime, ServingStats};
use icde_core::streaming::{EdgeUpdate, StreamingMaintainer};
use icde_core::topl::TopLProcessor;
use icde_graph::generators::{small_world, SmallWorldConfig};
use icde_graph::snapshot::{read_graph_snapshot_with, write_graph_snapshot, LoadMode};
use icde_graph::traversal::{bfs_within, hop_subgraph_with};
use icde_graph::workspace::TraversalWorkspace;
use icde_graph::{io, GraphBuilder, KeywordSet, SocialNetwork, VertexId, VertexSubset};
use icde_influence::mia::{single_source_upp, single_source_upp_into};
use icde_influence::{InfluenceConfig, InfluenceEvaluator};
use icde_truss::triangle::count_triangles;
use serde::Value;
use std::collections::{BinaryHeap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Scale and RNG seed of the snapshot workload (matches
/// `benches/graph_primitives.rs`).
pub const SNAPSHOT_SCALE: usize = 50_000;
/// RNG seed for the snapshot graph.
pub const SNAPSHOT_SEED: u64 = 20240614;
/// Full scale of the bench9 sharded-offline-engine snapshot.
pub const BENCH9_SCALE: usize = 1_000_000;

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`, high-water mark since process start); `0` when
/// unavailable (non-Linux, or the field failed to parse).
pub fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<u64>().ok())
        })
        .map_or(0, |kb| kb * 1024)
}

/// PR-1 (adjacency-list `Vec<Vec<…>>` store) timings of the same workloads,
/// captured on the reference build machine immediately before the CSR
/// refactor. `None` means the workload was not measured pre-refactor.
const PR1_BASELINE_MILLIS: [(&str, Option<f64>); 4] = [
    ("build_50k_small_world", None),
    ("triangle_count_50k", Some(8.32)),
    ("rhop_bfs_r3_x2000", Some(20.35)),
    ("single_source_upp_x200", Some(118.42)),
];

/// PR-2 (frozen CSR store, per-call scratch allocations) timings from the
/// committed `BENCH_2.json`, captured on the reference build machine
/// immediately before the workspace refactor.
const PR2_BASELINE_MILLIS: [(&str, Option<f64>); 4] = [
    ("build_50k_small_world", Some(31.056)),
    ("triangle_count_50k", Some(3.165)),
    ("rhop_bfs_r3_x2000", Some(19.735)),
    ("single_source_upp_x200", Some(115.284)),
];

/// One timed workload: median of `runs` executions.
fn time_median<F: FnMut() -> u64>(runs: usize, mut f: F) -> (f64, u64) {
    let mut samples = Vec::with_capacity(runs);
    let mut checksum = 0u64;
    for _ in 0..runs {
        let t = Instant::now();
        checksum = f();
        samples.push(t.elapsed().as_secs_f64() * 1e3);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    (samples[samples.len() / 2], checksum)
}

fn snapshot_graph(scale: usize) -> SocialNetwork {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(SNAPSHOT_SEED);
    small_world(&SmallWorldConfig::paper_default(scale), &mut rng)
}

/// Evenly spread BFS sources: 2 000 of them at full scale.
fn bfs_sources(scale: usize) -> impl Iterator<Item = VertexId> {
    let count = 2000.min(scale);
    (0..count).map(move |i| VertexId::from_index(i * (scale / count)))
}

/// Evenly spread `upp` sources: 200 of them at full scale.
fn upp_sources(scale: usize) -> impl Iterator<Item = VertexId> {
    let count = 200.min(scale);
    (0..count).map(move |i| VertexId::from_index(i * (scale / count)))
}

/// All measured workloads of one snapshot run.
struct Measured {
    graph: SocialNetwork,
    build_ms: f64,
    triangle_ms: f64,
    triangles: u64,
    bfs_ms: f64,
    bfs_reached: u64,
    upp_ms: f64,
    upp_sum: f64,
}

fn measure(scale: usize) -> Measured {
    let (build_ms, _) = time_median(5, || snapshot_graph(scale).num_edges() as u64);
    let g = snapshot_graph(scale);

    let (triangle_ms, triangles) = time_median(9, || count_triangles(&g));
    let (bfs_ms, bfs_reached) = time_median(9, || {
        let mut reached = 0u64;
        for v in bfs_sources(scale) {
            reached += bfs_within(&g, v, 3).distances.len() as u64;
        }
        reached
    });
    let (upp_ms, upp_sum_bits) = time_median(5, || {
        let mut acc = 0.0f64;
        for v in upp_sources(scale) {
            acc += single_source_upp(&g, v, 0.01).iter().sum::<f64>();
        }
        acc.to_bits()
    });

    Measured {
        graph: g,
        build_ms,
        triangle_ms,
        triangles,
        bfs_ms,
        bfs_reached,
        upp_ms,
        upp_sum: f64::from_bits(upp_sum_bits),
    }
}

// ---------------------------------------------------------------------------
// Reference implementations (the pre-workspace formulations)
// ---------------------------------------------------------------------------

/// The PR-2 bounded BFS: per-call `vec![None; n]` scratch plus a `VecDeque`.
/// Kept as an executable specification for the checksum cross-check.
fn reference_bfs_reached(g: &SocialNetwork, source: VertexId, max_hops: u32) -> u64 {
    let mut dist: Vec<Option<u32>> = vec![None; g.num_vertices()];
    let mut queue = VecDeque::new();
    let mut reached = 0u64;
    dist[source.index()] = Some(0);
    reached += 1;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued vertices have distances");
        if du == max_hops {
            continue;
        }
        for (n, _) in g.neighbors(u) {
            if dist[n.index()].is_none() {
                dist[n.index()] = Some(du + 1);
                reached += 1;
                queue.push_back(n);
            }
        }
    }
    reached
}

/// The PR-2 single-source `upp`: per-call dense arrays plus a `BinaryHeap`.
fn reference_single_source_upp(g: &SocialNetwork, source: VertexId, floor: f64) -> Vec<f64> {
    #[derive(PartialEq)]
    struct Entry(f64, VertexId);
    impl Eq for Entry {}
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0
                .partial_cmp(&other.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| self.1.cmp(&other.1))
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    let mut best = vec![0.0f64; g.num_vertices()];
    let mut settled = vec![false; g.num_vertices()];
    let mut heap = BinaryHeap::new();
    best[source.index()] = 1.0;
    heap.push(Entry(1.0, source));
    while let Some(Entry(probability, vertex)) = heap.pop() {
        if settled[vertex.index()] {
            continue;
        }
        settled[vertex.index()] = true;
        for (n, p) in g.outgoing(vertex) {
            let candidate = probability * p;
            if candidate >= floor && candidate > best[n.index()] {
                best[n.index()] = candidate;
                heap.push(Entry(candidate, n));
            }
        }
    }
    best
}

/// Cross-checks the workspace-backed primitives against the reference
/// formulations on the snapshot workload; returns `(bfs_reached, upp_sum)`
/// of the reference run.
///
/// # Panics
/// Panics if either checksum deviates — the workspace rewiring must be
/// result-preserving bit for bit.
fn verify_against_reference(g: &SocialNetwork, scale: usize, measured: &Measured) -> (u64, f64) {
    let mut reference_reached = 0u64;
    for v in bfs_sources(scale) {
        reference_reached += reference_bfs_reached(g, v, 3);
    }
    assert_eq!(
        measured.bfs_reached, reference_reached,
        "workspace BFS diverged from the reference formulation"
    );
    let mut reference_sum = 0.0f64;
    for v in upp_sources(scale) {
        reference_sum += reference_single_source_upp(g, v, 0.01).iter().sum::<f64>();
    }
    assert_eq!(
        measured.upp_sum.to_bits(),
        reference_sum.to_bits(),
        "workspace upp diverged from the reference formulation: {} vs {}",
        measured.upp_sum,
        reference_sum
    );
    (reference_reached, reference_sum)
}

// ---------------------------------------------------------------------------
// Snapshot documents
// ---------------------------------------------------------------------------

fn round3(v: f64) -> f64 {
    (v * 1e3).round() / 1e3
}

fn results_json(
    measured: &Measured,
    baselines: &[(&str, Option<f64>); 4],
    baseline_key: &str,
    speedup_key: &str,
) -> Value {
    let timings = [
        ("build_50k_small_world", measured.build_ms),
        ("triangle_count_50k", measured.triangle_ms),
        ("rhop_bfs_r3_x2000", measured.bfs_ms),
        ("single_source_upp_x200", measured.upp_ms),
    ];
    let mut results = Vec::new();
    for ((name, millis), (bname, baseline)) in timings.iter().zip(baselines) {
        debug_assert_eq!(name, bname);
        let mut entry = vec![
            ("name".to_string(), Value::Str(name.to_string())),
            ("millis".to_string(), Value::Float(round3(*millis))),
        ];
        if let Some(base) = baseline {
            entry.push((baseline_key.to_string(), Value::Float(*base)));
            entry.push((
                speedup_key.to_string(),
                Value::Float((base / millis * 1e2).round() / 1e2),
            ));
        }
        results.push(Value::Object(entry));
    }
    Value::Array(results)
}

fn workload_json(measured: &Measured) -> Value {
    Value::Object(vec![
        (
            "graph".to_string(),
            Value::Str("small_world paper_default".to_string()),
        ),
        (
            "vertices".to_string(),
            Value::UInt(measured.graph.num_vertices() as u64),
        ),
        (
            "edges".to_string(),
            Value::UInt(measured.graph.num_edges() as u64),
        ),
        ("seed".to_string(), Value::UInt(SNAPSHOT_SEED)),
        ("triangles".to_string(), Value::UInt(measured.triangles)),
        ("bfs_reached".to_string(), Value::UInt(measured.bfs_reached)),
        ("upp_sum".to_string(), Value::Float(measured.upp_sum)),
    ])
}

/// Runs the snapshot workloads and renders the `BENCH_2.json` document
/// (kept for re-measuring the PR-2 snapshot). Returns the pretty-printed
/// JSON.
pub fn bench2_snapshot_json() -> String {
    let measured = measure(SNAPSHOT_SCALE);
    let doc = Value::Object(vec![
        ("snapshot".to_string(), Value::Str("BENCH_2".to_string())),
        (
            "description".to_string(),
            Value::Str(
                "Graph-primitive timings on the frozen CSR store (PR 2). Baselines are the \
                 PR-1 adjacency-list store on the same machine, same workloads."
                    .to_string(),
            ),
        ),
        ("workload".to_string(), workload_json(&measured)),
        (
            "results".to_string(),
            results_json(
                &measured,
                &PR1_BASELINE_MILLIS,
                "baseline_pr1_millis",
                "speedup_vs_pr1",
            ),
        ),
    ]);
    serde_json::to_string_pretty(&doc).expect("snapshot document serialises")
}

/// Runs the snapshot workloads through the workspace-backed primitives,
/// cross-checks every checksum against the pre-workspace reference
/// formulations, and renders the `BENCH_3.json` document. `scale` below
/// [`SNAPSHOT_SCALE`] runs the same shape as a smoke test (CI), in which
/// case the scale-specific BENCH_2 baselines are omitted.
pub fn bench3_snapshot_json(scale: usize) -> String {
    let measured = measure(scale);
    let (reference_reached, reference_sum) =
        verify_against_reference(&measured.graph, scale, &measured);

    let no_baselines: [(&str, Option<f64>); 4] = [
        ("build_50k_small_world", None),
        ("triangle_count_50k", None),
        ("rhop_bfs_r3_x2000", None),
        ("single_source_upp_x200", None),
    ];
    let baselines = if scale == SNAPSHOT_SCALE {
        &PR2_BASELINE_MILLIS
    } else {
        &no_baselines
    };
    let doc = Value::Object(vec![
        ("snapshot".to_string(), Value::Str("BENCH_3".to_string())),
        (
            "description".to_string(),
            Value::Str(
                "Graph-primitive timings with the reusable TraversalWorkspace (PR 3): \
                 epoch-stamped scratch arrays, ring-buffer BFS and the monotone bucket \
                 queue for the max-product Dijkstra. Baselines are the PR-2 per-call \
                 allocation formulations from BENCH_2.json, same machine, same workloads. \
                 Checksums are asserted bit-identical against the pre-workspace reference \
                 implementations before timing is reported."
                    .to_string(),
            ),
        ),
        ("workload".to_string(), workload_json(&measured)),
        (
            "verification".to_string(),
            Value::Object(vec![
                (
                    "reference_bfs_reached".to_string(),
                    Value::UInt(reference_reached),
                ),
                ("reference_upp_sum".to_string(), Value::Float(reference_sum)),
                ("checksums_match_reference".to_string(), Value::Bool(true)),
            ]),
        ),
        (
            "results".to_string(),
            results_json(
                &measured,
                baselines,
                "baseline_pr2_millis",
                "speedup_vs_pr2",
            ),
        ),
    ]);
    serde_json::to_string_pretty(&doc).expect("snapshot document serialises")
}

// ---------------------------------------------------------------------------
// bench4: persistence loading (JSON vs binary snapshot)
// ---------------------------------------------------------------------------

/// Offline configuration used by the bench4 index (the paper defaults).
fn bench4_config() -> PrecomputeConfig {
    PrecomputeConfig::default()
}

/// The bench4 graph: the bench2/bench3 small-world workload plus uniform
/// keyword sets (domain 12, 3 keywords per vertex, fixed seed) so TopL
/// queries have something to match.
fn bench4_graph(scale: usize) -> SocialNetwork {
    use icde_graph::generators::{assign_keywords, KeywordDistribution};
    let mut g = snapshot_graph(scale);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(SNAPSHOT_SEED ^ 0xB4);
    assign_keywords(&mut g, 12, 3, KeywordDistribution::Uniform, &mut rng);
    g
}

/// The fixed query answered off every loaded graph/index pair.
fn bench4_query() -> TopLQuery {
    TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3, 4]), 3, 2, 0.2, 5)
}

struct LoadLeg {
    name: &'static str,
    millis: f64,
    fingerprint: u64,
}

fn file_size(path: &std::path::Path) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

/// Runs the snapshot-vs-JSON loading workloads and renders the
/// `BENCH_4.json` document. `scale` below [`SNAPSHOT_SCALE`] runs the same
/// shape as a smoke test (CI).
///
/// # Panics
/// Panics when any loader disagrees bit-for-bit with the in-memory graph or
/// index, or when the query answers differ across loads — the snapshot
/// subsystem must change load *time*, never load *content*.
pub fn bench4_snapshot_json(scale: usize) -> String {
    let g = bench4_graph(scale);
    let offline_start = Instant::now();
    let index = IndexBuilder::new(bench4_config()).build(&g);
    let offline_ms = offline_start.elapsed().as_secs_f64() * 1e3;

    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let graph_json = dir.join(format!("icde_bench4_{pid}_graph.json"));
    let graph_snap = dir.join(format!("icde_bench4_{pid}_graph.snap"));
    let index_json = dir.join(format!("icde_bench4_{pid}_index.json"));
    let index_snap = dir.join(format!("icde_bench4_{pid}_index.snap"));
    io::write_json_file(&g, &graph_json).expect("write graph JSON");
    write_graph_snapshot(&g, &graph_snap).expect("write graph snapshot");
    persist::save_index(&index, &index_json).expect("write index JSON");
    persist::save_index_snapshot(&index, &index_snap).expect("write index snapshot");

    let graph_fp = g.content_fingerprint();
    let index_fp = index.content_fingerprint();

    // --- graph loads (timed), fingerprints computed outside the timer -----
    let (json_graph_ms, _) = time_median(5, || {
        io::read_json_file(&graph_json)
            .expect("read graph JSON")
            .num_edges() as u64
    });
    let (mmap_graph_ms, _) = time_median(5, || {
        read_graph_snapshot_with(&graph_snap, LoadMode::Auto)
            .expect("read graph snapshot (auto)")
            .num_edges() as u64
    });
    let (buf_graph_ms, _) = time_median(5, || {
        read_graph_snapshot_with(&graph_snap, LoadMode::Buffered)
            .expect("read graph snapshot (buffered)")
            .num_edges() as u64
    });
    let json_graph_fp = io::read_json_file(&graph_json)
        .expect("read graph JSON")
        .content_fingerprint();
    let mmap_graph =
        read_graph_snapshot_with(&graph_snap, LoadMode::Auto).expect("read graph snapshot (auto)");
    let zero_copy = mmap_graph.is_mmap_backed();
    let mmap_graph_fp = mmap_graph.content_fingerprint();
    let buf_graph_fp = read_graph_snapshot_with(&graph_snap, LoadMode::Buffered)
        .expect("read graph snapshot (buffered)")
        .content_fingerprint();

    // --- index loads ------------------------------------------------------
    let (json_index_ms, _) = time_median(3, || {
        persist::load_index(&index_json)
            .expect("read index JSON")
            .node_count() as u64
    });
    let (mmap_index_ms, _) = time_median(5, || {
        persist::load_index_snapshot(&index_snap)
            .expect("read index snapshot (auto)")
            .node_count() as u64
    });
    let (buf_index_ms, _) = time_median(5, || {
        persist::load_index_snapshot_with(&index_snap, LoadMode::Buffered)
            .expect("read index snapshot (buffered)")
            .node_count() as u64
    });
    let json_index_fp = persist::load_index(&index_json)
        .expect("read index JSON")
        .content_fingerprint();
    let mmap_index_fp = persist::load_index_snapshot(&index_snap)
        .expect("read index snapshot (auto)")
        .content_fingerprint();
    let buf_index_fp = persist::load_index_snapshot_with(&index_snap, LoadMode::Buffered)
        .expect("read index snapshot (buffered)")
        .content_fingerprint();

    // every loader must reproduce the in-memory content bit for bit
    for (leg, fp) in [
        ("graph json", json_graph_fp),
        ("graph mmap", mmap_graph_fp),
        ("graph buffered", buf_graph_fp),
    ] {
        assert_eq!(fp, graph_fp, "{leg} loader diverged from the source graph");
    }
    for (leg, fp) in [
        ("index json", json_index_fp),
        ("index mmap", mmap_index_fp),
        ("index buffered", buf_index_fp),
    ] {
        assert_eq!(fp, index_fp, "{leg} loader diverged from the source index");
    }

    // --- query latency off each load --------------------------------------
    let query = bench4_query();
    let g_json = io::read_json_file(&graph_json).expect("read graph JSON");
    let i_json = persist::load_index(&index_json).expect("read index JSON");
    let g_snap = read_graph_snapshot_with(&graph_snap, LoadMode::Auto).expect("graph snapshot");
    let i_snap = persist::load_index_snapshot(&index_snap).expect("index snapshot");
    let answer_digest = |answer: &icde_core::topl::TopLAnswer| {
        let mut digest = 0u64;
        for c in &answer.communities {
            digest = digest
                .wrapping_mul(0x100000001B3)
                .wrapping_add(c.influential_score.to_bits())
                .wrapping_add(c.vertices.len() as u64);
        }
        digest
    };
    let (query_json_ms, digest_json) = time_median(5, || {
        answer_digest(
            &TopLProcessor::new(&g_json, &i_json)
                .run(&query)
                .expect("query off JSON load"),
        )
    });
    let (query_snap_ms, digest_snap) = time_median(5, || {
        answer_digest(
            &TopLProcessor::new(&g_snap, &i_snap)
                .run(&query)
                .expect("query off snapshot load"),
        )
    });
    assert_eq!(
        digest_json, digest_snap,
        "query answers differ between JSON and snapshot loads"
    );

    // --- caller-owned upp buffer (the single_source_upp_into satellite) ----
    let (upp_alloc_ms, upp_alloc_sum) = time_median(5, || {
        let mut acc = 0.0f64;
        for v in upp_sources(scale) {
            acc += single_source_upp(&g_snap, v, 0.01).iter().sum::<f64>();
        }
        acc.to_bits()
    });
    let mut upp_buffer = Vec::new();
    let (upp_into_ms, upp_into_sum) = time_median(5, || {
        // same thread workspace as the allocating leg; the only difference
        // is the reused output buffer
        let mut acc = 0.0f64;
        for v in upp_sources(scale) {
            single_source_upp_into(&g_snap, v, 0.01, &mut upp_buffer);
            acc += upp_buffer.iter().sum::<f64>();
        }
        acc.to_bits()
    });
    assert_eq!(
        upp_alloc_sum, upp_into_sum,
        "buffered upp diverged from the allocating formulation"
    );

    let json_graph_bytes = file_size(&graph_json);
    let snap_graph_bytes = file_size(&graph_snap);
    let json_index_bytes = file_size(&index_json);
    let snap_index_bytes = file_size(&index_snap);
    for path in [&graph_json, &graph_snap, &index_json, &index_snap] {
        let _ = std::fs::remove_file(path);
    }

    let legs = [
        LoadLeg {
            name: "graph_load_json",
            millis: json_graph_ms,
            fingerprint: json_graph_fp,
        },
        LoadLeg {
            name: "graph_load_snapshot_mmap",
            millis: mmap_graph_ms,
            fingerprint: mmap_graph_fp,
        },
        LoadLeg {
            name: "graph_load_snapshot_buffered",
            millis: buf_graph_ms,
            fingerprint: buf_graph_fp,
        },
        LoadLeg {
            name: "index_load_json",
            millis: json_index_ms,
            fingerprint: json_index_fp,
        },
        LoadLeg {
            name: "index_load_snapshot_mmap",
            millis: mmap_index_ms,
            fingerprint: mmap_index_fp,
        },
        LoadLeg {
            name: "index_load_snapshot_buffered",
            millis: buf_index_ms,
            fingerprint: buf_index_fp,
        },
        LoadLeg {
            name: "query_after_json_load",
            millis: query_json_ms,
            fingerprint: digest_json,
        },
        LoadLeg {
            name: "query_after_snapshot_load",
            millis: query_snap_ms,
            fingerprint: digest_snap,
        },
        LoadLeg {
            name: "single_source_upp_x200",
            millis: upp_alloc_ms,
            fingerprint: upp_alloc_sum,
        },
        LoadLeg {
            name: "single_source_upp_into_x200",
            millis: upp_into_ms,
            fingerprint: upp_into_sum,
        },
    ];
    let results = Value::Array(
        legs.iter()
            .map(|leg| {
                Value::Object(vec![
                    ("name".to_string(), Value::Str(leg.name.to_string())),
                    ("millis".to_string(), Value::Float(round3(leg.millis))),
                    (
                        "fingerprint".to_string(),
                        Value::Str(format!("{:#018x}", leg.fingerprint)),
                    ),
                ])
            })
            .collect(),
    );

    let ratio = |json: f64, snap: f64| {
        if snap > 0.0 {
            (json / snap * 1e2).round() / 1e2
        } else {
            f64::INFINITY
        }
    };
    let combined_json = json_graph_ms + json_index_ms;
    let combined_snap = mmap_graph_ms + mmap_index_ms;
    let doc = Value::Object(vec![
        ("snapshot".to_string(), Value::Str("BENCH_4".to_string())),
        (
            "description".to_string(),
            Value::Str(
                "Persistence loading (PR 4): the 50k small-world graph and its tree index \
                 saved as JSON and as sectioned binary snapshots, loaded back through the \
                 JSON parser, the mmap zero-copy path and the buffered fallback. Content \
                 fingerprints are asserted bit-identical across every loader and the fixed \
                 TopL query must answer identically off each load before timings are \
                 reported."
                    .to_string(),
            ),
        ),
        (
            "workload".to_string(),
            Value::Object(vec![
                (
                    "graph".to_string(),
                    Value::Str("small_world paper_default".to_string()),
                ),
                ("vertices".to_string(), Value::UInt(g.num_vertices() as u64)),
                ("edges".to_string(), Value::UInt(g.num_edges() as u64)),
                ("seed".to_string(), Value::UInt(SNAPSHOT_SEED)),
                (
                    "index_nodes".to_string(),
                    Value::UInt(index.node_count() as u64),
                ),
                (
                    "index_height".to_string(),
                    Value::UInt(index.height() as u64),
                ),
                (
                    "offline_build_ms".to_string(),
                    Value::Float(round3(offline_ms)),
                ),
                (
                    "graph_json_bytes".to_string(),
                    Value::UInt(json_graph_bytes),
                ),
                (
                    "graph_snapshot_bytes".to_string(),
                    Value::UInt(snap_graph_bytes),
                ),
                (
                    "index_json_bytes".to_string(),
                    Value::UInt(json_index_bytes),
                ),
                (
                    "index_snapshot_bytes".to_string(),
                    Value::UInt(snap_index_bytes),
                ),
            ]),
        ),
        (
            "verification".to_string(),
            Value::Object(vec![
                (
                    "graph_fingerprint".to_string(),
                    Value::Str(format!("{graph_fp:#018x}")),
                ),
                (
                    "index_fingerprint".to_string(),
                    Value::Str(format!("{index_fp:#018x}")),
                ),
                ("loaders_bit_identical".to_string(), Value::Bool(true)),
                ("queries_bit_identical".to_string(), Value::Bool(true)),
                ("mmap_zero_copy".to_string(), Value::Bool(zero_copy)),
            ]),
        ),
        ("results".to_string(), results),
        (
            "speedups".to_string(),
            Value::Object(vec![
                (
                    "graph_snapshot_vs_json".to_string(),
                    Value::Float(ratio(json_graph_ms, mmap_graph_ms)),
                ),
                (
                    "index_snapshot_vs_json".to_string(),
                    Value::Float(ratio(json_index_ms, mmap_index_ms)),
                ),
                (
                    "combined_snapshot_vs_json".to_string(),
                    Value::Float(ratio(combined_json, combined_snap)),
                ),
                (
                    "upp_into_vs_alloc".to_string(),
                    Value::Float(ratio(upp_alloc_ms, upp_into_ms)),
                ),
            ]),
        ),
    ]);
    serde_json::to_string_pretty(&doc).expect("snapshot document serialises")
}

// ---------------------------------------------------------------------------
// bench5: the offline pre-computation engine overhaul
// ---------------------------------------------------------------------------

/// The archived `offline_build_ms` from `BENCH_4.json` — the pre-overhaul
/// engine on the reference build machine (whose `available_parallelism()`
/// is 1, so the figure is effectively the sequential old path). Only
/// meaningful at [`SNAPSHOT_SCALE`] on that machine.
const BENCH4_OFFLINE_BUILD_MS: f64 = 52_907.419;

/// Runs the offline-engine workloads and renders the `BENCH_5.json`
/// document: the pre-overhaul reference path vs the frontier-incremental
/// multi-threshold engine (sequential and default-parallel), the
/// multi-threshold score API vs `m` per-threshold expansions on a
/// 200-region sample, and the TopL query timing carried forward from
/// bench4. `scale` below [`SNAPSHOT_SCALE`] runs the same shape as a smoke
/// test (CI).
///
/// # Panics
/// Panics when any engine leg diverges from the reference: structural
/// fingerprints (signatures, supports, region sizes) must be bit-identical,
/// every score bound within 1e-9, the sequential and parallel tables exactly
/// equal, and the fixed TopL query must answer identically off indexes built
/// from the reference and engine tables — the overhaul must change build
/// *time*, never build *content*.
pub fn bench5_snapshot_json(scale: usize) -> String {
    let g = bench4_graph(scale);
    let config = bench4_config();

    // --- offline builds (single-shot timings; these are the workload) -----
    let timed = |f: &mut dyn FnMut() -> PrecomputedData| {
        let start = Instant::now();
        let data = f();
        (start.elapsed().as_secs_f64() * 1e3, data)
    };
    let (reference_ms, reference) =
        timed(&mut || PrecomputedData::compute_reference(&g, config.clone()));
    let (new_seq_ms, new_seq) =
        timed(&mut || PrecomputedData::compute(&g, config.clone().with_num_threads(Some(1))));
    let (new_par_ms, new_par) = timed(&mut || PrecomputedData::compute(&g, config.clone()));
    let workers = config.worker_count(g.num_vertices());

    // --- equivalence gate: content first, timings only if identical -------
    let reference_fp = reference.table().structural_fingerprint();
    for (leg, data) in [
        ("engine sequential", &new_seq),
        ("engine parallel", &new_par),
    ] {
        assert_eq!(
            data.table().structural_fingerprint(),
            reference_fp,
            "{leg} diverged structurally from the reference path"
        );
        let delta = data.table().max_score_delta(reference.table());
        assert!(delta < 1e-9, "{leg} score bounds diverged by {delta}");
        assert_eq!(data.edge_supports, reference.edge_supports, "{leg}");
    }
    assert_eq!(
        new_seq.table(),
        new_par.table(),
        "sequential and parallel engine builds must be exactly equal"
    );
    let score_delta = new_par.table().max_score_delta(reference.table());

    // --- multi-threshold score API vs m per-threshold expansions ----------
    // 200 evenly-spread 2-hop regions, the shape Algorithm 2 evaluates
    let evaluator = InfluenceEvaluator::new(&g, InfluenceConfig { theta: 0.0 });
    let mut ws = TraversalWorkspace::new();
    let mut ws_inf = TraversalWorkspace::new();
    let regions: Vec<VertexSubset> = upp_sources(scale)
        .map(|v| hop_subgraph_with(&mut ws, &g, v, 2))
        .collect();
    let thresholds = config.thresholds.clone();
    let (multi_ms, multi_sum) = time_median(3, || {
        let mut acc = 0.0f64;
        let mut out = vec![0.0; thresholds.len()];
        for region in &regions {
            evaluator.multi_threshold_scores_into(
                &mut ws_inf,
                region.iter(),
                &thresholds,
                &mut out,
            );
            acc += out.iter().sum::<f64>();
        }
        acc.to_bits()
    });
    let (m_expansion_ms, m_expansion_sum) = time_median(3, || {
        let mut acc = 0.0f64;
        for region in &regions {
            for &theta in &thresholds {
                acc += evaluator
                    .influenced_community_with_theta_in(&mut ws_inf, region, theta)
                    .influential_score();
            }
        }
        acc.to_bits()
    });
    let sample_delta = (f64::from_bits(multi_sum) - f64::from_bits(m_expansion_sum)).abs();
    assert!(
        sample_delta < 1e-6,
        "multi-threshold sample diverged from the m-expansion reference by {sample_delta}"
    );

    // --- query path carried forward from bench4 ---------------------------
    let reference_index = IndexBuilder::new(config.clone()).build_from_precomputed(&g, reference);
    let engine_index = IndexBuilder::new(config.clone()).build_from_precomputed(&g, new_par);
    let query = bench4_query();
    let answer_digest = |answer: &icde_core::topl::TopLAnswer| {
        let mut digest = 0u64;
        for c in &answer.communities {
            digest = digest
                .wrapping_mul(0x100000001B3)
                .wrapping_add(c.influential_score.to_bits())
                .wrapping_add(c.vertices.len() as u64);
        }
        digest
    };
    let (query_ms, digest_engine) = time_median(5, || {
        answer_digest(
            &TopLProcessor::new(&g, &engine_index)
                .run(&query)
                .expect("query off the engine-built index"),
        )
    });
    let digest_reference = answer_digest(
        &TopLProcessor::new(&g, &reference_index)
            .run(&query)
            .expect("query off the reference-built index"),
    );
    assert_eq!(
        digest_engine, digest_reference,
        "query answers differ between reference- and engine-built indexes"
    );

    let legs = [
        ("offline_build_reference", reference_ms, reference_fp),
        ("offline_build_engine_seq", new_seq_ms, reference_fp),
        ("offline_build_engine_par", new_par_ms, reference_fp),
        ("multi_threshold_scores_x200_regions", multi_ms, multi_sum),
        (
            "per_threshold_expansions_x200_regions",
            m_expansion_ms,
            m_expansion_sum,
        ),
        ("query_topl", query_ms, digest_engine),
    ];
    let results = Value::Array(
        legs.iter()
            .map(|(name, millis, fingerprint)| {
                Value::Object(vec![
                    ("name".to_string(), Value::Str(name.to_string())),
                    ("millis".to_string(), Value::Float(round3(*millis))),
                    (
                        "fingerprint".to_string(),
                        Value::Str(format!("{fingerprint:#018x}")),
                    ),
                ])
            })
            .collect(),
    );
    let ratio = |old: f64, new: f64| {
        if new > 0.0 {
            (old / new * 1e2).round() / 1e2
        } else {
            f64::INFINITY
        }
    };
    let full_scale = scale == SNAPSHOT_SCALE;
    let doc = Value::Object(vec![
        ("snapshot".to_string(), Value::Str("BENCH_5".to_string())),
        (
            "description".to_string(),
            Value::Str(
                "Offline pre-computation engine overhaul (PR 5): the pre-overhaul reference \
                 path (one influence expansion per vertex/radius/threshold, per-region \
                 re-scans, per-member signature allocations) vs the frontier-incremental \
                 multi-threshold work-stealing engine, sequential and default-parallel, on \
                 the 50k small-world workload. Structural fingerprints (signatures, \
                 supports, region sizes) are asserted bit-identical across every build, all \
                 score bounds within 1e-9, and the fixed TopL query must answer identically \
                 off reference- and engine-built indexes before timings are reported."
                    .to_string(),
            ),
        ),
        (
            "workload".to_string(),
            Value::Object(vec![
                (
                    "graph".to_string(),
                    Value::Str("small_world paper_default".to_string()),
                ),
                ("vertices".to_string(), Value::UInt(g.num_vertices() as u64)),
                ("edges".to_string(), Value::UInt(g.num_edges() as u64)),
                ("seed".to_string(), Value::UInt(SNAPSHOT_SEED)),
                ("worker_threads".to_string(), Value::UInt(workers as u64)),
                (
                    "bench4_offline_build_ms".to_string(),
                    if full_scale {
                        Value::Float(BENCH4_OFFLINE_BUILD_MS)
                    } else {
                        Value::Null
                    },
                ),
            ]),
        ),
        (
            "verification".to_string(),
            Value::Object(vec![
                (
                    "structural_fingerprint".to_string(),
                    Value::Str(format!("{reference_fp:#018x}")),
                ),
                ("tables_bit_identical".to_string(), Value::Bool(true)),
                (
                    "max_score_delta_vs_reference".to_string(),
                    Value::Float(score_delta),
                ),
                ("seq_par_exactly_equal".to_string(), Value::Bool(true)),
                ("queries_bit_identical".to_string(), Value::Bool(true)),
            ]),
        ),
        ("results".to_string(), results),
        (
            "speedups".to_string(),
            Value::Object(vec![
                (
                    "engine_seq_vs_reference".to_string(),
                    Value::Float(ratio(reference_ms, new_seq_ms)),
                ),
                (
                    "engine_par_vs_reference".to_string(),
                    Value::Float(ratio(reference_ms, new_par_ms)),
                ),
                (
                    "multi_threshold_vs_m_expansions".to_string(),
                    Value::Float(ratio(m_expansion_ms, multi_ms)),
                ),
                (
                    "engine_par_vs_bench4_archived".to_string(),
                    if full_scale {
                        Value::Float(ratio(BENCH4_OFFLINE_BUILD_MS, new_par_ms))
                    } else {
                        Value::Null
                    },
                ),
            ]),
        ),
    ]);
    serde_json::to_string_pretty(&doc).expect("snapshot document serialises")
}

// ---------------------------------------------------------------------------
// bench6: the progressive bound-driven online TopL engine
// ---------------------------------------------------------------------------

/// The archived `query_topl` median from `BENCH_5.json` — the eager online
/// path on the reference build machine. Only meaningful at
/// [`SNAPSHOT_SCALE`] on that machine.
const BENCH5_QUERY_TOPL_MS: f64 = 1510.694;

/// Target p50 for the progressive kernel at full scale (the PR-6 acceptance
/// number, recorded in the document for context).
const BENCH6_TARGET_P50_MS: f64 = 10.0;

/// Every field of the answer folded into one order-sensitive fingerprint:
/// centre, score bits, vertex ids and influenced size of each community, in
/// rank order. Bit-identical answers ⇔ equal fingerprints.
fn answer_fingerprint(answer: &icde_core::topl::TopLAnswer) -> u64 {
    let mut digest = 0xcbf29ce484222325u64;
    let mut fold = |x: u64| {
        digest = (digest ^ x).wrapping_mul(0x100000001B3);
    };
    for c in &answer.communities {
        fold(c.center.index() as u64);
        fold(c.influential_score.to_bits());
        fold(c.influenced_size as u64);
        for &v in c.vertices.as_slice() {
            fold(v.index() as u64);
        }
    }
    digest
}

/// [`answer_fingerprint`] minus the reported center. Two centers inside one
/// community can tie bit-exactly on score (the Top-L dedup keys on the vertex
/// set for exactly this reason); which one gets credited depends on index
/// traversal order, hence tree shape. Gates that compare a patched tree (old
/// shape) against a freshly sorted rebuild must compare at the level where
/// equality is guaranteed: score, reach and vertex set.
fn centerless_fingerprint(answer: &icde_core::topl::TopLAnswer) -> u64 {
    let mut digest = 0xcbf29ce484222325u64;
    let mut fold = |x: u64| {
        digest = (digest ^ x).wrapping_mul(0x100000001B3);
    };
    for c in &answer.communities {
        fold(c.influential_score.to_bits());
        fold(c.influenced_size as u64);
        for &v in c.vertices.as_slice() {
            fold(v.index() as u64);
        }
    }
    digest
}

/// Runs the online-engine workloads and renders the `BENCH_6.json` document:
/// the eager reference formulation of Algorithm 3 (refine-on-leaf-pop) vs
/// the progressive bound-driven kernel (deferred refinement off one
/// best-bound-first heap, tightened by the offline seed-community bounds) on
/// the bench4/bench5 50k query workload. `scale` below [`SNAPSHOT_SCALE`]
/// runs the same shape as a smoke test (CI).
///
/// # Panics
/// Panics when the progressive answer is not **bit-identical** to the eager
/// reference (centres, scores, vertex sets, order — one fused fingerprint),
/// or when the kernel expands more candidates exactly than the eager path
/// refines. Timings are only reported after both gates pass.
pub fn bench6_snapshot_json(scale: usize) -> String {
    let g = bench4_graph(scale);
    let config = bench4_config();

    let build_start = Instant::now();
    let index = IndexBuilder::new(config.clone()).build(&g);
    let offline_build_ms = build_start.elapsed().as_secs_f64() * 1e3;
    let workers = config.worker_count(g.num_vertices());

    let query = bench4_query();
    let processor = TopLProcessor::new(&g, &index);

    // --- equivalence gate: answers first, timings only if identical -------
    let eager_answer = processor.run_eager(&query).expect("eager reference run");
    let progressive_answer = processor.run(&query).expect("progressive run");
    let fingerprint_eager = answer_fingerprint(&eager_answer);
    let fingerprint_progressive = answer_fingerprint(&progressive_answer);
    assert_eq!(
        fingerprint_progressive, fingerprint_eager,
        "progressive kernel diverged from the eager reference answer"
    );
    let stats = progressive_answer.stats;
    assert!(
        stats.exact_verifications <= eager_answer.stats.candidates_refined,
        "progressive kernel expanded {} candidates exactly, eager refined only {}",
        stats.exact_verifications,
        eager_answer.stats.candidates_refined
    );

    // --- timings ----------------------------------------------------------
    let (eager_ms, digest_eager) = time_median(3, || {
        answer_fingerprint(&processor.run_eager(&query).expect("eager reference run"))
    });
    let (query_ms, digest_progressive) = time_median(21, || {
        answer_fingerprint(&processor.run(&query).expect("progressive run"))
    });
    assert_eq!(digest_progressive, digest_eager, "timed runs diverged");

    let legs = [
        (
            "offline_index_build",
            offline_build_ms,
            index.content_fingerprint(),
        ),
        ("query_topl_eager_reference", eager_ms, digest_eager),
        ("query_topl", query_ms, digest_progressive),
    ];
    let results = Value::Array(
        legs.iter()
            .map(|(name, millis, fingerprint)| {
                Value::Object(vec![
                    ("name".to_string(), Value::Str(name.to_string())),
                    ("millis".to_string(), Value::Float(round3(*millis))),
                    (
                        "fingerprint".to_string(),
                        Value::Str(format!("{fingerprint:#018x}")),
                    ),
                ])
            })
            .collect(),
    );
    let ratio = |old: f64, new: f64| {
        if new > 0.0 {
            (old / new * 1e2).round() / 1e2
        } else {
            f64::INFINITY
        }
    };
    let full_scale = scale == SNAPSHOT_SCALE;
    let doc = Value::Object(vec![
        ("snapshot".to_string(), Value::Str("BENCH_6".to_string())),
        (
            "description".to_string(),
            Value::Str(
                "Progressive bound-driven online TopL engine (PR 6): the eager reference \
                 formulation of Algorithm 3 (every surviving leaf vertex refined the moment \
                 its leaf pops) vs the progressive kernel (index nodes and leaf candidates \
                 in one best-bound-first heap, exact refinement deferred until a \
                 candidate's bound reaches the top, bounds tightened by the offline \
                 seed-community score table) on the 50k small-world query workload. The \
                 progressive answer is asserted bit-identical to the eager reference \
                 (centres, scores, vertex sets, order — one fused fingerprint) before any \
                 timing is reported."
                    .to_string(),
            ),
        ),
        (
            "workload".to_string(),
            Value::Object(vec![
                (
                    "graph".to_string(),
                    Value::Str("small_world paper_default + uniform keywords".to_string()),
                ),
                ("vertices".to_string(), Value::UInt(g.num_vertices() as u64)),
                ("edges".to_string(), Value::UInt(g.num_edges() as u64)),
                ("seed".to_string(), Value::UInt(SNAPSHOT_SEED)),
                ("worker_threads".to_string(), Value::UInt(workers as u64)),
                (
                    "query".to_string(),
                    Value::Str("keywords {0..4}, k=3, r=2, theta=0.2, L=5".to_string()),
                ),
                (
                    "target_p50_ms".to_string(),
                    if full_scale {
                        Value::Float(BENCH6_TARGET_P50_MS)
                    } else {
                        Value::Null
                    },
                ),
                (
                    "bench5_query_topl_ms".to_string(),
                    if full_scale {
                        Value::Float(BENCH5_QUERY_TOPL_MS)
                    } else {
                        Value::Null
                    },
                ),
            ]),
        ),
        (
            "verification".to_string(),
            Value::Object(vec![
                ("answers_bit_identical".to_string(), Value::Bool(true)),
                (
                    "answer_fingerprint".to_string(),
                    Value::Str(format!("{fingerprint_eager:#018x}")),
                ),
                (
                    "eager_candidates_refined".to_string(),
                    Value::UInt(eager_answer.stats.candidates_refined as u64),
                ),
            ]),
        ),
        (
            "progressive_counters".to_string(),
            Value::Object(vec![
                (
                    "candidates_pruned".to_string(),
                    Value::UInt(stats.total_pruned_candidates() as u64),
                ),
                (
                    "index_entries_pruned".to_string(),
                    Value::UInt(stats.total_pruned_index_entries() as u64),
                ),
                (
                    "candidates_refined".to_string(),
                    Value::UInt(stats.candidates_refined as u64),
                ),
                (
                    "exact_verifications".to_string(),
                    Value::UInt(stats.exact_verifications as u64),
                ),
                (
                    "bound_tightenings".to_string(),
                    Value::UInt(stats.bound_tightenings as u64),
                ),
                ("heap_pops".to_string(), Value::UInt(stats.heap_pops as u64)),
                (
                    "early_terminated_entries".to_string(),
                    Value::UInt(stats.early_terminated_entries as u64),
                ),
            ]),
        ),
        ("results".to_string(), results),
        (
            "speedups".to_string(),
            Value::Object(vec![
                (
                    "progressive_vs_eager".to_string(),
                    Value::Float(ratio(eager_ms, query_ms)),
                ),
                (
                    "progressive_vs_bench5_archived".to_string(),
                    if full_scale {
                        Value::Float(ratio(BENCH5_QUERY_TOPL_MS, query_ms))
                    } else {
                        Value::Null
                    },
                ),
            ]),
        ),
    ]);
    serde_json::to_string_pretty(&doc).expect("snapshot document serialises")
}

// ---------------------------------------------------------------------------
// bench7: concurrent serving runtime (worker pool + hot swap + query LRU)
// ---------------------------------------------------------------------------

/// Zipf skew of the bench7 query stream: rank-1 queries dominate (they keep
/// the LRU hot), the long tail keeps forcing real kernel executions.
const BENCH7_ZIPF_S: f64 = 1.1;
/// Target QPS ratio of the multi-worker leg over the single-worker leg.
const BENCH7_TARGET_SPEEDUP: f64 = 1.7;
/// Tickets each load-generating client keeps in flight. One-at-a-time
/// submission would measure thread ping-pong (submit → wake worker → reply →
/// wake client) instead of serving capacity; a bounded window keeps every
/// worker busy while still applying backpressure.
const BENCH7_CLIENT_WINDOW: usize = 16;

/// Worker count of the multi-worker serving leg, clamped to the machine.
fn bench7_multi_workers() -> usize {
    std::thread::available_parallelism()
        .map_or(2, |p| p.get())
        .clamp(2, 4)
}

/// One splitmix64 step — the bench7 workload RNG (deterministic and
/// dependency-free, so the Zipf sequence is identical on every run).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Normalised cumulative Zipf(`s`) distribution over `n` ranks.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for rank in 0..n {
        acc += 1.0 / ((rank + 1) as f64).powf(s);
        cdf.push(acc);
    }
    let total = acc;
    for c in &mut cdf {
        *c /= total;
    }
    cdf
}

/// Maps a uniform `u ∈ [0, 1)` to a Zipf rank through the cumulative table.
fn sample_zipf(cdf: &[f64], u: f64) -> usize {
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

/// Builds `pool_size` *distinct* queries (distinct canonical fingerprints)
/// over the bench4 keyword domain, varying keywords, `k`, `r`, `θ` and `L`.
/// Rank 0 is the bench4 query, so the hottest Zipf rank is the workload every
/// earlier bench measured.
fn bench7_query_pool(pool_size: usize) -> Vec<TopLQuery> {
    let mut state = SNAPSHOT_SEED ^ 0xB7;
    let thetas = [0.1, 0.15, 0.2, 0.25, 0.3];
    let mut seen = std::collections::HashSet::new();
    let mut pool = vec![bench4_query()];
    seen.insert(bench4_query().canonical_fingerprint());
    while pool.len() < pool_size {
        let keyword_count = 2 + (splitmix64(&mut state) % 3) as usize;
        let ids: Vec<u32> = (0..keyword_count)
            .map(|_| (splitmix64(&mut state) % 12) as u32)
            .collect();
        let query = TopLQuery::new(
            KeywordSet::from_ids(ids),
            2 + (splitmix64(&mut state) % 2) as u32,
            1 + (splitmix64(&mut state) % 2) as u32,
            thetas[(splitmix64(&mut state) % thetas.len() as u64) as usize],
            1 + (splitmix64(&mut state) % 8) as usize,
        );
        if seen.insert(query.canonical_fingerprint()) {
            pool.push(query);
        }
    }
    pool
}

/// Resolves one in-flight ticket: waits for the answer, records the
/// submit-to-resolve latency and asserts bit-identity against the
/// single-threaded reference.
fn bench7_resolve(
    name: &str,
    (idx, submitted, ticket): (usize, Instant, QueryTicket),
    reference: &[u64],
    expected_fp: u64,
    latencies: &mut Vec<u64>,
) {
    let served = ticket.wait().expect("serving runtime answered");
    latencies.push(submitted.elapsed().as_nanos() as u64);
    assert_eq!(
        answer_fingerprint(&served.answer),
        reference[idx],
        "{name}: served answer for pool query {idx} diverged from the \
         single-threaded reference"
    );
    assert_eq!(
        served.snapshot_fingerprint, expected_fp,
        "{name}: answer served off an unpublished snapshot"
    );
}

/// One measured serving run: `workers` threads draining the shared Zipf
/// sequence, an identical-content snapshot hot-swapped halfway through.
struct ServeLeg {
    name: &'static str,
    workers: usize,
    clients: usize,
    wall_s: f64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    stats: ServingStats,
}

/// Runs one serving leg: closed-loop clients (two per worker) submit the
/// Zipf sequence, every answer is checked bit-identical to the
/// single-threaded reference, and an identical-content snapshot is published
/// once half the queries have completed (the swap invalidates the whole LRU
/// epoch, so the post-swap half re-executes and repopulates the cache).
///
/// # Panics
/// Panics when any answer diverges from the reference fingerprint, any query
/// fails, the swap count is not exactly 1, or the executed/cached counters
/// do not add up to the sequence length.
#[allow(clippy::too_many_arguments)]
fn bench7_serve_leg(
    name: &'static str,
    workers: usize,
    g: &SocialNetwork,
    index: &CommunityIndex,
    pool: &[TopLQuery],
    sequence: &[u32],
    reference: &[u64],
) -> ServeLeg {
    let runtime = ServingRuntime::start(
        ServingConfig::with_workers(workers),
        g.clone(),
        index.clone(),
    )
    .expect("serving runtime starts");
    let expected_fp = runtime.current().fingerprint();
    let clients = (workers * 2).max(2);
    let swap_at = sequence.len() / 2;
    let completed = AtomicUsize::new(0);

    let start = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let runtime = &runtime;
                let completed = &completed;
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(sequence.len() / clients + 1);
                    let mut inflight = VecDeque::with_capacity(BENCH7_CLIENT_WINDOW);
                    for &rank in sequence.iter().skip(c).step_by(clients) {
                        if inflight.len() == BENCH7_CLIENT_WINDOW {
                            let job = inflight.pop_front().expect("window non-empty");
                            bench7_resolve(name, job, reference, expected_fp, &mut local);
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        let idx = rank as usize;
                        let submitted = Instant::now();
                        inflight.push_back((idx, submitted, runtime.submit(pool[idx].clone())));
                    }
                    for job in inflight {
                        bench7_resolve(name, job, reference, expected_fp, &mut local);
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                    local
                })
            })
            .collect();
        // hot swap: publish an identical-content snapshot mid-run; in-flight
        // queries drain on the old epoch, later ones re-execute and re-cache
        while completed.load(Ordering::Relaxed) < swap_at {
            std::thread::sleep(Duration::from_millis(1));
        }
        runtime
            .publish(g.clone(), index.clone())
            .expect("mid-run snapshot publish");
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let wall_s = start.elapsed().as_secs_f64();
    let stats = runtime.shutdown();

    assert_eq!(stats.queries_failed, 0, "{name}: queries failed");
    assert_eq!(stats.swaps, 1, "{name}: expected exactly one snapshot swap");
    assert!(stats.cache_hits > 0, "{name}: the LRU never hit");
    assert_eq!(
        stats.queries_executed + stats.cache_hits,
        sequence.len() as u64,
        "{name}: executed + cached must cover the whole sequence"
    );

    latencies.sort_unstable();
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p).round() as usize] as f64 / 1e6;
    ServeLeg {
        name,
        workers,
        clients,
        wall_s,
        qps: sequence.len() as f64 / wall_s,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        p999_ms: pct(0.999),
        stats,
    }
}

/// Runs the concurrent-serving workloads and renders the `BENCH_7.json`
/// document: a Zipf-skewed stream of canonicalised TopL queries served by
/// the [`ServingRuntime`] at one worker and at [`bench7_multi_workers`]
/// workers, with an identical-content snapshot hot-swapped halfway through
/// each leg. `scale` below [`SNAPSHOT_SCALE`] runs the same shape as a smoke
/// test (CI).
///
/// # Panics
/// Panics when any served answer is not **bit-identical** to the
/// single-threaded [`TopLProcessor::run`] reference, when any query fails,
/// or when a leg's swap/cache counters are inconsistent — throughput is only
/// reported after every answer has been verified.
pub fn bench7_snapshot_json(scale: usize) -> String {
    let full_scale = scale == SNAPSHOT_SCALE;
    let total_queries = if full_scale { 2_000_000 } else { 20_000 };
    let pool_size = if full_scale { 512 } else { 64 };

    let g = bench4_graph(scale);
    let build_start = Instant::now();
    let index = IndexBuilder::new(bench4_config()).build(&g);
    let offline_build_ms = build_start.elapsed().as_secs_f64() * 1e3;

    // --- single-threaded reference: one fingerprint per distinct query ----
    let pool = bench7_query_pool(pool_size);
    let processor = TopLProcessor::new(&g, &index);
    let reference_start = Instant::now();
    let reference: Vec<u64> = pool
        .iter()
        .map(|q| answer_fingerprint(&processor.run(q).expect("reference run")))
        .collect();
    let reference_ms = reference_start.elapsed().as_secs_f64() * 1e3;
    let mut reference_digest = 0xcbf29ce484222325u64;
    for &fp in &reference {
        reference_digest = (reference_digest ^ fp).wrapping_mul(0x100000001B3);
    }

    // --- shared Zipf workload (identical sequence for both legs) ----------
    let cdf = zipf_cdf(pool.len(), BENCH7_ZIPF_S);
    let mut state = SNAPSHOT_SEED ^ 0x217;
    let sequence: Vec<u32> = (0..total_queries)
        .map(|_| {
            let u = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
            sample_zipf(&cdf, u) as u32
        })
        .collect();

    // --- status-quo-ante baseline: the pre-serving one-shot path ----------
    // Before this runtime existed every query ran the kernel directly —
    // single-threaded, no cache, no pool. Measured over a prefix of the same
    // Zipf sequence (every repeat re-executes, which is exactly the point).
    let direct_sample = 2_000.min(sequence.len());
    let mut direct_lat: Vec<u64> = Vec::with_capacity(direct_sample);
    let direct_start = Instant::now();
    for &rank in &sequence[..direct_sample] {
        let t = Instant::now();
        let answer = processor.run(&pool[rank as usize]).expect("direct run");
        direct_lat.push(t.elapsed().as_nanos() as u64);
        assert_eq!(
            answer_fingerprint(&answer),
            reference[rank as usize],
            "direct baseline diverged from its own reference"
        );
    }
    let direct_wall_s = direct_start.elapsed().as_secs_f64();
    let direct_qps = direct_sample as f64 / direct_wall_s;
    direct_lat.sort_unstable();
    let direct_pct =
        |p: f64| direct_lat[((direct_lat.len() - 1) as f64 * p).round() as usize] as f64 / 1e6;
    let direct_p50_ms = direct_pct(0.50);
    let direct_p99_ms = direct_pct(0.99);
    let direct_p999_ms = direct_pct(0.999);

    let multi_workers = bench7_multi_workers();
    let single = bench7_serve_leg(
        "serve_1_worker",
        1,
        &g,
        &index,
        &pool,
        &sequence,
        &reference,
    );
    let multi = bench7_serve_leg(
        "serve_multi_worker",
        multi_workers,
        &g,
        &index,
        &pool,
        &sequence,
        &reference,
    );

    let leg_value = |leg: &ServeLeg| {
        Value::Object(vec![
            ("name".to_string(), Value::Str(leg.name.to_string())),
            ("workers".to_string(), Value::UInt(leg.workers as u64)),
            ("clients".to_string(), Value::UInt(leg.clients as u64)),
            ("wall_seconds".to_string(), Value::Float(round3(leg.wall_s))),
            ("qps".to_string(), Value::Float(round3(leg.qps))),
            ("p50_ms".to_string(), Value::Float(round3(leg.p50_ms))),
            ("p99_ms".to_string(), Value::Float(round3(leg.p99_ms))),
            ("p999_ms".to_string(), Value::Float(round3(leg.p999_ms))),
            (
                "cache_hit_rate".to_string(),
                Value::Float(round3(leg.stats.hit_rate())),
            ),
            ("cache_hits".to_string(), Value::UInt(leg.stats.cache_hits)),
            (
                "queries_executed".to_string(),
                Value::UInt(leg.stats.queries_executed),
            ),
            (
                "queries_failed".to_string(),
                Value::UInt(leg.stats.queries_failed),
            ),
            ("snapshot_swaps".to_string(), Value::UInt(leg.stats.swaps)),
        ])
    };
    let ratio = |old: f64, new: f64| {
        if new > 0.0 {
            (old / new * 1e2).round() / 1e2
        } else {
            f64::INFINITY
        }
    };
    let cpu_cores = std::thread::available_parallelism().map_or(1, |p| p.get());

    let doc = Value::Object(vec![
        ("snapshot".to_string(), Value::Str("BENCH_7".to_string())),
        (
            "description".to_string(),
            Value::Str(
                "Concurrent query-serving runtime (PR 7): a worker pool draining a \
                 bounded MPMC queue over a hot-swappable graph+index snapshot with a \
                 sharded, canonicalised-query LRU, measured under a Zipf-skewed query \
                 stream at one worker vs a multi-worker pool. Every served answer is \
                 asserted bit-identical to the single-threaded progressive kernel on \
                 the same snapshot, and an identical-content snapshot is published \
                 mid-run in both legs (the swap drains in-flight queries on the old \
                 epoch and lazily invalidates the cache) before any throughput is \
                 reported. The baseline is the pre-serving status quo: the same Zipf \
                 stream answered one-shot by the kernel with no cache and no pool. \
                 Worker scaling (multi vs single worker) is only meaningful when \
                 cpu_cores > 1 — on a single-core host the two legs time-slice one \
                 CPU and the ratio sits near 1.0 by construction."
                    .to_string(),
            ),
        ),
        (
            "workload".to_string(),
            Value::Object(vec![
                (
                    "graph".to_string(),
                    Value::Str("small_world paper_default + uniform keywords".to_string()),
                ),
                ("vertices".to_string(), Value::UInt(g.num_vertices() as u64)),
                ("edges".to_string(), Value::UInt(g.num_edges() as u64)),
                ("seed".to_string(), Value::UInt(SNAPSHOT_SEED)),
                (
                    "total_queries".to_string(),
                    Value::UInt(total_queries as u64),
                ),
                (
                    "distinct_queries".to_string(),
                    Value::UInt(pool.len() as u64),
                ),
                ("zipf_s".to_string(), Value::Float(BENCH7_ZIPF_S)),
                (
                    "swap_at_query".to_string(),
                    Value::UInt((total_queries / 2) as u64),
                ),
                (
                    "multi_workers".to_string(),
                    Value::UInt(multi_workers as u64),
                ),
                ("cpu_cores".to_string(), Value::UInt(cpu_cores as u64)),
                (
                    "offline_build_ms".to_string(),
                    Value::Float(round3(offline_build_ms)),
                ),
            ]),
        ),
        (
            "verification".to_string(),
            Value::Object(vec![
                ("answers_bit_identical".to_string(), Value::Bool(true)),
                (
                    "reference_fingerprint_digest".to_string(),
                    Value::Str(format!("{reference_digest:#018x}")),
                ),
                (
                    "reference_sequential_ms".to_string(),
                    Value::Float(round3(reference_ms)),
                ),
                ("queries_failed".to_string(), Value::UInt(0)),
                ("swaps_per_leg".to_string(), Value::UInt(1)),
            ]),
        ),
        (
            "baseline".to_string(),
            Value::Object(vec![
                (
                    "name".to_string(),
                    Value::Str("direct_single_threaded_no_cache".to_string()),
                ),
                (
                    "description".to_string(),
                    Value::Str(
                        "the pre-serving status quo: every query runs the kernel \
                         directly, one-shot, no cache, no pool (measured over a \
                         prefix of the same Zipf sequence)"
                            .to_string(),
                    ),
                ),
                (
                    "queries_sampled".to_string(),
                    Value::UInt(direct_sample as u64),
                ),
                (
                    "wall_seconds".to_string(),
                    Value::Float(round3(direct_wall_s)),
                ),
                ("qps".to_string(), Value::Float(round3(direct_qps))),
                ("p50_ms".to_string(), Value::Float(round3(direct_p50_ms))),
                ("p99_ms".to_string(), Value::Float(round3(direct_p99_ms))),
                ("p999_ms".to_string(), Value::Float(round3(direct_p999_ms))),
            ]),
        ),
        (
            "results".to_string(),
            Value::Array(vec![leg_value(&single), leg_value(&multi)]),
        ),
        (
            "speedups".to_string(),
            Value::Object(vec![
                (
                    "multi_worker_vs_direct_qps".to_string(),
                    Value::Float(ratio(multi.qps, direct_qps)),
                ),
                (
                    "multi_vs_single_worker_qps".to_string(),
                    Value::Float(ratio(multi.qps, single.qps)),
                ),
                (
                    "target".to_string(),
                    if full_scale {
                        Value::Float(BENCH7_TARGET_SPEEDUP)
                    } else {
                        Value::Null
                    },
                ),
            ]),
        ),
    ]);
    serde_json::to_string_pretty(&doc).expect("snapshot document serialises")
}

// ---------------------------------------------------------------------------
// bench8: the D-TopL streaming update loop (delta overlay + affected balls)
// ---------------------------------------------------------------------------

/// Zipf exponent of the update-endpoint distribution: hot vertices attract
/// most of the churn, so consecutive affected balls overlap (the realistic
/// D-TopL regime, and the one the affected-ball refresh amortises best).
const BENCH8_ZIPF_S: f64 = 1.2;
/// Hot-vertex pool the update endpoints are drawn from.
const BENCH8_HOT_POOL: usize = 64;
/// Target ratio of overlay-patch update throughput over the
/// rebuild-per-edge baseline at full scale.
const BENCH8_TARGET_SPEEDUP: f64 = 50.0;

/// The bench8 offline configuration. The streaming workload trades radius
/// for refresh locality: `r_max = 2` with a single `θ = 0.3` threshold keeps
/// the influence slack at 1 (all weights are ≤ 0.5), so every update refresh
/// touches a radius-3 ball instead of the whole graph.
fn bench8_config() -> PrecomputeConfig {
    PrecomputeConfig::new(2, vec![0.3])
}

/// Uniform `f64` in `[0, 1)` off the splitmix64 stream.
fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Builds 8 distinct queries answerable by the bench8 index (`r ≤ 2`,
/// `θ ≥ 0.3`). Rank 0 is the bench4 query shape at the bench8 threshold.
fn bench8_query_pool() -> Vec<TopLQuery> {
    let mut state = SNAPSHOT_SEED ^ 0xB8;
    let thetas = [0.3, 0.35, 0.4];
    let mut pool = vec![TopLQuery::new(
        KeywordSet::from_ids([0, 1, 2, 3, 4]),
        3,
        2,
        0.3,
        5,
    )];
    let mut seen: HashSet<u64> = pool.iter().map(|q| q.canonical_fingerprint()).collect();
    while pool.len() < 8 {
        let keyword_count = 2 + (splitmix64(&mut state) % 3) as usize;
        let ids: Vec<u32> = (0..keyword_count)
            .map(|_| (splitmix64(&mut state) % 12) as u32)
            .collect();
        let query = TopLQuery::new(
            KeywordSet::from_ids(ids),
            2 + (splitmix64(&mut state) % 2) as u32,
            1 + (splitmix64(&mut state) % 2) as u32,
            thetas[(splitmix64(&mut state) % thetas.len() as u64) as usize],
            1 + (splitmix64(&mut state) % 8) as usize,
        );
        if seen.insert(query.canonical_fingerprint()) {
            pool.push(query);
        }
    }
    pool
}

/// Rebuilds the logical graph from scratch: a fresh builder over the live
/// edge table gives a dense CSR with no overlay — the pre-overlay
/// formulation every interleaved state is verified against.
fn bench8_rebuild_from_scratch(g: &SocialNetwork) -> SocialNetwork {
    let mut b = GraphBuilder::with_vertices(g.num_vertices());
    for v in g.vertices() {
        b.set_keywords(v, g.keyword_set(v).clone())
            .expect("vertex exists");
    }
    for (u, v, wf, wb) in g.edge_table_iter() {
        b.add_edge(u, v, wf, wb);
    }
    b.build().expect("live edge table is a valid graph")
}

/// Generates a deterministic mixed insert/delete stream with Zipf-skewed
/// hot-pool endpoints. A mirror of the logical edge set guarantees every
/// update is valid at application time (no skips), and replaying the stream
/// from the same initial graph is idempotent — the sequential gate and the
/// concurrent leg both apply the identical sequence. Inserted weights stay
/// in `[0.35, 0.5)`, at or below the generator's uniform 0.5, so the
/// influence slack bound never grows mid-stream. Roughly half the updates
/// are removals, split between previously inserted overlay edges and base
/// CSR edges (the latter exercise the tombstone path).
fn bench8_update_stream(g: &SocialNetwork, total: usize) -> Vec<EdgeUpdate> {
    let n = g.num_vertices();
    let hot = BENCH8_HOT_POOL.min(n / 2);
    let stride = n / hot;
    let hot_ids: Vec<VertexId> = (0..hot).map(|i| VertexId::from_index(i * stride)).collect();
    let cdf = zipf_cdf(hot, BENCH8_ZIPF_S);
    let mut state = SNAPSHOT_SEED ^ 0xD7B8;

    let key = |u: VertexId, v: VertexId| (u.0.min(v.0), u.0.max(v.0));
    let mut added: Vec<(VertexId, VertexId)> = Vec::new();
    let mut added_set: HashSet<(u32, u32)> = HashSet::new();
    let mut removed_base: HashSet<(u32, u32)> = HashSet::new();

    let mut stream = Vec::with_capacity(total);
    while stream.len() < total {
        match splitmix64(&mut state) % 4 {
            0 if !added.is_empty() => {
                // remove a previously inserted overlay edge
                let i = (splitmix64(&mut state) % added.len() as u64) as usize;
                let (u, v) = added.swap_remove(i);
                added_set.remove(&key(u, v));
                stream.push(EdgeUpdate::Remove { u, v });
            }
            1 => {
                // remove a base CSR edge incident to a hot vertex: this is
                // the tombstone path (the id becomes a hole until compaction)
                let u = hot_ids[sample_zipf(&cdf, unit_f64(&mut state))];
                let victim = g.neighbors(u).iter().map(|(v, _)| v).find(|&v| {
                    !removed_base.contains(&key(u, v)) && !added_set.contains(&key(u, v))
                });
                if let Some(v) = victim {
                    removed_base.insert(key(u, v));
                    stream.push(EdgeUpdate::Remove { u, v });
                }
            }
            _ => {
                // insert a fresh edge between two hot-pool vertices
                let u = hot_ids[sample_zipf(&cdf, unit_f64(&mut state))];
                let v = hot_ids[sample_zipf(&cdf, unit_f64(&mut state))];
                let present = u == v
                    || added_set.contains(&key(u, v))
                    || (g.contains_edge(u, v) && !removed_base.contains(&key(u, v)));
                if !present {
                    let p_uv = 0.35 + unit_f64(&mut state) * 0.15;
                    let p_vu = 0.35 + unit_f64(&mut state) * 0.15;
                    added.push((u, v));
                    added_set.insert(key(u, v));
                    stream.push(EdgeUpdate::Insert { u, v, p_uv, p_vu });
                }
            }
        }
    }
    stream
}

/// Runs the D-TopL streaming workloads and renders the `BENCH_8.json`
/// document. Two legs over the identical update stream:
///
/// 1. **Sequential exactness gate** — a [`StreamingMaintainer`] applies the
///    stream batch by batch; after *every* batch the graph is rebuilt from
///    scratch (fresh CSR, fresh index) and the whole query pool is asserted
///    bit-identical between the live overlay pair and the rebuild. The
///    per-state rebuild times double as the rebuild-per-edge baseline.
/// 2. **Concurrent serving leg** — the maintainer is spawned onto its
///    maintenance thread, hot-swapping each refreshed snapshot into a
///    [`ServingRuntime`] while Zipf query clients hammer the pool;
///    updates/sec, compactions, query p50 and epoch staleness are measured,
///    and every served answer is asserted bit-identical to the from-scratch
///    reference of the epoch it was served at.
///
/// `scale` below [`SNAPSHOT_SCALE`] runs the same shape as a smoke test (CI).
///
/// # Panics
/// Panics when any interleaved answer is not **bit-identical** to the
/// from-scratch rebuild at the same logical graph state, when any update is
/// skipped, when no compaction fires, or when a query fails — throughput is
/// only reported after every answer has been verified.
pub fn bench8_snapshot_json(scale: usize) -> String {
    let full_scale = scale == SNAPSHOT_SCALE;
    let total_updates = if full_scale { 256 } else { 64 };
    let batch_size = if full_scale { 32 } else { 8 };

    let g = bench4_graph(scale);
    let build_start = Instant::now();
    let index = IndexBuilder::new(bench8_config()).build(&g);
    let offline_build_ms = build_start.elapsed().as_secs_f64() * 1e3;

    let base_m = g.num_edges();
    // sized so compaction fires roughly three times over the run
    let compact_threshold = (total_updates as f64 / 3.0) / base_m as f64;
    let stream = bench8_update_stream(&g, total_updates);
    let inserts_total = stream
        .iter()
        .filter(|u| matches!(u, EdgeUpdate::Insert { .. }))
        .count();
    let batches: Vec<&[EdgeUpdate]> = stream.chunks(batch_size).collect();
    let pool = bench8_query_pool();

    // --- leg 1: sequential exactness gate + rebuild-per-edge baseline -----
    // reference[s][q]: from-scratch fingerprint of pool query q at logical
    // state s (state 0 = initial graph, state s = after batch s)
    let initial_processor = TopLProcessor::new(&g, &index);
    let mut reference: Vec<Vec<u64>> = vec![pool
        .iter()
        .map(|q| answer_fingerprint(&initial_processor.run(q).expect("initial reference")))
        .collect()];

    let mut maintainer = StreamingMaintainer::new(g.clone(), index.clone())
        .with_compact_threshold(compact_threshold);
    let mut apply_ms_total = 0.0f64;
    let mut rebuild_ms: Vec<f64> = Vec::with_capacity(batches.len());
    let mut gate_answers_verified = 0u64;
    for (i, batch) in batches.iter().enumerate() {
        let t = Instant::now();
        maintainer.apply_batch(batch);
        apply_ms_total += t.elapsed().as_secs_f64() * 1e3;

        // the pre-overlay status quo at this state: full rebuild of graph,
        // pre-computation and index (timed — this is the baseline cost every
        // single edge update used to pay)
        let t = Instant::now();
        let scratch = bench8_rebuild_from_scratch(maintainer.graph());
        let scratch_index = IndexBuilder::new(bench8_config()).build(&scratch);
        rebuild_ms.push(t.elapsed().as_secs_f64() * 1e3);

        let live = TopLProcessor::new(maintainer.graph(), maintainer.index());
        let fresh = TopLProcessor::new(&scratch, &scratch_index);
        let fps: Vec<u64> = pool
            .iter()
            .enumerate()
            .map(|(qi, q)| {
                let live_fp = answer_fingerprint(&live.run(q).expect("live run"));
                let fresh_fp = answer_fingerprint(&fresh.run(q).expect("scratch run"));
                assert_eq!(
                    live_fp, fresh_fp,
                    "overlay answer diverged from the from-scratch rebuild \
                     (batch {i}, pool query {qi})"
                );
                gate_answers_verified += 1;
                fresh_fp
            })
            .collect();
        reference.push(fps);
    }
    let gate_stats = maintainer.stats();
    assert_eq!(
        gate_stats.updates_applied(),
        total_updates as u64,
        "the generated stream must apply cleanly"
    );
    assert_eq!(gate_stats.updates_skipped, 0, "no update may be skipped");
    assert!(
        gate_stats.compactions >= 1,
        "the run must cross the compaction threshold at least once"
    );
    rebuild_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let rebuild_median_ms = rebuild_ms[rebuild_ms.len() / 2];
    let per_update_ms = apply_ms_total / total_updates as f64;
    let maintain_updates_per_sec = 1e3 / per_update_ms;
    let mut reference_digest = 0xcbf29ce484222325u64;
    for fp in reference.iter().flatten() {
        reference_digest = (reference_digest ^ fp).wrapping_mul(0x100000001B3);
    }

    // --- leg 2: concurrent serving under the same stream ------------------
    let clients = 2usize;
    let runtime = Arc::new(
        ServingRuntime::start(ServingConfig::with_workers(2), g.clone(), index.clone())
            .expect("serving runtime starts"),
    );
    let feed = StreamingMaintainer::new(g.clone(), index.clone())
        .with_compact_threshold(compact_threshold)
        .spawn(Arc::clone(&runtime));
    let qcdf = zipf_cdf(pool.len(), BENCH7_ZIPF_S);
    let stop = AtomicBool::new(false);

    let (concurrent_maintainer, concurrent_wall_s, samples) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let runtime = &runtime;
                let stop = &stop;
                let pool = &pool;
                let reference = &reference;
                let qcdf = &qcdf;
                scope.spawn(move || {
                    let mut state = SNAPSHOT_SEED ^ 0x1B8 ^ ((c as u64) << 32);
                    // (latency ns, epochs behind the latest snapshot)
                    let mut local: Vec<(u64, u64)> = Vec::new();
                    loop {
                        let idx = sample_zipf(qcdf, unit_f64(&mut state));
                        let t = Instant::now();
                        let served = runtime
                            .submit(pool[idx].clone())
                            .wait()
                            .expect("serving runtime answered");
                        let latency_ns = t.elapsed().as_nanos() as u64;
                        let lag = runtime.current().epoch().saturating_sub(served.epoch);
                        let state_idx = (served.epoch - 1) as usize;
                        assert_eq!(
                            answer_fingerprint(&served.answer),
                            reference[state_idx][idx],
                            "served answer diverged from the from-scratch \
                             reference of its own epoch (state {state_idx}, \
                             pool query {idx})"
                        );
                        local.push((latency_ns, lag));
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    local
                })
            })
            .collect();

        let t0 = Instant::now();
        for batch in &batches {
            assert!(feed.push(batch.to_vec()), "maintenance thread alive");
        }
        let maintainer = feed.finish();
        let wall_s = t0.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        let samples: Vec<(u64, u64)> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect();
        (maintainer, wall_s, samples)
    });
    let serving_stats = Arc::try_unwrap(runtime)
        .ok()
        .expect("no outstanding runtime references")
        .shutdown();
    let concurrent_stats = concurrent_maintainer.stats();
    assert_eq!(concurrent_stats.updates_applied(), total_updates as u64);
    assert_eq!(concurrent_stats.updates_skipped, 0);
    assert_eq!(serving_stats.queries_failed, 0, "queries failed mid-stream");
    assert_eq!(
        serving_stats.swaps,
        batches.len() as u64,
        "every batch must hot-swap a refreshed snapshot"
    );
    let concurrent_updates_per_sec = total_updates as f64 / concurrent_wall_s;
    let queries_served = samples.len();
    let mut latencies: Vec<u64> = samples.iter().map(|&(ns, _)| ns).collect();
    latencies.sort_unstable();
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p).round() as usize] as f64 / 1e6;
    let stale_max = samples.iter().map(|&(_, lag)| lag).max().unwrap_or(0);
    let stale_mean =
        samples.iter().map(|&(_, lag)| lag).sum::<u64>() as f64 / queries_served.max(1) as f64;

    let ratio = |old: f64, new: f64| {
        if new > 0.0 {
            (old / new * 1e2).round() / 1e2
        } else {
            f64::INFINITY
        }
    };
    let cpu_cores = std::thread::available_parallelism().map_or(1, |p| p.get());

    let doc = Value::Object(vec![
        ("snapshot".to_string(), Value::Str("BENCH_8".to_string())),
        (
            "description".to_string(),
            Value::Str(
                "D-TopL streaming update loop (PR 8): a sustained Zipf-skewed \
                 insert/delete edge stream applied as delta-overlay patches \
                 (O(degree log degree) per update, incremental triangle-support \
                 patching, affected-ball aggregate refresh, threshold-triggered \
                 overlay compaction with edge-id remap). Leg 1 is the sequential \
                 exactness gate: after every batch the live overlay pair must \
                 answer the whole query pool bit-identically to a from-scratch \
                 rebuild (fresh CSR + fresh index) at the same logical graph \
                 state; those timed rebuilds are the baseline — the cost every \
                 single edge update paid before the overlay existed. Leg 2 \
                 replays the same stream through the maintenance thread while \
                 Zipf query clients run against the serving runtime, measuring \
                 sustained updates/sec, compactions, query p50 and snapshot \
                 staleness; every served answer is asserted bit-identical to \
                 the from-scratch reference of the epoch it was served at."
                    .to_string(),
            ),
        ),
        (
            "workload".to_string(),
            Value::Object(vec![
                (
                    "graph".to_string(),
                    Value::Str("small_world paper_default + uniform keywords".to_string()),
                ),
                ("vertices".to_string(), Value::UInt(g.num_vertices() as u64)),
                ("base_edges".to_string(), Value::UInt(base_m as u64)),
                ("seed".to_string(), Value::UInt(SNAPSHOT_SEED)),
                (
                    "total_updates".to_string(),
                    Value::UInt(total_updates as u64),
                ),
                ("inserts".to_string(), Value::UInt(inserts_total as u64)),
                (
                    "removes".to_string(),
                    Value::UInt((total_updates - inserts_total) as u64),
                ),
                ("batch_size".to_string(), Value::UInt(batch_size as u64)),
                ("batches".to_string(), Value::UInt(batches.len() as u64)),
                (
                    "hot_pool".to_string(),
                    Value::UInt(BENCH8_HOT_POOL.min(g.num_vertices() / 2) as u64),
                ),
                ("zipf_s".to_string(), Value::Float(BENCH8_ZIPF_S)),
                (
                    "compact_threshold".to_string(),
                    Value::Float(compact_threshold),
                ),
                ("r_max".to_string(), Value::UInt(2)),
                (
                    "thresholds".to_string(),
                    Value::Array(vec![Value::Float(0.3)]),
                ),
                (
                    "distinct_queries".to_string(),
                    Value::UInt(pool.len() as u64),
                ),
                ("query_clients".to_string(), Value::UInt(clients as u64)),
                ("cpu_cores".to_string(), Value::UInt(cpu_cores as u64)),
                (
                    "offline_build_ms".to_string(),
                    Value::Float(round3(offline_build_ms)),
                ),
            ]),
        ),
        (
            "verification".to_string(),
            Value::Object(vec![
                ("answers_bit_identical".to_string(), Value::Bool(true)),
                (
                    "states_verified_against_scratch".to_string(),
                    Value::UInt(batches.len() as u64),
                ),
                (
                    "gate_answers_verified".to_string(),
                    Value::UInt(gate_answers_verified),
                ),
                (
                    "served_answers_verified".to_string(),
                    Value::UInt(queries_served as u64),
                ),
                ("updates_skipped".to_string(), Value::UInt(0)),
                (
                    "reference_fingerprint_digest".to_string(),
                    Value::Str(format!("{reference_digest:#018x}")),
                ),
            ]),
        ),
        (
            "baseline".to_string(),
            Value::Object(vec![
                (
                    "name".to_string(),
                    Value::Str("rebuild_per_edge".to_string()),
                ),
                (
                    "description".to_string(),
                    Value::Str(
                        "the pre-overlay status quo: every edge update rebuilds \
                         the CSR, the pre-computed aggregates and the index from \
                         scratch (median of one timed rebuild per batch state)"
                            .to_string(),
                    ),
                ),
                (
                    "rebuild_ms_median".to_string(),
                    Value::Float(round3(rebuild_median_ms)),
                ),
                (
                    "rebuilds_timed".to_string(),
                    Value::UInt(rebuild_ms.len() as u64),
                ),
                (
                    "updates_per_sec".to_string(),
                    Value::Float(round3(1e3 / rebuild_median_ms)),
                ),
            ]),
        ),
        (
            "results".to_string(),
            Value::Object(vec![
                (
                    "maintenance_only".to_string(),
                    Value::Object(vec![
                        (
                            "apply_ms_total".to_string(),
                            Value::Float(round3(apply_ms_total)),
                        ),
                        (
                            "per_update_ms".to_string(),
                            Value::Float(round3(per_update_ms)),
                        ),
                        (
                            "updates_per_sec".to_string(),
                            Value::Float(round3(maintain_updates_per_sec)),
                        ),
                        (
                            "vertices_recomputed".to_string(),
                            Value::UInt(gate_stats.vertices_recomputed),
                        ),
                        (
                            "compactions".to_string(),
                            Value::UInt(gate_stats.compactions),
                        ),
                    ]),
                ),
                (
                    "concurrent".to_string(),
                    Value::Object(vec![
                        (
                            "wall_seconds".to_string(),
                            Value::Float(round3(concurrent_wall_s)),
                        ),
                        (
                            "updates_per_sec".to_string(),
                            Value::Float(round3(concurrent_updates_per_sec)),
                        ),
                        (
                            "vertices_recomputed".to_string(),
                            Value::UInt(concurrent_stats.vertices_recomputed),
                        ),
                        (
                            "compactions".to_string(),
                            Value::UInt(concurrent_stats.compactions),
                        ),
                        (
                            "snapshot_swaps".to_string(),
                            Value::UInt(serving_stats.swaps),
                        ),
                        (
                            "queries_served".to_string(),
                            Value::UInt(queries_served as u64),
                        ),
                        ("query_p50_ms".to_string(), Value::Float(round3(pct(0.50)))),
                        ("query_p99_ms".to_string(), Value::Float(round3(pct(0.99)))),
                        (
                            "cache_hit_rate".to_string(),
                            Value::Float(round3(serving_stats.hit_rate())),
                        ),
                        (
                            "staleness_mean_epochs".to_string(),
                            Value::Float(round3(stale_mean)),
                        ),
                        ("staleness_max_epochs".to_string(), Value::UInt(stale_max)),
                    ]),
                ),
            ]),
        ),
        (
            "speedups".to_string(),
            Value::Object(vec![
                (
                    "updates_per_sec_vs_rebuild_per_edge".to_string(),
                    Value::Float(ratio(rebuild_median_ms, per_update_ms)),
                ),
                (
                    "concurrent_updates_per_sec_vs_rebuild_per_edge".to_string(),
                    Value::Float(ratio(rebuild_median_ms, 1e3 / concurrent_updates_per_sec)),
                ),
                (
                    "target".to_string(),
                    if full_scale {
                        Value::Float(BENCH8_TARGET_SPEEDUP)
                    } else {
                        Value::Null
                    },
                ),
            ]),
        ),
    ]);
    serde_json::to_string_pretty(&doc).expect("snapshot document serialises")
}

// ---------------------------------------------------------------------------
// bench9: the sharded offline engine at the million-vertex line
// ---------------------------------------------------------------------------

/// Worker threads (and default shard count) of the bench9 build. The shards
/// are what bound memory, so oversubscribing a small CPU is deliberate: it
/// exercises the per-shard claim queues and cross-shard stealing even on a
/// single-core runner.
const BENCH9_WORKERS: usize = 16;
/// Scale of the bit-identity gate: large enough that shard boundaries cut
/// through many chunks, small enough that the sequential unsharded reference
/// build stays cheap.
const BENCH9_GATE_SCALE: usize = 20_000;
/// Required advantage of measured per-worker scratch over the naive
/// projection (dense n-sized workspaces per worker + full-graph signature
/// table).
const BENCH9_TARGET_SCRATCH_RATIO: f64 = 4.0;
/// Streaming-update leg size.
const BENCH9_UPDATES: usize = 32;

/// The bench9 offline configuration: the bench8 streaming radius (`r_max =
/// 2`) with two thresholds so the multi-threshold scatter path runs, on
/// `workers` threads and `shards` contiguous vertex-range shards.
fn bench9_config(shards: usize) -> PrecomputeConfig {
    PrecomputeConfig::new(2, vec![0.15, 0.3])
        .with_num_threads(Some(BENCH9_WORKERS))
        .with_num_shards(Some(shards))
}

/// The bench9 graph: a locality-dominated small-world graph
/// ([`SmallWorldConfig::locality`]: ring degree 6, shortcut probability
/// 2·10⁻⁴) with uniform weights and keywords. Locality keeps `r_max`-hop
/// balls ring-sized at every scale, which is exactly the regime where
/// ball-cover-sized worker scratch beats dense n-sized scratch.
fn bench9_graph(scale: usize) -> SocialNetwork {
    use icde_graph::generators::{
        assign_keywords, assign_uniform_weights, KeywordDistribution, WeightRange,
    };
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(SNAPSHOT_SEED ^ 0xB9);
    let mut g = small_world(&SmallWorldConfig::locality(scale), &mut rng);
    assign_uniform_weights(&mut g, WeightRange::paper_default(), &mut rng);
    assign_keywords(&mut g, 12, 3, KeywordDistribution::Uniform, &mut rng);
    g
}

/// Runs the sharded offline engine at `scale` vertices with `shards` shards
/// and renders the `BENCH_9.json` document. Three legs:
///
/// 1. **Offline build** — the full pre-computation on the sharded engine,
///    with per-phase wall times, peak RSS and the measured per-worker
///    scratch footprint vs the naive dense projection.
/// 2. **Query leg** — the bench8 query pool answered off the index built
///    over the sharded tables (p50/p99).
/// 3. **Update leg** — a short Zipf edge-update stream through the
///    [`StreamingMaintainer`], reporting the reused maintenance arena's
///    resident footprint and warm signature rows.
///
/// `scale` below [`BENCH9_SCALE`] runs the same shape as a smoke test (CI).
///
/// # Panics
/// Panics when the sharded build is not **bit-identical** to the sequential
/// unsharded engine at the gate scale (structural fingerprint, float scores,
/// seed bounds, edge supports — checked before any timing), or when the
/// measured scratch misses [`BENCH9_TARGET_SCRATCH_RATIO`] at full scale.
pub fn bench9_snapshot_json(scale: usize, shards: usize) -> String {
    let full_scale = scale >= BENCH9_SCALE;

    // --- bit-identity gate (before any timing) ----------------------------
    let gate_scale = scale.min(BENCH9_GATE_SCALE);
    let gate_g = bench9_graph(gate_scale);
    let gate_reference = PrecomputedData::compute(
        &gate_g,
        PrecomputeConfig {
            parallel: false,
            ..bench9_config(1)
        },
    );
    let (gate_sharded, gate_stats) =
        PrecomputedData::compute_with_stats(&gate_g, bench9_config(shards));
    assert_eq!(
        gate_stats.shards,
        shards.min(gate_scale),
        "gate build must actually shard"
    );
    assert_eq!(
        gate_sharded.table().structural_fingerprint(),
        gate_reference.table().structural_fingerprint(),
        "sharded build diverged structurally from the sequential engine"
    );
    let gate_score_delta = gate_sharded.table().max_score_delta(gate_reference.table());
    assert_eq!(
        gate_score_delta, 0.0,
        "sharded build must be bit-identical including float scores"
    );
    assert_eq!(
        gate_sharded.seed_bounds(),
        gate_reference.seed_bounds(),
        "sharded seed bounds diverged"
    );
    assert_eq!(
        gate_sharded.edge_supports, gate_reference.edge_supports,
        "sharded edge supports diverged"
    );
    let gate_fingerprint = gate_sharded.table().structural_fingerprint();
    drop((gate_sharded, gate_reference, gate_g));

    // --- leg 1: the sharded offline build at scale ------------------------
    let g = bench9_graph(scale);
    let build_start = Instant::now();
    let (data, stats) = PrecomputedData::compute_with_stats(&g, bench9_config(shards));
    let build_secs = build_start.elapsed().as_secs_f64();

    let measured_scratch = stats.measured_scratch_bytes();
    let scratch_ratio = stats.naive_scratch_bytes as f64 / measured_scratch.max(1) as f64;
    if full_scale {
        assert!(
            scratch_ratio >= BENCH9_TARGET_SCRATCH_RATIO,
            "per-worker scratch advantage {scratch_ratio:.2}x is below the \
             {BENCH9_TARGET_SCRATCH_RATIO}x target (measured {measured_scratch} B, \
             naive projection {} B)",
            stats.naive_scratch_bytes
        );
    }
    let table_fingerprint = data.table().structural_fingerprint();

    let index_start = Instant::now();
    let index = IndexBuilder::new(data.config.clone()).build_from_precomputed(&g, data);
    let index_secs = index_start.elapsed().as_secs_f64();

    // --- leg 2: queries off the sharded-build index -----------------------
    let pool = bench8_query_pool();
    let processor = TopLProcessor::new(&g, &index);
    let mut query_ns: Vec<u64> = Vec::with_capacity(pool.len() * 3);
    let mut answers = 0u64;
    for _ in 0..3 {
        for q in &pool {
            let t = Instant::now();
            let answer = processor.run(q).expect("bench9 pool query answers");
            query_ns.push(t.elapsed().as_nanos() as u64);
            answers += answer.communities.len() as u64;
        }
    }
    query_ns.sort_unstable();
    let qpct = |p: f64| query_ns[((query_ns.len() - 1) as f64 * p).round() as usize] as f64 / 1e6;

    // --- leg 3 gate: patched maintenance is bit-identical to rebuilds -----
    // Before timing anything, replay the same update-stream shape at the
    // gate scale and assert every interleaved answer (patch path *and* a
    // forced repack) bit-identical — modulo the tie-dependent center label —
    // to a from-scratch rebuild at the same logical graph state: the BENCH_8
    // exactness discipline.
    let mut update_gate_answers = 0u64;
    {
        let gate_g = bench9_graph(gate_scale);
        let gate_index = IndexBuilder::new(bench9_config(shards)).build(&gate_g);
        let gate_stream = bench8_update_stream(&gate_g, BENCH9_UPDATES);
        let mut gate_maintainer = StreamingMaintainer::new(gate_g.clone(), gate_index)
            .with_repack_threshold(f64::INFINITY);
        let gate_batches: Vec<&[EdgeUpdate]> = gate_stream.chunks(8).collect();
        for (i, batch) in gate_batches.iter().enumerate() {
            if i == gate_batches.len() / 2 {
                // exercise the repack path mid-stream too
                gate_maintainer.force_repack_next();
            }
            gate_maintainer.apply_batch(batch);
            let scratch = bench8_rebuild_from_scratch(gate_maintainer.graph());
            let scratch_index = IndexBuilder::new(bench9_config(shards)).build(&scratch);
            let live = TopLProcessor::new(gate_maintainer.graph(), gate_maintainer.index());
            let fresh = TopLProcessor::new(&scratch, &scratch_index);
            for (qi, q) in pool.iter().enumerate() {
                assert_eq!(
                    centerless_fingerprint(&live.run(q).expect("gate live run")),
                    centerless_fingerprint(&fresh.run(q).expect("gate scratch run")),
                    "patched answer diverged from the from-scratch rebuild \
                     (batch {i}, pool query {qi})"
                );
                update_gate_answers += 1;
            }
        }
        let gs = gate_maintainer.stats();
        assert!(gs.index_patches >= 1, "gate must exercise the patch path");
        assert!(gs.repacks >= 1, "gate must exercise the repack path");
    }

    // --- leg 3: streaming updates over the sharded-build index ------------
    // Every batch ends in a structurally-shared publish through a serving
    // runtime, so per_update_ms is the full epoch cost a live deployment
    // pays: overlay apply + support patch + ball recompute + index patch +
    // snapshot publish.
    let stream = bench8_update_stream(&g, BENCH9_UPDATES);
    let update_runtime = Arc::new(
        ServingRuntime::start(ServingConfig::with_workers(1), g.clone(), index.clone())
            .expect("update-leg serving runtime starts"),
    );
    let mut maintainer = StreamingMaintainer::new(g.clone(), index);
    let update_start = Instant::now();
    for batch in stream.chunks(8) {
        maintainer.apply_batch(batch);
        maintainer
            .publish_to(&update_runtime)
            .expect("refreshed snapshot publishes");
    }
    let update_secs = update_start.elapsed().as_secs_f64();
    let stream_stats = maintainer.stats();
    assert_eq!(
        stream_stats.updates_applied(),
        BENCH9_UPDATES as u64,
        "the generated stream must apply cleanly"
    );
    assert_eq!(
        update_runtime.current().epoch() as usize,
        1 + stream.chunks(8).len(),
        "every batch must hot-swap a refreshed snapshot"
    );
    drop(
        Arc::try_unwrap(update_runtime)
            .ok()
            .expect("no outstanding update-leg runtime references")
            .shutdown(),
    );
    let arena_bytes = maintainer.arena().resident_bytes();
    let arena_rows = maintainer.arena().signature_rows_cached();

    let peak_rss = peak_rss_bytes();
    let cpu_cores = std::thread::available_parallelism().map_or(1, |p| p.get());

    let doc = Value::Object(vec![
        ("snapshot".to_string(), Value::Str("BENCH_9".to_string())),
        (
            "description".to_string(),
            Value::Str(
                "sharded offline engine (PR 9): the full pre-computation on a \
                 locality-dominated small-world graph partitioned into contiguous \
                 vertex-range shards. Each shard owns its slice of the aggregate \
                 table; workers carry ball-cover-sized scratch (lazily paged \
                 traversal workspaces + an epoch-stamped sparse signature arena) \
                 instead of dense n-sized arrays plus a full-graph signature \
                 table, and work-stealing chunk claims drain the worker's home \
                 shard before crossing shard boundaries. Before any timing the \
                 sharded build is asserted bit-identical (structural fingerprint \
                 and float scores) to the sequential unsharded engine at the \
                 gate scale. Legs: the offline build with per-phase wall times, \
                 peak RSS and measured-vs-naive worker scratch; the bench8 query \
                 pool off the resulting index; a short Zipf update stream \
                 through the streaming maintainer reusing its ball-sized arena, \
                 refreshing the index by in-place leaf/ancestor patching (gated \
                 bit-identical against from-scratch rebuilds, patch and forced \
                 repack paths both) and publishing each epoch as a structurally \
                 shared snapshot with per-phase wall times."
                    .to_string(),
            ),
        ),
        (
            "workload".to_string(),
            Value::Object(vec![
                (
                    "graph".to_string(),
                    Value::Str(
                        "small_world locality (m=6, mu=2e-4) + uniform keywords".to_string(),
                    ),
                ),
                ("vertices".to_string(), Value::UInt(g.num_vertices() as u64)),
                ("edges".to_string(), Value::UInt(g.num_edges() as u64)),
                ("seed".to_string(), Value::UInt(SNAPSHOT_SEED)),
                ("r_max".to_string(), Value::UInt(2)),
                (
                    "thresholds".to_string(),
                    Value::Array(vec![Value::Float(0.15), Value::Float(0.3)]),
                ),
                ("workers".to_string(), Value::UInt(stats.workers as u64)),
                ("shards".to_string(), Value::UInt(stats.shards as u64)),
                ("cpu_cores".to_string(), Value::UInt(cpu_cores as u64)),
            ]),
        ),
        (
            "verification".to_string(),
            Value::Object(vec![
                ("gate_scale".to_string(), Value::UInt(gate_scale as u64)),
                (
                    "sharded_bit_identical_to_sequential".to_string(),
                    Value::Bool(true),
                ),
                (
                    "max_score_delta".to_string(),
                    Value::Float(gate_score_delta),
                ),
                (
                    "gate_fingerprint".to_string(),
                    Value::Str(format!("{gate_fingerprint:#018x}")),
                ),
                (
                    "table_fingerprint".to_string(),
                    Value::Str(format!("{table_fingerprint:#018x}")),
                ),
            ]),
        ),
        (
            "offline_build".to_string(),
            Value::Object(vec![
                ("build_secs".to_string(), Value::Float(round3(build_secs))),
                (
                    "support_phase_secs".to_string(),
                    Value::Float(round3(stats.support_phase_secs)),
                ),
                (
                    "table_phase_secs".to_string(),
                    Value::Float(round3(stats.table_phase_secs)),
                ),
                (
                    "seed_phase_secs".to_string(),
                    Value::Float(round3(stats.seed_phase_secs)),
                ),
                (
                    "index_build_secs".to_string(),
                    Value::Float(round3(index_secs)),
                ),
                ("peak_rss_bytes".to_string(), Value::UInt(peak_rss)),
                (
                    "stolen_chunks".to_string(),
                    Value::UInt(stats.stolen_chunks.iter().sum::<usize>() as u64),
                ),
            ]),
        ),
        (
            "worker_scratch".to_string(),
            Value::Object(vec![
                (
                    "measured_bytes".to_string(),
                    Value::UInt(measured_scratch as u64),
                ),
                (
                    "max_worker_bytes".to_string(),
                    Value::UInt(
                        stats
                            .table_worker_scratch_bytes
                            .iter()
                            .chain(stats.seed_worker_scratch_bytes.iter())
                            .copied()
                            .max()
                            .unwrap_or(0) as u64,
                    ),
                ),
                (
                    "shared_signature_bytes".to_string(),
                    Value::UInt(stats.shared_signature_bytes as u64),
                ),
                (
                    "naive_projection_bytes".to_string(),
                    Value::UInt(stats.naive_scratch_bytes as u64),
                ),
                (
                    "advantage_ratio".to_string(),
                    Value::Float(round3(scratch_ratio)),
                ),
                (
                    "target_ratio".to_string(),
                    if full_scale {
                        Value::Float(BENCH9_TARGET_SCRATCH_RATIO)
                    } else {
                        Value::Null
                    },
                ),
            ]),
        ),
        (
            "query_leg".to_string(),
            Value::Object(vec![
                (
                    "queries_run".to_string(),
                    Value::UInt(query_ns.len() as u64),
                ),
                ("communities_returned".to_string(), Value::UInt(answers)),
                ("p50_ms".to_string(), Value::Float(round3(qpct(0.50)))),
                ("p99_ms".to_string(), Value::Float(round3(qpct(0.99)))),
            ]),
        ),
        (
            "update_leg".to_string(),
            Value::Object(vec![
                (
                    "updates_applied".to_string(),
                    Value::UInt(stream_stats.updates_applied()),
                ),
                (
                    "gate_answers_verified".to_string(),
                    Value::UInt(update_gate_answers),
                ),
                (
                    "per_update_ms".to_string(),
                    Value::Float(round3(update_secs * 1e3 / BENCH9_UPDATES as f64)),
                ),
                (
                    "vertices_recomputed".to_string(),
                    Value::UInt(stream_stats.vertices_recomputed),
                ),
                (
                    "ball_overlap".to_string(),
                    Value::UInt(stream_stats.ball_overlap),
                ),
                (
                    "index_patches".to_string(),
                    Value::UInt(stream_stats.index_patches),
                ),
                ("repacks".to_string(), Value::UInt(stream_stats.repacks)),
                (
                    "phase_ms_per_update".to_string(),
                    Value::Object(vec![
                        (
                            "support_patch".to_string(),
                            Value::Float(round3(
                                stream_stats.support_patch_secs * 1e3 / BENCH9_UPDATES as f64,
                            )),
                        ),
                        (
                            "ball_recompute".to_string(),
                            Value::Float(round3(
                                stream_stats.ball_recompute_secs * 1e3 / BENCH9_UPDATES as f64,
                            )),
                        ),
                        (
                            "index_patch".to_string(),
                            Value::Float(round3(
                                stream_stats.index_patch_secs * 1e3 / BENCH9_UPDATES as f64,
                            )),
                        ),
                        (
                            "publish".to_string(),
                            Value::Float(round3(
                                stream_stats.publish_secs * 1e3 / BENCH9_UPDATES as f64,
                            )),
                        ),
                    ]),
                ),
                (
                    "arena_resident_bytes".to_string(),
                    Value::UInt(arena_bytes as u64),
                ),
                (
                    "arena_signature_rows_cached".to_string(),
                    Value::UInt(arena_rows as u64),
                ),
            ]),
        ),
    ]);
    serde_json::to_string_pretty(&doc).expect("snapshot document serialises")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_tables_match_workload_names() {
        // names in the baseline tables must stay aligned with the measured
        // workloads (zip order is load-bearing)
        let expected = vec![
            "build_50k_small_world",
            "triangle_count_50k",
            "rhop_bfs_r3_x2000",
            "single_source_upp_x200",
        ];
        let pr1: Vec<&str> = PR1_BASELINE_MILLIS.iter().map(|(n, _)| *n).collect();
        let pr2: Vec<&str> = PR2_BASELINE_MILLIS.iter().map(|(n, _)| *n).collect();
        assert_eq!(pr1, expected);
        assert_eq!(pr2, expected);
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            assert!(rss > 0, "VmHWM must parse on linux");
        }
        // monotone: the high-water mark never shrinks
        assert!(peak_rss_bytes() >= rss);
    }

    #[test]
    fn zipf_sampling_is_skewed_and_in_range() {
        let cdf = zipf_cdf(64, BENCH7_ZIPF_S);
        assert_eq!(cdf.len(), 64);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]), "cdf must be monotone");
        assert!((cdf[63] - 1.0).abs() < 1e-12, "cdf must normalise to 1");
        let mut state = 7u64;
        let mut counts = [0usize; 64];
        for _ in 0..10_000 {
            let u = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
            counts[sample_zipf(&cdf, u)] += 1;
        }
        // rank 0 must dominate the tail under Zipf(1.1)
        assert!(counts[0] > counts[32..].iter().sum::<usize>());
    }

    #[test]
    fn bench7_query_pool_is_distinct_and_valid() {
        let pool = bench7_query_pool(64);
        assert_eq!(pool.len(), 64);
        let distinct: std::collections::HashSet<u64> =
            pool.iter().map(|q| q.canonical_fingerprint()).collect();
        assert_eq!(distinct.len(), 64, "pool queries must be distinct");
        for q in &pool {
            q.canonicalize().expect("pool queries must validate");
        }
    }

    #[test]
    fn workspace_primitives_match_references_on_a_small_snapshot() {
        // the bench3 verification logic itself, exercised at test-friendly
        // scale: bounded BFS and floored upp must agree with the naive
        // formulations bit for bit
        let g = snapshot_graph(600);
        for v in bfs_sources(600).take(40) {
            let ws_reached = bfs_within(&g, v, 3).distances.len() as u64;
            assert_eq!(ws_reached, reference_bfs_reached(&g, v, 3), "source {v}");
        }
        for v in upp_sources(600).take(20) {
            let ws = single_source_upp(&g, v, 0.01);
            let reference = reference_single_source_upp(&g, v, 0.01);
            assert_eq!(ws.len(), reference.len());
            for (i, (a, b)) in ws.iter().zip(reference.iter()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "source {v} vertex {i}");
            }
        }
    }
}
