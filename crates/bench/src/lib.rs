//! # icde-bench — benchmark harness reproducing the paper's evaluation
//!
//! Section VIII of the paper evaluates TopL-ICDE and DTopL-ICDE over five
//! graph families and a grid of parameters (Table III). This crate contains
//! everything needed to regenerate every table and figure:
//!
//! * [`params`] — the Table III parameter grid (defaults in bold there are
//!   defaults here),
//! * [`workload`] — dataset construction and index building for each
//!   experiment,
//! * [`runner`] — timed executions of our approach and the baselines,
//!   returning per-row measurements,
//! * [`figures`] — one driver per table/figure that produces the same
//!   rows/series the paper reports,
//! * [`report`] — plain-text table rendering of those rows.
//!
//! Two front-ends consume the harness: the `experiments` binary
//! (`cargo run -p icde-bench --release --bin experiments -- <figure>`) and
//! the Criterion benches under `benches/`.

pub mod figures;
pub mod params;
pub mod perf;
pub mod report;
pub mod runner;
pub mod workload;

pub use params::ExperimentParams;
pub use report::Table;
pub use workload::Workload;
