//! The Table III parameter grid.
//!
//! | Parameter | Values (default in bold) |
//! |-----------|--------------------------|
//! | influence threshold θ | 0.1, **0.2**, 0.3 |
//! | query keyword set size \|Q\| | 2, 3, **5**, 8, 10 |
//! | truss support k | 3, **4**, 5 |
//! | radius r | 1, **2**, 3 |
//! | result size L | 2, 3, **5**, 8, 10 |
//! | keywords per vertex \|v.W\| | 1, 2, **3**, 4, 5 |
//! | keyword domain size \|Σ\| | 10, 20, **50**, 80 |
//! | graph size \|V(G)\| | 10K … 1M (paper default **250K**) |
//! | DTopL-ICDE multiplier n | 2, **3**, 5, 8, 10 |
//!
//! The harness keeps the same sweep values; only the *default graph size* is
//! scaled down (configurable via `--scale`) because the paper's Python
//! implementation ran for hours at 250K vertices and the point of the
//! reproduction is the relative shape, not the absolute seconds.

use serde::{Deserialize, Serialize};

/// Default number of vertices used by the experiment harness (the paper's
/// default is 250K; see the module docs for why this is smaller by default).
pub const DEFAULT_SCALE: usize = 5_000;

/// Sweep values for the influence threshold θ.
pub const THETA_VALUES: [f64; 3] = [0.1, 0.2, 0.3];
/// Sweep values for the query keyword set size |Q|.
pub const QUERY_KEYWORDS_VALUES: [usize; 5] = [2, 3, 5, 8, 10];
/// Sweep values for the truss support k.
pub const SUPPORT_VALUES: [u32; 3] = [3, 4, 5];
/// Sweep values for the radius r.
pub const RADIUS_VALUES: [u32; 3] = [1, 2, 3];
/// Sweep values for the result size L.
pub const RESULT_SIZE_VALUES: [usize; 5] = [2, 3, 5, 8, 10];
/// Sweep values for the number of keywords per vertex |v.W|.
pub const KEYWORDS_PER_VERTEX_VALUES: [usize; 5] = [1, 2, 3, 4, 5];
/// Sweep values for the keyword domain size |Σ|.
pub const KEYWORD_DOMAIN_VALUES: [u32; 4] = [10, 20, 50, 80];
/// Sweep values for the graph size |V(G)| (the full paper sweep).
pub const GRAPH_SIZE_VALUES: [usize; 7] =
    [10_000, 25_000, 50_000, 100_000, 250_000, 500_000, 1_000_000];
/// Sweep values for the DTopL-ICDE candidate multiplier n.
pub const MULTIPLIER_VALUES: [usize; 5] = [2, 3, 5, 8, 10];

/// One concrete parameter assignment (a row of the experiment grid).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentParams {
    /// Influence threshold θ.
    pub theta: f64,
    /// Query keyword set size |Q|.
    pub query_keywords: usize,
    /// Truss support parameter k.
    pub support: u32,
    /// Seed-community radius r.
    pub radius: u32,
    /// Result size L.
    pub result_size: usize,
    /// Keywords per vertex |v.W|.
    pub keywords_per_vertex: usize,
    /// Keyword domain size |Σ|.
    pub keyword_domain: u32,
    /// Graph size |V(G)|.
    pub graph_size: usize,
    /// DTopL-ICDE candidate multiplier n.
    pub multiplier: usize,
    /// RNG seed shared by graph generation and query sampling.
    pub seed: u64,
}

impl Default for ExperimentParams {
    /// Table III defaults at the harness's default scale.
    fn default() -> Self {
        ExperimentParams {
            theta: 0.2,
            query_keywords: 5,
            support: 4,
            radius: 2,
            result_size: 5,
            keywords_per_vertex: 3,
            keyword_domain: 50,
            graph_size: DEFAULT_SCALE,
            multiplier: 3,
            seed: 20240614,
        }
    }
}

impl ExperimentParams {
    /// Defaults with an explicit graph size.
    pub fn at_scale(graph_size: usize) -> Self {
        ExperimentParams {
            graph_size,
            ..Default::default()
        }
    }

    /// Returns a copy with a different θ.
    pub fn with_theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }

    /// Returns a copy with a different |Q|.
    pub fn with_query_keywords(mut self, q: usize) -> Self {
        self.query_keywords = q;
        self
    }

    /// Returns a copy with a different k.
    pub fn with_support(mut self, k: u32) -> Self {
        self.support = k;
        self
    }

    /// Returns a copy with a different radius r.
    pub fn with_radius(mut self, r: u32) -> Self {
        self.radius = r;
        self
    }

    /// Returns a copy with a different L.
    pub fn with_result_size(mut self, l: usize) -> Self {
        self.result_size = l;
        self
    }

    /// Returns a copy with a different |v.W|.
    pub fn with_keywords_per_vertex(mut self, w: usize) -> Self {
        self.keywords_per_vertex = w;
        self
    }

    /// Returns a copy with a different |Σ|.
    pub fn with_keyword_domain(mut self, d: u32) -> Self {
        self.keyword_domain = d;
        self
    }

    /// Returns a copy with a different graph size.
    pub fn with_graph_size(mut self, n: usize) -> Self {
        self.graph_size = n;
        self
    }

    /// Returns a copy with a different DTopL multiplier n.
    pub fn with_multiplier(mut self, n: usize) -> Self {
        self.multiplier = n;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_iii() {
        let p = ExperimentParams::default();
        assert_eq!(p.theta, 0.2);
        assert_eq!(p.query_keywords, 5);
        assert_eq!(p.support, 4);
        assert_eq!(p.radius, 2);
        assert_eq!(p.result_size, 5);
        assert_eq!(p.keywords_per_vertex, 3);
        assert_eq!(p.keyword_domain, 50);
        assert_eq!(p.multiplier, 3);
    }

    #[test]
    fn sweep_values_match_table_iii() {
        assert_eq!(THETA_VALUES.len(), 3);
        assert_eq!(QUERY_KEYWORDS_VALUES, [2, 3, 5, 8, 10]);
        assert_eq!(SUPPORT_VALUES, [3, 4, 5]);
        assert_eq!(RADIUS_VALUES, [1, 2, 3]);
        assert_eq!(RESULT_SIZE_VALUES, [2, 3, 5, 8, 10]);
        assert_eq!(KEYWORDS_PER_VERTEX_VALUES, [1, 2, 3, 4, 5]);
        assert_eq!(KEYWORD_DOMAIN_VALUES, [10, 20, 50, 80]);
        assert_eq!(GRAPH_SIZE_VALUES[0], 10_000);
        assert_eq!(*GRAPH_SIZE_VALUES.last().unwrap(), 1_000_000);
        assert_eq!(MULTIPLIER_VALUES, [2, 3, 5, 8, 10]);
    }

    #[test]
    fn builder_methods_override_single_fields() {
        let p = ExperimentParams::default()
            .with_theta(0.3)
            .with_support(5)
            .with_radius(1)
            .with_result_size(8)
            .with_query_keywords(2)
            .with_keywords_per_vertex(4)
            .with_keyword_domain(10)
            .with_graph_size(1234)
            .with_multiplier(5)
            .with_seed(7);
        assert_eq!(p.theta, 0.3);
        assert_eq!(p.support, 5);
        assert_eq!(p.radius, 1);
        assert_eq!(p.result_size, 8);
        assert_eq!(p.query_keywords, 2);
        assert_eq!(p.keywords_per_vertex, 4);
        assert_eq!(p.keyword_domain, 10);
        assert_eq!(p.graph_size, 1234);
        assert_eq!(p.multiplier, 5);
        assert_eq!(p.seed, 7);
    }
}
