//! Workload construction: datasets, indexes and query sampling.
//!
//! A [`Workload`] bundles one generated social network with the offline index
//! built over it and the query keyword set sampled for the experiment — the
//! online phases of our approach and of every baseline then run against the
//! same objects, exactly as in the paper's setup ("we randomly select |Q|
//! keywords from the keyword domain Σ and form a query keyword set Q").

use crate::params::ExperimentParams;
use icde_core::dtopl::DTopLQuery;
use icde_core::index::{CommunityIndex, IndexBuilder};
use icde_core::precompute::PrecomputeConfig;
use icde_core::query::TopLQuery;
use icde_graph::generators::{DatasetKind, DatasetSpec};
use icde_graph::{KeywordSet, SocialNetwork};
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// A fully-prepared experiment workload.
pub struct Workload {
    /// The dataset family the graph was generated from.
    pub kind: DatasetKind,
    /// The generated social network.
    pub graph: SocialNetwork,
    /// The offline index (pre-computed data + tree).
    pub index: CommunityIndex,
    /// Time spent generating the graph.
    pub generation_time: Duration,
    /// Time spent in the offline phase (pre-computation + index build).
    pub offline_time: Duration,
    /// Parameters the workload was built with.
    pub params: ExperimentParams,
}

/// Samples the query keyword set `Q` for `params` (|Q| keywords drawn from Σ
/// without replacement, deterministic per seed) and assembles the TopL-ICDE
/// query. Exposed separately from [`Workload`] so parameter sweeps that only
/// change online parameters can reuse one workload with many queries.
pub fn sample_topl_query(params: &ExperimentParams) -> TopLQuery {
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x5eed_cafe);
    let count = params.query_keywords.min(params.keyword_domain as usize);
    let chosen = sample(&mut rng, params.keyword_domain as usize, count);
    let keywords = KeywordSet::from_ids(chosen.iter().map(|i| i as u32));
    TopLQuery::new(
        keywords,
        params.support,
        params.radius,
        params.theta,
        params.result_size,
    )
}

/// The DTopL-ICDE query for `params` (base query plus the multiplier `n`).
pub fn sample_dtopl_query(params: &ExperimentParams) -> DTopLQuery {
    DTopLQuery::new(sample_topl_query(params), params.multiplier)
}

impl Workload {
    /// Generates the graph for `kind` under `params` and builds the offline
    /// index over it.
    pub fn build(kind: DatasetKind, params: &ExperimentParams) -> Self {
        let spec = DatasetSpec::new(kind, params.graph_size, params.seed)
            .with_keyword_domain(params.keyword_domain)
            .with_keywords_per_vertex(params.keywords_per_vertex);
        let gen_start = Instant::now();
        let graph = spec.generate();
        let generation_time = gen_start.elapsed();

        let offline_start = Instant::now();
        let config = PrecomputeConfig {
            r_max: 3,
            thresholds: vec![0.1, 0.2, 0.3],
            signature_bits: 128,
            parallel: true,
            num_threads: None,
            num_shards: None,
        };
        let index = IndexBuilder::new(config).build(&graph);
        let offline_time = offline_start.elapsed();

        Workload {
            kind,
            graph,
            index,
            generation_time,
            offline_time,
            params: params.clone(),
        }
    }

    /// Samples the query keyword set `Q` (|Q| keywords drawn from Σ without
    /// replacement) and assembles the TopL-ICDE query from the parameters.
    pub fn topl_query(&self) -> TopLQuery {
        sample_topl_query(&self.params)
    }

    /// The TopL-ICDE query for an overridden parameter set (used by sweeps
    /// that only change online parameters, so the graph/index are reused).
    pub fn topl_query_with(&self, params: &ExperimentParams) -> TopLQuery {
        sample_topl_query(params)
    }

    /// The DTopL-ICDE query corresponding to the parameters.
    pub fn dtopl_query(&self) -> DTopLQuery {
        sample_dtopl_query(&self.params)
    }

    /// The DTopL-ICDE query for an overridden parameter set.
    pub fn dtopl_query_with(&self, params: &ExperimentParams) -> DTopLQuery {
        sample_dtopl_query(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> ExperimentParams {
        ExperimentParams::at_scale(300).with_keyword_domain(12)
    }

    #[test]
    fn workload_builds_graph_and_index() {
        let w = Workload::build(DatasetKind::Uniform, &tiny_params());
        assert_eq!(w.graph.num_vertices(), 300);
        assert_eq!(w.index.num_graph_vertices(), 300);
        assert!(w.offline_time > Duration::ZERO);
    }

    #[test]
    fn query_respects_parameters() {
        let w = Workload::build(DatasetKind::Zipf, &tiny_params().with_query_keywords(4));
        let q = w.topl_query();
        assert_eq!(q.keywords.len(), 4);
        assert_eq!(q.support, 4);
        assert_eq!(q.radius, 2);
        assert_eq!(q.theta, 0.2);
        assert_eq!(q.l, 5);
        for kw in q.keywords.iter() {
            assert!(kw.0 < 12);
        }
        let d = w.dtopl_query();
        assert_eq!(d.candidate_multiplier, 3);
        assert_eq!(d.base, q);
    }

    #[test]
    fn query_sampling_is_deterministic_per_seed() {
        let p = tiny_params();
        let a = Workload::build(DatasetKind::Uniform, &p).topl_query();
        let b = Workload::build(DatasetKind::Uniform, &p).topl_query();
        assert_eq!(a.keywords, b.keywords);
        let c = Workload::build(DatasetKind::Uniform, &p.with_seed(99)).topl_query();
        // different seed very likely changes the sampled keywords
        assert!(a.keywords != c.keywords || a.keywords.len() <= 1);
    }

    #[test]
    fn keyword_count_capped_by_domain() {
        let p = tiny_params().with_keyword_domain(3).with_query_keywords(10);
        let w = Workload::build(DatasetKind::Uniform, &p);
        assert_eq!(w.topl_query().keywords.len(), 3);
    }
}
