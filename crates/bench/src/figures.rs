//! One driver per table/figure of the paper's evaluation (Section VIII).
//!
//! Every driver builds the workload(s) it needs, runs the relevant methods
//! and returns a [`Table`] whose rows mirror the series the paper plots:
//!
//! * [`table2_dataset_statistics`] — Table II,
//! * [`fig2_datasets`] — Figure 2 (TopL-ICDE vs ATindex per dataset),
//! * [`fig3_*`] — Figure 3(a)–(h) robustness sweeps,
//! * [`fig4_ablation`] — Figure 4(a)/(b) pruning ablation,
//! * [`fig5_case_study`] — Figure 5 (Top1-ICDE vs 4-core),
//! * [`fig6_*`] — Figure 6(a)–(e) DTopL-ICDE evaluation.

use crate::params::{self, ExperimentParams};
use crate::report::{seconds, Table};
use crate::runner::{
    dtopl_accuracy, run_atindex, run_dtopl_query, run_topl_query, run_topl_with_toggles,
};
use crate::workload::{sample_dtopl_query, sample_topl_query, Workload};
use icde_core::baseline::kcore::kcore_community;
use icde_core::dtopl::DTopLStrategy;
use icde_core::topl::{PruningToggles, TopLProcessor};
use icde_graph::generators::DatasetKind;
use icde_truss::triangle::{count_triangles, global_clustering_coefficient};

/// The synthetic graph families (Uni, Gau, Zipf) used by the robustness and
/// DTopL sweeps.
pub const SYNTHETIC_KINDS: [DatasetKind; 3] = [
    DatasetKind::Uniform,
    DatasetKind::Gaussian,
    DatasetKind::Zipf,
];

/// Table II: statistics of the (stand-in) real graphs plus the synthetic
/// families at the harness scale.
pub fn table2_dataset_statistics(params: &ExperimentParams) -> Table {
    let mut table = Table::new(
        "Table II: dataset statistics (DBLP*/Amazon* are synthetic stand-ins, see DESIGN.md)",
        &[
            "dataset",
            "|V(G)|",
            "|E(G)|",
            "avg degree",
            "triangles",
            "clustering",
        ],
    );
    for kind in DatasetKind::ALL {
        let spec = icde_graph::generators::DatasetSpec::new(kind, params.graph_size, params.seed)
            .with_keyword_domain(params.keyword_domain)
            .with_keywords_per_vertex(params.keywords_per_vertex);
        let g = spec.generate();
        table.push_row(vec![
            kind.label().to_string(),
            g.num_vertices().to_string(),
            g.num_edges().to_string(),
            format!("{:.2}", g.average_degree()),
            count_triangles(&g).to_string(),
            format!("{:.4}", global_clustering_coefficient(&g)),
        ]);
    }
    table
}

/// Figure 2: TopL-ICDE vs ATindex wall-clock time on all five datasets with
/// default parameters.
pub fn fig2_datasets(params: &ExperimentParams) -> Table {
    let mut table = Table::new(
        "Figure 2: TopL-ICDE vs ATindex wall clock time (seconds)",
        &["dataset", "TopL-ICDE (s)", "ATindex (s)", "speedup"],
    );
    for kind in DatasetKind::ALL {
        let workload = Workload::build(kind, params);
        let ours = run_topl_with_toggles(&workload, PruningToggles::all(), "TopL-ICDE");
        let at = run_atindex(&workload);
        let speedup = if ours.seconds() > 0.0 {
            at.seconds() / ours.seconds()
        } else {
            f64::INFINITY
        };
        table.push_row(vec![
            kind.label().to_string(),
            seconds(ours.wall_clock),
            seconds(at.wall_clock),
            format!("{speedup:.1}x"),
        ]);
    }
    table
}

/// Generic Figure 3 sweep over an online parameter: one workload per
/// synthetic family, one query per parameter value.
fn fig3_online_sweep<T: std::fmt::Display + Copy>(
    title: &str,
    axis: &str,
    values: &[T],
    base: &ExperimentParams,
    apply: impl Fn(ExperimentParams, T) -> ExperimentParams,
) -> Table {
    let mut headers: Vec<String> = vec![axis.to_string()];
    headers.extend(SYNTHETIC_KINDS.iter().map(|k| format!("{} (s)", k.label())));
    let mut table = Table::new(
        title,
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let workloads: Vec<Workload> = SYNTHETIC_KINDS
        .iter()
        .map(|k| Workload::build(*k, base))
        .collect();
    for &value in values {
        let mut row = vec![value.to_string()];
        for workload in &workloads {
            let p = apply(base.clone(), value);
            let query = sample_topl_query(&p);
            let m = run_topl_query(workload, &query, PruningToggles::all(), "TopL-ICDE");
            row.push(seconds(m.wall_clock));
        }
        table.push_row(row);
    }
    table
}

/// Figure 3(a): vary the influence threshold θ.
pub fn fig3_theta(base: &ExperimentParams) -> Table {
    fig3_online_sweep(
        "Figure 3(a): wall clock time vs influence threshold theta",
        "theta",
        &params::THETA_VALUES,
        base,
        |p, v| p.with_theta(v),
    )
}

/// Figure 3(b): vary the query keyword set size |Q|.
pub fn fig3_query_keywords(base: &ExperimentParams) -> Table {
    fig3_online_sweep(
        "Figure 3(b): wall clock time vs query keyword set size |Q|",
        "|Q|",
        &params::QUERY_KEYWORDS_VALUES,
        base,
        |p, v| p.with_query_keywords(v),
    )
}

/// Figure 3(c): vary the truss support parameter k.
pub fn fig3_support(base: &ExperimentParams) -> Table {
    fig3_online_sweep(
        "Figure 3(c): wall clock time vs truss support k",
        "k",
        &params::SUPPORT_VALUES,
        base,
        |p, v| p.with_support(v),
    )
}

/// Figure 3(d): vary the radius r.
pub fn fig3_radius(base: &ExperimentParams) -> Table {
    fig3_online_sweep(
        "Figure 3(d): wall clock time vs radius r",
        "r",
        &params::RADIUS_VALUES,
        base,
        |p, v| p.with_radius(v),
    )
}

/// Figure 3(e): vary the result size L.
pub fn fig3_result_size(base: &ExperimentParams) -> Table {
    fig3_online_sweep(
        "Figure 3(e): wall clock time vs result size L",
        "L",
        &params::RESULT_SIZE_VALUES,
        base,
        |p, v| p.with_result_size(v),
    )
}

/// Generic Figure 3 sweep over a parameter that changes the *graph* (keywords
/// per vertex, keyword domain, graph size): one workload per (family, value).
fn fig3_offline_sweep<T: std::fmt::Display + Copy>(
    title: &str,
    axis: &str,
    values: &[T],
    base: &ExperimentParams,
    apply: impl Fn(ExperimentParams, T) -> ExperimentParams,
) -> Table {
    let mut headers: Vec<String> = vec![axis.to_string()];
    headers.extend(SYNTHETIC_KINDS.iter().map(|k| format!("{} (s)", k.label())));
    let mut table = Table::new(
        title,
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for &value in values {
        let p = apply(base.clone(), value);
        let mut row = vec![value.to_string()];
        for kind in SYNTHETIC_KINDS {
            let workload = Workload::build(kind, &p);
            let query = sample_topl_query(&p);
            let m = run_topl_query(&workload, &query, PruningToggles::all(), "TopL-ICDE");
            row.push(seconds(m.wall_clock));
        }
        table.push_row(row);
    }
    table
}

/// Figure 3(f): vary the number of keywords per vertex |v.W|.
pub fn fig3_keywords_per_vertex(base: &ExperimentParams) -> Table {
    fig3_offline_sweep(
        "Figure 3(f): wall clock time vs keywords per vertex |v.W|",
        "|v.W|",
        &params::KEYWORDS_PER_VERTEX_VALUES,
        base,
        |p, v| p.with_keywords_per_vertex(v),
    )
}

/// Figure 3(g): vary the keyword domain size |Σ|.
pub fn fig3_keyword_domain(base: &ExperimentParams) -> Table {
    fig3_offline_sweep(
        "Figure 3(g): wall clock time vs keyword domain size |Sigma|",
        "|Sigma|",
        &params::KEYWORD_DOMAIN_VALUES,
        base,
        |p, v| p.with_keyword_domain(v),
    )
}

/// Figure 3(h): scalability in the graph size |V(G)|.
pub fn fig3_graph_size(base: &ExperimentParams, sizes: &[usize]) -> Table {
    fig3_offline_sweep(
        "Figure 3(h): wall clock time vs graph size |V(G)|",
        "|V(G)|",
        sizes,
        base,
        |p, v| p.with_graph_size(v),
    )
}

/// Figure 4: ablation of the pruning rules — (a) pruned candidate
/// communities, (b) wall-clock time — per dataset and pruning combination.
pub fn fig4_ablation(params: &ExperimentParams) -> (Table, Table) {
    let combos: [(&str, PruningToggles); 3] = [
        ("keyword", PruningToggles::keyword_only()),
        ("keyword+support", PruningToggles::keyword_support()),
        ("keyword+support+score", PruningToggles::all()),
    ];
    let mut pruned = Table::new(
        "Figure 4(a): number of pruned candidate communities",
        &[
            "dataset",
            "keyword",
            "keyword+support",
            "keyword+support+score",
        ],
    );
    let mut time = Table::new(
        "Figure 4(b): wall clock time per pruning combination (seconds)",
        &[
            "dataset",
            "keyword",
            "keyword+support",
            "keyword+support+score",
        ],
    );
    for kind in DatasetKind::ALL {
        let workload = Workload::build(kind, params);
        let mut pruned_row = vec![kind.label().to_string()];
        let mut time_row = vec![kind.label().to_string()];
        for (label, toggles) in combos {
            let m = run_topl_with_toggles(&workload, toggles, label);
            // "Pruned communities" counts every candidate centre whose r-hop
            // region was never refined — whether it was discarded by a
            // community-level rule, skipped under a pruned index entry, or
            // never reached thanks to early termination.
            let refined = m.stats.candidates_refined + m.stats.candidates_without_community;
            let pruned_count = workload.graph.num_vertices().saturating_sub(refined);
            pruned_row.push(pruned_count.to_string());
            time_row.push(seconds(m.wall_clock));
        }
        pruned.push_row(pruned_row);
        time.push_row(time_row);
    }
    (pruned, time)
}

/// Figure 5: case study comparing the Top1-ICDE seed community against the
/// 4-core community around the same centre on the Amazon-like graph.
pub fn fig5_case_study(params: &ExperimentParams) -> Table {
    let mut table = Table::new(
        "Figure 5: Top1-ICDE community vs 4-core community (Amazon*)",
        &[
            "method",
            "seed size",
            "influential score",
            "influenced users",
        ],
    );
    // The case study needs at least one valid community to talk about. The
    // synthetic Amazon* stand-in assigns keywords independently (no category
    // homophily), so with the default |Q| = 5 out of |Σ| = 50 a keyword-
    // homogeneous 4-truss may simply not exist at harness scale; widen the
    // query keyword set and, if necessary, relax k to 3 — the comparison
    // against the k-core of the same k stays apples-to-apples.
    let p = params
        .clone()
        .with_result_size(1)
        .with_query_keywords(params.query_keywords.max(10));
    let workload = Workload::build(DatasetKind::AmazonLike, &p);
    let mut query = sample_topl_query(&p);
    let mut answer = TopLProcessor::new(&workload.graph, &workload.index)
        .run(&query)
        .expect("valid query");
    if answer.communities.is_empty() && query.support > 3 {
        query.support = 3;
        answer = TopLProcessor::new(&workload.graph, &workload.index)
            .run(&query)
            .expect("valid query");
    }
    match answer.communities.first() {
        Some(best) => {
            table.push_row(vec![
                "Top1-ICDE".to_string(),
                best.len().to_string(),
                format!("{:.2}", best.influential_score),
                best.influenced_only().to_string(),
            ]);
            match kcore_community(&workload.graph, best.center, query.support, p.theta) {
                Some(core) => table.push_row(vec![
                    format!("{}-core", query.support),
                    core.vertices.len().to_string(),
                    format!("{:.2}", core.influential_score),
                    (core.influenced_size - core.vertices.len()).to_string(),
                ]),
                None => table.push_row(vec![
                    format!("{}-core", query.support),
                    "0".to_string(),
                    "0.00".to_string(),
                    "0".to_string(),
                ]),
            }
        }
        None => {
            table.push_row(vec![
                "Top1-ICDE".to_string(),
                "0".to_string(),
                "0.00".to_string(),
                "0".to_string(),
            ]);
        }
    }
    table
}

/// Figure 6(a): DTopL-ICDE strategies per dataset. The Optimal strategy is
/// only evaluated when `include_optimal` is set (it is exponential in `nL`).
pub fn fig6_datasets(params: &ExperimentParams, include_optimal: bool) -> Table {
    let mut headers = vec!["dataset", "Greedy_WP (s)", "Greedy_WoP (s)"];
    if include_optimal {
        headers.push("Optimal (s)");
    }
    let mut table = Table::new(
        "Figure 6(a): DTopL-ICDE wall clock time per dataset",
        &headers,
    );
    for kind in DatasetKind::ALL {
        let workload = Workload::build(kind, params);
        let query = sample_dtopl_query(params);
        let wp = run_dtopl_query(&workload, &query, DTopLStrategy::GreedyWithPruning);
        let wop = run_dtopl_query(&workload, &query, DTopLStrategy::GreedyWithoutPruning);
        let mut row = vec![
            kind.label().to_string(),
            seconds(wp.wall_clock),
            seconds(wop.wall_clock),
        ];
        if include_optimal {
            let opt = run_dtopl_query(&workload, &query, DTopLStrategy::Optimal);
            row.push(seconds(opt.wall_clock));
        }
        table.push_row(row);
    }
    table
}

/// Generic Figure 6 sweep over an online DTopL parameter on the synthetic
/// families.
fn fig6_online_sweep<T: std::fmt::Display + Copy>(
    title: &str,
    axis: &str,
    values: &[T],
    base: &ExperimentParams,
    apply: impl Fn(ExperimentParams, T) -> ExperimentParams,
) -> Table {
    let mut headers: Vec<String> = vec![axis.to_string()];
    headers.extend(SYNTHETIC_KINDS.iter().map(|k| format!("{} (s)", k.label())));
    let mut table = Table::new(
        title,
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let workloads: Vec<Workload> = SYNTHETIC_KINDS
        .iter()
        .map(|k| Workload::build(*k, base))
        .collect();
    for &value in values {
        let mut row = vec![value.to_string()];
        for workload in &workloads {
            let p = apply(base.clone(), value);
            let query = sample_dtopl_query(&p);
            let m = run_dtopl_query(workload, &query, DTopLStrategy::GreedyWithPruning);
            row.push(seconds(m.wall_clock));
        }
        table.push_row(row);
    }
    table
}

/// Figure 6(b): DTopL-ICDE wall-clock time vs result size L.
pub fn fig6_result_size(base: &ExperimentParams) -> Table {
    fig6_online_sweep(
        "Figure 6(b): DTopL-ICDE wall clock time vs result size L",
        "L",
        &params::RESULT_SIZE_VALUES,
        base,
        |p, v| p.with_result_size(v),
    )
}

/// Figure 6(c): DTopL-ICDE wall-clock time vs the candidate multiplier n.
pub fn fig6_multiplier(base: &ExperimentParams) -> Table {
    fig6_online_sweep(
        "Figure 6(c): DTopL-ICDE wall clock time vs parameter n",
        "n",
        &params::MULTIPLIER_VALUES,
        base,
        |p, v| p.with_multiplier(v),
    )
}

/// Figure 6(d): DTopL-ICDE scalability in the graph size.
pub fn fig6_graph_size(base: &ExperimentParams, sizes: &[usize]) -> Table {
    let mut headers: Vec<String> = vec!["|V(G)|".to_string()];
    headers.extend(SYNTHETIC_KINDS.iter().map(|k| format!("{} (s)", k.label())));
    let mut table = Table::new(
        "Figure 6(d): DTopL-ICDE wall clock time vs graph size |V(G)|",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for &size in sizes {
        let p = base.clone().with_graph_size(size);
        let mut row = vec![size.to_string()];
        for kind in SYNTHETIC_KINDS {
            let workload = Workload::build(kind, &p);
            let query = sample_dtopl_query(&p);
            let m = run_dtopl_query(&workload, &query, DTopLStrategy::GreedyWithPruning);
            row.push(seconds(m.wall_clock));
        }
        table.push_row(row);
    }
    table
}

/// Figure 6(e): DTopL-ICDE accuracy (greedy diversity score / optimal
/// diversity score) on small graphs, as in the paper (|V| = 1K, |v.W| = 3,
/// |Σ| = 20).
pub fn fig6_accuracy(base: &ExperimentParams) -> Table {
    let mut table = Table::new(
        "Figure 6(e): DTopL-ICDE accuracy vs Optimal",
        &["dataset", "accuracy"],
    );
    let p = base
        .clone()
        .with_graph_size(base.graph_size.min(1_000))
        .with_keyword_domain(20)
        .with_keywords_per_vertex(3)
        .with_result_size(base.result_size.min(3));
    for kind in SYNTHETIC_KINDS {
        let workload = Workload::build(kind, &p);
        let accuracy = dtopl_accuracy(&workload);
        table.push_row(vec![kind.label().to_string(), format!("{:.5}", accuracy)]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny scale so the whole figure suite runs quickly under `cargo test`.
    fn tiny() -> ExperimentParams {
        ExperimentParams::at_scale(220)
            .with_keyword_domain(12)
            .with_result_size(3)
    }

    #[test]
    fn table2_has_all_datasets() {
        let t = table2_dataset_statistics(&tiny());
        assert_eq!(t.len(), DatasetKind::ALL.len());
    }

    #[test]
    fn fig2_produces_rows_for_every_dataset() {
        let t = fig2_datasets(&tiny());
        assert_eq!(t.len(), 5);
        for row in &t.rows {
            assert_eq!(row.len(), 4);
            assert!(row[1].parse::<f64>().unwrap() >= 0.0);
            assert!(row[2].parse::<f64>().unwrap() >= 0.0);
        }
    }

    #[test]
    fn fig3_sweeps_produce_expected_shapes() {
        let p = tiny();
        assert_eq!(fig3_theta(&p).len(), params::THETA_VALUES.len());
        assert_eq!(fig3_support(&p).len(), params::SUPPORT_VALUES.len());
        assert_eq!(fig3_radius(&p).len(), params::RADIUS_VALUES.len());
        let sizes = [150usize, 250];
        let t = fig3_graph_size(&p, &sizes);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn fig4_ablation_counts_are_monotone() {
        let (pruned, time) = fig4_ablation(&tiny());
        assert_eq!(pruned.len(), 5);
        assert_eq!(time.len(), 5);
        for row in &pruned.rows {
            let kw: usize = row[1].parse().unwrap();
            let ks: usize = row[2].parse().unwrap();
            let all: usize = row[3].parse().unwrap();
            assert!(ks >= kw, "{row:?}");
            assert!(all >= ks, "{row:?}");
        }
    }

    #[test]
    fn fig5_reports_both_methods() {
        let t = fig5_case_study(&tiny());
        assert!(!t.is_empty());
        assert_eq!(t.rows[0][0], "Top1-ICDE");
    }

    #[test]
    fn fig6_tables() {
        let p = tiny();
        let a = fig6_datasets(&p, false);
        assert_eq!(a.len(), 5);
        let acc = fig6_accuracy(
            &ExperimentParams::at_scale(200)
                .with_keyword_domain(12)
                .with_result_size(2),
        );
        assert_eq!(acc.len(), 3);
        for row in &acc.rows {
            let v: f64 = row[1].parse().unwrap();
            assert!((0.6..=1.0 + 1e-9).contains(&v), "accuracy {v}");
        }
    }
}
