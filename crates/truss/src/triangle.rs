//! Triangle counting and enumeration.
//!
//! Triangles are the building block of the k-truss definition: an edge's
//! support is the number of triangles through it, and stable social ties are
//! modelled as edges embedded in many triangles ("sharing common friends").

use icde_graph::{EdgeId, SocialNetwork, VertexId, VertexSubset};

/// Counts the triangles of the whole graph.
///
/// Uses the standard ordered-enumeration trick: each triangle `{a < b < c}`
/// is counted exactly once by intersecting the adjacency lists of its two
/// smallest endpoints.
pub fn count_triangles(g: &SocialNetwork) -> u64 {
    let mut total = 0u64;
    for (_, u, v) in g.edges() {
        // u < v by canonical orientation; count common neighbours above v to
        // count each triangle once. One allocation-free merge over the two
        // CSR slices, entered past `v` by binary search.
        total += g.common_neighbor_count_above(u, v, v) as u64;
    }
    total
}

/// Counts triangles restricted to a vertex subset.
pub fn count_triangles_in_subset(g: &SocialNetwork, subset: &VertexSubset) -> u64 {
    let mut total = 0u64;
    for (_, u, v) in subset.induced_edges(g) {
        g.for_each_common_neighbor(u, v, |w, _, _| {
            if w > v && subset.contains(w) {
                total += 1;
            }
        });
    }
    total
}

/// Lists the third vertices of all triangles through edge `e`.
pub fn triangles_through_edge(g: &SocialNetwork, e: EdgeId) -> Vec<VertexId> {
    let (u, v) = g.edge_endpoints(e);
    g.common_neighbors(u, v)
}

/// The global clustering coefficient: `3 · #triangles / #wedges`, where a
/// wedge is a path of length two. Returns 0.0 when the graph has no wedges.
///
/// Used by tests and the dataset-statistics report to check that the
/// DBLP-like and Amazon-like generators produce realistically clustered
/// graphs.
pub fn global_clustering_coefficient(g: &SocialNetwork) -> f64 {
    let triangles = count_triangles(g) as f64;
    let wedges: f64 = g
        .vertices()
        .map(|v| {
            let d = g.degree(v) as f64;
            d * (d - 1.0) / 2.0
        })
        .sum();
    if wedges == 0.0 {
        0.0
    } else {
        3.0 * triangles / wedges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k4() -> SocialNetwork {
        let mut b = icde_graph::GraphBuilder::with_vertices(4);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.add_symmetric_edge(VertexId(i), VertexId(j), 0.5);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn k4_has_four_triangles() {
        let g = k4();
        assert_eq!(count_triangles(&g), 4);
    }

    #[test]
    fn path_has_no_triangles() {
        let mut b = icde_graph::GraphBuilder::with_vertices(4);
        for i in 0..3u32 {
            b.add_symmetric_edge(VertexId(i), VertexId(i + 1), 0.5);
        }
        let g = b.build().unwrap();
        assert_eq!(count_triangles(&g), 0);
        assert_eq!(global_clustering_coefficient(&g), 0.0);
    }

    #[test]
    fn subset_triangle_count() {
        let g = k4();
        let subset = VertexSubset::from_iter([0, 1, 2].map(VertexId));
        assert_eq!(count_triangles_in_subset(&g, &subset), 1);
        let all = VertexSubset::from_iter(g.vertices());
        assert_eq!(count_triangles_in_subset(&g, &all), 4);
    }

    #[test]
    fn triangles_through_each_k4_edge() {
        let g = k4();
        for (e, _, _) in g.edges() {
            assert_eq!(triangles_through_edge(&g, e).len(), 2);
        }
    }

    #[test]
    fn clustering_coefficient_of_clique_is_one() {
        let g = k4();
        assert!((global_clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_statistics() {
        let g = SocialNetwork::new();
        assert_eq!(count_triangles(&g), 0);
        assert_eq!(global_clustering_coefficient(&g), 0.0);
    }
}
