//! Maximal k-truss extraction by support peeling.
//!
//! A k-truss is a subgraph in which every edge is contained in at least
//! `k − 2` triangles *of that subgraph*. The **maximal** k-truss of a region
//! is obtained by repeatedly deleting any edge whose support drops below
//! `k − 2` (deleting an edge can reduce the support of the other two edges of
//! each triangle it participated in); whatever survives is the unique maximal
//! k-truss. Seed communities (Definition 2) are connected components of the
//! maximal k-truss of `hop(v_q, r)` that contain the centre `v_q`.

use crate::local::LocalSubgraph;
use icde_graph::{SocialNetwork, VertexId, VertexSubset};
use std::collections::VecDeque;

/// Result of a k-truss peel over one region: the surviving edges and the
/// local view they refer to.
#[derive(Debug)]
pub struct KTrussPeel {
    /// Local view of the peeled region.
    pub local: LocalSubgraph,
    /// `edge_alive[e]` — whether local edge `e` survived the peel.
    pub edge_alive: Vec<bool>,
}

impl KTrussPeel {
    /// Vertices with at least one surviving incident edge, as a global subset.
    pub fn surviving_vertices(&self) -> VertexSubset {
        let mut alive = vec![false; self.local.num_vertices()];
        for e in 0..self.local.num_edges() {
            if self.edge_alive[e] {
                let (u, v) = self.local.edge(e);
                alive[u] = true;
                alive[v] = true;
            }
        }
        self.local
            .to_global_subset((0..self.local.num_vertices()).filter(|&v| alive[v]))
    }

    /// Number of surviving edges.
    pub fn surviving_edge_count(&self) -> usize {
        self.edge_alive.iter().filter(|a| **a).count()
    }

    /// Connected components of the surviving subgraph (vertices connected by
    /// surviving edges), largest first.
    pub fn components(&self) -> Vec<VertexSubset> {
        let n = self.local.num_vertices();
        let mut vertex_alive = vec![false; n];
        for e in 0..self.local.num_edges() {
            if self.edge_alive[e] {
                let (u, v) = self.local.edge(e);
                vertex_alive[u] = true;
                vertex_alive[v] = true;
            }
        }
        let mut seen = vec![false; n];
        let mut components = Vec::new();
        for start in 0..n {
            if !vertex_alive[start] || seen[start] {
                continue;
            }
            let mut component = Vec::new();
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(u) = stack.pop() {
                component.push(u);
                for &(w, e) in self.local.neighbors(u) {
                    if self.edge_alive[e] && !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
            components.push(self.local.to_global_subset(component));
        }
        components.sort_by_key(|c| std::cmp::Reverse(c.len()));
        components
    }

    /// The component containing `center`, if the centre survived the peel.
    pub fn component_containing(&self, center: VertexId) -> Option<VertexSubset> {
        let start = self.local.local(center)?;
        let incident_alive = self
            .local
            .neighbors(start)
            .iter()
            .any(|&(_, e)| self.edge_alive[e]);
        if !incident_alive {
            return None;
        }
        let mut seen = vec![false; self.local.num_vertices()];
        let mut component = Vec::new();
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(u) = stack.pop() {
            component.push(u);
            for &(w, e) in self.local.neighbors(u) {
                if self.edge_alive[e] && !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        Some(self.local.to_global_subset(component))
    }
}

/// Peels the subgraph induced by `subset` down to its maximal k-truss.
///
/// `k < 2` is treated as `k = 2` (every edge trivially satisfies a support
/// requirement of zero).
pub fn maximal_ktruss(g: &SocialNetwork, subset: &VertexSubset, k: u32) -> KTrussPeel {
    let local = LocalSubgraph::new(g, subset);
    let required = k.saturating_sub(2);
    let mut edge_alive = vec![true; local.num_edges()];
    let mut supports = local.edge_supports(None, None);

    let mut queue: VecDeque<usize> = (0..local.num_edges())
        .filter(|&e| supports[e] < required)
        .collect();
    let mut queued: Vec<bool> = (0..local.num_edges())
        .map(|e| supports[e] < required)
        .collect();

    while let Some(e) = queue.pop_front() {
        if !edge_alive[e] {
            continue;
        }
        edge_alive[e] = false;
        let (u, v) = local.edge(e);
        // Every triangle (u, v, w) that used edge e loses one triangle on its
        // other two edges; requeue them if they fall below the requirement.
        let alive_edge = |x: usize| edge_alive[x];
        let alive_vertex = |_: usize| true;
        for (_w, e_uw, e_vw) in local.common_alive_neighbors(u, v, &alive_edge, &alive_vertex) {
            for other in [e_uw, e_vw] {
                if edge_alive[other] && supports[other] > 0 {
                    supports[other] -= 1;
                    if supports[other] < required && !queued[other] {
                        queued[other] = true;
                        queue.push_back(other);
                    }
                }
            }
        }
    }

    KTrussPeel { local, edge_alive }
}

/// Connected components of the maximal k-truss of the region, largest first.
pub fn ktruss_components(g: &SocialNetwork, subset: &VertexSubset, k: u32) -> Vec<VertexSubset> {
    maximal_ktruss(g, subset, k).components()
}

/// The connected k-truss containing `center` inside the region, or `None`
/// if the centre does not survive the peel (it keeps no incident edge with
/// sufficient support).
pub fn connected_ktruss_containing(
    g: &SocialNetwork,
    subset: &VertexSubset,
    center: VertexId,
    k: u32,
) -> Option<VertexSubset> {
    maximal_ktruss(g, subset, k).component_containing(center)
}

/// Checks whether the subgraph induced by `subset` is itself a k-truss
/// (every induced edge has induced support ≥ k − 2). Does **not** check
/// connectivity; combine with [`VertexSubset::is_connected`].
pub fn is_ktruss(g: &SocialNetwork, subset: &VertexSubset, k: u32) -> bool {
    let required = k.saturating_sub(2);
    let local = LocalSubgraph::new(g, subset);
    let supports = local.edge_supports(None, None);
    supports.into_iter().all(|s| s >= required)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// K5 on {0..4}, a triangle {5,6,7} attached to the clique by edge 4-5,
    /// and a pendant path 7-8.
    fn layered_graph() -> SocialNetwork {
        let mut b = icde_graph::GraphBuilder::with_vertices(9);
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                b.add_symmetric_edge(VertexId(i), VertexId(j), 0.5);
            }
        }
        b.add_symmetric_edge(VertexId(5), VertexId(6), 0.5);
        b.add_symmetric_edge(VertexId(6), VertexId(7), 0.5);
        b.add_symmetric_edge(VertexId(5), VertexId(7), 0.5);
        b.add_symmetric_edge(VertexId(4), VertexId(5), 0.5);
        b.add_symmetric_edge(VertexId(7), VertexId(8), 0.5);
        b.build().unwrap()
    }

    fn all_vertices(g: &SocialNetwork) -> VertexSubset {
        VertexSubset::from_iter(g.vertices())
    }

    #[test]
    fn k5_survives_5truss() {
        let g = layered_graph();
        let peel = maximal_ktruss(&g, &all_vertices(&g), 5);
        let survivors = peel.surviving_vertices();
        assert_eq!(survivors.as_slice(), &[0, 1, 2, 3, 4].map(VertexId));
        assert_eq!(peel.surviving_edge_count(), 10);
    }

    #[test]
    fn triangle_survives_3truss_but_not_4truss() {
        let g = layered_graph();
        let comps3 = ktruss_components(&g, &all_vertices(&g), 3);
        // 3-truss: the K5 and the triangle are separate components (the
        // bridge 4-5 and pendant 7-8 are peeled away)
        assert_eq!(comps3.len(), 2);
        assert_eq!(comps3[0].len(), 5);
        assert_eq!(comps3[1].len(), 3);

        let comps4 = ktruss_components(&g, &all_vertices(&g), 4);
        assert_eq!(comps4.len(), 1);
        assert_eq!(comps4[0].len(), 5);
    }

    #[test]
    fn component_containing_center() {
        let g = layered_graph();
        let all = all_vertices(&g);
        let c = connected_ktruss_containing(&g, &all, VertexId(6), 3).unwrap();
        assert_eq!(c.as_slice(), &[5, 6, 7].map(VertexId));
        // centre peeled away at k=4
        assert!(connected_ktruss_containing(&g, &all, VertexId(6), 4).is_none());
        // pendant vertex never forms a truss with k >= 3
        assert!(connected_ktruss_containing(&g, &all, VertexId(8), 3).is_none());
    }

    #[test]
    fn low_k_keeps_every_edge() {
        let g = layered_graph();
        let all = all_vertices(&g);
        for k in [0, 1, 2] {
            let peel = maximal_ktruss(&g, &all, k);
            assert_eq!(peel.surviving_edge_count(), g.num_edges(), "k={k}");
            assert_eq!(peel.components().len(), 1);
        }
    }

    #[test]
    fn peel_respects_subset_boundary() {
        let g = layered_graph();
        // restrict to the triangle plus the bridge vertex 4: the bridge edge
        // 4-5 has no triangle inside the subset, so only the triangle remains
        let subset = VertexSubset::from_iter([4, 5, 6, 7].map(VertexId));
        let comps = ktruss_components(&g, &subset, 3);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].as_slice(), &[5, 6, 7].map(VertexId));
    }

    #[test]
    fn is_ktruss_checks_induced_supports() {
        let g = layered_graph();
        let k5 = VertexSubset::from_iter([0, 1, 2, 3, 4].map(VertexId));
        assert!(is_ktruss(&g, &k5, 5));
        assert!(!is_ktruss(&g, &k5, 6));
        let tri = VertexSubset::from_iter([5, 6, 7].map(VertexId));
        assert!(is_ktruss(&g, &tri, 3));
        assert!(!is_ktruss(&g, &tri, 4));
        let with_pendant = VertexSubset::from_iter([5, 6, 7, 8].map(VertexId));
        assert!(!is_ktruss(&g, &with_pendant, 3));
        assert!(is_ktruss(&g, &VertexSubset::new(), 7));
    }

    #[test]
    fn high_k_removes_everything() {
        let g = layered_graph();
        let peel = maximal_ktruss(&g, &all_vertices(&g), 7);
        assert_eq!(peel.surviving_edge_count(), 0);
        assert!(peel.components().is_empty());
        assert!(peel.surviving_vertices().is_empty());
    }
}
