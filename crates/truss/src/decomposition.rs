//! Full truss decomposition: the trussness of every edge.
//!
//! The trussness `τ(e)` of an edge is the largest `k` such that `e` belongs
//! to the maximal k-truss of the graph. The ATindex baseline (Section
//! VIII-A) offline "pre-computes and indexes the trussness on vertices and
//! edges" and online filters vertices whose trussness is below `k`; this
//! module supplies that decomposition.
//!
//! The implementation is the standard bottom-up peeling: process edges in
//! increasing support order, fixing each edge's trussness as
//! `min(current support, peeled level) + 2` and decrementing the supports of
//! the edges that shared a triangle with it.

use icde_graph::{EdgeId, SocialNetwork, VertexId};

/// Result of a truss decomposition over the full data graph.
#[derive(Debug, Clone)]
pub struct TrussDecomposition {
    /// `edge_trussness[e]` — trussness τ(e) of edge `e`, indexed over the
    /// full edge-id space (≥ 2 for every live edge, 0 on tombstoned slots).
    pub edge_trussness: Vec<u32>,
    /// `vertex_trussness[v]` — maximum trussness over the edges incident to
    /// `v` (0 for isolated vertices).
    pub vertex_trussness: Vec<u32>,
}

impl TrussDecomposition {
    /// Trussness of a specific edge.
    pub fn edge(&self, e: EdgeId) -> u32 {
        self.edge_trussness[e.index()]
    }

    /// Trussness of a vertex (max over incident edges).
    pub fn vertex(&self, v: VertexId) -> u32 {
        self.vertex_trussness[v.index()]
    }

    /// Maximum trussness in the graph.
    pub fn max_trussness(&self) -> u32 {
        self.edge_trussness.iter().copied().max().unwrap_or(0)
    }
}

/// Computes the trussness of every edge (and the derived per-vertex maxima)
/// of the data graph.
pub fn truss_decomposition(g: &SocialNetwork) -> TrussDecomposition {
    // Dense per-edge arrays span the full id space: with a delta overlay
    // attached, tombstoned ids leave holes, so only live edges (`g.edges()`)
    // are seeded into the buckets and counted towards the peel target.
    let id_space = g.edge_id_space();
    let live = g.num_edges();
    let mut support: Vec<u32> = vec![0; id_space];
    for (e, u, v) in g.edges() {
        support[e.index()] = g.common_neighbor_count(u, v) as u32;
    }

    // Bucket queue over supports for O(m * max_support) peeling without a
    // priority queue.
    let max_support = support.iter().copied().max().unwrap_or(0) as usize;
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_support + 1];
    for (e, _, _) in g.edges() {
        buckets[support[e.index()] as usize].push(e.index());
    }

    let mut removed = vec![false; id_space];
    let mut trussness = vec![0u32; id_space];
    let mut processed = 0usize;
    let mut level = 0usize;

    while processed < live {
        // find the lowest non-empty bucket at or below the current minimum
        let mut current = None;
        for (s, bucket) in buckets.iter().enumerate() {
            if !bucket.is_empty() {
                current = Some(s);
                break;
            }
        }
        let Some(s) = current else { break };
        let e = buckets[s].pop().expect("non-empty bucket");
        if removed[e] {
            continue;
        }
        // stale entry: the edge's support changed since it was bucketed
        if support[e] as usize != s {
            buckets[support[e] as usize].push(e);
            continue;
        }
        level = level.max(s);
        removed[e] = true;
        processed += 1;
        trussness[e] = level as u32 + 2;

        let (u, v) = g.edge_endpoints(EdgeId::from_index(e));
        // One merge over the two CSR neighbour slices yields each triangle's
        // other two edge ids directly — no per-triangle binary searches.
        g.for_each_common_neighbor(u, v, |_w, e_uw, e_vw| {
            // The triangle (u, v, w) only still counts towards the other two
            // edges if both of them are alive; otherwise it was already broken.
            if removed[e_uw.index()] || removed[e_vw.index()] {
                return;
            }
            for other in [e_uw.index(), e_vw.index()] {
                if support[other] > 0 {
                    support[other] -= 1;
                    buckets[support[other] as usize].push(other);
                }
            }
        });
    }

    let mut vertex_trussness = vec![0u32; g.num_vertices()];
    for (e, u, v) in g.edges() {
        let t = trussness[e.index()];
        vertex_trussness[u.index()] = vertex_trussness[u.index()].max(t);
        vertex_trussness[v.index()] = vertex_trussness[v.index()].max(t);
    }

    TrussDecomposition {
        edge_trussness: trussness,
        vertex_trussness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ktruss::maximal_ktruss;
    use icde_graph::generators::{small_world, SmallWorldConfig};
    use icde_graph::VertexSubset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layered_graph() -> SocialNetwork {
        let mut b = icde_graph::GraphBuilder::with_vertices(9);
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                b.add_symmetric_edge(VertexId(i), VertexId(j), 0.5);
            }
        }
        b.add_symmetric_edge(VertexId(5), VertexId(6), 0.5);
        b.add_symmetric_edge(VertexId(6), VertexId(7), 0.5);
        b.add_symmetric_edge(VertexId(5), VertexId(7), 0.5);
        b.add_symmetric_edge(VertexId(4), VertexId(5), 0.5);
        b.add_symmetric_edge(VertexId(7), VertexId(8), 0.5);
        b.build().unwrap()
    }

    #[test]
    fn clique_edges_have_trussness_five() {
        let g = layered_graph();
        let d = truss_decomposition(&g);
        for (e, u, v) in g.edges() {
            let both_in_clique = u.0 < 5 && v.0 < 5;
            if both_in_clique {
                assert_eq!(d.edge(e), 5, "edge {u}-{v}");
            }
        }
        assert_eq!(d.max_trussness(), 5);
    }

    #[test]
    fn triangle_and_pendant_trussness() {
        let g = layered_graph();
        let d = truss_decomposition(&g);
        let tri_edge = g.edge_between(VertexId(5), VertexId(6)).unwrap();
        assert_eq!(d.edge(tri_edge), 3);
        let pendant = g.edge_between(VertexId(7), VertexId(8)).unwrap();
        assert_eq!(d.edge(pendant), 2);
        let bridge = g.edge_between(VertexId(4), VertexId(5)).unwrap();
        assert_eq!(d.edge(bridge), 2);
    }

    #[test]
    fn vertex_trussness_is_max_of_incident_edges() {
        let g = layered_graph();
        let d = truss_decomposition(&g);
        assert_eq!(d.vertex(VertexId(0)), 5);
        assert_eq!(d.vertex(VertexId(4)), 5);
        assert_eq!(d.vertex(VertexId(5)), 3);
        assert_eq!(d.vertex(VertexId(8)), 2);
    }

    #[test]
    fn decomposition_consistent_with_peeling() {
        // The set of edges with trussness >= k must equal the edges surviving
        // the maximal k-truss peel, for every k.
        let mut rng = StdRng::seed_from_u64(17);
        let g = small_world(&SmallWorldConfig::paper_default(120), &mut rng);
        let d = truss_decomposition(&g);
        let all = VertexSubset::from_iter(g.vertices());
        for k in 2..=d.max_trussness() {
            let peel = maximal_ktruss(&g, &all, k);
            for e in 0..g.num_edges() {
                let survives = peel.edge_alive[local_edge_for_global(&peel, &g, e)];
                let by_trussness = d.edge_trussness[e] >= k;
                assert_eq!(survives, by_trussness, "k={k} edge={e}");
            }
        }
    }

    /// Maps a global edge index to its local index in a peel over the full
    /// vertex set (vertex ids coincide, but edge ids may be ordered
    /// differently).
    fn local_edge_for_global(
        peel: &crate::ktruss::KTrussPeel,
        g: &SocialNetwork,
        e: usize,
    ) -> usize {
        let (u, v) = g.edge_endpoints(EdgeId::from_index(e));
        let lu = peel.local.local(u).unwrap();
        let lv = peel.local.local(v).unwrap();
        (0..peel.local.num_edges())
            .find(|&le| {
                let (a, b) = peel.local.edge(le);
                (a == lu && b == lv) || (a == lv && b == lu)
            })
            .expect("edge exists in local view")
    }

    #[test]
    fn empty_graph_decomposition() {
        let g = SocialNetwork::new();
        let d = truss_decomposition(&g);
        assert!(d.edge_trussness.is_empty());
        assert_eq!(d.max_trussness(), 0);
    }
}
