//! Compact local view of a vertex-induced subgraph.
//!
//! Peeling algorithms (k-truss extraction, k-core, truss decomposition over a
//! candidate region) repeatedly look up degrees, neighbour lists and edge
//! supports inside one induced subgraph. Doing this against the global
//! [`SocialNetwork`] would pay a membership test on every adjacency scan, so
//! [`LocalSubgraph`] translates the region once into dense local indices:
//! vertices become `0..n_local`, edges become `0..m_local`, and the peeling
//! loops run on plain vectors.

use icde_graph::{SocialNetwork, VertexId, VertexSubset};
use std::collections::HashMap;

/// A dense, index-translated copy of the subgraph induced by a vertex subset.
#[derive(Debug, Clone)]
pub struct LocalSubgraph {
    /// Global id of each local vertex (`local index → global id`).
    globals: Vec<VertexId>,
    /// Reverse mapping (`global id → local index`).
    local_of: HashMap<VertexId, usize>,
    /// Local adjacency: for each local vertex, sorted `(local neighbour, local edge)` pairs.
    adjacency: Vec<Vec<(usize, usize)>>,
    /// Local edge table: `(local u, local v)` with `u < v` (by local index).
    edges: Vec<(usize, usize)>,
}

impl LocalSubgraph {
    /// Builds the local view of the subgraph of `g` induced by `subset`.
    pub fn new(g: &SocialNetwork, subset: &VertexSubset) -> Self {
        let globals: Vec<VertexId> = subset.iter().collect();
        let local_of: HashMap<VertexId, usize> =
            globals.iter().enumerate().map(|(i, v)| (*v, i)).collect();
        let mut adjacency = vec![Vec::new(); globals.len()];
        let mut edges = Vec::new();
        for (&global_u, &lu) in local_of.iter() {
            for (global_v, _) in g.neighbors(global_u) {
                if global_u < global_v {
                    if let Some(&lv) = local_of.get(&global_v) {
                        let (a, b) = if lu < lv { (lu, lv) } else { (lv, lu) };
                        let eid = edges.len();
                        edges.push((a, b));
                        adjacency[a].push((b, eid));
                        adjacency[b].push((a, eid));
                    }
                }
            }
        }
        for list in &mut adjacency {
            list.sort_unstable();
        }
        LocalSubgraph {
            globals,
            local_of,
            adjacency,
            edges,
        }
    }

    /// Number of local vertices.
    pub fn num_vertices(&self) -> usize {
        self.globals.len()
    }

    /// Number of local edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Global id of local vertex `local`.
    #[inline]
    pub fn global(&self, local: usize) -> VertexId {
        self.globals[local]
    }

    /// Local index of a global vertex (if it belongs to the subgraph).
    #[inline]
    pub fn local(&self, v: VertexId) -> Option<usize> {
        self.local_of.get(&v).copied()
    }

    /// Local endpoints of local edge `e`.
    #[inline]
    pub fn edge(&self, e: usize) -> (usize, usize) {
        self.edges[e]
    }

    /// Sorted local adjacency of vertex `local` as `(neighbour, edge)` pairs.
    #[inline]
    pub fn neighbors(&self, local: usize) -> &[(usize, usize)] {
        &self.adjacency[local]
    }

    /// Local degree of a vertex.
    #[inline]
    pub fn degree(&self, local: usize) -> usize {
        self.adjacency[local].len()
    }

    /// Computes the support (triangle count) of every local edge, considering
    /// only alive edges/vertices. `None` masks mean everything is alive.
    ///
    /// `edge_alive` and `vertex_alive`, when provided, must have lengths
    /// `num_edges()` / `num_vertices()`.
    pub fn edge_supports(
        &self,
        edge_alive: Option<&[bool]>,
        vertex_alive: Option<&[bool]>,
    ) -> Vec<u32> {
        let alive_edge = |e: usize| edge_alive.is_none_or(|m| m[e]);
        let alive_vertex = |v: usize| vertex_alive.is_none_or(|m| m[v]);
        let mut supports = vec![0u32; self.edges.len()];
        for (e, &(u, v)) in self.edges.iter().enumerate() {
            if !alive_edge(e) || !alive_vertex(u) || !alive_vertex(v) {
                continue;
            }
            supports[e] = self.count_common_alive(u, v, &alive_edge, &alive_vertex);
        }
        supports
    }

    /// Counts common neighbours of `u` and `v` reachable through alive edges
    /// and alive vertices (the support of edge `{u, v}` in the peeled graph).
    pub fn count_common_alive(
        &self,
        u: usize,
        v: usize,
        alive_edge: &dyn Fn(usize) -> bool,
        alive_vertex: &dyn Fn(usize) -> bool,
    ) -> u32 {
        let (a, b) = (&self.adjacency[u], &self.adjacency[v]);
        let (mut i, mut j, mut count) = (0usize, 0usize, 0u32);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let w = a[i].0;
                    if alive_vertex(w) && alive_edge(a[i].1) && alive_edge(b[j].1) {
                        count += 1;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Lists the common alive neighbours of `u` and `v` together with the
    /// connecting edge ids `(w, edge u-w, edge v-w)`.
    pub fn common_alive_neighbors(
        &self,
        u: usize,
        v: usize,
        alive_edge: &dyn Fn(usize) -> bool,
        alive_vertex: &dyn Fn(usize) -> bool,
    ) -> Vec<(usize, usize, usize)> {
        let (a, b) = (&self.adjacency[u], &self.adjacency[v]);
        let (mut i, mut j) = (0usize, 0usize);
        let mut out = Vec::new();
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let w = a[i].0;
                    if alive_vertex(w) && alive_edge(a[i].1) && alive_edge(b[j].1) {
                        out.push((w, a[i].1, b[j].1));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Converts a set of local vertex indices back to a global
    /// [`VertexSubset`].
    pub fn to_global_subset<I: IntoIterator<Item = usize>>(&self, locals: I) -> VertexSubset {
        VertexSubset::from_iter(locals.into_iter().map(|l| self.globals[l]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global graph: clique {1,2,3,4} plus pendant 0-1 and an outside vertex 5.
    fn clique_graph() -> SocialNetwork {
        let mut b = icde_graph::GraphBuilder::with_vertices(6);
        let ids = [1u32, 2, 3, 4];
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                b.add_symmetric_edge(VertexId(ids[i]), VertexId(ids[j]), 0.5);
            }
        }
        b.add_symmetric_edge(VertexId(0), VertexId(1), 0.5);
        b.build().unwrap()
    }

    #[test]
    fn builds_local_view_of_subset() {
        let g = clique_graph();
        let subset = VertexSubset::from_iter([1, 2, 3, 4].map(VertexId));
        let local = LocalSubgraph::new(&g, &subset);
        assert_eq!(local.num_vertices(), 4);
        assert_eq!(local.num_edges(), 6);
        for l in 0..4 {
            assert_eq!(local.degree(l), 3);
            let v = local.global(l);
            assert_eq!(local.local(v), Some(l));
        }
        assert_eq!(local.local(VertexId(0)), None);
    }

    #[test]
    fn supports_in_clique() {
        let g = clique_graph();
        let subset = VertexSubset::from_iter([1, 2, 3, 4].map(VertexId));
        let local = LocalSubgraph::new(&g, &subset);
        let sup = local.edge_supports(None, None);
        // every edge of K4 is in exactly 2 triangles
        assert!(sup.iter().all(|&s| s == 2), "{sup:?}");
    }

    #[test]
    fn supports_respect_masks() {
        let g = clique_graph();
        let subset = VertexSubset::from_iter([1, 2, 3, 4].map(VertexId));
        let local = LocalSubgraph::new(&g, &subset);
        // kill one vertex: remaining triangle has support 1 per edge
        let mut vertex_alive = vec![true; local.num_vertices()];
        let killed = local.local(VertexId(4)).unwrap();
        vertex_alive[killed] = false;
        let sup = local.edge_supports(None, Some(&vertex_alive));
        for (e, &(u, v)) in local.edges.iter().enumerate() {
            if u == killed || v == killed {
                assert_eq!(sup[e], 0);
            } else {
                assert_eq!(sup[e], 1);
            }
        }
    }

    #[test]
    fn pendant_edge_has_zero_support() {
        let g = clique_graph();
        let subset = VertexSubset::from_iter([0, 1, 2].map(VertexId));
        let local = LocalSubgraph::new(&g, &subset);
        let sup = local.edge_supports(None, None);
        let pendant = local
            .edges
            .iter()
            .position(|&(u, v)| {
                let gu = local.global(u);
                let gv = local.global(v);
                (gu == VertexId(0)) || (gv == VertexId(0))
            })
            .unwrap();
        assert_eq!(sup[pendant], 0);
    }

    #[test]
    fn to_global_subset_roundtrips() {
        let g = clique_graph();
        let subset = VertexSubset::from_iter([1, 3, 5].map(VertexId));
        let local = LocalSubgraph::new(&g, &subset);
        let back = local.to_global_subset(0..local.num_vertices());
        assert_eq!(back, subset);
    }
}
