//! Edge support computation.
//!
//! The support `sup(e_{u,v})` of an edge is the number of triangles that
//! contain it. Definition 2 requires every edge of a seed community to have
//! support at least `k − 2` inside the community; the support pruning rule
//! (Lemma 2) uses the support in the *data graph* (or any supergraph) as an
//! upper bound `ub_sup(e_{u,v})`, because a subgraph can only lose triangles.

use crate::local::LocalSubgraph;
use icde_graph::{EdgeId, SocialNetwork, VertexSubset};

/// Computes the support of every edge of the data graph `G` (the upper bound
/// `ub_sup(e)` used by support pruning), indexed by [`EdgeId`].
///
/// The vector spans the full edge-id space, so on a graph with a delta
/// overlay attached the slots of tombstoned ids stay 0.
pub fn edge_supports_global(g: &SocialNetwork) -> Vec<u32> {
    let mut supports = vec![0u32; g.edge_id_space()];
    for (e, u, v) in g.edges() {
        supports[e.index()] = g.common_neighbor_count(u, v) as u32;
    }
    supports
}

/// Computes the support of every edge of the subgraph induced by `subset`.
///
/// Returns `(edge supports, local view)` so callers can keep using the local
/// index translation.
pub fn edge_supports_in_subset(
    g: &SocialNetwork,
    subset: &VertexSubset,
) -> (Vec<u32>, LocalSubgraph) {
    let local = LocalSubgraph::new(g, subset);
    let supports = local.edge_supports(None, None);
    (supports, local)
}

/// Maximum edge support inside the subgraph induced by `subset`
/// (`v_i.ub_sup_r` from Algorithm 2 when `subset = hop(v_i, r)`).
///
/// Returns 0 for subgraphs with no edges.
pub fn max_edge_support(g: &SocialNetwork, subset: &VertexSubset) -> u32 {
    let (supports, _) = edge_supports_in_subset(g, subset);
    supports.into_iter().max().unwrap_or(0)
}

/// Support of a single global edge in the full data graph.
pub fn support_of_edge(g: &SocialNetwork, e: EdgeId) -> u32 {
    let (u, v) = g.edge_endpoints(e);
    g.common_neighbor_count(u, v) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use icde_graph::VertexId;

    /// K4 on {0..3} plus a pendant edge 3-4.
    fn k4_plus_pendant() -> SocialNetwork {
        let mut b = icde_graph::GraphBuilder::with_vertices(5);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.add_symmetric_edge(VertexId(i), VertexId(j), 0.5);
            }
        }
        b.add_symmetric_edge(VertexId(3), VertexId(4), 0.5);
        b.build().unwrap()
    }

    #[test]
    fn global_supports_match_triangles() {
        let g = k4_plus_pendant();
        let sup = edge_supports_global(&g);
        for (e, u, v) in g.edges() {
            if v == VertexId(4) || u == VertexId(4) {
                assert_eq!(sup[e.index()], 0);
            } else {
                assert_eq!(sup[e.index()], 2, "edge {u}-{v}");
            }
            assert_eq!(sup[e.index()], support_of_edge(&g, e));
        }
    }

    #[test]
    fn subset_supports_shrink() {
        let g = k4_plus_pendant();
        let subset = VertexSubset::from_iter([0, 1, 2].map(VertexId));
        let (sup, local) = edge_supports_in_subset(&g, &subset);
        assert_eq!(local.num_edges(), 3);
        assert!(sup.iter().all(|&s| s == 1));
        // subgraph support never exceeds the data-graph support (Lemma 2 premise)
        let global = edge_supports_global(&g);
        for (le, &(lu, lv)) in (0..local.num_edges()).zip(local_edges(&local).iter()) {
            let gu = local.global(lu);
            let gv = local.global(lv);
            let ge = g.edge_between(gu, gv).unwrap();
            assert!(sup[le] <= global[ge.index()]);
        }
    }

    fn local_edges(local: &LocalSubgraph) -> Vec<(usize, usize)> {
        (0..local.num_edges()).map(|e| local.edge(e)).collect()
    }

    #[test]
    fn max_support_of_hop_subgraph() {
        let g = k4_plus_pendant();
        let all = VertexSubset::from_iter(g.vertices());
        assert_eq!(max_edge_support(&g, &all), 2);
        let pair = VertexSubset::from_iter([3, 4].map(VertexId));
        assert_eq!(max_edge_support(&g, &pair), 0);
        assert_eq!(max_edge_support(&g, &VertexSubset::new()), 0);
    }
}
