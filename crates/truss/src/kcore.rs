//! k-core decomposition.
//!
//! The paper's Figure 5 case study compares the influence of the Top1-ICDE
//! seed community against the **4-core** community around the same centre
//! vertex. A k-core is a maximal subgraph in which every vertex has degree at
//! least `k`; the core number of a vertex is the largest `k` for which it
//! belongs to a k-core.

use icde_graph::{SocialNetwork, VertexId, VertexSubset};

/// Computes the core number of every vertex with the classic linear-time
/// bucket peeling (Batagelj–Zaveršnik).
pub fn core_numbers(g: &SocialNetwork) -> Vec<u32> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(VertexId::from_index(v))).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0);

    // bucket sort vertices by degree
    let mut bin = vec![0usize; max_degree + 1];
    for &d in &degree {
        bin[d] += 1;
    }
    let mut start = 0usize;
    for b in bin.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut pos = vec![0usize; n];
    let mut vert = vec![0usize; n];
    for v in 0..n {
        pos[v] = bin[degree[v]];
        vert[pos[v]] = v;
        bin[degree[v]] += 1;
    }
    // restore bin starts
    for d in (1..=max_degree).rev() {
        bin[d] = bin[d - 1];
    }
    bin[0] = 0;

    let mut core = degree.clone();
    for i in 0..n {
        let v = vert[i];
        for (u, _) in g.neighbors(VertexId::from_index(v)) {
            let u = u.index();
            if degree[u] > degree[v] {
                let du = degree[u];
                let pu = pos[u];
                let pw = bin[du];
                let w = vert[pw];
                if u != w {
                    pos[u] = pw;
                    pos[w] = pu;
                    vert[pu] = w;
                    vert[pw] = u;
                }
                bin[du] += 1;
                degree[u] -= 1;
            }
        }
        core[v] = degree[v];
    }
    core.into_iter().map(|c| c as u32).collect()
}

/// The maximal connected k-core containing `center`, or `None` if the
/// centre's core number is below `k`.
pub fn maximal_kcore_containing(
    g: &SocialNetwork,
    center: VertexId,
    k: u32,
) -> Option<VertexSubset> {
    let cores = core_numbers(g);
    if cores.get(center.index()).copied().unwrap_or(0) < k {
        return None;
    }
    // BFS over vertices with core number >= k starting from the centre.
    let mut seen = vec![false; g.num_vertices()];
    let mut stack = vec![center];
    seen[center.index()] = true;
    let mut members = Vec::new();
    while let Some(u) = stack.pop() {
        members.push(u);
        for (w, _) in g.neighbors(u) {
            if !seen[w.index()] && cores[w.index()] >= k {
                seen[w.index()] = true;
                stack.push(w);
            }
        }
    }
    Some(VertexSubset::from_iter(members))
}

/// The degeneracy of the graph (maximum core number).
pub fn degeneracy(g: &SocialNetwork) -> u32 {
    core_numbers(g).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icde_graph::KeywordSet;

    /// K4 on {0..3}, bridge 3-4 and 4-5, triangle {5,6,7}, pendant 7-8.
    fn mixed_graph() -> SocialNetwork {
        let mut b = icde_graph::GraphBuilder::with_vertices(9);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.add_symmetric_edge(VertexId(i), VertexId(j), 0.5);
            }
        }
        b.add_symmetric_edge(VertexId(3), VertexId(4), 0.5);
        b.add_symmetric_edge(VertexId(4), VertexId(5), 0.5);
        b.add_symmetric_edge(VertexId(5), VertexId(6), 0.5);
        b.add_symmetric_edge(VertexId(6), VertexId(7), 0.5);
        b.add_symmetric_edge(VertexId(5), VertexId(7), 0.5);
        b.add_symmetric_edge(VertexId(7), VertexId(8), 0.5);
        b.build().unwrap()
    }

    #[test]
    fn core_numbers_of_mixed_graph() {
        let g = mixed_graph();
        let cores = core_numbers(&g);
        for (v, &core) in cores.iter().enumerate().take(4) {
            assert_eq!(core, 3, "clique vertex {v}");
        }
        // the bridge vertex keeps degree 2 after the pendant is peeled, so it
        // stays in the 2-core
        assert_eq!(cores[4], 2);
        for (v, &core) in cores.iter().enumerate().take(8).skip(5) {
            assert_eq!(core, 2, "triangle vertex {v}");
        }
        assert_eq!(cores[8], 1, "pendant vertex");
        assert_eq!(degeneracy(&g), 3);
    }

    #[test]
    fn kcore_containing_center() {
        let g = mixed_graph();
        let c3 = maximal_kcore_containing(&g, VertexId(0), 3).unwrap();
        assert_eq!(c3.as_slice(), &[0, 1, 2, 3].map(VertexId));
        // the connected 2-core spans everything except the pendant vertex
        let c2 = maximal_kcore_containing(&g, VertexId(6), 2).unwrap();
        assert_eq!(c2.as_slice(), &[0, 1, 2, 3, 4, 5, 6, 7].map(VertexId));
        assert!(maximal_kcore_containing(&g, VertexId(8), 2).is_none());
        assert!(maximal_kcore_containing(&g, VertexId(4), 3).is_none());
        assert!(maximal_kcore_containing(&g, VertexId(0), 4).is_none());
    }

    #[test]
    fn kcore_of_clique_is_whole_clique() {
        let mut b = icde_graph::GraphBuilder::with_vertices(5);
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                b.add_symmetric_edge(VertexId(i), VertexId(j), 0.5);
            }
        }
        let g = b.build().unwrap();
        let cores = core_numbers(&g);
        assert!(cores.iter().all(|&c| c == 4));
        let core = maximal_kcore_containing(&g, VertexId(2), 4).unwrap();
        assert_eq!(core.len(), 5);
    }

    #[test]
    fn empty_and_single_vertex() {
        let g = SocialNetwork::new();
        assert!(core_numbers(&g).is_empty());
        assert_eq!(degeneracy(&g), 0);
        let mut b = icde_graph::GraphBuilder::new();
        let v = b.add_vertex(KeywordSet::new());
        let g1 = b.build().unwrap();
        assert_eq!(core_numbers(&g1), vec![0]);
        assert!(maximal_kcore_containing(&g1, v, 1).is_none());
        let zero_core = maximal_kcore_containing(&g1, v, 0).unwrap();
        assert_eq!(zero_core.len(), 1);
    }

    #[test]
    fn core_numbers_bounded_by_degree() {
        let g = mixed_graph();
        let cores = core_numbers(&g);
        for v in g.vertices() {
            assert!(cores[v.index()] as usize <= g.degree(v));
        }
    }
}
