//! # icde-truss — structural cohesiveness machinery for TopL-ICDE
//!
//! Seed communities in the paper are **k-trusses** (Definition 2): connected
//! subgraphs in which every edge participates in at least `k − 2` triangles.
//! This crate provides everything the core layer needs around that notion:
//!
//! * [`local`] — a compact, index-translated view of a vertex-induced
//!   subgraph, the workhorse of all peeling algorithms,
//! * [`support`] — per-edge triangle counts (edge supports) over the whole
//!   graph or inside an induced subgraph,
//! * [`triangle`] — global triangle counting and enumeration,
//! * [`ktruss`] — maximal k-truss extraction by support peeling and the
//!   connected k-truss containing a centre vertex,
//! * [`decomposition`] — full truss decomposition (edge trussness), used by
//!   the ATindex baseline,
//! * [`kcore`] — k-core decomposition, used by the Fig. 5 case-study
//!   baseline.

pub mod decomposition;
pub mod kcore;
pub mod ktruss;
pub mod local;
pub mod support;
pub mod triangle;

pub use decomposition::truss_decomposition;
pub use kcore::{core_numbers, maximal_kcore_containing};
pub use ktruss::{connected_ktruss_containing, ktruss_components, maximal_ktruss};
pub use local::LocalSubgraph;
pub use support::{edge_supports_global, edge_supports_in_subset, max_edge_support};
pub use triangle::{count_triangles, triangles_through_edge};
