//! Command implementations for the `topl-icde` binary.

use crate::args::Command;
use icde_core::dtopl::{DTopLProcessor, DTopLQuery, DTopLStrategy};
use icde_core::index::{CommunityIndex, IndexBuilder};
use icde_core::persist;
use icde_core::precompute::PrecomputeConfig;
use icde_core::query::TopLQuery;
use icde_core::seed::SeedCommunity;
use icde_core::serving::{EpochLatency, LatencyHistogram, ServingConfig, ServingRuntime};
use icde_core::streaming::{EdgeUpdate, MaintainerStats, StreamingMaintainer};
use icde_core::topl::TopLProcessor;
use icde_graph::generators::DatasetSpec;
use icde_graph::snapshot::{
    self as graph_snapshot, path_is_snapshot, LoadMode, Snapshot, KIND_GRAPH,
};
use icde_graph::statistics::graph_statistics;
use icde_graph::{io, KeywordSet, SocialNetwork, VertexId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Runs one parsed command; error strings are printed by `main`.
pub fn run(command: Command) -> Result<(), String> {
    match command {
        Command::Help => {
            println!("{}", crate::args::USAGE);
            Ok(())
        }
        Command::Generate {
            kind,
            vertices,
            seed,
            keyword_domain,
            keywords_per_vertex,
            out,
        } => {
            let spec = DatasetSpec::new(kind, vertices, seed)
                .with_keyword_domain(keyword_domain)
                .with_keywords_per_vertex(keywords_per_vertex);
            let graph = spec.generate();
            io::write_edge_list_file(&graph, &out).map_err(|e| e.to_string())?;
            println!(
                "wrote {} ({} vertices, {} edges, kind {:?})",
                out,
                graph.num_vertices(),
                graph.num_edges(),
                kind
            );
            Ok(())
        }
        // `--threads` is accepted for interface symmetry with `index`; graph
        // statistics themselves are single-threaded today, so it only binds
        // once stats grow a pre-computation-backed section.
        Command::Stats { graph, threads: _ } => {
            let g = load_graph(&graph)?;
            let stats = graph_statistics(&g);
            println!(
                "{}",
                serde_json::to_string_pretty(&stats).map_err(|e| e.to_string())?
            );
            Ok(())
        }
        Command::Index {
            graph,
            out,
            r_max,
            fanout,
            thresholds,
            threads,
            shards,
        } => {
            let g = load_graph(&graph)?;
            let config = PrecomputeConfig::new(r_max, thresholds)
                .with_num_threads(threads)
                .with_num_shards(shards);
            let workers = config.worker_count(g.num_vertices());
            let shard_count = config.shard_count(g.num_vertices());
            let start = std::time::Instant::now();
            let index = IndexBuilder::new(config).with_fanout(fanout).build(&g);
            let offline = start.elapsed();
            if out.ends_with(".snap") {
                persist::save_index_snapshot(&index, &out).map_err(|e| e.to_string())?;
            } else {
                persist::save_index(&index, &out).map_err(|e| e.to_string())?;
            }
            let rate = g.num_vertices() as f64 / offline.as_secs_f64().max(f64::MIN_POSITIVE);
            println!(
                "offline build: {:.2?} on {} worker thread{}, {} shard{} ({:.0} vertices/sec)",
                offline,
                workers,
                if workers == 1 { "" } else { "s" },
                shard_count,
                if shard_count == 1 { "" } else { "s" },
                rate
            );
            println!(
                "wrote {} ({} nodes, height {})",
                out,
                index.node_count(),
                index.height(),
            );
            Ok(())
        }
        Command::Query {
            graph,
            index,
            keywords,
            k,
            r,
            theta,
            l,
            json,
            explain,
            eager,
        } => {
            let g = load_graph(&graph)?;
            let idx = persist::load_index_auto(&index).map_err(|e| e.to_string())?;
            let query = TopLQuery::new(KeywordSet::from_ids(keywords), k, r, theta, l);
            let processor = TopLProcessor::new(&g, &idx);
            let answer = if eager {
                processor.run_eager(&query)
            } else {
                processor.run(&query)
            }
            .map_err(|e| e.to_string())?;
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&answer.communities).map_err(|e| e.to_string())?
                );
            } else {
                print_communities(&answer.communities);
                println!(
                    "{} answers in {:.2?} ({} candidates pruned)",
                    answer.communities.len(),
                    answer.elapsed,
                    answer.stats.total_pruned_candidates()
                );
            }
            if explain {
                println!("{}", answer.stats);
            }
            Ok(())
        }
        Command::DQuery {
            graph,
            index,
            keywords,
            k,
            r,
            theta,
            l,
            n,
            json,
        } => {
            let g = load_graph(&graph)?;
            let idx = persist::load_index_auto(&index).map_err(|e| e.to_string())?;
            let base = TopLQuery::new(KeywordSet::from_ids(keywords), k, r, theta, l);
            let query = DTopLQuery::new(base, n);
            let answer = DTopLProcessor::new(&g, &idx)
                .run(&query, DTopLStrategy::GreedyWithPruning)
                .map_err(|e| e.to_string())?;
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&answer.communities).map_err(|e| e.to_string())?
                );
            } else {
                print_communities(&answer.communities);
                println!(
                    "diversity score {:.2}, {} answers in {:.2?}",
                    answer.diversity_score,
                    answer.communities.len(),
                    answer.elapsed
                );
            }
            Ok(())
        }
        Command::Serve {
            graph,
            index,
            workers,
            queries,
            seed,
            k,
            r,
            theta,
            l,
            json,
            update_rate,
            compact_threshold,
            repack_threshold,
        } => {
            let g = load_graph(&graph)?;
            let idx = persist::load_index_auto(&index).map_err(|e| e.to_string())?;
            run_serve(
                g,
                idx,
                ServeOptions {
                    workers,
                    queries,
                    seed,
                    k,
                    r,
                    theta,
                    l,
                    json,
                    update_rate,
                    compact_threshold,
                    repack_threshold,
                },
            )
        }
        Command::Update {
            graph,
            index,
            updates,
            batch,
            compact_threshold,
            repack_threshold,
            out_graph,
            out_index,
            keywords,
            k,
            r,
            theta,
            l,
            json,
        } => {
            let g = load_graph(&graph)?;
            let idx = persist::load_index_auto(&index).map_err(|e| e.to_string())?;
            let text = std::fs::read_to_string(&updates)
                .map_err(|e| format!("cannot read {updates}: {e}"))?;
            let stream = parse_update_stream(&text)?;
            if stream.is_empty() {
                return Err(format!("{updates} contains no updates"));
            }

            let mut maintainer = StreamingMaintainer::new(g, idx)
                .with_compact_threshold(compact_threshold)
                .with_repack_threshold(repack_threshold);
            let started = std::time::Instant::now();
            let mut batches = 0u64;
            for chunk in stream.chunks(batch) {
                maintainer.apply_batch(chunk);
                batches += 1;
            }
            let wall = started.elapsed();
            // snapshot writers serialize the live edge table, which folds the
            // overlay and renumbers edge ids past tombstone holes; compact
            // explicitly first so the saved index's edge supports are keyed
            // by the same id space as the written graph
            if out_graph.is_some() || out_index.is_some() {
                maintainer.compact_now();
            }
            let stats = maintainer.stats();
            let updates_per_sec =
                stats.updates_applied() as f64 / wall.as_secs_f64().max(f64::MIN_POSITIVE);

            if let Some(out) = &out_graph {
                write_graph_out(maintainer.graph(), out)?;
            }
            if let Some(out) = &out_index {
                if out.ends_with(".snap") {
                    persist::save_index_snapshot(maintainer.index(), out)
                        .map_err(|e| e.to_string())?;
                } else {
                    persist::save_index(maintainer.index(), out).map_err(|e| e.to_string())?;
                }
            }

            if json {
                let doc = serde_json::Value::Object(vec![
                    (
                        "updates_total".to_string(),
                        serde_json::Value::UInt(stream.len() as u64),
                    ),
                    (
                        "inserts_applied".to_string(),
                        serde_json::Value::UInt(stats.inserts_applied),
                    ),
                    (
                        "removes_applied".to_string(),
                        serde_json::Value::UInt(stats.removes_applied),
                    ),
                    (
                        "updates_skipped".to_string(),
                        serde_json::Value::UInt(stats.updates_skipped),
                    ),
                    ("batches".to_string(), serde_json::Value::UInt(batches)),
                    (
                        "vertices_recomputed".to_string(),
                        serde_json::Value::UInt(stats.vertices_recomputed),
                    ),
                    (
                        "compactions".to_string(),
                        serde_json::Value::UInt(stats.compactions),
                    ),
                    (
                        "ball_overlap".to_string(),
                        serde_json::Value::UInt(stats.ball_overlap),
                    ),
                    (
                        "index_patches".to_string(),
                        serde_json::Value::UInt(stats.index_patches),
                    ),
                    (
                        "repacks".to_string(),
                        serde_json::Value::UInt(stats.repacks),
                    ),
                    (
                        "support_patch_secs".to_string(),
                        serde_json::Value::Float(stats.support_patch_secs),
                    ),
                    (
                        "ball_recompute_secs".to_string(),
                        serde_json::Value::Float(stats.ball_recompute_secs),
                    ),
                    (
                        "index_patch_secs".to_string(),
                        serde_json::Value::Float(stats.index_patch_secs),
                    ),
                    (
                        "publish_secs".to_string(),
                        serde_json::Value::Float(stats.publish_secs),
                    ),
                    (
                        "wall_seconds".to_string(),
                        serde_json::Value::Float(wall.as_secs_f64()),
                    ),
                    (
                        "updates_per_sec".to_string(),
                        serde_json::Value::Float(updates_per_sec),
                    ),
                    (
                        "graph_vertices".to_string(),
                        serde_json::Value::UInt(maintainer.graph().num_vertices() as u64),
                    ),
                    (
                        "graph_edges".to_string(),
                        serde_json::Value::UInt(maintainer.graph().num_edges() as u64),
                    ),
                ]);
                println!(
                    "{}",
                    serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?
                );
            } else {
                println!(
                    "applied {} updates ({} inserts, {} removes, {} skipped) in {} batch{} \
                     over {:.2?} ({:.0} updates/sec)",
                    stats.updates_applied(),
                    stats.inserts_applied,
                    stats.removes_applied,
                    stats.updates_skipped,
                    batches,
                    if batches == 1 { "" } else { "es" },
                    wall,
                    updates_per_sec
                );
                println!(
                    "refreshed {} vertices ({} ball overlap), {} compaction{}; graph now {} \
                     vertices, {} edges",
                    stats.vertices_recomputed,
                    stats.ball_overlap,
                    stats.compactions,
                    if stats.compactions == 1 { "" } else { "s" },
                    maintainer.graph().num_vertices(),
                    maintainer.graph().num_edges()
                );
                println!(
                    "index refreshes: {} patch{}, {} repack{}; phases: support patch {:.1} ms, \
                     ball recompute {:.1} ms, index patch {:.1} ms, publish {:.1} ms",
                    stats.index_patches,
                    if stats.index_patches == 1 { "" } else { "es" },
                    stats.repacks,
                    if stats.repacks == 1 { "" } else { "s" },
                    stats.support_patch_secs * 1e3,
                    stats.ball_recompute_secs * 1e3,
                    stats.index_patch_secs * 1e3,
                    stats.publish_secs * 1e3
                );
                if let Some(out) = &out_graph {
                    println!("wrote refreshed graph {out}");
                }
                if let Some(out) = &out_index {
                    println!("wrote refreshed index {out}");
                }
            }

            if !keywords.is_empty() {
                let query = TopLQuery::new(KeywordSet::from_ids(keywords), k, r, theta, l);
                let answer = TopLProcessor::new(maintainer.graph(), maintainer.index())
                    .run(&query)
                    .map_err(|e| e.to_string())?;
                if json {
                    println!(
                        "{}",
                        serde_json::to_string_pretty(&answer.communities)
                            .map_err(|e| e.to_string())?
                    );
                } else {
                    print_communities(&answer.communities);
                    println!(
                        "{} answers on the refreshed pair in {:.2?}",
                        answer.communities.len(),
                        answer.elapsed
                    );
                }
            }
            Ok(())
        }
        Command::SnapshotSave { graph, index, out } => {
            if let Some(graph) = graph {
                let g = load_graph(&graph)?;
                graph_snapshot::write_graph_snapshot(&g, &out).map_err(|e| e.to_string())?;
                println!(
                    "wrote graph snapshot {} ({} vertices, {} edges, {} bytes, fingerprint \
                     {:#018x})",
                    out,
                    g.num_vertices(),
                    g.num_edges(),
                    file_size(&out),
                    g.content_fingerprint()
                );
            } else if let Some(index) = index {
                let idx = persist::load_index_auto(&index).map_err(|e| e.to_string())?;
                persist::save_index_snapshot(&idx, &out).map_err(|e| e.to_string())?;
                println!(
                    "wrote index snapshot {} ({} nodes, height {}, {} bytes, fingerprint \
                     {:#018x})",
                    out,
                    idx.node_count(),
                    idx.height(),
                    file_size(&out),
                    idx.content_fingerprint()
                );
            }
            Ok(())
        }
        Command::SnapshotLoad { file, buffered } => {
            let mode = if buffered {
                LoadMode::Buffered
            } else {
                LoadMode::Auto
            };
            // one open: the header's payload kind dispatches, so the file is
            // read (and checksummed) exactly once
            let start = std::time::Instant::now();
            let snap = Snapshot::open_with(&file, mode).map_err(|e| e.to_string())?;
            if snap.kind() == KIND_GRAPH {
                let g = graph_snapshot::graph_from_snapshot(&snap).map_err(|e| e.to_string())?;
                println!(
                    "graph snapshot {}: {} vertices, {} edges, fingerprint {:#018x}, \
                     loaded in {:.2?} ({})",
                    file,
                    g.num_vertices(),
                    g.num_edges(),
                    g.content_fingerprint(),
                    start.elapsed(),
                    if g.is_mmap_backed() {
                        "mmap zero-copy"
                    } else if g.is_snapshot_backed() {
                        "buffered region"
                    } else {
                        "owned"
                    }
                );
            } else {
                let idx =
                    icde_core::snapshot::index_from_snapshot(&snap).map_err(|e| e.to_string())?;
                println!(
                    "index snapshot {}: {} nodes, height {}, {} vertices covered, \
                     fingerprint {:#018x}, loaded in {:.2?}",
                    file,
                    idx.node_count(),
                    idx.height(),
                    idx.num_graph_vertices(),
                    idx.content_fingerprint(),
                    start.elapsed()
                );
            }
            Ok(())
        }
    }
}

fn file_size(path: &str) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

/// Merges the per-epoch server-side histograms into one hit aggregate and one
/// executed-miss aggregate.
fn split_latency(epochs: &[EpochLatency]) -> (LatencyHistogram, LatencyHistogram) {
    let mut hits = LatencyHistogram::default();
    let mut misses = LatencyHistogram::default();
    for e in epochs {
        hits.merge(&e.hits);
        misses.merge(&e.misses);
    }
    (hits, misses)
}

fn histogram_json(h: &LatencyHistogram) -> serde_json::Value {
    serde_json::Value::Object(vec![
        ("count".to_string(), serde_json::Value::UInt(h.count)),
        (
            "mean_us".to_string(),
            serde_json::Value::Float(h.mean_micros()),
        ),
        (
            "p50_us_upper".to_string(),
            serde_json::Value::UInt(h.quantile_upper_micros(0.50)),
        ),
        (
            "p99_us_upper".to_string(),
            serde_json::Value::UInt(h.quantile_upper_micros(0.99)),
        ),
        ("max_us".to_string(), serde_json::Value::UInt(h.max_micros)),
    ])
}

fn latency_epochs_json(epochs: &[EpochLatency]) -> serde_json::Value {
    serde_json::Value::Array(
        epochs
            .iter()
            .map(|e| {
                serde_json::Value::Object(vec![
                    ("epoch".to_string(), serde_json::Value::UInt(e.epoch)),
                    ("hits".to_string(), histogram_json(&e.hits)),
                    ("misses".to_string(), histogram_json(&e.misses)),
                ])
            })
            .collect(),
    )
}

/// SplitMix64 step — the workload generator's only source of randomness, so
/// a fixed `--seed` reproduces the exact query stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Cumulative Zipf(s) distribution over ranks `0..n` (rank 0 most popular).
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut total = 0.0;
    for rank in 0..n {
        total += 1.0 / ((rank + 1) as f64).powf(s);
        cdf.push(total);
    }
    for v in &mut cdf {
        *v /= total;
    }
    cdf
}

fn sample_zipf(cdf: &[f64], u: f64) -> usize {
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

/// Distinct keyword ids present in the graph, ascending — the vocabulary the
/// synthetic workload draws from.
fn graph_keywords(g: &SocialNetwork) -> Vec<u32> {
    let mut ids: Vec<u32> = g
        .vertices()
        .flat_map(|v| g.keyword_set(v).iter().map(|kw| kw.0).collect::<Vec<_>>())
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Parses an edge-update stream file: one update per line, `#` comments and
/// blank lines skipped. `+ u v p_uv p_vu` inserts `{u, v}` with the two
/// directed activation probabilities; `- u v` removes the edge.
fn parse_update_stream(text: &str) -> Result<Vec<EdgeUpdate>, String> {
    let mut stream = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = i + 1;
        let mut parts = line.split_whitespace();
        let op = parts.next().expect("non-empty line has a first token");
        let mut field = |name: &str| -> Result<&str, String> {
            parts
                .next()
                .ok_or_else(|| format!("line {lineno}: missing {name}"))
        };
        let parse_vertex = |name: &str, v: &str| -> Result<VertexId, String> {
            v.parse::<u32>()
                .map(VertexId)
                .map_err(|_| format!("line {lineno}: invalid {name} '{v}'"))
        };
        let parse_probability = |name: &str, v: &str| -> Result<f64, String> {
            match v.parse::<f64>() {
                Ok(p) if p > 0.0 && p <= 1.0 => Ok(p),
                _ => Err(format!(
                    "line {lineno}: invalid {name} '{v}' (must be in (0, 1])"
                )),
            }
        };
        let update = match op {
            "+" => {
                let u = parse_vertex("u", field("u")?)?;
                let v = parse_vertex("v", field("v")?)?;
                let p_uv = parse_probability("p_uv", field("p_uv")?)?;
                let p_vu = parse_probability("p_vu", field("p_vu")?)?;
                EdgeUpdate::Insert { u, v, p_uv, p_vu }
            }
            "-" => {
                let u = parse_vertex("u", field("u")?)?;
                let v = parse_vertex("v", field("v")?)?;
                EdgeUpdate::Remove { u, v }
            }
            other => {
                return Err(format!(
                    "line {lineno}: unknown op '{other}' (expected '+' or '-')"
                ))
            }
        };
        if let Some(extra) = parts.next() {
            return Err(format!(
                "line {lineno}: unexpected trailing token '{extra}'"
            ));
        }
        stream.push(update);
    }
    Ok(stream)
}

/// Writes a graph to `out`, dispatching on the extension like [`load_graph`]
/// does on content: `.snap` → binary snapshot, `.json` → JSON, anything
/// else → attributed edge list.
fn write_graph_out(g: &SocialNetwork, out: &str) -> Result<(), String> {
    if out.ends_with(".snap") {
        graph_snapshot::write_graph_snapshot(g, out).map_err(|e| e.to_string())
    } else if out.ends_with(".json") {
        io::write_json_file(g, out).map_err(|e| e.to_string())
    } else {
        io::write_edge_list_file(g, out).map_err(|e| e.to_string())
    }
}

/// Options of the `serve` command (one struct so the workload surface grows
/// without widening the function signature further).
struct ServeOptions {
    workers: usize,
    queries: usize,
    seed: u64,
    k: u32,
    r: u32,
    theta: f64,
    l: usize,
    json: bool,
    /// Target synthetic edge updates/sec pushed through the maintenance
    /// thread while the queries run (0 = serving only).
    update_rate: f64,
    compact_threshold: f64,
    repack_threshold: f64,
}

/// Generates the next batch of always-valid synthetic edge updates for the
/// `serve --update-rate` churn: inserts fresh edges between random vertices
/// (checked against the initial graph plus the mirror of what the stream
/// already added) and removes only edges the stream inserted earlier.
fn next_update_batch(
    g0: &SocialNetwork,
    state: &mut u64,
    added: &mut Vec<(VertexId, VertexId)>,
    added_set: &mut std::collections::BTreeSet<(u32, u32)>,
    size: usize,
) -> Vec<EdgeUpdate> {
    let n = g0.num_vertices() as u64;
    let key = |u: VertexId, v: VertexId| (u.0.min(v.0), u.0.max(v.0));
    let mut batch = Vec::with_capacity(size);
    while batch.len() < size {
        if splitmix64(state).is_multiple_of(2) && !added.is_empty() {
            let i = (splitmix64(state) % added.len() as u64) as usize;
            let (u, v) = added.swap_remove(i);
            added_set.remove(&key(u, v));
            batch.push(EdgeUpdate::Remove { u, v });
        } else {
            let u = VertexId((splitmix64(state) % n) as u32);
            let v = VertexId((splitmix64(state) % n) as u32);
            if u == v || added_set.contains(&key(u, v)) || g0.contains_edge(u, v) {
                continue;
            }
            let p_uv = 0.2 + unit_f64(state) * 0.3;
            let p_vu = 0.2 + unit_f64(state) * 0.3;
            added.push((u, v));
            added_set.insert(key(u, v));
            batch.push(EdgeUpdate::Insert { u, v, p_uv, p_vu });
        }
    }
    batch
}

/// Drives the serving runtime with a closed-loop synthetic workload:
/// `2 × workers` client threads submit Zipf-skewed keyword queries and wait
/// for each answer, so per-query latency covers queueing and execution.
/// With `update_rate > 0` a paced updater additionally streams synthetic
/// edge updates through the maintenance thread, which hot-swaps each
/// refreshed snapshot into the runtime while the queries drain.
fn run_serve(g: SocialNetwork, idx: CommunityIndex, options: ServeOptions) -> Result<(), String> {
    let ServeOptions {
        workers,
        queries,
        seed,
        k,
        r,
        theta,
        l,
        json,
        update_rate,
        compact_threshold,
        repack_threshold,
    } = options;
    let keywords = graph_keywords(&g);
    if keywords.is_empty() {
        return Err("graph has no keywords to build a workload from".to_string());
    }
    let per_query = keywords.len().min(3);
    let cdf = zipf_cdf(keywords.len(), 1.1);
    let mut state = seed ^ 0x5bf0_3635;
    let workload: Vec<TopLQuery> = (0..queries)
        .map(|_| {
            let mut picked = std::collections::BTreeSet::new();
            while picked.len() < per_query {
                picked.insert(keywords[sample_zipf(&cdf, unit_f64(&mut state))]);
            }
            TopLQuery::new(KeywordSet::from_ids(picked), k, r, theta, l)
        })
        .collect();

    // the maintainer (and the churn generator) need their own copies of the
    // pair before the runtime takes ownership of the originals
    let update_pair = if update_rate > 0.0 {
        Some((g.clone(), idx.clone()))
    } else {
        None
    };
    let runtime = Arc::new(
        ServingRuntime::start(ServingConfig::with_workers(workers), g, idx)
            .map_err(|e| e.to_string())?,
    );
    let clients = (workers * 2).clamp(1, queries.max(1));
    let started = std::time::Instant::now();
    let stop_updates = AtomicBool::new(false);
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(queries);
    let mut update_stats = MaintainerStats::default();
    let mut update_wall_s = 0.0f64;
    std::thread::scope(|scope| -> Result<(), String> {
        let updater = update_pair.map(|(g0, idx0)| {
            let runtime = Arc::clone(&runtime);
            let stop = &stop_updates;
            let mut churn_state = seed ^ 0x7d1e_55ab;
            scope.spawn(move || -> (MaintainerStats, f64) {
                let feed = StreamingMaintainer::new(g0.clone(), idx0)
                    .with_compact_threshold(compact_threshold)
                    .with_repack_threshold(repack_threshold)
                    .spawn(Arc::clone(&runtime));
                // ~20 batches/sec pacing against the wall clock
                let batch_size = ((update_rate / 20.0).round() as usize).max(1);
                let t0 = std::time::Instant::now();
                let mut added = Vec::new();
                let mut added_set = std::collections::BTreeSet::new();
                let mut sent = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let target = (t0.elapsed().as_secs_f64() * update_rate) as u64;
                    while sent < target {
                        let batch = next_update_batch(
                            &g0,
                            &mut churn_state,
                            &mut added,
                            &mut added_set,
                            batch_size,
                        );
                        sent += batch.len() as u64;
                        if !feed.push(batch) {
                            break;
                        }
                    }
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                let maintainer = feed.finish();
                (maintainer.stats(), t0.elapsed().as_secs_f64())
            })
        });
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let runtime = &runtime;
                let slice: Vec<TopLQuery> =
                    workload.iter().skip(c).step_by(clients).cloned().collect();
                scope.spawn(move || -> Result<Vec<u64>, String> {
                    let mut lat = Vec::with_capacity(slice.len());
                    for q in slice {
                        let t0 = std::time::Instant::now();
                        runtime.submit(q).wait().map_err(|e| e.to_string())?;
                        lat.push(t0.elapsed().as_nanos() as u64);
                    }
                    Ok(lat)
                })
            })
            .collect();
        for h in handles {
            latencies_ns.extend(h.join().expect("serve client thread panicked")?);
        }
        stop_updates.store(true, Ordering::Relaxed);
        if let Some(updater) = updater {
            let (stats, wall_s) = updater.join().expect("serve updater thread panicked");
            update_stats = stats;
            update_wall_s = wall_s;
        }
        Ok(())
    })?;
    let wall = started.elapsed();
    let snapshot = runtime.current();
    let stats = Arc::try_unwrap(runtime)
        .ok()
        .expect("all runtime references joined")
        .shutdown();

    latencies_ns.sort_unstable();
    let pct_ms = |p: f64| -> f64 {
        let i = ((latencies_ns.len() - 1) as f64 * p).round() as usize;
        latencies_ns[i] as f64 / 1e6
    };
    let qps = queries as f64 / wall.as_secs_f64().max(f64::MIN_POSITIVE);
    let updates_per_sec = if update_wall_s > 0.0 {
        update_stats.updates_applied() as f64 / update_wall_s
    } else {
        0.0
    };
    if json {
        let doc = serde_json::Value::Object(vec![
            (
                "workers".to_string(),
                serde_json::Value::UInt(workers as u64),
            ),
            (
                "queries".to_string(),
                serde_json::Value::UInt(queries as u64),
            ),
            (
                "wall_seconds".to_string(),
                serde_json::Value::Float(wall.as_secs_f64()),
            ),
            ("qps".to_string(), serde_json::Value::Float(qps)),
            ("p50_ms".to_string(), serde_json::Value::Float(pct_ms(0.50))),
            ("p99_ms".to_string(), serde_json::Value::Float(pct_ms(0.99))),
            (
                "p999_ms".to_string(),
                serde_json::Value::Float(pct_ms(0.999)),
            ),
            (
                "cache_hit_rate".to_string(),
                serde_json::Value::Float(stats.hit_rate()),
            ),
            (
                "cache_hits".to_string(),
                serde_json::Value::UInt(stats.cache_hits),
            ),
            (
                "queries_executed".to_string(),
                serde_json::Value::UInt(stats.queries_executed),
            ),
            (
                "queries_failed".to_string(),
                serde_json::Value::UInt(stats.queries_failed),
            ),
            (
                "updates_applied".to_string(),
                serde_json::Value::UInt(update_stats.updates_applied()),
            ),
            (
                "updates_per_sec".to_string(),
                serde_json::Value::Float(updates_per_sec),
            ),
            (
                "update_rate_requested".to_string(),
                serde_json::Value::Float(update_rate),
            ),
            (
                "compactions".to_string(),
                serde_json::Value::UInt(update_stats.compactions),
            ),
            (
                "index_patches".to_string(),
                serde_json::Value::UInt(update_stats.index_patches),
            ),
            (
                "repacks".to_string(),
                serde_json::Value::UInt(update_stats.repacks),
            ),
            (
                "publishes_skipped".to_string(),
                serde_json::Value::UInt(update_stats.publishes_skipped),
            ),
            (
                "ball_overlap".to_string(),
                serde_json::Value::UInt(update_stats.ball_overlap),
            ),
            (
                "support_patch_secs".to_string(),
                serde_json::Value::Float(update_stats.support_patch_secs),
            ),
            (
                "ball_recompute_secs".to_string(),
                serde_json::Value::Float(update_stats.ball_recompute_secs),
            ),
            (
                "index_patch_secs".to_string(),
                serde_json::Value::Float(update_stats.index_patch_secs),
            ),
            (
                "publish_secs".to_string(),
                serde_json::Value::Float(update_stats.publish_secs),
            ),
            (
                "snapshot_swaps".to_string(),
                serde_json::Value::UInt(stats.swaps),
            ),
            (
                "snapshot_epoch".to_string(),
                serde_json::Value::UInt(snapshot.epoch()),
            ),
            (
                "snapshot_fingerprint".to_string(),
                serde_json::Value::Str(format!("{:#018x}", snapshot.fingerprint())),
            ),
            (
                "latency_by_epoch".to_string(),
                latency_epochs_json(&stats.latency_by_epoch),
            ),
        ]);
        println!(
            "{}",
            serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?
        );
    } else {
        println!(
            "served {} queries on {} worker{} in {:.2?} ({:.0} QPS)",
            queries,
            workers,
            if workers == 1 { "" } else { "s" },
            wall,
            qps
        );
        println!(
            "latency: p50 {:.3}ms | p99 {:.3}ms | p999 {:.3}ms",
            pct_ms(0.50),
            pct_ms(0.99),
            pct_ms(0.999)
        );
        println!(
            "cache: {:.1}% hit rate ({} hits, {} executed, {} failed)",
            stats.hit_rate() * 100.0,
            stats.cache_hits,
            stats.queries_executed,
            stats.queries_failed
        );
        // server-side split: every snapshot swap invalidates the answer LRU,
        // so each hot query re-executes the kernel once per epoch — the tail
        // is those per-epoch misses, not slow hits
        let (hits, misses) = split_latency(&stats.latency_by_epoch);
        if hits.count + misses.count > 0 {
            println!(
                "server-side: {} cache hits (mean {:.1}µs, p99 ≤ {}µs) | {} kernel \
                 executions (mean {:.1}µs, p99 ≤ {}µs) across {} epoch{}",
                hits.count,
                hits.mean_micros(),
                hits.quantile_upper_micros(0.99),
                misses.count,
                misses.mean_micros(),
                misses.quantile_upper_micros(0.99),
                stats.latency_by_epoch.len(),
                if stats.latency_by_epoch.len() == 1 {
                    ""
                } else {
                    "s"
                }
            );
        }
        if update_rate > 0.0 {
            println!(
                "updates: {} applied ({:.0}/sec sustained, target {:.0}/sec), \
                 {} compaction{}, {} snapshot swap{}",
                update_stats.updates_applied(),
                updates_per_sec,
                update_rate,
                update_stats.compactions,
                if update_stats.compactions == 1 {
                    ""
                } else {
                    "s"
                },
                stats.swaps,
                if stats.swaps == 1 { "" } else { "s" }
            );
            println!(
                "maintenance: {} index patch{}, {} repack{}, {} publish{} skipped; phases: \
                 support patch {:.1}ms, ball recompute {:.1}ms, index patch {:.1}ms, \
                 publish {:.1}ms",
                update_stats.index_patches,
                if update_stats.index_patches == 1 {
                    ""
                } else {
                    "es"
                },
                update_stats.repacks,
                if update_stats.repacks == 1 { "" } else { "s" },
                update_stats.publishes_skipped,
                if update_stats.publishes_skipped == 1 {
                    ""
                } else {
                    "es"
                },
                update_stats.support_patch_secs * 1e3,
                update_stats.ball_recompute_secs * 1e3,
                update_stats.index_patch_secs * 1e3,
                update_stats.publish_secs * 1e3
            );
        }
        println!(
            "snapshot: epoch {}, fingerprint {:#018x}",
            snapshot.epoch(),
            snapshot.fingerprint()
        );
    }
    if stats.queries_failed > 0 {
        return Err(format!("{} queries failed", stats.queries_failed));
    }
    Ok(())
}

fn load_graph(path: &str) -> Result<SocialNetwork, String> {
    // binary snapshots are identified by magic bytes, not extension
    if path_is_snapshot(path) {
        graph_snapshot::read_graph_snapshot(path).map_err(|e| e.to_string())
    } else if path.ends_with(".json") {
        io::read_json_file(path).map_err(|e| e.to_string())
    } else {
        io::read_edge_list_file(path).map_err(|e| e.to_string())
    }
}

fn print_communities(communities: &[SeedCommunity]) {
    for (rank, c) in communities.iter().enumerate() {
        let members: Vec<String> = c.vertices.iter().map(|v| v.0.to_string()).collect();
        println!(
            "#{rank}: center {} | score {:.3} | {} members [{}] | {} influenced users",
            c.center,
            c.influential_score,
            c.len(),
            members.join(","),
            c.influenced_only()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Command;
    use icde_graph::generators::DatasetKind;

    fn temp_path(name: &str) -> String {
        std::env::temp_dir()
            .join(name)
            .to_string_lossy()
            .to_string()
    }

    #[test]
    fn generate_index_query_pipeline() {
        let graph_path = temp_path("topl_cli_test_graph.txt");
        let index_path = temp_path("topl_cli_test_index.json");

        run(Command::Generate {
            kind: DatasetKind::Uniform,
            vertices: 200,
            seed: 3,
            keyword_domain: 10,
            keywords_per_vertex: 3,
            out: graph_path.clone(),
        })
        .unwrap();

        run(Command::Stats {
            graph: graph_path.clone(),
            threads: None,
        })
        .unwrap();

        run(Command::Index {
            graph: graph_path.clone(),
            out: index_path.clone(),
            r_max: 3,
            fanout: 8,
            thresholds: vec![0.1, 0.2, 0.3],
            threads: Some(2),
            shards: Some(2),
        })
        .unwrap();

        run(Command::Query {
            graph: graph_path.clone(),
            index: index_path.clone(),
            keywords: vec![0, 1, 2, 3],
            k: 3,
            r: 2,
            theta: 0.2,
            l: 3,
            json: true,
            explain: true,
            eager: false,
        })
        .unwrap();

        run(Command::DQuery {
            graph: graph_path.clone(),
            index: index_path.clone(),
            keywords: vec![0, 1, 2, 3],
            k: 3,
            r: 2,
            theta: 0.2,
            l: 2,
            n: 2,
            json: false,
        })
        .unwrap();

        let _ = std::fs::remove_file(graph_path);
        let _ = std::fs::remove_file(index_path);
    }

    #[test]
    fn snapshot_save_load_query_pipeline() {
        let graph_path = temp_path("topl_cli_snap_graph.txt");
        let graph_snap = temp_path("topl_cli_snap_graph.snap");
        let index_snap = temp_path("topl_cli_snap_index.snap");

        run(Command::Generate {
            kind: DatasetKind::Uniform,
            vertices: 150,
            seed: 9,
            keyword_domain: 10,
            keywords_per_vertex: 3,
            out: graph_path.clone(),
        })
        .unwrap();

        // graph → binary snapshot; index built straight into a snapshot
        run(Command::SnapshotSave {
            graph: Some(graph_path.clone()),
            index: None,
            out: graph_snap.clone(),
        })
        .unwrap();
        run(Command::Index {
            graph: graph_snap.clone(),
            out: index_snap.clone(),
            r_max: 3,
            fanout: 8,
            thresholds: vec![0.1, 0.2, 0.3],
            threads: None,
            shards: None,
        })
        .unwrap();

        // both snapshots verify through the load command (mmap and fallback)
        for buffered in [false, true] {
            run(Command::SnapshotLoad {
                file: graph_snap.clone(),
                buffered,
            })
            .unwrap();
            run(Command::SnapshotLoad {
                file: index_snap.clone(),
                buffered,
            })
            .unwrap();
        }

        // queries run directly off the binary snapshots
        run(Command::Query {
            graph: graph_snap.clone(),
            index: index_snap.clone(),
            keywords: vec![0, 1, 2, 3],
            k: 3,
            r: 2,
            theta: 0.2,
            l: 3,
            json: false,
            explain: false,
            eager: true,
        })
        .unwrap();

        // corrupt snapshots are rejected, not mis-loaded
        let mut bytes = std::fs::read(&graph_snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&graph_snap, &bytes).unwrap();
        assert!(run(Command::SnapshotLoad {
            file: graph_snap.clone(),
            buffered: false,
        })
        .is_err());

        let _ = std::fs::remove_file(graph_path);
        let _ = std::fs::remove_file(graph_snap);
        let _ = std::fs::remove_file(index_snap);
    }

    #[test]
    fn serve_runs_a_small_workload() {
        let graph_path = temp_path("topl_cli_serve_graph.txt");
        let index_path = temp_path("topl_cli_serve_index.json");
        run(Command::Generate {
            kind: DatasetKind::Uniform,
            vertices: 150,
            seed: 5,
            keyword_domain: 10,
            keywords_per_vertex: 3,
            out: graph_path.clone(),
        })
        .unwrap();
        run(Command::Index {
            graph: graph_path.clone(),
            out: index_path.clone(),
            r_max: 2,
            fanout: 8,
            thresholds: vec![0.1, 0.2, 0.3],
            threads: Some(1),
            shards: None,
        })
        .unwrap();
        run(Command::Serve {
            graph: graph_path.clone(),
            index: index_path.clone(),
            workers: 2,
            queries: 40,
            seed: 7,
            k: 3,
            r: 2,
            theta: 0.2,
            l: 3,
            json: true,
            update_rate: 0.0,
            compact_threshold: icde_graph::graph::DEFAULT_COMPACT_THRESHOLD,
            repack_threshold: icde_core::streaming::DEFAULT_REPACK_THRESHOLD,
        })
        .unwrap();
        // with churn: the updater streams edge updates through the
        // maintenance thread while the same workload drains
        run(Command::Serve {
            graph: graph_path.clone(),
            index: index_path.clone(),
            workers: 2,
            queries: 40,
            seed: 7,
            k: 3,
            r: 2,
            theta: 0.2,
            l: 3,
            json: true,
            update_rate: 400.0,
            compact_threshold: 0.02,
            repack_threshold: 0.5,
        })
        .unwrap();
        let _ = std::fs::remove_file(graph_path);
        let _ = std::fs::remove_file(index_path);
    }

    #[test]
    fn update_stream_refreshes_graph_and_index() {
        let graph_path = temp_path("topl_cli_update_graph.txt");
        let index_path = temp_path("topl_cli_update_index.json");
        let updates_path = temp_path("topl_cli_update_stream.txt");
        let out_graph = temp_path("topl_cli_update_graph_out.snap");
        let out_index = temp_path("topl_cli_update_index_out.json");

        run(Command::Generate {
            kind: DatasetKind::Uniform,
            vertices: 150,
            seed: 11,
            keyword_domain: 10,
            keywords_per_vertex: 3,
            out: graph_path.clone(),
        })
        .unwrap();
        run(Command::Index {
            graph: graph_path.clone(),
            out: index_path.clone(),
            r_max: 2,
            fanout: 8,
            thresholds: vec![0.1, 0.2, 0.3],
            threads: Some(1),
            shards: None,
        })
        .unwrap();

        // build a stream off the actual graph: remove two live edges, insert
        // two fresh ones
        let g = load_graph(&graph_path).unwrap();
        let removals: Vec<_> = g.edges().take(2).map(|(_, u, v)| (u, v)).collect();
        let mut inserts = Vec::new();
        'outer: for u in g.vertices() {
            for v in g.vertices() {
                if u < v && !g.contains_edge(u, v) {
                    inserts.push((u, v));
                    if inserts.len() == 2 {
                        break 'outer;
                    }
                }
            }
        }
        let mut stream = String::from("# synthetic churn\n\n");
        for (u, v) in &removals {
            stream.push_str(&format!("- {} {}\n", u.0, v.0));
        }
        for (u, v) in &inserts {
            stream.push_str(&format!("+ {} {} 0.4 0.35\n", u.0, v.0));
        }
        std::fs::write(&updates_path, stream).unwrap();

        run(Command::Update {
            graph: graph_path.clone(),
            index: index_path.clone(),
            updates: updates_path.clone(),
            batch: 2,
            compact_threshold: 0.001, // tiny: force a compaction
            repack_threshold: icde_core::streaming::DEFAULT_REPACK_THRESHOLD,
            out_graph: Some(out_graph.clone()),
            out_index: Some(out_index.clone()),
            keywords: vec![0, 1, 2],
            k: 3,
            r: 2,
            theta: 0.2,
            l: 3,
            json: true,
        })
        .unwrap();

        // the refreshed pair round-trips: the written graph reflects the
        // stream and answers queries against the written index
        let refreshed = load_graph(&out_graph).unwrap();
        for (u, v) in &removals {
            assert!(!refreshed.contains_edge(*u, *v));
        }
        for (u, v) in &inserts {
            assert!(refreshed.contains_edge(*u, *v));
        }
        run(Command::Query {
            graph: out_graph.clone(),
            index: out_index.clone(),
            keywords: vec![0, 1, 2],
            k: 3,
            r: 2,
            theta: 0.2,
            l: 3,
            json: false,
            explain: false,
            eager: false,
        })
        .unwrap();

        // persisting with a *pending* overlay (threshold never crossed): the
        // update command must compact before writing, so the saved supports
        // are keyed by the same renumbered id space as the written graph
        let overlay_stream: String = load_graph(&graph_path)
            .unwrap()
            .edges()
            .take(3)
            .map(|(_, u, v)| format!("- {} {}\n", u.0, v.0))
            .collect();
        std::fs::write(&updates_path, overlay_stream).unwrap();
        run(Command::Update {
            graph: graph_path.clone(),
            index: index_path.clone(),
            updates: updates_path.clone(),
            batch: 64,
            compact_threshold: 1000.0, // huge: no batch-triggered compaction
            repack_threshold: 0.0,     // every batch repacks: exercise the rebuild path
            out_graph: Some(out_graph.clone()),
            out_index: Some(out_index.clone()),
            keywords: Vec::new(),
            k: 3,
            r: 2,
            theta: 0.2,
            l: 3,
            json: false,
        })
        .unwrap();
        let reloaded_graph = load_graph(&out_graph).unwrap();
        let reloaded_index = persist::load_index_auto(&out_index).unwrap();
        let scratch_index = IndexBuilder::new(PrecomputeConfig::new(2, vec![0.1, 0.2, 0.3]))
            .with_fanout(8)
            .build(&reloaded_graph);
        assert_eq!(
            reloaded_index.precomputed.edge_supports.as_slice(),
            scratch_index.precomputed.edge_supports.as_slice(),
            "persisted supports must live in the written graph's id space"
        );

        // malformed streams are rejected with line numbers
        std::fs::write(&updates_path, "+ 1 2 0.4\n").unwrap();
        assert!(run(Command::Update {
            graph: graph_path.clone(),
            index: index_path.clone(),
            updates: updates_path.clone(),
            batch: 64,
            compact_threshold: 0.125,
            repack_threshold: f64::INFINITY, // never repack: pure patch path
            out_graph: None,
            out_index: None,
            keywords: Vec::new(),
            k: 4,
            r: 2,
            theta: 0.2,
            l: 5,
            json: false,
        })
        .is_err());

        let _ = std::fs::remove_file(graph_path);
        let _ = std::fs::remove_file(index_path);
        let _ = std::fs::remove_file(updates_path);
        let _ = std::fs::remove_file(out_graph);
        let _ = std::fs::remove_file(out_index);
    }

    #[test]
    fn missing_files_produce_errors() {
        assert!(run(Command::Stats {
            graph: "/no/such/file.txt".into(),
            threads: None,
        })
        .is_err());
        assert!(run(Command::Query {
            graph: "/no/such/file.txt".into(),
            index: "/no/such/index.json".into(),
            keywords: vec![1],
            k: 3,
            r: 2,
            theta: 0.2,
            l: 2,
            json: false,
            explain: false,
            eager: false,
        })
        .is_err());
    }
}
