//! Command implementations for the `topl-icde` binary.

use crate::args::Command;
use icde_core::dtopl::{DTopLProcessor, DTopLQuery, DTopLStrategy};
use icde_core::index::{CommunityIndex, IndexBuilder};
use icde_core::persist;
use icde_core::precompute::PrecomputeConfig;
use icde_core::query::TopLQuery;
use icde_core::seed::SeedCommunity;
use icde_core::serving::{ServingConfig, ServingRuntime};
use icde_core::topl::TopLProcessor;
use icde_graph::generators::DatasetSpec;
use icde_graph::snapshot::{
    self as graph_snapshot, path_is_snapshot, LoadMode, Snapshot, KIND_GRAPH,
};
use icde_graph::statistics::graph_statistics;
use icde_graph::{io, KeywordSet, SocialNetwork};

/// Runs one parsed command; error strings are printed by `main`.
pub fn run(command: Command) -> Result<(), String> {
    match command {
        Command::Help => {
            println!("{}", crate::args::USAGE);
            Ok(())
        }
        Command::Generate {
            kind,
            vertices,
            seed,
            keyword_domain,
            keywords_per_vertex,
            out,
        } => {
            let spec = DatasetSpec::new(kind, vertices, seed)
                .with_keyword_domain(keyword_domain)
                .with_keywords_per_vertex(keywords_per_vertex);
            let graph = spec.generate();
            io::write_edge_list_file(&graph, &out).map_err(|e| e.to_string())?;
            println!(
                "wrote {} ({} vertices, {} edges, kind {:?})",
                out,
                graph.num_vertices(),
                graph.num_edges(),
                kind
            );
            Ok(())
        }
        // `--threads` is accepted for interface symmetry with `index`; graph
        // statistics themselves are single-threaded today, so it only binds
        // once stats grow a pre-computation-backed section.
        Command::Stats { graph, threads: _ } => {
            let g = load_graph(&graph)?;
            let stats = graph_statistics(&g);
            println!(
                "{}",
                serde_json::to_string_pretty(&stats).map_err(|e| e.to_string())?
            );
            Ok(())
        }
        Command::Index {
            graph,
            out,
            r_max,
            fanout,
            thresholds,
            threads,
        } => {
            let g = load_graph(&graph)?;
            let config = PrecomputeConfig::new(r_max, thresholds).with_num_threads(threads);
            let workers = config.worker_count(g.num_vertices());
            let start = std::time::Instant::now();
            let index = IndexBuilder::new(config).with_fanout(fanout).build(&g);
            let offline = start.elapsed();
            if out.ends_with(".snap") {
                persist::save_index_snapshot(&index, &out).map_err(|e| e.to_string())?;
            } else {
                persist::save_index(&index, &out).map_err(|e| e.to_string())?;
            }
            let rate = g.num_vertices() as f64 / offline.as_secs_f64().max(f64::MIN_POSITIVE);
            println!(
                "offline build: {:.2?} on {} worker thread{} ({:.0} vertices/sec)",
                offline,
                workers,
                if workers == 1 { "" } else { "s" },
                rate
            );
            println!(
                "wrote {} ({} nodes, height {})",
                out,
                index.node_count(),
                index.height(),
            );
            Ok(())
        }
        Command::Query {
            graph,
            index,
            keywords,
            k,
            r,
            theta,
            l,
            json,
            explain,
            eager,
        } => {
            let g = load_graph(&graph)?;
            let idx = persist::load_index_auto(&index).map_err(|e| e.to_string())?;
            let query = TopLQuery::new(KeywordSet::from_ids(keywords), k, r, theta, l);
            let processor = TopLProcessor::new(&g, &idx);
            let answer = if eager {
                processor.run_eager(&query)
            } else {
                processor.run(&query)
            }
            .map_err(|e| e.to_string())?;
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&answer.communities).map_err(|e| e.to_string())?
                );
            } else {
                print_communities(&answer.communities);
                println!(
                    "{} answers in {:.2?} ({} candidates pruned)",
                    answer.communities.len(),
                    answer.elapsed,
                    answer.stats.total_pruned_candidates()
                );
            }
            if explain {
                println!("{}", answer.stats);
            }
            Ok(())
        }
        Command::DQuery {
            graph,
            index,
            keywords,
            k,
            r,
            theta,
            l,
            n,
            json,
        } => {
            let g = load_graph(&graph)?;
            let idx = persist::load_index_auto(&index).map_err(|e| e.to_string())?;
            let base = TopLQuery::new(KeywordSet::from_ids(keywords), k, r, theta, l);
            let query = DTopLQuery::new(base, n);
            let answer = DTopLProcessor::new(&g, &idx)
                .run(&query, DTopLStrategy::GreedyWithPruning)
                .map_err(|e| e.to_string())?;
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&answer.communities).map_err(|e| e.to_string())?
                );
            } else {
                print_communities(&answer.communities);
                println!(
                    "diversity score {:.2}, {} answers in {:.2?}",
                    answer.diversity_score,
                    answer.communities.len(),
                    answer.elapsed
                );
            }
            Ok(())
        }
        Command::Serve {
            graph,
            index,
            workers,
            queries,
            seed,
            k,
            r,
            theta,
            l,
            json,
        } => {
            let g = load_graph(&graph)?;
            let idx = persist::load_index_auto(&index).map_err(|e| e.to_string())?;
            run_serve(g, idx, workers, queries, seed, k, r, theta, l, json)
        }
        Command::SnapshotSave { graph, index, out } => {
            if let Some(graph) = graph {
                let g = load_graph(&graph)?;
                graph_snapshot::write_graph_snapshot(&g, &out).map_err(|e| e.to_string())?;
                println!(
                    "wrote graph snapshot {} ({} vertices, {} edges, {} bytes, fingerprint \
                     {:#018x})",
                    out,
                    g.num_vertices(),
                    g.num_edges(),
                    file_size(&out),
                    g.content_fingerprint()
                );
            } else if let Some(index) = index {
                let idx = persist::load_index_auto(&index).map_err(|e| e.to_string())?;
                persist::save_index_snapshot(&idx, &out).map_err(|e| e.to_string())?;
                println!(
                    "wrote index snapshot {} ({} nodes, height {}, {} bytes, fingerprint \
                     {:#018x})",
                    out,
                    idx.node_count(),
                    idx.height(),
                    file_size(&out),
                    idx.content_fingerprint()
                );
            }
            Ok(())
        }
        Command::SnapshotLoad { file, buffered } => {
            let mode = if buffered {
                LoadMode::Buffered
            } else {
                LoadMode::Auto
            };
            // one open: the header's payload kind dispatches, so the file is
            // read (and checksummed) exactly once
            let start = std::time::Instant::now();
            let snap = Snapshot::open_with(&file, mode).map_err(|e| e.to_string())?;
            if snap.kind() == KIND_GRAPH {
                let g = graph_snapshot::graph_from_snapshot(&snap).map_err(|e| e.to_string())?;
                println!(
                    "graph snapshot {}: {} vertices, {} edges, fingerprint {:#018x}, \
                     loaded in {:.2?} ({})",
                    file,
                    g.num_vertices(),
                    g.num_edges(),
                    g.content_fingerprint(),
                    start.elapsed(),
                    if g.is_mmap_backed() {
                        "mmap zero-copy"
                    } else if g.is_snapshot_backed() {
                        "buffered region"
                    } else {
                        "owned"
                    }
                );
            } else {
                let idx =
                    icde_core::snapshot::index_from_snapshot(&snap).map_err(|e| e.to_string())?;
                println!(
                    "index snapshot {}: {} nodes, height {}, {} vertices covered, \
                     fingerprint {:#018x}, loaded in {:.2?}",
                    file,
                    idx.node_count(),
                    idx.height(),
                    idx.num_graph_vertices(),
                    idx.content_fingerprint(),
                    start.elapsed()
                );
            }
            Ok(())
        }
    }
}

fn file_size(path: &str) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

/// SplitMix64 step — the workload generator's only source of randomness, so
/// a fixed `--seed` reproduces the exact query stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Cumulative Zipf(s) distribution over ranks `0..n` (rank 0 most popular).
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut total = 0.0;
    for rank in 0..n {
        total += 1.0 / ((rank + 1) as f64).powf(s);
        cdf.push(total);
    }
    for v in &mut cdf {
        *v /= total;
    }
    cdf
}

fn sample_zipf(cdf: &[f64], u: f64) -> usize {
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

/// Distinct keyword ids present in the graph, ascending — the vocabulary the
/// synthetic workload draws from.
fn graph_keywords(g: &SocialNetwork) -> Vec<u32> {
    let mut ids: Vec<u32> = g
        .vertices()
        .flat_map(|v| g.keyword_set(v).iter().map(|kw| kw.0).collect::<Vec<_>>())
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Drives the serving runtime with a closed-loop synthetic workload:
/// `2 × workers` client threads submit Zipf-skewed keyword queries and wait
/// for each answer, so per-query latency covers queueing and execution.
#[allow(clippy::too_many_arguments)]
fn run_serve(
    g: SocialNetwork,
    idx: CommunityIndex,
    workers: usize,
    queries: usize,
    seed: u64,
    k: u32,
    r: u32,
    theta: f64,
    l: usize,
    json: bool,
) -> Result<(), String> {
    let keywords = graph_keywords(&g);
    if keywords.is_empty() {
        return Err("graph has no keywords to build a workload from".to_string());
    }
    let per_query = keywords.len().min(3);
    let cdf = zipf_cdf(keywords.len(), 1.1);
    let mut state = seed ^ 0x5bf0_3635;
    let workload: Vec<TopLQuery> = (0..queries)
        .map(|_| {
            let mut picked = std::collections::BTreeSet::new();
            while picked.len() < per_query {
                picked.insert(keywords[sample_zipf(&cdf, unit_f64(&mut state))]);
            }
            TopLQuery::new(KeywordSet::from_ids(picked), k, r, theta, l)
        })
        .collect();

    let runtime = ServingRuntime::start(ServingConfig::with_workers(workers), g, idx)
        .map_err(|e| e.to_string())?;
    let snapshot = runtime.current();
    let clients = (workers * 2).clamp(1, queries.max(1));
    let started = std::time::Instant::now();
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(queries);
    std::thread::scope(|scope| -> Result<(), String> {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let runtime = &runtime;
                let slice: Vec<TopLQuery> =
                    workload.iter().skip(c).step_by(clients).cloned().collect();
                scope.spawn(move || -> Result<Vec<u64>, String> {
                    let mut lat = Vec::with_capacity(slice.len());
                    for q in slice {
                        let t0 = std::time::Instant::now();
                        runtime.submit(q).wait().map_err(|e| e.to_string())?;
                        lat.push(t0.elapsed().as_nanos() as u64);
                    }
                    Ok(lat)
                })
            })
            .collect();
        for h in handles {
            latencies_ns.extend(h.join().expect("serve client thread panicked")?);
        }
        Ok(())
    })?;
    let wall = started.elapsed();
    let stats = runtime.shutdown();

    latencies_ns.sort_unstable();
    let pct_ms = |p: f64| -> f64 {
        let i = ((latencies_ns.len() - 1) as f64 * p).round() as usize;
        latencies_ns[i] as f64 / 1e6
    };
    let qps = queries as f64 / wall.as_secs_f64().max(f64::MIN_POSITIVE);
    if json {
        let doc = serde_json::Value::Object(vec![
            (
                "workers".to_string(),
                serde_json::Value::UInt(workers as u64),
            ),
            (
                "queries".to_string(),
                serde_json::Value::UInt(queries as u64),
            ),
            (
                "wall_seconds".to_string(),
                serde_json::Value::Float(wall.as_secs_f64()),
            ),
            ("qps".to_string(), serde_json::Value::Float(qps)),
            ("p50_ms".to_string(), serde_json::Value::Float(pct_ms(0.50))),
            ("p99_ms".to_string(), serde_json::Value::Float(pct_ms(0.99))),
            (
                "p999_ms".to_string(),
                serde_json::Value::Float(pct_ms(0.999)),
            ),
            (
                "cache_hit_rate".to_string(),
                serde_json::Value::Float(stats.hit_rate()),
            ),
            (
                "cache_hits".to_string(),
                serde_json::Value::UInt(stats.cache_hits),
            ),
            (
                "queries_executed".to_string(),
                serde_json::Value::UInt(stats.queries_executed),
            ),
            (
                "queries_failed".to_string(),
                serde_json::Value::UInt(stats.queries_failed),
            ),
            (
                "snapshot_epoch".to_string(),
                serde_json::Value::UInt(snapshot.epoch()),
            ),
            (
                "snapshot_fingerprint".to_string(),
                serde_json::Value::Str(format!("{:#018x}", snapshot.fingerprint())),
            ),
        ]);
        println!(
            "{}",
            serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?
        );
    } else {
        println!(
            "served {} queries on {} worker{} in {:.2?} ({:.0} QPS)",
            queries,
            workers,
            if workers == 1 { "" } else { "s" },
            wall,
            qps
        );
        println!(
            "latency: p50 {:.3}ms | p99 {:.3}ms | p999 {:.3}ms",
            pct_ms(0.50),
            pct_ms(0.99),
            pct_ms(0.999)
        );
        println!(
            "cache: {:.1}% hit rate ({} hits, {} executed, {} failed)",
            stats.hit_rate() * 100.0,
            stats.cache_hits,
            stats.queries_executed,
            stats.queries_failed
        );
        println!(
            "snapshot: epoch {}, fingerprint {:#018x}",
            snapshot.epoch(),
            snapshot.fingerprint()
        );
    }
    if stats.queries_failed > 0 {
        return Err(format!("{} queries failed", stats.queries_failed));
    }
    Ok(())
}

fn load_graph(path: &str) -> Result<SocialNetwork, String> {
    // binary snapshots are identified by magic bytes, not extension
    if path_is_snapshot(path) {
        graph_snapshot::read_graph_snapshot(path).map_err(|e| e.to_string())
    } else if path.ends_with(".json") {
        io::read_json_file(path).map_err(|e| e.to_string())
    } else {
        io::read_edge_list_file(path).map_err(|e| e.to_string())
    }
}

fn print_communities(communities: &[SeedCommunity]) {
    for (rank, c) in communities.iter().enumerate() {
        let members: Vec<String> = c.vertices.iter().map(|v| v.0.to_string()).collect();
        println!(
            "#{rank}: center {} | score {:.3} | {} members [{}] | {} influenced users",
            c.center,
            c.influential_score,
            c.len(),
            members.join(","),
            c.influenced_only()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Command;
    use icde_graph::generators::DatasetKind;

    fn temp_path(name: &str) -> String {
        std::env::temp_dir()
            .join(name)
            .to_string_lossy()
            .to_string()
    }

    #[test]
    fn generate_index_query_pipeline() {
        let graph_path = temp_path("topl_cli_test_graph.txt");
        let index_path = temp_path("topl_cli_test_index.json");

        run(Command::Generate {
            kind: DatasetKind::Uniform,
            vertices: 200,
            seed: 3,
            keyword_domain: 10,
            keywords_per_vertex: 3,
            out: graph_path.clone(),
        })
        .unwrap();

        run(Command::Stats {
            graph: graph_path.clone(),
            threads: None,
        })
        .unwrap();

        run(Command::Index {
            graph: graph_path.clone(),
            out: index_path.clone(),
            r_max: 3,
            fanout: 8,
            thresholds: vec![0.1, 0.2, 0.3],
            threads: Some(2),
        })
        .unwrap();

        run(Command::Query {
            graph: graph_path.clone(),
            index: index_path.clone(),
            keywords: vec![0, 1, 2, 3],
            k: 3,
            r: 2,
            theta: 0.2,
            l: 3,
            json: true,
            explain: true,
            eager: false,
        })
        .unwrap();

        run(Command::DQuery {
            graph: graph_path.clone(),
            index: index_path.clone(),
            keywords: vec![0, 1, 2, 3],
            k: 3,
            r: 2,
            theta: 0.2,
            l: 2,
            n: 2,
            json: false,
        })
        .unwrap();

        let _ = std::fs::remove_file(graph_path);
        let _ = std::fs::remove_file(index_path);
    }

    #[test]
    fn snapshot_save_load_query_pipeline() {
        let graph_path = temp_path("topl_cli_snap_graph.txt");
        let graph_snap = temp_path("topl_cli_snap_graph.snap");
        let index_snap = temp_path("topl_cli_snap_index.snap");

        run(Command::Generate {
            kind: DatasetKind::Uniform,
            vertices: 150,
            seed: 9,
            keyword_domain: 10,
            keywords_per_vertex: 3,
            out: graph_path.clone(),
        })
        .unwrap();

        // graph → binary snapshot; index built straight into a snapshot
        run(Command::SnapshotSave {
            graph: Some(graph_path.clone()),
            index: None,
            out: graph_snap.clone(),
        })
        .unwrap();
        run(Command::Index {
            graph: graph_snap.clone(),
            out: index_snap.clone(),
            r_max: 3,
            fanout: 8,
            thresholds: vec![0.1, 0.2, 0.3],
            threads: None,
        })
        .unwrap();

        // both snapshots verify through the load command (mmap and fallback)
        for buffered in [false, true] {
            run(Command::SnapshotLoad {
                file: graph_snap.clone(),
                buffered,
            })
            .unwrap();
            run(Command::SnapshotLoad {
                file: index_snap.clone(),
                buffered,
            })
            .unwrap();
        }

        // queries run directly off the binary snapshots
        run(Command::Query {
            graph: graph_snap.clone(),
            index: index_snap.clone(),
            keywords: vec![0, 1, 2, 3],
            k: 3,
            r: 2,
            theta: 0.2,
            l: 3,
            json: false,
            explain: false,
            eager: true,
        })
        .unwrap();

        // corrupt snapshots are rejected, not mis-loaded
        let mut bytes = std::fs::read(&graph_snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&graph_snap, &bytes).unwrap();
        assert!(run(Command::SnapshotLoad {
            file: graph_snap.clone(),
            buffered: false,
        })
        .is_err());

        let _ = std::fs::remove_file(graph_path);
        let _ = std::fs::remove_file(graph_snap);
        let _ = std::fs::remove_file(index_snap);
    }

    #[test]
    fn serve_runs_a_small_workload() {
        let graph_path = temp_path("topl_cli_serve_graph.txt");
        let index_path = temp_path("topl_cli_serve_index.json");
        run(Command::Generate {
            kind: DatasetKind::Uniform,
            vertices: 150,
            seed: 5,
            keyword_domain: 10,
            keywords_per_vertex: 3,
            out: graph_path.clone(),
        })
        .unwrap();
        run(Command::Index {
            graph: graph_path.clone(),
            out: index_path.clone(),
            r_max: 2,
            fanout: 8,
            thresholds: vec![0.1, 0.2, 0.3],
            threads: Some(1),
        })
        .unwrap();
        run(Command::Serve {
            graph: graph_path.clone(),
            index: index_path.clone(),
            workers: 2,
            queries: 40,
            seed: 7,
            k: 3,
            r: 2,
            theta: 0.2,
            l: 3,
            json: true,
        })
        .unwrap();
        let _ = std::fs::remove_file(graph_path);
        let _ = std::fs::remove_file(index_path);
    }

    #[test]
    fn missing_files_produce_errors() {
        assert!(run(Command::Stats {
            graph: "/no/such/file.txt".into(),
            threads: None,
        })
        .is_err());
        assert!(run(Command::Query {
            graph: "/no/such/file.txt".into(),
            index: "/no/such/index.json".into(),
            keywords: vec![1],
            k: 3,
            r: 2,
            theta: 0.2,
            l: 2,
            json: false,
            explain: false,
            eager: false,
        })
        .is_err());
    }
}
