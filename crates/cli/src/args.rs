//! Argument parsing for the `topl-icde` binary (no external CLI crate; the
//! option surface is small and stable).

use icde_graph::generators::DatasetKind;

/// Usage text printed on parse errors and `--help`.
pub const USAGE: &str = "\
usage:
  topl-icde generate --kind <uniform|gaussian|zipf|dblp|amazon> --vertices N [--seed N]
                     [--keyword-domain N] [--keywords-per-vertex N] --out FILE
  topl-icde stats    --graph FILE [--threads N]
  topl-icde index    --graph FILE --out FILE [--rmax N] [--fanout N] [--thresholds a,b,c]
                     [--threads N] [--shards N]
  topl-icde query    --graph FILE --index FILE --keywords a,b,c [--k N] [--r N]
                     [--theta X] [--l N] [--json] [--explain] [--eager]
  topl-icde dquery   --graph FILE --index FILE --keywords a,b,c [--k N] [--r N]
                     [--theta X] [--l N] [--n N] [--json]
  topl-icde serve    --graph FILE --index FILE [--workers N] [--queries N]
                     [--seed N] [--k N] [--r N] [--theta X] [--l N] [--json]
                     [--update-rate N] [--compact-threshold X] [--repack-threshold X]
  topl-icde update   --graph FILE --index FILE --updates FILE [--batch N]
                     [--compact-threshold X] [--repack-threshold X]
                     [--out-graph FILE] [--out-index FILE]
                     [--keywords a,b,c [--k N] [--r N] [--theta X] [--l N]] [--json]
  topl-icde snapshot save --graph FILE --out FILE    (binary graph snapshot)
  topl-icde snapshot save --index FILE --out FILE    (binary index snapshot)
  topl-icde snapshot load --file FILE [--buffered]   (verify + summarise)

graph/index FILE arguments accept any readable format (edge list, JSON, or
binary snapshot — sniffed by magic bytes); `index --out FILE.snap` writes the
binary snapshot directly. --threads N pins the worker count of any offline
pre-computation the command runs (default: all cores); `stats` runs none
today and accepts the flag for forward compatibility. `index --shards N`
partitions the offline build into N contiguous vertex-range shards so each
worker carries only ball-cover-sized scratch (bit-identical output; default:
one shard per worker thread at large scale). `query --explain`
prints the pruning-counter breakdown after the answers; `query --eager`
forces the eager reference path instead of the progressive kernel. `serve`
starts the concurrent serving runtime (worker pool + query LRU) and drives
it with --queries synthetic Zipf-skewed keyword queries, reporting QPS,
latency percentiles and the cache hit rate; --update-rate N additionally
streams ~N synthetic edge updates/sec through the maintenance thread
(delta-overlay patches, hot snapshot swaps) while the queries run, reporting
updates/sec and the compaction count. `update` applies an edge-update stream
file against a graph + index pair through the same maintenance loop (lines:
`+ u v p_uv p_vu` inserts, `- u v` removes, `#` comments) in --batch-sized
batches, optionally writes the refreshed pair back out and answers a query
on it. --compact-threshold X sets the overlay fraction that triggers folding
the delta overlay back into the CSR base (default 0.125). --repack-threshold X
sets the dirty-vertex fraction above which a maintenance batch rebuilds the
re-sorted index tree instead of patching it in place (default 0.25; 0 repacks
every batch, inf never repacks).";

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print the usage text and exit successfully.
    Help,
    /// Generate a synthetic graph and write it to a file.
    Generate {
        /// Dataset family to generate.
        kind: DatasetKind,
        /// Number of vertices.
        vertices: usize,
        /// RNG seed.
        seed: u64,
        /// Keyword domain size |Σ|.
        keyword_domain: u32,
        /// Keywords per vertex |v.W|.
        keywords_per_vertex: usize,
        /// Output path (attributed edge-list format).
        out: String,
    },
    /// Print summary statistics of a graph file.
    Stats {
        /// Path to the graph file.
        graph: String,
        /// Worker-thread count for any offline pre-computation the command
        /// performs ([`PrecomputeConfig::num_threads`]; `None` = all cores).
        ///
        /// [`PrecomputeConfig::num_threads`]:
        /// icde_core::precompute::PrecomputeConfig::num_threads
        threads: Option<usize>,
    },
    /// Build the offline index for a graph and write it to a file.
    Index {
        /// Path to the graph file.
        graph: String,
        /// Output path for the JSON index.
        out: String,
        /// Maximum pre-computed radius.
        r_max: u32,
        /// Tree fan-out.
        fanout: usize,
        /// Pre-selected influence thresholds.
        thresholds: Vec<f64>,
        /// Worker-thread count for the offline pre-computation (`None` = all
        /// cores).
        threads: Option<usize>,
        /// Contiguous vertex-range shard count for the offline build
        /// ([`PrecomputeConfig::num_shards`]; `None` = engine default).
        ///
        /// [`PrecomputeConfig::num_shards`]:
        /// icde_core::precompute::PrecomputeConfig::num_shards
        shards: Option<usize>,
    },
    /// Run a TopL-ICDE query.
    Query {
        /// Path to the graph file.
        graph: String,
        /// Path to the index file.
        index: String,
        /// Query keyword ids.
        keywords: Vec<u32>,
        /// Truss support k.
        k: u32,
        /// Radius r.
        r: u32,
        /// Influence threshold θ.
        theta: f64,
        /// Result size L.
        l: usize,
        /// Emit JSON instead of text.
        json: bool,
        /// Print the pruning-counter breakdown after the answers.
        explain: bool,
        /// Force the eager reference path instead of the progressive kernel.
        eager: bool,
    },
    /// Run a DTopL-ICDE query.
    DQuery {
        /// Path to the graph file.
        graph: String,
        /// Path to the index file.
        index: String,
        /// Query keyword ids.
        keywords: Vec<u32>,
        /// Truss support k.
        k: u32,
        /// Radius r.
        r: u32,
        /// Influence threshold θ.
        theta: f64,
        /// Result size L.
        l: usize,
        /// Candidate multiplier n.
        n: usize,
        /// Emit JSON instead of text.
        json: bool,
    },
    /// Start the concurrent serving runtime and drive it with a synthetic
    /// Zipf-skewed workload.
    Serve {
        /// Path to the graph file.
        graph: String,
        /// Path to the index file.
        index: String,
        /// Worker-thread count of the serving pool.
        workers: usize,
        /// Number of synthetic queries to push through the pool.
        queries: usize,
        /// Workload RNG seed.
        seed: u64,
        /// Truss support k of the generated queries.
        k: u32,
        /// Radius r of the generated queries.
        r: u32,
        /// Influence threshold θ of the generated queries.
        theta: f64,
        /// Result size L of the generated queries.
        l: usize,
        /// Emit JSON instead of text.
        json: bool,
        /// Target synthetic edge updates per second streamed through the
        /// maintenance thread while the queries run (0 disables updates).
        update_rate: f64,
        /// Overlay fraction above which the maintainer compacts the delta
        /// overlay back into the CSR base.
        compact_threshold: f64,
        /// Dirty-vertex fraction above which a maintenance batch repacks
        /// (re-sorts and rebuilds) the index tree instead of patching it.
        repack_threshold: f64,
    },
    /// Apply an edge-update stream file against a graph + index pair via the
    /// streaming maintenance loop.
    Update {
        /// Path to the graph file.
        graph: String,
        /// Path to the index file.
        index: String,
        /// Path to the update-stream file (`+ u v p_uv p_vu` / `- u v`).
        updates: String,
        /// Updates per maintenance batch.
        batch: usize,
        /// Overlay fraction above which a batch triggers compaction.
        compact_threshold: f64,
        /// Dirty-vertex fraction above which a batch repacks the index tree
        /// instead of patching it in place (0 = every batch, inf = never).
        repack_threshold: f64,
        /// Optional output path for the refreshed graph.
        out_graph: Option<String>,
        /// Optional output path for the refreshed index.
        out_index: Option<String>,
        /// Keyword ids of an optional query to answer on the refreshed pair
        /// (empty = no query).
        keywords: Vec<u32>,
        /// Truss support k of the optional query.
        k: u32,
        /// Radius r of the optional query.
        r: u32,
        /// Influence threshold θ of the optional query.
        theta: f64,
        /// Result size L of the optional query.
        l: usize,
        /// Emit JSON instead of text.
        json: bool,
    },
    /// Convert a graph or index file into a binary snapshot.
    SnapshotSave {
        /// Path to a graph file (any readable format), if converting a graph.
        graph: Option<String>,
        /// Path to an index file (JSON or snapshot), if converting an index.
        index: Option<String>,
        /// Output path for the binary snapshot.
        out: String,
    },
    /// Load (and thereby verify) a binary snapshot and print a summary.
    SnapshotLoad {
        /// Path to the snapshot file (graph or index; auto-detected).
        file: String,
        /// Force the buffered-read fallback instead of `mmap`.
        buffered: bool,
    },
}

/// Simple key-value flag map over the argument list.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn get(&self, name: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn has(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    fn required(&self, name: &str) -> Result<&'a str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required flag {name}"))
    }

    fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for {name}: {v}")),
        }
    }
}

fn parse_kind(value: &str) -> Result<DatasetKind, String> {
    match value.to_ascii_lowercase().as_str() {
        "uniform" | "uni" => Ok(DatasetKind::Uniform),
        "gaussian" | "gau" => Ok(DatasetKind::Gaussian),
        "zipf" => Ok(DatasetKind::Zipf),
        "dblp" => Ok(DatasetKind::DblpLike),
        "amazon" => Ok(DatasetKind::AmazonLike),
        other => Err(format!("unknown dataset kind '{other}'")),
    }
}

fn parse_u32_list(value: &str) -> Result<Vec<u32>, String> {
    value
        .split(',')
        .filter(|p| !p.is_empty())
        .map(|p| p.parse().map_err(|_| format!("invalid keyword id '{p}'")))
        .collect()
}

fn parse_threads(flags: &Flags<'_>) -> Result<Option<usize>, String> {
    match flags.get("--threads") {
        None => Ok(None),
        Some(v) => match v.parse::<usize>() {
            Ok(t) if t >= 1 => Ok(Some(t)),
            _ => Err(format!("invalid value for --threads: {v}")),
        },
    }
}

fn parse_shards(flags: &Flags<'_>) -> Result<Option<usize>, String> {
    match flags.get("--shards") {
        None => Ok(None),
        Some(v) => match v.parse::<usize>() {
            Ok(s) if s >= 1 => Ok(Some(s)),
            _ => Err(format!("invalid value for --shards: {v}")),
        },
    }
}

fn parse_compact_threshold(flags: &Flags<'_>) -> Result<f64, String> {
    let threshold = flags.parse_or(
        "--compact-threshold",
        icde_graph::graph::DEFAULT_COMPACT_THRESHOLD,
    )?;
    if threshold > 0.0 && threshold.is_finite() {
        Ok(threshold)
    } else {
        Err("--compact-threshold must be a finite positive number".to_string())
    }
}

fn parse_repack_threshold(flags: &Flags<'_>) -> Result<f64, String> {
    let threshold = flags.parse_or(
        "--repack-threshold",
        icde_core::streaming::DEFAULT_REPACK_THRESHOLD,
    )?;
    // 0 (repack every batch) and inf (never repack) are both meaningful.
    if threshold >= 0.0 {
        Ok(threshold)
    } else {
        Err("--repack-threshold must be a non-negative number".to_string())
    }
}

fn parse_f64_list(value: &str) -> Result<Vec<f64>, String> {
    value
        .split(',')
        .filter(|p| !p.is_empty())
        .map(|p| p.parse().map_err(|_| format!("invalid threshold '{p}'")))
        .collect()
}

/// Parses a full command line (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let Some(command) = args.first() else {
        return Err("no command given".to_string());
    };
    if command == "--help" || command == "-h" || command == "help" {
        return Ok(Command::Help);
    }
    let flags = Flags { args: &args[1..] };
    match command.as_str() {
        "generate" => Ok(Command::Generate {
            kind: parse_kind(flags.required("--kind")?)?,
            vertices: flags
                .required("--vertices")?
                .parse()
                .map_err(|_| "invalid --vertices".to_string())?,
            seed: flags.parse_or("--seed", 42u64)?,
            keyword_domain: flags.parse_or("--keyword-domain", 50u32)?,
            keywords_per_vertex: flags.parse_or("--keywords-per-vertex", 3usize)?,
            out: flags.required("--out")?.to_string(),
        }),
        "stats" => Ok(Command::Stats {
            graph: flags.required("--graph")?.to_string(),
            threads: parse_threads(&flags)?,
        }),
        "snapshot" => {
            let action = args
                .get(1)
                .ok_or_else(|| "snapshot requires an action: save or load".to_string())?;
            let flags = Flags { args: &args[2..] };
            match action.as_str() {
                "save" => {
                    let graph = flags.get("--graph").map(str::to_string);
                    let index = flags.get("--index").map(str::to_string);
                    if graph.is_some() == index.is_some() {
                        return Err(
                            "snapshot save takes exactly one of --graph or --index".to_string()
                        );
                    }
                    Ok(Command::SnapshotSave {
                        graph,
                        index,
                        out: flags.required("--out")?.to_string(),
                    })
                }
                "load" => Ok(Command::SnapshotLoad {
                    file: flags.required("--file")?.to_string(),
                    buffered: flags.has("--buffered"),
                }),
                other => Err(format!("unknown snapshot action '{other}'")),
            }
        }
        "serve" => {
            let workers = flags.parse_or("--workers", 4usize)?;
            if workers == 0 {
                return Err("--workers must be at least 1".to_string());
            }
            let update_rate = flags.parse_or("--update-rate", 0.0f64)?;
            if !(update_rate >= 0.0 && update_rate.is_finite()) {
                return Err("--update-rate must be a finite non-negative number".to_string());
            }
            Ok(Command::Serve {
                graph: flags.required("--graph")?.to_string(),
                index: flags.required("--index")?.to_string(),
                workers,
                queries: flags.parse_or("--queries", 10_000usize)?,
                seed: flags.parse_or("--seed", 42u64)?,
                k: flags.parse_or("--k", 3u32)?,
                r: flags.parse_or("--r", 2u32)?,
                theta: flags.parse_or("--theta", 0.2f64)?,
                l: flags.parse_or("--l", 5usize)?,
                json: flags.has("--json"),
                update_rate,
                compact_threshold: parse_compact_threshold(&flags)?,
                repack_threshold: parse_repack_threshold(&flags)?,
            })
        }
        "update" => {
            let batch = flags.parse_or("--batch", 64usize)?;
            if batch == 0 {
                return Err("--batch must be at least 1".to_string());
            }
            Ok(Command::Update {
                graph: flags.required("--graph")?.to_string(),
                index: flags.required("--index")?.to_string(),
                updates: flags.required("--updates")?.to_string(),
                batch,
                compact_threshold: parse_compact_threshold(&flags)?,
                repack_threshold: parse_repack_threshold(&flags)?,
                out_graph: flags.get("--out-graph").map(str::to_string),
                out_index: flags.get("--out-index").map(str::to_string),
                keywords: match flags.get("--keywords") {
                    None => Vec::new(),
                    Some(v) => parse_u32_list(v)?,
                },
                k: flags.parse_or("--k", 4u32)?,
                r: flags.parse_or("--r", 2u32)?,
                theta: flags.parse_or("--theta", 0.2f64)?,
                l: flags.parse_or("--l", 5usize)?,
                json: flags.has("--json"),
            })
        }
        "index" => Ok(Command::Index {
            graph: flags.required("--graph")?.to_string(),
            out: flags.required("--out")?.to_string(),
            r_max: flags.parse_or("--rmax", 3u32)?,
            fanout: flags.parse_or("--fanout", 8usize)?,
            thresholds: match flags.get("--thresholds") {
                None => vec![0.1, 0.2, 0.3],
                Some(v) => parse_f64_list(v)?,
            },
            threads: parse_threads(&flags)?,
            shards: parse_shards(&flags)?,
        }),
        "query" | "dquery" => {
            let keywords = parse_u32_list(flags.required("--keywords")?)?;
            let k = flags.parse_or("--k", 4u32)?;
            let r = flags.parse_or("--r", 2u32)?;
            let theta = flags.parse_or("--theta", 0.2f64)?;
            let l = flags.parse_or("--l", 5usize)?;
            let graph = flags.required("--graph")?.to_string();
            let index = flags.required("--index")?.to_string();
            let json = flags.has("--json");
            if command == "query" {
                Ok(Command::Query {
                    graph,
                    index,
                    keywords,
                    k,
                    r,
                    theta,
                    l,
                    json,
                    explain: flags.has("--explain"),
                    eager: flags.has("--eager"),
                })
            } else {
                Ok(Command::DQuery {
                    graph,
                    index,
                    keywords,
                    k,
                    r,
                    theta,
                    l,
                    n: flags.parse_or("--n", 3usize)?,
                    json,
                })
            }
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|p| p.to_string()).collect()
    }

    #[test]
    fn parses_generate() {
        let cmd = parse(&argv(&[
            "generate",
            "--kind",
            "amazon",
            "--vertices",
            "1000",
            "--out",
            "g.txt",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                kind: DatasetKind::AmazonLike,
                vertices: 1000,
                seed: 7,
                keyword_domain: 50,
                keywords_per_vertex: 3,
                out: "g.txt".to_string(),
            }
        );
    }

    #[test]
    fn parses_query_with_defaults() {
        let cmd = parse(&argv(&[
            "query",
            "--graph",
            "g.txt",
            "--index",
            "i.json",
            "--keywords",
            "1,2,3",
        ]))
        .unwrap();
        match cmd {
            Command::Query {
                keywords,
                k,
                r,
                theta,
                l,
                json,
                explain,
                eager,
                ..
            } => {
                assert_eq!(keywords, vec![1, 2, 3]);
                assert_eq!(k, 4);
                assert_eq!(r, 2);
                assert_eq!(theta, 0.2);
                assert_eq!(l, 5);
                assert!(!json);
                assert!(!explain);
                assert!(!eager);
            }
            other => panic!("expected query, got {other:?}"),
        }
    }

    #[test]
    fn parses_query_explain_and_eager() {
        let cmd = parse(&argv(&[
            "query",
            "--graph",
            "g",
            "--index",
            "i",
            "--keywords",
            "1",
            "--explain",
            "--eager",
        ]))
        .unwrap();
        match cmd {
            Command::Query { explain, eager, .. } => {
                assert!(explain);
                assert!(eager);
            }
            other => panic!("expected query, got {other:?}"),
        }
    }

    #[test]
    fn parses_dquery_multiplier_and_json() {
        let cmd = parse(&argv(&[
            "dquery",
            "--graph",
            "g",
            "--index",
            "i",
            "--keywords",
            "4",
            "--n",
            "5",
            "--json",
        ]))
        .unwrap();
        match cmd {
            Command::DQuery { n, json, .. } => {
                assert_eq!(n, 5);
                assert!(json);
            }
            other => panic!("expected dquery, got {other:?}"),
        }
    }

    #[test]
    fn parses_index_thresholds() {
        let cmd = parse(&argv(&[
            "index",
            "--graph",
            "g",
            "--out",
            "i",
            "--thresholds",
            "0.05,0.15",
            "--fanout",
            "4",
        ]))
        .unwrap();
        match cmd {
            Command::Index {
                thresholds,
                fanout,
                r_max,
                ..
            } => {
                assert_eq!(thresholds, vec![0.05, 0.15]);
                assert_eq!(fanout, 4);
                assert_eq!(r_max, 3);
            }
            other => panic!("expected index, got {other:?}"),
        }
    }

    #[test]
    fn parses_threads_flag() {
        let cmd = parse(&argv(&[
            "index",
            "--graph",
            "g",
            "--out",
            "i",
            "--threads",
            "6",
            "--shards",
            "4",
        ]))
        .unwrap();
        match cmd {
            Command::Index {
                threads, shards, ..
            } => {
                assert_eq!(threads, Some(6));
                assert_eq!(shards, Some(4));
            }
            other => panic!("expected index, got {other:?}"),
        }
        let cmd = parse(&argv(&["index", "--graph", "g", "--out", "i"])).unwrap();
        match cmd {
            Command::Index {
                threads, shards, ..
            } => {
                assert_eq!(threads, None);
                assert_eq!(shards, None);
            }
            other => panic!("expected index, got {other:?}"),
        }
        // zero or garbage shard counts are rejected
        assert!(parse(&argv(&[
            "index", "--graph", "g", "--out", "i", "--shards", "0"
        ]))
        .is_err());
        assert!(parse(&argv(&[
            "index", "--graph", "g", "--out", "i", "--shards", "many"
        ]))
        .is_err());
        let cmd = parse(&argv(&["stats", "--graph", "g", "--threads", "2"])).unwrap();
        assert_eq!(
            cmd,
            Command::Stats {
                graph: "g".to_string(),
                threads: Some(2),
            }
        );
        // zero or garbage thread counts are rejected
        assert!(parse(&argv(&[
            "index",
            "--graph",
            "g",
            "--out",
            "i",
            "--threads",
            "0"
        ]))
        .is_err());
        assert!(parse(&argv(&["stats", "--graph", "g", "--threads", "lots"])).is_err());
    }

    #[test]
    fn parses_snapshot_commands() {
        let cmd = parse(&argv(&[
            "snapshot", "save", "--graph", "g.json", "--out", "g.snap",
        ]));
        assert_eq!(
            cmd.unwrap(),
            Command::SnapshotSave {
                graph: Some("g.json".to_string()),
                index: None,
                out: "g.snap".to_string(),
            }
        );
        let cmd = parse(&argv(&[
            "snapshot", "save", "--index", "i.json", "--out", "i.snap",
        ]));
        assert_eq!(
            cmd.unwrap(),
            Command::SnapshotSave {
                graph: None,
                index: Some("i.json".to_string()),
                out: "i.snap".to_string(),
            }
        );
        let cmd = parse(&argv(&[
            "snapshot",
            "load",
            "--file",
            "g.snap",
            "--buffered",
        ]));
        assert_eq!(
            cmd.unwrap(),
            Command::SnapshotLoad {
                file: "g.snap".to_string(),
                buffered: true,
            }
        );
        // both or neither of --graph/--index is an error; unknown actions too
        assert!(parse(&argv(&["snapshot", "save", "--out", "x"])).is_err());
        assert!(parse(&argv(&[
            "snapshot", "save", "--graph", "g", "--index", "i", "--out", "x"
        ]))
        .is_err());
        assert!(parse(&argv(&["snapshot"])).is_err());
        assert!(parse(&argv(&["snapshot", "frobnicate"])).is_err());
    }

    #[test]
    fn parses_serve_with_defaults_and_overrides() {
        let cmd = parse(&argv(&["serve", "--graph", "g", "--index", "i"])).unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                graph: "g".to_string(),
                index: "i".to_string(),
                workers: 4,
                queries: 10_000,
                seed: 42,
                k: 3,
                r: 2,
                theta: 0.2,
                l: 5,
                json: false,
                update_rate: 0.0,
                compact_threshold: icde_graph::graph::DEFAULT_COMPACT_THRESHOLD,
                repack_threshold: icde_core::streaming::DEFAULT_REPACK_THRESHOLD,
            }
        );
        let cmd = parse(&argv(&[
            "serve",
            "--graph",
            "g",
            "--index",
            "i",
            "--workers",
            "2",
            "--queries",
            "500",
            "--seed",
            "9",
            "--theta",
            "0.3",
            "--json",
            "--update-rate",
            "250",
            "--compact-threshold",
            "0.05",
        ]))
        .unwrap();
        match cmd {
            Command::Serve {
                workers,
                queries,
                seed,
                theta,
                json,
                update_rate,
                compact_threshold,
                ..
            } => {
                assert_eq!(workers, 2);
                assert_eq!(queries, 500);
                assert_eq!(seed, 9);
                assert_eq!(theta, 0.3);
                assert!(json);
                assert_eq!(update_rate, 250.0);
                assert_eq!(compact_threshold, 0.05);
            }
            other => panic!("expected serve, got {other:?}"),
        }
        // zero workers, bad rates/thresholds and missing files are rejected
        assert!(parse(&argv(&[
            "serve",
            "--graph",
            "g",
            "--index",
            "i",
            "--workers",
            "0"
        ]))
        .is_err());
        assert!(parse(&argv(&[
            "serve",
            "--graph",
            "g",
            "--index",
            "i",
            "--update-rate",
            "-5"
        ]))
        .is_err());
        assert!(parse(&argv(&[
            "serve",
            "--graph",
            "g",
            "--index",
            "i",
            "--compact-threshold",
            "0"
        ]))
        .is_err());
        assert!(parse(&argv(&["serve", "--graph", "g"])).is_err());
    }

    #[test]
    fn parses_update_with_defaults_and_overrides() {
        let cmd = parse(&argv(&[
            "update",
            "--graph",
            "g",
            "--index",
            "i",
            "--updates",
            "u.txt",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Update {
                graph: "g".to_string(),
                index: "i".to_string(),
                updates: "u.txt".to_string(),
                batch: 64,
                compact_threshold: icde_graph::graph::DEFAULT_COMPACT_THRESHOLD,
                repack_threshold: icde_core::streaming::DEFAULT_REPACK_THRESHOLD,
                out_graph: None,
                out_index: None,
                keywords: Vec::new(),
                k: 4,
                r: 2,
                theta: 0.2,
                l: 5,
                json: false,
            }
        );
        let cmd = parse(&argv(&[
            "update",
            "--graph",
            "g",
            "--index",
            "i",
            "--updates",
            "u.txt",
            "--batch",
            "16",
            "--compact-threshold",
            "0.01",
            "--repack-threshold",
            "0",
            "--out-graph",
            "g2.snap",
            "--out-index",
            "i2.snap",
            "--keywords",
            "1,2",
            "--theta",
            "0.3",
            "--json",
        ]))
        .unwrap();
        match cmd {
            Command::Update {
                batch,
                compact_threshold,
                repack_threshold,
                out_graph,
                out_index,
                keywords,
                theta,
                json,
                ..
            } => {
                assert_eq!(batch, 16);
                assert_eq!(compact_threshold, 0.01);
                assert_eq!(repack_threshold, 0.0);
                assert_eq!(out_graph.as_deref(), Some("g2.snap"));
                assert_eq!(out_index.as_deref(), Some("i2.snap"));
                assert_eq!(keywords, vec![1, 2]);
                assert_eq!(theta, 0.3);
                assert!(json);
            }
            other => panic!("expected update, got {other:?}"),
        }
        // a zero batch and a missing stream file flag are rejected
        assert!(parse(&argv(&[
            "update",
            "--graph",
            "g",
            "--index",
            "i",
            "--updates",
            "u",
            "--batch",
            "0"
        ]))
        .is_err());
        assert!(parse(&argv(&["update", "--graph", "g", "--index", "i"])).is_err());
        // negative repack thresholds are rejected (0 and inf are valid)
        assert!(parse(&argv(&[
            "update",
            "--graph",
            "g",
            "--index",
            "i",
            "--updates",
            "u",
            "--repack-threshold",
            "-1"
        ]))
        .is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&argv(&[])).is_err());
        assert!(parse(&argv(&["frobnicate"])).is_err());
        assert!(parse(&argv(&[
            "generate",
            "--kind",
            "nope",
            "--vertices",
            "10",
            "--out",
            "x"
        ]))
        .is_err());
        assert!(parse(&argv(&[
            "query",
            "--graph",
            "g",
            "--index",
            "i",
            "--keywords",
            "a,b"
        ]))
        .is_err());
        assert!(parse(&argv(&["generate", "--vertices", "10", "--out", "x"])).is_err());
    }
}
