//! `topl-icde` — command-line front-end for the TopL-ICDE pipeline.
//!
//! ```text
//! topl-icde generate --kind uniform --vertices 10000 --out graph.txt
//! topl-icde stats    --graph graph.txt
//! topl-icde index    --graph graph.txt --out graph.index.json
//! topl-icde query    --graph graph.txt --index graph.index.json \
//!                    --keywords 0,1,2,3,4 --k 4 --r 2 --theta 0.2 --l 5
//! topl-icde dquery   --graph graph.txt --index graph.index.json \
//!                    --keywords 0,1,2 --l 3 --n 3
//! ```
//!
//! Graphs are read/written in the attributed edge-list format of
//! `icde_graph::io` (plain SNAP edge lists also parse); indexes are stored as
//! versioned JSON via `icde_core::persist`.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(command) => match commands::run(command) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        },
        Err(message) => {
            eprintln!("error: {message}\n");
            eprintln!("{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}
