//! Property tests for the builder → frozen-CSR freeze: whatever random edge
//! set goes into [`GraphBuilder`], the frozen [`SocialNetwork`] must come out
//! with sorted contiguous neighbour slices, symmetric adjacency, insertion-
//! order edge ids, and directed weights that agree with the builder's inputs.

use icde_graph::{EdgeId, GraphBuilder, KeywordSet, SocialNetwork, VertexId};
use proptest::prelude::*;

/// A random edge set over `n` vertices plus the graph frozen from it. The raw
/// table (insertion order, deduplicated, canonicalised endpoints) is kept so
/// properties can compare the frozen store against the builder's inputs.
type EdgeTable = Vec<(u32, u32, f64, f64)>;

fn random_frozen(max_vertices: usize) -> impl Strategy<Value = (usize, EdgeTable, SocialNetwork)> {
    (2usize..max_vertices, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut builder = GraphBuilder::with_vertices(n);
        for i in 0..n {
            let kws: Vec<u32> = (0..1 + next() % 3).map(|_| (next() % 16) as u32).collect();
            builder
                .set_keywords(VertexId(i as u32), KeywordSet::from_ids(kws))
                .expect("vertex exists");
        }
        let mut table: EdgeTable = Vec::new();
        let attempts = 1 + (next() % (3 * n as u64)) as usize;
        for _ in 0..attempts {
            let a = (next() % n as u64) as u32;
            let b = (next() % n as u64) as u32;
            let p_ab = (next() % 1000) as f64 / 1000.0;
            let p_ba = (next() % 1000) as f64 / 1000.0;
            if builder.try_add_edge(VertexId(a), VertexId(b), p_ab, p_ba) {
                // canonicalise exactly the way the store does
                let (lo, hi, wf, wb) = if a < b {
                    (a, b, p_ab, p_ba)
                } else {
                    (b, a, p_ba, p_ab)
                };
                table.push((lo, hi, wf, wb));
            }
        }
        let g = builder
            .build()
            .expect("try_add_edge admits only valid edges");
        (n, table, g)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn neighbor_slices_are_sorted_and_duplicate_free((_, _, g) in random_frozen(40)) {
        for v in g.vertices() {
            let row = g.neighbors(v).to_vec();
            prop_assert!(row.windows(2).all(|w| w[0].0 < w[1].0), "row of {v} not strictly sorted");
            prop_assert_eq!(row.len(), g.degree(v));
        }
    }

    #[test]
    fn adjacency_is_symmetric_with_shared_edge_ids((_, _, g) in random_frozen(40)) {
        for v in g.vertices() {
            for (n, e) in g.neighbors(v) {
                // the reverse entry exists and carries the same edge id
                let reverse = g.neighbors(n).iter().find(|&(w, _)| w == v);
                prop_assert_eq!(reverse.map(|(_, re)| re), Some(e), "missing reverse of {}-{}", v, n);
                // the edge table agrees with both directions
                let (lo, hi) = g.edge_endpoints(e);
                prop_assert!((lo == v && hi == n) || (lo == n && hi == v));
                prop_assert!(lo < hi, "edge table must be canonical");
            }
        }
    }

    #[test]
    fn edge_ids_are_stable_insertion_order((_, table, g) in random_frozen(40)) {
        prop_assert_eq!(g.num_edges(), table.len());
        for (i, &(lo, hi, _, _)) in table.iter().enumerate() {
            let e = EdgeId(i as u32);
            prop_assert_eq!(g.edge_endpoints(e), (VertexId(lo), VertexId(hi)));
            prop_assert_eq!(g.edge_between(VertexId(lo), VertexId(hi)), Some(e));
        }
    }

    #[test]
    fn directed_weights_agree_with_builder_inputs((_, table, g) in random_frozen(40)) {
        for (i, &(lo, hi, wf, wb)) in table.iter().enumerate() {
            let e = EdgeId(i as u32);
            prop_assert_eq!(g.directed_weight(e, VertexId(lo)), wf);
            prop_assert_eq!(g.directed_weight(e, VertexId(hi)), wb);
            prop_assert_eq!(g.activation_probability(VertexId(lo), VertexId(hi)).unwrap(), wf);
            prop_assert_eq!(g.activation_probability(VertexId(hi), VertexId(lo)).unwrap(), wb);
        }
    }

    #[test]
    fn degrees_match_edge_table_incidence((n, table, g) in random_frozen(40)) {
        let mut expected = vec![0usize; n];
        for &(lo, hi, _, _) in &table {
            expected[lo as usize] += 1;
            expected[hi as usize] += 1;
        }
        for v in g.vertices() {
            prop_assert_eq!(g.degree(v), expected[v.index()]);
        }
        prop_assert_eq!(2 * g.num_edges(), expected.iter().sum::<usize>());
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything((_, _, g) in random_frozen(30)) {
        let json = serde_json::to_string(&g).unwrap();
        let back: SocialNetwork = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back.num_vertices(), g.num_vertices());
        prop_assert_eq!(back.num_edges(), g.num_edges());
        for v in g.vertices() {
            prop_assert_eq!(back.neighbors(v).to_vec(), g.neighbors(v).to_vec());
            prop_assert_eq!(back.keyword_set(v), g.keyword_set(v));
        }
        for (e, u, _) in g.edges() {
            prop_assert_eq!(back.directed_weight(e, u), g.directed_weight(e, u));
        }
    }
}
