//! Property tests for the epoch-stamp reset bug class: a traversal through a
//! *reused* [`TraversalWorkspace`] must be bit-identical to one through a
//! fresh workspace, no matter what the previous traversals left behind, and
//! the epoch-counter wraparound must not resurrect stale stamps.

use icde_graph::traversal::{
    bfs_within_with, connected_components_with, hop_distance_with, hop_distances_within_subset_with,
};
use icde_graph::workspace::TraversalWorkspace;
use icde_graph::{GraphBuilder, SocialNetwork, VertexId, VertexSubset};
use proptest::prelude::*;

/// Deterministic random graph from an (n, seed) pair: xorshift-driven edge
/// set over `n` vertices, roughly 2n attempted edges.
fn random_graph(n: usize, seed: u64) -> SocialNetwork {
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut builder = GraphBuilder::with_vertices(n);
    for _ in 0..2 * n {
        let a = (next() % n as u64) as u32;
        let b = (next() % n as u64) as u32;
        let p_ab = (1 + next() % 999) as f64 / 1000.0;
        let p_ba = (1 + next() % 999) as f64 / 1000.0;
        builder.try_add_edge(VertexId(a), VertexId(b), p_ab, p_ba);
    }
    builder
        .build()
        .expect("try_add_edge admits only valid edges")
}

fn graph_strategy(max_vertices: usize) -> impl Strategy<Value = SocialNetwork> {
    (2usize..max_vertices, any::<u64>()).prop_map(|(n, seed)| random_graph(n, seed))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn bfs_is_bit_identical_through_a_reused_workspace(g in graph_strategy(40)) {
        // many consecutive calls on one workspace vs a fresh workspace per
        // call: any stale stamp leaking across epochs would desync them
        let mut reused = TraversalWorkspace::new();
        for source in g.vertices() {
            for max_hops in [0u32, 1, 2, u32::MAX] {
                let a = bfs_within_with(&mut reused, &g, source, max_hops);
                let b = bfs_within_with(&mut TraversalWorkspace::new(), &g, source, max_hops);
                prop_assert_eq!(&a.distances, &b.distances, "source {} hops {}", source, max_hops);
            }
        }
    }

    #[test]
    fn subset_bfs_and_components_survive_workspace_reuse(g in graph_strategy(30)) {
        let mut reused = TraversalWorkspace::new();
        // interleave different traversal kinds on the same workspace
        let all = VertexSubset::from_iter(g.vertices());
        for source in g.vertices() {
            let a = hop_distances_within_subset_with(&mut reused, &g, &all, source);
            let b = hop_distances_within_subset_with(
                &mut TraversalWorkspace::new(), &g, &all, source,
            );
            prop_assert_eq!(&a.distances, &b.distances);

            let ca = connected_components_with(&mut reused, &g);
            let cb = connected_components_with(&mut TraversalWorkspace::new(), &g);
            prop_assert_eq!(&ca, &cb);

            let target = VertexId((source.0 + 1) % g.num_vertices() as u32);
            prop_assert_eq!(
                hop_distance_with(&mut reused, &g, source, target),
                hop_distance_with(&mut TraversalWorkspace::new(), &g, source, target)
            );
        }
    }

    #[test]
    fn epoch_wraparound_does_not_corrupt_traversals(g in graph_strategy(30)) {
        // park the reused workspace a few epochs before the wrap, then run
        // enough traversals to cross it; each must still match a fresh run
        let mut reused = TraversalWorkspace::new();
        // leave realistic stale stamps behind before the jump
        let _ = bfs_within_with(&mut reused, &g, VertexId(0), u32::MAX);
        reused.force_epoch(u32::MAX - 3);
        let mut crossed = 0u32;
        for i in 0..8u32 {
            let source = VertexId(i % g.num_vertices() as u32);
            let before = reused.epoch();
            let a = bfs_within_with(&mut reused, &g, source, u32::MAX);
            let b = bfs_within_with(&mut TraversalWorkspace::new(), &g, source, u32::MAX);
            prop_assert_eq!(&a.distances, &b.distances, "epoch {}", reused.epoch());
            if reused.epoch() < before {
                crossed += 1;
            }
        }
        prop_assert_eq!(crossed, 1, "the wraparound must actually be exercised");
    }
}
