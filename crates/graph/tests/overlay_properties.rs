//! Property tests for the delta-overlay layer: after an arbitrary sequence
//! of [`apply_edge_inserted`] / [`apply_edge_removed`] patches interleaved
//! with [`maybe_compact`] / [`compact`] calls, the overlaid
//! [`SocialNetwork`] must be observationally identical to a graph frozen
//! from scratch over the same live edge set — same neighbour rows in the
//! same order, same directed weights, same BFS discovery sequences — and
//! the edge-id contract must hold throughout: fresh ids are allocated at
//! the top of the id space, tombstoned ids are never reused until a
//! compaction, and the [`EdgeIdRemap`] a compaction returns relocates every
//! surviving id (and only those) onto the packed table.
//!
//! [`apply_edge_inserted`]: SocialNetwork::apply_edge_inserted
//! [`apply_edge_removed`]: SocialNetwork::apply_edge_removed
//! [`maybe_compact`]: SocialNetwork::maybe_compact
//! [`compact`]: SocialNetwork::compact

use icde_graph::traversal::bfs_within;
use icde_graph::{EdgeId, EdgeIdRemap, GraphBuilder, KeywordSet, SocialNetwork, VertexId};
use proptest::prelude::*;
use std::collections::{BTreeMap, HashSet};

/// Canonical live-edge mirror: `(lo, hi) → (p_{lo→hi}, p_{hi→lo})`.
type Mirror = BTreeMap<(u32, u32), (f64, f64)>;

/// One randomised overlay workload: graph size, RNG seed, number of patch
/// ops, and the compaction threshold the workload is driven against.
#[derive(Debug, Clone)]
struct Scenario {
    n: usize,
    seed: u64,
    ops: usize,
    threshold: f64,
}

fn scenarios() -> impl Strategy<Value = Scenario> {
    (
        4usize..40,
        any::<u64>(),
        20usize..120,
        // Thresholds straddling the workload's overlay growth: 0.05 compacts
        // every few ops, 0.25 a handful of times, 4.0 effectively never (so
        // the overlay grows well past the default threshold uncompacted).
        prop_oneof![Just(0.05), Just(0.25), Just(4.0)],
    )
        .prop_map(|(n, seed, ops, threshold)| Scenario {
            n,
            seed,
            ops,
            threshold,
        })
}

/// Verifies a compaction's [`EdgeIdRemap`] against the pre-compaction live
/// id table, then rewrites `ids` to the post-compaction id space.
fn check_and_apply_remap(
    g: &SocialNetwork,
    remap: &EdgeIdRemap,
    ids: &mut BTreeMap<(u32, u32), EdgeId>,
    retired: &mut HashSet<u32>,
) {
    assert_eq!(remap.live_edges(), ids.len(), "remap live-edge count");
    assert_eq!(remap.live_edges(), g.num_edges());
    // A dense side array indexed by old id must land on the surviving slots
    // exactly where the per-id mapping says it does.
    let mut dense = vec![0u32; remap.old_id_space()];
    for (_, &old) in ids.iter() {
        dense[old.index()] = old.0 + 1;
    }
    let dense_new = remap.remap_dense(&dense);
    assert_eq!(dense_new.len(), remap.live_edges());
    for (&(lo, hi), old) in ids.iter_mut() {
        let new = remap
            .new_id(*old)
            .unwrap_or_else(|| panic!("live edge {lo}-{hi} lost by compaction"));
        assert_eq!(
            g.edge_endpoints(new),
            (VertexId(lo), VertexId(hi)),
            "remap must point id {} at the same endpoints",
            old.0
        );
        assert_eq!(dense_new[new.index()], old.0 + 1, "dense remap misplaced");
        assert_eq!(g.edge_between(VertexId(lo), VertexId(hi)), Some(new));
        *old = new;
    }
    for &dead in retired.iter() {
        if (dead as usize) < remap.old_id_space() {
            assert_eq!(
                remap.new_id(EdgeId(dead)),
                None,
                "tombstoned id {dead} must not survive compaction"
            );
        }
    }
    // The old id space is gone: tombstones reset with it.
    retired.clear();
}

/// Runs the scenario's randomised insert/remove/compact workload, asserting
/// the edge-id contract at every step, and returns the resulting overlaid
/// graph together with the canonical live-edge mirror and the keyword sets
/// the base graph was built with.
fn run(s: &Scenario) -> (SocialNetwork, Mirror, Vec<KeywordSet>) {
    let mut state = s.seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let n = s.n;
    let mut builder = GraphBuilder::with_vertices(n);
    let mut keywords = Vec::with_capacity(n);
    for i in 0..n {
        let kws: Vec<u32> = (0..1 + next() % 3).map(|_| (next() % 16) as u32).collect();
        let set = KeywordSet::from_ids(kws);
        builder
            .set_keywords(VertexId(i as u32), set.clone())
            .expect("vertex exists");
        keywords.push(set);
    }
    let mut mirror: Mirror = BTreeMap::new();
    for _ in 0..2 * n {
        let a = (next() % n as u64) as u32;
        let b = (next() % n as u64) as u32;
        let p_ab = (1 + next() % 999) as f64 / 1000.0;
        let p_ba = (1 + next() % 999) as f64 / 1000.0;
        if builder.try_add_edge(VertexId(a), VertexId(b), p_ab, p_ba) {
            let (lo, hi, wf, wb) = if a < b {
                (a, b, p_ab, p_ba)
            } else {
                (b, a, p_ba, p_ab)
            };
            mirror.insert((lo, hi), (wf, wb));
        }
    }
    let mut g = builder.build().expect("valid random edge set");
    let mut ids: BTreeMap<(u32, u32), EdgeId> =
        g.edges().map(|(e, u, v)| ((u.0, v.0), e)).collect();
    let mut retired: HashSet<u32> = HashSet::new();

    for _ in 0..s.ops {
        match next() % 8 {
            // Insert a fresh edge (four faces of the die: the overlay
            // grows on net, so compaction thresholds actually trip).
            0..=3 => {
                let mut placed = false;
                for _ in 0..12 {
                    let a = (next() % n as u64) as u32;
                    let b = (next() % n as u64) as u32;
                    let (lo, hi) = (a.min(b), a.max(b));
                    if lo == hi || mirror.contains_key(&(lo, hi)) {
                        continue;
                    }
                    let wf = (1 + next() % 999) as f64 / 1000.0;
                    let wb = (1 + next() % 999) as f64 / 1000.0;
                    let expected = EdgeId::from_index(g.edge_id_space());
                    let e = g
                        .apply_edge_inserted(VertexId(lo), VertexId(hi), wf, wb)
                        .expect("pair verified absent");
                    assert_eq!(e, expected, "fresh ids come from the top of the id space");
                    assert!(
                        !retired.contains(&e.0),
                        "tombstoned id {} reused before compaction",
                        e.0
                    );
                    mirror.insert((lo, hi), (wf, wb));
                    ids.insert((lo, hi), e);
                    placed = true;
                    break;
                }
                if !placed {
                    continue;
                }
            }
            // Remove a random live edge.
            4..=5 => {
                if mirror.is_empty() {
                    continue;
                }
                let pick = (next() % mirror.len() as u64) as usize;
                let &(lo, hi) = mirror.keys().nth(pick).expect("index in range");
                let e = g
                    .apply_edge_removed(VertexId(lo), VertexId(hi))
                    .expect("edge verified present");
                assert_eq!(
                    Some(e),
                    ids.remove(&(lo, hi)),
                    "removal returns the live id"
                );
                mirror.remove(&(lo, hi));
                retired.insert(e.0);
                assert!(
                    !g.contains_edge(VertexId(lo), VertexId(hi)),
                    "removed edge still visible"
                );
            }
            // Threshold-driven compaction, exactly as the streaming
            // maintainer drives it.
            6 => {
                if let Some(remap) = g.maybe_compact(s.threshold) {
                    check_and_apply_remap(&g, &remap, &mut ids, &mut retired);
                    assert!(!g.has_overlay(), "compaction must clear the overlay");
                }
            }
            // Unconditional compaction, occasionally.
            _ => {
                if next() % 4 == 0 {
                    let remap = g.compact();
                    check_and_apply_remap(&g, &remap, &mut ids, &mut retired);
                }
            }
        }
        assert_eq!(g.num_edges(), mirror.len());
        assert!(g.edge_id_space() >= g.num_edges());
    }
    (g, mirror, keywords)
}

/// Freezes a fresh dense graph over exactly the mirror's live edges.
fn scratch_rebuild(n: usize, mirror: &Mirror, keywords: &[KeywordSet]) -> SocialNetwork {
    let mut b = GraphBuilder::with_vertices(n);
    for (i, set) in keywords.iter().enumerate() {
        b.set_keywords(VertexId(i as u32), set.clone())
            .expect("vertex exists");
    }
    for (&(lo, hi), &(wf, wb)) in mirror {
        b.add_edge(VertexId(lo), VertexId(hi), wf, wb);
    }
    b.build().expect("mirror holds only valid edges")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn overlay_is_observationally_identical_to_scratch_rebuild(s in scenarios()) {
        let (g, mirror, keywords) = run(&s);
        let scratch = scratch_rebuild(s.n, &mirror, &keywords);

        prop_assert_eq!(g.num_vertices(), scratch.num_vertices());
        prop_assert_eq!(g.num_edges(), scratch.num_edges());
        for v in g.vertices() {
            // Same neighbours in the same (ascending) order — edge ids may
            // differ between the two stores, the visible row must not.
            let live: Vec<VertexId> = g.neighbors(v).iter().map(|(nb, _)| nb).collect();
            let fresh: Vec<VertexId> = scratch.neighbors(v).iter().map(|(nb, _)| nb).collect();
            prop_assert_eq!(&live, &fresh, "row of {} diverged", v);
            prop_assert_eq!(g.degree(v), live.len());
            prop_assert_eq!(g.keyword_set(v), scratch.keyword_set(v));
            // Every slot carries the mirror's directed weight.
            for (nb, e) in g.neighbors(v) {
                let key = (v.0.min(nb.0), v.0.max(nb.0));
                let (wf, wb) = mirror[&key];
                let expected = if v.0 < nb.0 { wf } else { wb };
                prop_assert_eq!(g.directed_weight(e, v), expected);
                prop_assert_eq!(g.activation_probability(v, nb).unwrap(), expected);
            }
        }
    }

    #[test]
    fn overlay_bfs_matches_scratch_rebuild(s in scenarios()) {
        let (g, mirror, keywords) = run(&s);
        let scratch = scratch_rebuild(s.n, &mirror, &keywords);
        // The merged cursor yields ascending neighbour ids exactly like the
        // dense CSR, so even the *discovery order* must match, at every
        // radius that matters to the query path.
        for src in 0..s.n as u32 {
            for hops in [1, 2, u32::MAX] {
                let a = bfs_within(&g, VertexId(src), hops);
                let b = bfs_within(&scratch, VertexId(src), hops);
                prop_assert_eq!(&a.distances, &b.distances, "BFS({}, {}) diverged", src, hops);
            }
        }
    }

    #[test]
    fn edge_table_iter_yields_exactly_the_live_edges(s in scenarios()) {
        let (g, mirror, _) = run(&s);
        let table: Mirror = g
            .edge_table_iter()
            .map(|(u, v, wf, wb)| ((u.0, v.0), (wf, wb)))
            .collect();
        prop_assert_eq!(table.len(), g.num_edges(), "edge_table_iter must not duplicate");
        prop_assert_eq!(table, mirror);
    }

    #[test]
    fn final_compaction_is_invisible_to_readers(s in scenarios()) {
        let (g, _, _) = run(&s);
        let mut packed = g.clone();
        packed.compact();
        prop_assert!(!packed.has_overlay());
        prop_assert_eq!(packed.num_edges(), g.num_edges());
        prop_assert_eq!(packed.edge_id_space(), packed.num_edges(), "packed ids are dense");
        for v in g.vertices() {
            let live: Vec<VertexId> = g.neighbors(v).iter().map(|(nb, _)| nb).collect();
            let dense: Vec<VertexId> = packed.neighbors(v).iter().map(|(nb, _)| nb).collect();
            prop_assert_eq!(live, dense, "row of {} changed across compact()", v);
            for (nb, e) in packed.neighbors(v) {
                let old = g.edge_between(v, nb).expect("edge survived");
                prop_assert_eq!(packed.directed_weight(e, v), g.directed_weight(old, v));
            }
        }
    }
}
