//! Snapshot robustness properties: whatever random graph is frozen, a binary
//! snapshot must round-trip it **bit-identically** through both load paths
//! (mmap zero-copy and buffered fallback), and corrupt inputs — truncations,
//! foreign magic, future versions, flipped bits — must come back as typed
//! errors, never as UB, panics or silently wrong graphs.

use icde_graph::snapshot::{
    read_graph_snapshot_with, write_graph_snapshot, LoadMode, Snapshot, SnapshotError,
    SNAPSHOT_MAGIC,
};
use icde_graph::{GraphBuilder, KeywordSet, SocialNetwork, VertexId};
use proptest::prelude::*;

fn random_frozen(max_vertices: usize) -> impl Strategy<Value = SocialNetwork> {
    (1usize..max_vertices, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut builder = GraphBuilder::with_vertices(n);
        for i in 0..n {
            // some vertices keep empty keyword sets on purpose
            let kws: Vec<u32> = (0..next() % 4).map(|_| (next() % 64) as u32).collect();
            builder
                .set_keywords(VertexId(i as u32), KeywordSet::from_ids(kws))
                .expect("vertex exists");
        }
        let attempts = (next() % (3 * n as u64 + 1)) as usize;
        for _ in 0..attempts {
            let a = (next() % n as u64) as u32;
            let b = (next() % n as u64) as u32;
            let p_ab = (next() % 1001) as f64 / 1000.0;
            let p_ba = (next() % 1001) as f64 / 1000.0;
            builder.try_add_edge(VertexId(a), VertexId(b), p_ab, p_ba);
        }
        builder
            .build()
            .expect("try_add_edge admits only valid edges")
    })
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "icde_snapshot_prop_{}_{}_{tag}.snap",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Full structural equality, field by field, on top of the fingerprint.
fn assert_graphs_identical(a: &SocialNetwork, b: &SocialNetwork) {
    assert_eq!(a.num_vertices(), b.num_vertices());
    assert_eq!(a.num_edges(), b.num_edges());
    assert_eq!(a.content_fingerprint(), b.content_fingerprint());
    let (pa, pb) = (a.raw_parts(), b.raw_parts());
    assert_eq!(pa.offsets, pb.offsets);
    assert_eq!(pa.csr, pb.csr);
    assert_eq!(pa.edges, pb.edges);
    assert_eq!(pa.keywords, pb.keywords);
    // weights must agree bit for bit, not just approximately
    for (x, y) in pa
        .csr_out_weights
        .iter()
        .zip(pb.csr_out_weights)
        .chain(pa.weight_forward.iter().zip(pb.weight_forward))
        .chain(pa.weight_backward.iter().zip(pb.weight_backward))
    {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn roundtrip_is_bit_identical_on_every_load_path(g in random_frozen(48)) {
        let path = temp_path("roundtrip");
        write_graph_snapshot(&g, &path).expect("snapshot writes");
        for mode in [LoadMode::Auto, LoadMode::Buffered] {
            let back = read_graph_snapshot_with(&path, mode).expect("snapshot reads");
            assert_graphs_identical(&g, &back);
        }
        // saving the loaded graph again produces identical bytes
        let first = std::fs::read(&path).expect("snapshot bytes");
        let back = read_graph_snapshot_with(&path, LoadMode::Buffered).expect("snapshot reads");
        let path2 = temp_path("rewrite");
        write_graph_snapshot(&back, &path2).expect("snapshot rewrites");
        let second = std::fs::read(&path2).expect("rewritten bytes");
        prop_assert_eq!(first, second, "snapshot bytes are deterministic");
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(path2);
    }

    #[test]
    fn any_truncation_errors_cleanly(g in random_frozen(24), cut_ratio in 0.0f64..1.0) {
        let path = temp_path("truncate");
        write_graph_snapshot(&g, &path).expect("snapshot writes");
        let bytes = std::fs::read(&path).expect("snapshot bytes");
        let cut = (((bytes.len() as f64) * cut_ratio) as usize).min(bytes.len() - 1);
        std::fs::write(&path, &bytes[..cut]).expect("truncated write");
        for mode in [LoadMode::Auto, LoadMode::Buffered] {
            prop_assert!(read_graph_snapshot_with(&path, mode).is_err());
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn any_flipped_bit_errors_cleanly(g in random_frozen(24), pos_ratio in 0.0f64..1.0, bit in 0u8..8) {
        let path = temp_path("bitflip");
        write_graph_snapshot(&g, &path).expect("snapshot writes");
        let mut bytes = std::fs::read(&path).expect("snapshot bytes");
        let pos = ((bytes.len() as f64) * pos_ratio) as usize % bytes.len();
        bytes[pos] ^= 1 << bit;
        std::fs::write(&path, &bytes).expect("corrupted write");
        // a flip lands in the magic (BadMagic), the version, the checksum
        // field, or the payload (ChecksumMismatch) — always an error, and the
        // loader never panics or returns a wrong graph
        for mode in [LoadMode::Auto, LoadMode::Buffered] {
            match read_graph_snapshot_with(&path, mode) {
                Err(_) => {}
                Ok(loaded) => {
                    // only reachable if the flip cancelled out, which it
                    // cannot: a single-bit flip always changes the file
                    prop_assert!(
                        false,
                        "corrupt snapshot loaded: fingerprint {:#x} vs {:#x}",
                        loaded.content_fingerprint(),
                        g.content_fingerprint()
                    );
                }
            }
        }
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn bad_magic_and_future_version_are_typed_errors() {
    let g = GraphBuilder::with_vertices(3).build().unwrap();
    let path = temp_path("typed");
    write_graph_snapshot(&g, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();

    let mut foreign = bytes.clone();
    foreign[0..8].copy_from_slice(b"NOTASNAP");
    std::fs::write(&path, &foreign).unwrap();
    assert!(matches!(
        read_graph_snapshot_with(&path, LoadMode::Buffered),
        Err(SnapshotError::BadMagic)
    ));

    let mut future = bytes.clone();
    future[8..12].copy_from_slice(&9999u32.to_le_bytes());
    std::fs::write(&path, &future).unwrap();
    assert!(matches!(
        read_graph_snapshot_with(&path, LoadMode::Buffered),
        Err(SnapshotError::UnsupportedVersion(9999))
    ));

    let mut flipped = bytes.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x80;
    std::fs::write(&path, &flipped).unwrap();
    assert!(matches!(
        read_graph_snapshot_with(&path, LoadMode::Buffered),
        Err(SnapshotError::ChecksumMismatch { .. })
    ));

    std::fs::write(&path, b"").unwrap();
    assert!(matches!(
        read_graph_snapshot_with(&path, LoadMode::Buffered),
        Err(SnapshotError::Truncated)
    ));

    let _ = std::fs::remove_file(path);
}

#[test]
fn snapshot_header_is_stable() {
    // the first 16 bytes (magic + version + kind) are a public contract:
    // external tools sniff them, so a change must be deliberate
    let g = GraphBuilder::with_vertices(2).build().unwrap();
    let path = temp_path("header");
    write_graph_snapshot(&g, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(&bytes[0..8], &SNAPSHOT_MAGIC);
    assert_eq!(&bytes[8..12], &1u32.to_le_bytes(), "format version");
    assert_eq!(&bytes[12..16], &1u32.to_le_bytes(), "graph payload kind");
    let snap = Snapshot::open(&path).unwrap();
    assert_eq!(snap.kind(), icde_graph::snapshot::KIND_GRAPH);
    let _ = std::fs::remove_file(path);
}

#[cfg(all(unix, target_pointer_width = "64"))]
#[test]
fn mmap_and_buffered_loads_agree_on_a_large_graph() {
    use icde_graph::generators::{DatasetKind, DatasetSpec};
    let g = DatasetSpec::new(DatasetKind::AmazonLike, 3000, 17)
        .with_keyword_domain(40)
        .generate();
    let path = temp_path("large");
    write_graph_snapshot(&g, &path).unwrap();
    let mapped = read_graph_snapshot_with(&path, LoadMode::Mmap).unwrap();
    let buffered = read_graph_snapshot_with(&path, LoadMode::Buffered).unwrap();
    assert!(mapped.is_snapshot_backed());
    assert_graphs_identical(&g, &mapped);
    assert_graphs_identical(&mapped, &buffered);
    // traversals over the mapped graph behave like over the owned one
    let from_mapped = icde_graph::traversal::bfs_within(&mapped, VertexId(0), 3);
    let from_owned = icde_graph::traversal::bfs_within(&g, VertexId(0), 3);
    assert_eq!(from_mapped.distances, from_owned.distances);
    let _ = std::fs::remove_file(path);
}
