//! Fundamental identifier and weight types shared across the workspace.
//!
//! Vertices are identified by dense `u32` indices so that per-vertex data can
//! be stored in flat vectors; edges are identified by the position of their
//! canonical `(min, max)` endpoint pair in the edge table.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense identifier of a vertex in a [`crate::SocialNetwork`].
///
/// Vertex ids are assigned contiguously from `0..n` when the graph is built,
/// which lets every layer above (truss decomposition, pre-computation, the
/// tree index) use plain `Vec` lookups instead of hash maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Returns the id as a `usize` index for slice access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a vertex id from a `usize` index.
    ///
    /// # Panics
    /// Panics if `idx` does not fit in `u32` (graphs are limited to
    /// `u32::MAX` vertices, far above the 1M-vertex scale of the paper).
    #[inline]
    pub fn from_index(idx: usize) -> Self {
        debug_assert!(idx <= u32::MAX as usize, "vertex index overflow");
        VertexId(idx as u32)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<VertexId> for u32 {
    fn from(v: VertexId) -> Self {
        v.0
    }
}

/// Lets `VertexId` key JSON maps (serialised through its numeric id, the
/// same convention serde_json uses for integer-keyed maps).
impl serde::MapKey for VertexId {
    fn to_key(&self) -> String {
        self.0.to_string()
    }

    fn from_key(key: &str) -> Result<Self, serde::DeError> {
        key.parse::<u32>()
            .map(VertexId)
            .map_err(|_| serde::DeError(format!("invalid VertexId map key: {key:?}")))
    }
}

/// Dense identifier of an undirected edge in a [`crate::SocialNetwork`].
///
/// The id is the position of the edge in the canonical edge table (edges are
/// stored once with `u < v`). Edge supports and trussness values are indexed
/// by `EdgeId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Returns the id as a `usize` index for slice access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an edge id from a `usize` index.
    #[inline]
    pub fn from_index(idx: usize) -> Self {
        debug_assert!(idx <= u32::MAX as usize, "edge index overflow");
        EdgeId(idx as u32)
    }
}

/// Reinterprets a slice of raw `u32` ids as [`VertexId`]s without copying —
/// sound because `VertexId` is `#[repr(transparent)]` over `u32`. Used by
/// flat pool layouts (the tree index stores leaf vertices and child node ids
/// in one shared `u32` pool) and by the snapshot loaders.
pub fn vertex_ids_from_raw(ids: &[u32]) -> &[VertexId] {
    // Safety: repr(transparent) guarantees identical layout and alignment.
    unsafe { std::slice::from_raw_parts(ids.as_ptr() as *const VertexId, ids.len()) }
}

impl From<u32> for EdgeId {
    fn from(e: u32) -> Self {
        EdgeId(e)
    }
}

impl From<EdgeId> for u32 {
    fn from(e: EdgeId) -> Self {
        e.0
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Propagation probability attached to a directed influence relation
/// `p_{u,v}` — the probability that user `u` activates user `v`.
///
/// Stored as `f64` in `[0, 1]`; the helper constructors clamp and validate.
pub type Weight = f64;

/// Clamps a raw weight into the valid probability range `[0, 1]`.
#[inline]
pub fn clamp_probability(w: Weight) -> Weight {
    if w.is_nan() {
        0.0
    } else {
        w.clamp(0.0, 1.0)
    }
}

/// Returns `true` if `w` is a valid propagation probability (finite, within
/// `[0, 1]`).
#[inline]
pub fn is_valid_probability(w: Weight) -> bool {
    w.is_finite() && (0.0..=1.0).contains(&w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::from_index(42);
        assert_eq!(v.index(), 42);
        assert_eq!(u32::from(v), 42);
        assert_eq!(VertexId::from(42u32), v);
        assert_eq!(v.to_string(), "v42");
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId::from_index(7);
        assert_eq!(e.index(), 7);
        assert_eq!(e.to_string(), "e7");
    }

    #[test]
    fn vertex_id_ordering_follows_index() {
        assert!(VertexId(1) < VertexId(2));
        assert!(EdgeId(0) < EdgeId(10));
    }

    #[test]
    fn clamp_probability_bounds() {
        assert_eq!(clamp_probability(-0.5), 0.0);
        assert_eq!(clamp_probability(1.5), 1.0);
        assert_eq!(clamp_probability(0.7), 0.7);
        assert_eq!(clamp_probability(f64::NAN), 0.0);
    }

    #[test]
    fn valid_probability_checks() {
        assert!(is_valid_probability(0.0));
        assert!(is_valid_probability(1.0));
        assert!(is_valid_probability(0.53));
        assert!(!is_valid_probability(-0.01));
        assert!(!is_valid_probability(1.01));
        assert!(!is_valid_probability(f64::NAN));
        assert!(!is_valid_probability(f64::INFINITY));
    }
}
