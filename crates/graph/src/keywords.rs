//! Keyword sets attached to vertices and query keyword sets.
//!
//! In the paper every user `v_i` is associated with a keyword set `v_i.W`
//! (topics the user is interested in, e.g. `{Movies, Books}`) and every query
//! carries a keyword set `Q`. Seed communities require each member to share
//! at least one keyword with `Q` (Definition 2, fourth bullet).
//!
//! Keywords are interned as small integer ids ([`Keyword`]) drawn from a
//! keyword domain `Σ` so that set intersection and the hashed
//! [`crate::BitVector`] signatures are cheap.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A keyword drawn from the keyword domain `Σ`, interned as a dense integer.
///
/// The benchmark generators use `Σ = {0, 1, ..., |Σ|-1}`; applications that
/// have human-readable topics can keep their own `String → Keyword` mapping
/// (see [`KeywordInterner`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Keyword(pub u32);

impl Keyword {
    /// Returns the keyword as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kw{}", self.0)
    }
}

impl From<u32> for Keyword {
    fn from(k: u32) -> Self {
        Keyword(k)
    }
}

/// A sorted, duplicate-free set of keywords (`v_i.W` or the query set `Q`).
///
/// Stored as a sorted `Vec` because vertex keyword sets are tiny (the paper
/// uses 1–5 keywords per vertex) and queries use 2–10 keywords; linear scans
/// beat hash sets at this size and the sorted order gives deterministic
/// serialisation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeywordSet {
    keywords: Vec<Keyword>,
}

impl KeywordSet {
    /// Creates an empty keyword set.
    pub fn new() -> Self {
        KeywordSet {
            keywords: Vec::new(),
        }
    }

    /// Creates a keyword set from raw `u32` keyword ids.
    pub fn from_ids<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        Self::from_iter(iter.into_iter().map(Keyword))
    }

    /// Creates a keyword set from ids expected to be **strictly increasing**
    /// (the order this crate serialises sets in): O(n) with a single
    /// allocation on that fast path, falling back to the sorting/deduping
    /// constructor when the input is not sorted. The snapshot loader decodes
    /// every vertex's set through this.
    pub fn from_sorted_ids<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let keywords: Vec<Keyword> = iter.into_iter().map(Keyword).collect();
        if keywords.windows(2).all(|w| w[0] < w[1]) {
            KeywordSet { keywords }
        } else {
            Self::from_iter(keywords)
        }
    }

    /// Inserts a keyword, keeping the set sorted; returns `true` if it was
    /// newly added.
    pub fn insert(&mut self, kw: Keyword) -> bool {
        match self.keywords.binary_search(&kw) {
            Ok(_) => false,
            Err(pos) => {
                self.keywords.insert(pos, kw);
                true
            }
        }
    }

    /// Returns `true` if the set contains `kw`.
    pub fn contains(&self, kw: Keyword) -> bool {
        self.keywords.binary_search(&kw).is_ok()
    }

    /// Number of keywords in the set.
    pub fn len(&self) -> usize {
        self.keywords.len()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.keywords.is_empty()
    }

    /// Iterates over the keywords in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Keyword> + '_ {
        self.keywords.iter().copied()
    }

    /// Returns the keywords as a slice.
    pub fn as_slice(&self) -> &[Keyword] {
        &self.keywords
    }

    /// Returns `true` if this set shares at least one keyword with `other`
    /// (the `v_i.W ∩ Q ≠ ∅` test from Definition 2).
    ///
    /// Both sets are sorted, so this is a linear merge.
    pub fn intersects(&self, other: &KeywordSet) -> bool {
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.keywords.len() && j < other.keywords.len() {
            match self.keywords[i].cmp(&other.keywords[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Returns the number of common keywords between the two sets.
    pub fn intersection_size(&self, other: &KeywordSet) -> usize {
        let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
        while i < self.keywords.len() && j < other.keywords.len() {
            match self.keywords[i].cmp(&other.keywords[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Returns the union of two keyword sets.
    pub fn union(&self, other: &KeywordSet) -> KeywordSet {
        KeywordSet::from_iter(self.iter().chain(other.iter()))
    }
}

/// Collects keywords into a set, deduplicating and sorting.
impl FromIterator<Keyword> for KeywordSet {
    fn from_iter<T: IntoIterator<Item = Keyword>>(iter: T) -> Self {
        let set: BTreeSet<Keyword> = iter.into_iter().collect();
        KeywordSet {
            keywords: set.into_iter().collect(),
        }
    }
}

impl fmt::Display for KeywordSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, kw) in self.keywords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{kw}")?;
        }
        write!(f, "}}")
    }
}

/// Maps human-readable keyword strings to interned [`Keyword`] ids.
///
/// Useful for applications (and the examples) that want to speak in topics
/// like `"movies"` while the engine works on dense ids.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct KeywordInterner {
    names: Vec<String>,
}

impl KeywordInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its keyword id (existing id if already
    /// interned).
    pub fn intern(&mut self, name: &str) -> Keyword {
        if let Some(pos) = self.names.iter().position(|n| n == name) {
            Keyword(pos as u32)
        } else {
            self.names.push(name.to_string());
            Keyword((self.names.len() - 1) as u32)
        }
    }

    /// Looks up an already-interned keyword by name.
    pub fn get(&self, name: &str) -> Option<Keyword> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|p| Keyword(p as u32))
    }

    /// Returns the name for a keyword id, if known.
    pub fn name(&self, kw: Keyword) -> Option<&str> {
        self.names.get(kw.index()).map(|s| s.as_str())
    }

    /// Number of interned keywords (the realised domain size `|Σ|`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if no keyword has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Interns every name in the iterator and returns the resulting set.
    pub fn intern_set<'a, I: IntoIterator<Item = &'a str>>(&mut self, names: I) -> KeywordSet {
        KeywordSet::from_iter(names.into_iter().map(|n| self.intern(n)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_ids_dedups_and_sorts() {
        let s = KeywordSet::from_ids([5, 1, 3, 1, 5]);
        assert_eq!(s.len(), 3);
        let collected: Vec<u32> = s.iter().map(|k| k.0).collect();
        assert_eq!(collected, vec![1, 3, 5]);
    }

    #[test]
    fn insert_and_contains() {
        let mut s = KeywordSet::new();
        assert!(s.is_empty());
        assert!(s.insert(Keyword(4)));
        assert!(!s.insert(Keyword(4)));
        assert!(s.insert(Keyword(2)));
        assert!(s.contains(Keyword(2)));
        assert!(s.contains(Keyword(4)));
        assert!(!s.contains(Keyword(3)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn intersects_detects_common_keyword() {
        let a = KeywordSet::from_ids([1, 2, 3]);
        let b = KeywordSet::from_ids([3, 4, 5]);
        let c = KeywordSet::from_ids([6, 7]);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(!c.intersects(&a));
        assert!(!a.intersects(&KeywordSet::new()));
    }

    #[test]
    fn intersection_size_counts_common() {
        let a = KeywordSet::from_ids([1, 2, 3, 8]);
        let b = KeywordSet::from_ids([2, 3, 9]);
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(b.intersection_size(&a), 2);
        assert_eq!(a.intersection_size(&KeywordSet::new()), 0);
    }

    #[test]
    fn union_merges_sets() {
        let a = KeywordSet::from_ids([1, 2]);
        let b = KeywordSet::from_ids([2, 3]);
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        assert!(u.contains(Keyword(1)) && u.contains(Keyword(2)) && u.contains(Keyword(3)));
    }

    #[test]
    fn display_formats_sets() {
        let a = KeywordSet::from_ids([2, 1]);
        assert_eq!(a.to_string(), "{kw1, kw2}");
    }

    #[test]
    fn interner_assigns_stable_ids() {
        let mut interner = KeywordInterner::new();
        let movies = interner.intern("movies");
        let books = interner.intern("books");
        assert_ne!(movies, books);
        assert_eq!(interner.intern("movies"), movies);
        assert_eq!(interner.get("books"), Some(books));
        assert_eq!(interner.get("food"), None);
        assert_eq!(interner.name(movies), Some("movies"));
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn interner_set_builds_keyword_set() {
        let mut interner = KeywordInterner::new();
        let set = interner.intern_set(["movies", "books", "movies"]);
        assert_eq!(set.len(), 2);
    }
}
