//! Breadth-first traversal utilities: r-hop subgraphs, hop distances and
//! connected components.
//!
//! The radius constraint of Definition 2 and the offline pre-computation of
//! Algorithm 2 both revolve around the *r-hop subgraph* `hop(v_i, r)` — the
//! subgraph induced by every vertex within `r` hops of the centre `v_i`. This
//! module provides that extraction plus the hop-distance primitives used by
//! the radius pruning rule (Lemma 3).

use crate::graph::SocialNetwork;
use crate::subgraph::VertexSubset;
use crate::types::VertexId;
use std::collections::VecDeque;

/// Result of a bounded BFS: every reached vertex together with its hop
/// distance from the source.
#[derive(Debug, Clone)]
pub struct HopDistances {
    /// Source of the BFS.
    pub source: VertexId,
    /// `(vertex, hops)` pairs in BFS order (source first with distance 0).
    pub distances: Vec<(VertexId, u32)>,
}

impl HopDistances {
    /// Looks up the hop distance of `v`, if it was reached.
    pub fn distance(&self, v: VertexId) -> Option<u32> {
        self.distances
            .iter()
            .find(|(u, _)| *u == v)
            .map(|(_, d)| *d)
    }

    /// The vertex set reached by the BFS.
    pub fn reached(&self) -> VertexSubset {
        VertexSubset::from_iter(self.distances.iter().map(|(v, _)| *v))
    }

    /// The maximum hop distance of any reached vertex (the eccentricity of
    /// the source within the explored ball).
    pub fn max_distance(&self) -> u32 {
        self.distances.iter().map(|(_, d)| *d).max().unwrap_or(0)
    }
}

/// Runs a BFS from `source` bounded to `max_hops` hops and returns every
/// reached vertex with its hop distance.
///
/// `max_hops = u32::MAX` gives an unbounded BFS over the connected component.
pub fn bfs_within(g: &SocialNetwork, source: VertexId, max_hops: u32) -> HopDistances {
    let mut dist: Vec<Option<u32>> = vec![None; g.num_vertices()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    dist[source.index()] = Some(0);
    order.push((source, 0));
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued vertices have distances");
        if du == max_hops {
            continue;
        }
        for &(n, _) in g.neighbors(u) {
            if dist[n.index()].is_none() {
                dist[n.index()] = Some(du + 1);
                order.push((n, du + 1));
                queue.push_back(n);
            }
        }
    }
    HopDistances {
        source,
        distances: order,
    }
}

/// Extracts the r-hop subgraph `hop(center, r)`: the set of vertices within
/// `r` hops of `center` (including the centre itself).
pub fn hop_subgraph(g: &SocialNetwork, center: VertexId, r: u32) -> VertexSubset {
    bfs_within(g, center, r).reached()
}

/// Hop distance between `u` and `v` in the full graph, or `None` if they are
/// disconnected.
pub fn hop_distance(g: &SocialNetwork, u: VertexId, v: VertexId) -> Option<u32> {
    if u == v {
        return Some(0);
    }
    let mut dist: Vec<Option<u32>> = vec![None; g.num_vertices()];
    let mut queue = VecDeque::new();
    dist[u.index()] = Some(0);
    queue.push_back(u);
    while let Some(x) = queue.pop_front() {
        let dx = dist[x.index()].unwrap();
        for &(n, _) in g.neighbors(x) {
            if dist[n.index()].is_none() {
                dist[n.index()] = Some(dx + 1);
                if n == v {
                    return Some(dx + 1);
                }
                queue.push_back(n);
            }
        }
    }
    None
}

/// Hop distances from `source` restricted to the subgraph induced by
/// `subset`; vertices outside `subset` are never traversed.
///
/// Used to verify the radius constraint of Definition 2, where the shortest
/// path distance `dist(v_q, v_l)` is measured *inside* the seed community.
pub fn hop_distances_within_subset(
    g: &SocialNetwork,
    subset: &VertexSubset,
    source: VertexId,
) -> HopDistances {
    debug_assert!(subset.contains(source), "source must belong to the subset");
    let mut dist: Vec<Option<u32>> = vec![None; g.num_vertices()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    dist[source.index()] = Some(0);
    order.push((source, 0));
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].unwrap();
        for &(n, _) in g.neighbors(u) {
            if subset.contains(n) && dist[n.index()].is_none() {
                dist[n.index()] = Some(du + 1);
                order.push((n, du + 1));
                queue.push_back(n);
            }
        }
    }
    HopDistances {
        source,
        distances: order,
    }
}

/// Returns `true` if every vertex of `subset` lies within `r` hops of
/// `center` when paths are restricted to `subset` (the radius constraint of
/// Definition 2).
pub fn satisfies_radius(
    g: &SocialNetwork,
    subset: &VertexSubset,
    center: VertexId,
    r: u32,
) -> bool {
    if subset.is_empty() {
        return true;
    }
    if !subset.contains(center) {
        return false;
    }
    let hd = hop_distances_within_subset(g, subset, center);
    hd.distances.len() == subset.len() && hd.max_distance() <= r
}

/// Computes the connected components of the graph; returns one
/// [`VertexSubset`] per component, largest first.
pub fn connected_components(g: &SocialNetwork) -> Vec<VertexSubset> {
    let mut seen = vec![false; g.num_vertices()];
    let mut components = Vec::new();
    for v in g.vertices() {
        if seen[v.index()] {
            continue;
        }
        let mut component = Vec::new();
        let mut stack = vec![v];
        seen[v.index()] = true;
        while let Some(u) = stack.pop() {
            component.push(u);
            for &(n, _) in g.neighbors(u) {
                if !seen[n.index()] {
                    seen[n.index()] = true;
                    stack.push(n);
                }
            }
        }
        components.push(VertexSubset::from_iter(component));
    }
    components.sort_by_key(|c| std::cmp::Reverse(c.len()));
    components
}

/// Returns `true` if the whole graph is connected (the paper's Definition 1
/// assumes a connected social network).
pub fn is_connected(g: &SocialNetwork) -> bool {
    g.num_vertices() <= 1 || connected_components(g).len() == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0-1-2-3-4 plus an isolated vertex 5.
    fn path_graph() -> SocialNetwork {
        let mut b = crate::builder::GraphBuilder::with_vertices(6);
        for i in 0..4u32 {
            b.add_symmetric_edge(VertexId(i), VertexId(i + 1), 0.5);
        }
        b.build().unwrap()
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_graph();
        let hd = bfs_within(&g, VertexId(0), u32::MAX);
        assert_eq!(hd.distance(VertexId(0)), Some(0));
        assert_eq!(hd.distance(VertexId(3)), Some(3));
        assert_eq!(hd.distance(VertexId(5)), None);
        assert_eq!(hd.max_distance(), 4);
    }

    #[test]
    fn bounded_bfs_stops_at_radius() {
        let g = path_graph();
        let hd = bfs_within(&g, VertexId(0), 2);
        assert_eq!(hd.distances.len(), 3);
        assert_eq!(hd.distance(VertexId(2)), Some(2));
        assert_eq!(hd.distance(VertexId(3)), None);
    }

    #[test]
    fn hop_subgraph_matches_radius() {
        let g = path_graph();
        let h1 = hop_subgraph(&g, VertexId(2), 1);
        assert_eq!(h1.as_slice(), &[VertexId(1), VertexId(2), VertexId(3)]);
        let h0 = hop_subgraph(&g, VertexId(2), 0);
        assert_eq!(h0.as_slice(), &[VertexId(2)]);
    }

    #[test]
    fn hop_distance_between_pairs() {
        let g = path_graph();
        assert_eq!(hop_distance(&g, VertexId(0), VertexId(4)), Some(4));
        assert_eq!(hop_distance(&g, VertexId(1), VertexId(1)), Some(0));
        assert_eq!(hop_distance(&g, VertexId(0), VertexId(5)), None);
    }

    #[test]
    fn subset_restricted_distances() {
        let g = path_graph();
        // subset {0, 1, 3, 4}: 3 and 4 unreachable from 0 without vertex 2
        let s = VertexSubset::from_iter([VertexId(0), VertexId(1), VertexId(3), VertexId(4)]);
        let hd = hop_distances_within_subset(&g, &s, VertexId(0));
        assert_eq!(hd.distances.len(), 2);
        assert!(!satisfies_radius(&g, &s, VertexId(0), 5));
        let t = VertexSubset::from_iter([VertexId(0), VertexId(1), VertexId(2)]);
        assert!(satisfies_radius(&g, &t, VertexId(0), 2));
        assert!(!satisfies_radius(&g, &t, VertexId(0), 1));
        assert!(satisfies_radius(&g, &t, VertexId(1), 1));
        // centre outside the subset never satisfies the constraint
        assert!(!satisfies_radius(&g, &t, VertexId(4), 3));
        assert!(satisfies_radius(&g, &VertexSubset::new(), VertexId(0), 1));
    }

    #[test]
    fn components_and_connectivity() {
        let g = path_graph();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 5);
        assert_eq!(comps[1].len(), 1);
        assert!(!is_connected(&g));

        let g2 = g
            .with_edge_inserted(VertexId(4), VertexId(5), 0.5, 0.5)
            .unwrap();
        assert!(is_connected(&g2));
        assert!(is_connected(&SocialNetwork::new()));
    }
}
