//! Breadth-first traversal utilities: r-hop subgraphs, hop distances and
//! connected components.
//!
//! The radius constraint of Definition 2 and the offline pre-computation of
//! Algorithm 2 both revolve around the *r-hop subgraph* `hop(v_i, r)` — the
//! subgraph induced by every vertex within `r` hops of the centre `v_i`. This
//! module provides that extraction plus the hop-distance primitives used by
//! the radius pruning rule (Lemma 3).
//!
//! Every function comes in two flavours (see [`crate::workspace`] for the
//! borrowing contract): the plain name borrows this thread's shared
//! [`TraversalWorkspace`], while the `_with` variant takes one explicitly so
//! batch callers pay the scratch allocations only once. Sources that the
//! graph does not contain (stale [`VertexId`]s, queries against an empty
//! graph) yield empty results instead of panicking.

use crate::graph::SocialNetwork;
use crate::subgraph::VertexSubset;
use crate::types::VertexId;
use crate::workspace::{with_thread_workspace, TraversalWorkspace};
use std::cell::OnceCell;
use std::collections::HashMap;

/// Result of a bounded BFS: every reached vertex together with its hop
/// distance from the source.
#[derive(Debug, Clone)]
pub struct HopDistances {
    /// Source of the BFS.
    pub source: VertexId,
    /// `(vertex, hops)` pairs in BFS order (source first with distance 0);
    /// empty when the source is not a vertex of the graph.
    pub distances: Vec<(VertexId, u32)>,
    /// Dense lookup table built lazily on the first [`distance`] call, so
    /// repeated lookups are O(1) instead of a linear scan while the hot
    /// callers that never look up individual vertices pay nothing.
    ///
    /// [`distance`]: HopDistances::distance
    lookup: OnceCell<HashMap<VertexId, u32>>,
}

impl HopDistances {
    /// Wraps a BFS-ordered `(vertex, hops)` list.
    pub fn new(source: VertexId, distances: Vec<(VertexId, u32)>) -> Self {
        HopDistances {
            source,
            distances,
            lookup: OnceCell::new(),
        }
    }

    /// Looks up the hop distance of `v`, if it was reached. O(1) after the
    /// first call (which builds the lookup table in one pass).
    pub fn distance(&self, v: VertexId) -> Option<u32> {
        self.lookup
            .get_or_init(|| self.distances.iter().copied().collect())
            .get(&v)
            .copied()
    }

    /// The vertex set reached by the BFS.
    pub fn reached(&self) -> VertexSubset {
        VertexSubset::from_iter(self.distances.iter().map(|(v, _)| *v))
    }

    /// The maximum hop distance of any reached vertex (the eccentricity of
    /// the source within the explored ball).
    pub fn max_distance(&self) -> u32 {
        // BFS discovers vertices in non-decreasing distance order, so the
        // last entry carries the maximum.
        self.distances.last().map_or(0, |&(_, d)| d)
    }
}

/// Runs a BFS from `source` bounded to `max_hops` hops and returns every
/// reached vertex with its hop distance. Borrows the thread workspace.
///
/// `max_hops = u32::MAX` gives an unbounded BFS over the connected component.
/// A `source` outside the graph yields an empty result.
pub fn bfs_within(g: &SocialNetwork, source: VertexId, max_hops: u32) -> HopDistances {
    with_thread_workspace(|ws| bfs_within_with(ws, g, source, max_hops))
}

/// [`bfs_within`] against a caller-owned workspace.
pub fn bfs_within_with(
    ws: &mut TraversalWorkspace,
    g: &SocialNetwork,
    source: VertexId,
    max_hops: u32,
) -> HopDistances {
    let mut order = Vec::new();
    bfs_within_into(ws, g, source, max_hops, &mut order);
    HopDistances::new(source, order)
}

/// [`bfs_within`] into a caller-owned output buffer: `order` is cleared and
/// refilled with the reached `(vertex, hops)` pairs in BFS (nondecreasing
/// distance) order. Batch callers — the offline pre-computation visits every
/// vertex — reuse one buffer across all calls and pay no per-call allocation
/// once it has grown.
///
/// The workspace keeps the epoch-stamped hop distance of every reached vertex
/// ([`TraversalWorkspace::dist`]) until its next `begin`, so callers can do
/// O(1) "is `u` within `r` hops" membership tests against the same traversal.
pub fn bfs_within_into(
    ws: &mut TraversalWorkspace,
    g: &SocialNetwork,
    source: VertexId,
    max_hops: u32,
    order: &mut Vec<(VertexId, u32)>,
) {
    order.clear();
    // invalidate stale stamps even for a missing source, so the documented
    // `dist()` membership contract always reflects *this* (empty) traversal
    ws.begin(g.num_vertices());
    if !g.contains_vertex(source) {
        return;
    }
    // the output list doubles as the BFS ring buffer: entries are appended
    // on discovery and consumed in order through `head`
    order.push((source, 0u32));
    ws.try_visit(source, 0);
    let mut head = 0;
    while head < order.len() {
        let (u, du) = order[head];
        head += 1;
        if du == max_hops {
            continue;
        }
        for (n, _) in g.neighbors(u) {
            if ws.try_visit(n, du + 1) {
                order.push((n, du + 1));
            }
        }
    }
}

/// Extracts the r-hop subgraph `hop(center, r)`: the set of vertices within
/// `r` hops of `center` (including the centre itself).
pub fn hop_subgraph(g: &SocialNetwork, center: VertexId, r: u32) -> VertexSubset {
    with_thread_workspace(|ws| hop_subgraph_with(ws, g, center, r))
}

/// [`hop_subgraph`] against a caller-owned workspace.
pub fn hop_subgraph_with(
    ws: &mut TraversalWorkspace,
    g: &SocialNetwork,
    center: VertexId,
    r: u32,
) -> VertexSubset {
    bfs_within_with(ws, g, center, r).reached()
}

/// Hop distance between `u` and `v` in the full graph, or `None` if they are
/// disconnected (or either endpoint is not a vertex of the graph).
pub fn hop_distance(g: &SocialNetwork, u: VertexId, v: VertexId) -> Option<u32> {
    with_thread_workspace(|ws| hop_distance_with(ws, g, u, v))
}

/// [`hop_distance`] against a caller-owned workspace.
pub fn hop_distance_with(
    ws: &mut TraversalWorkspace,
    g: &SocialNetwork,
    u: VertexId,
    v: VertexId,
) -> Option<u32> {
    if !g.contains_vertex(u) || !g.contains_vertex(v) {
        return None;
    }
    if u == v {
        return Some(0);
    }
    ws.begin(g.num_vertices());
    ws.try_visit(u, 0);
    ws.queue_push(u, 0);
    while let Some((x, dx)) = ws.queue_pop_front() {
        for (n, _) in g.neighbors(x) {
            if ws.try_visit(n, dx + 1) {
                if n == v {
                    return Some(dx + 1);
                }
                ws.queue_push(n, dx + 1);
            }
        }
    }
    None
}

/// Hop distances from `source` restricted to the subgraph induced by
/// `subset`; vertices outside `subset` are never traversed.
///
/// Used to verify the radius constraint of Definition 2, where the shortest
/// path distance `dist(v_q, v_l)` is measured *inside* the seed community.
pub fn hop_distances_within_subset(
    g: &SocialNetwork,
    subset: &VertexSubset,
    source: VertexId,
) -> HopDistances {
    with_thread_workspace(|ws| hop_distances_within_subset_with(ws, g, subset, source))
}

/// [`hop_distances_within_subset`] against a caller-owned workspace.
pub fn hop_distances_within_subset_with(
    ws: &mut TraversalWorkspace,
    g: &SocialNetwork,
    subset: &VertexSubset,
    source: VertexId,
) -> HopDistances {
    if !g.contains_vertex(source) {
        return HopDistances::new(source, Vec::new());
    }
    debug_assert!(subset.contains(source), "source must belong to the subset");
    ws.begin(g.num_vertices());
    let mut order = vec![(source, 0u32)];
    ws.try_visit(source, 0);
    let mut head = 0;
    while head < order.len() {
        let (u, du) = order[head];
        head += 1;
        for (n, _) in g.neighbors(u) {
            if subset.contains(n) && ws.try_visit(n, du + 1) {
                order.push((n, du + 1));
            }
        }
    }
    HopDistances::new(source, order)
}

/// Returns `true` if every vertex of `subset` lies within `r` hops of
/// `center` when paths are restricted to `subset` (the radius constraint of
/// Definition 2).
pub fn satisfies_radius(
    g: &SocialNetwork,
    subset: &VertexSubset,
    center: VertexId,
    r: u32,
) -> bool {
    if subset.is_empty() {
        return true;
    }
    if !subset.contains(center) {
        return false;
    }
    let hd = hop_distances_within_subset(g, subset, center);
    hd.distances.len() == subset.len() && hd.max_distance() <= r
}

/// Computes the connected components of the graph; returns one
/// [`VertexSubset`] per component, largest first.
pub fn connected_components(g: &SocialNetwork) -> Vec<VertexSubset> {
    with_thread_workspace(|ws| connected_components_with(ws, g))
}

/// [`connected_components`] against a caller-owned workspace.
pub fn connected_components_with(
    ws: &mut TraversalWorkspace,
    g: &SocialNetwork,
) -> Vec<VertexSubset> {
    ws.begin(g.num_vertices());
    let mut components = Vec::new();
    for v in g.vertices() {
        if !ws.try_visit(v, 0) {
            continue;
        }
        let mut component = Vec::new();
        ws.queue_push(v, 0);
        while let Some((u, _)) = ws.queue_pop_back() {
            component.push(u);
            for (n, _) in g.neighbors(u) {
                if ws.try_visit(n, 0) {
                    ws.queue_push(n, 0);
                }
            }
        }
        components.push(VertexSubset::from_iter(component));
    }
    components.sort_by_key(|c| std::cmp::Reverse(c.len()));
    components
}

/// Returns `true` if the whole graph is connected (the paper's Definition 1
/// assumes a connected social network).
pub fn is_connected(g: &SocialNetwork) -> bool {
    g.num_vertices() <= 1 || connected_components(g).len() == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0-1-2-3-4 plus an isolated vertex 5.
    fn path_graph() -> SocialNetwork {
        let mut b = crate::builder::GraphBuilder::with_vertices(6);
        for i in 0..4u32 {
            b.add_symmetric_edge(VertexId(i), VertexId(i + 1), 0.5);
        }
        b.build().unwrap()
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_graph();
        let hd = bfs_within(&g, VertexId(0), u32::MAX);
        assert_eq!(hd.distance(VertexId(0)), Some(0));
        assert_eq!(hd.distance(VertexId(3)), Some(3));
        assert_eq!(hd.distance(VertexId(5)), None);
        assert_eq!(hd.max_distance(), 4);
    }

    #[test]
    fn distance_lookup_agrees_with_bfs_order() {
        // regression for the O(n) linear-scan lookup: every entry of the
        // BFS-ordered list must be reproduced by `distance`, and misses must
        // stay misses
        let g = path_graph();
        let hd = bfs_within(&g, VertexId(1), u32::MAX);
        for &(v, d) in &hd.distances {
            assert_eq!(hd.distance(v), Some(d), "vertex {v}");
        }
        for v in g.vertices() {
            let expected = hd.distances.iter().find(|(u, _)| *u == v).map(|&(_, d)| d);
            assert_eq!(hd.distance(v), expected, "vertex {v}");
        }
        assert_eq!(hd.distance(VertexId(999)), None);
    }

    #[test]
    fn bounded_bfs_stops_at_radius() {
        let g = path_graph();
        let hd = bfs_within(&g, VertexId(0), 2);
        assert_eq!(hd.distances.len(), 3);
        assert_eq!(hd.distance(VertexId(2)), Some(2));
        assert_eq!(hd.distance(VertexId(3)), None);
    }

    #[test]
    fn stale_sources_yield_empty_results() {
        let g = path_graph();
        let stale = VertexId(99);
        assert!(bfs_within(&g, stale, 3).distances.is_empty());
        assert!(hop_subgraph(&g, stale, 2).is_empty());
        assert_eq!(hop_distance(&g, stale, VertexId(0)), None);
        assert_eq!(hop_distance(&g, VertexId(0), stale), None);
        // even the reflexive case must not report distance 0 for a vertex
        // the graph does not contain
        assert_eq!(hop_distance(&g, stale, stale), None);
    }

    #[test]
    fn empty_graph_traversals_are_empty() {
        let g = SocialNetwork::new();
        assert!(bfs_within(&g, VertexId(0), u32::MAX).distances.is_empty());
        assert!(hop_subgraph(&g, VertexId(0), 1).is_empty());
        assert_eq!(hop_distance(&g, VertexId(0), VertexId(1)), None);
        assert!(connected_components(&g).is_empty());
    }

    #[test]
    fn hop_subgraph_matches_radius() {
        let g = path_graph();
        let h1 = hop_subgraph(&g, VertexId(2), 1);
        assert_eq!(h1.as_slice(), &[VertexId(1), VertexId(2), VertexId(3)]);
        let h0 = hop_subgraph(&g, VertexId(2), 0);
        assert_eq!(h0.as_slice(), &[VertexId(2)]);
    }

    #[test]
    fn hop_distance_between_pairs() {
        let g = path_graph();
        assert_eq!(hop_distance(&g, VertexId(0), VertexId(4)), Some(4));
        assert_eq!(hop_distance(&g, VertexId(1), VertexId(1)), Some(0));
        assert_eq!(hop_distance(&g, VertexId(0), VertexId(5)), None);
    }

    #[test]
    fn subset_restricted_distances() {
        let g = path_graph();
        // subset {0, 1, 3, 4}: 3 and 4 unreachable from 0 without vertex 2
        let s = VertexSubset::from_iter([VertexId(0), VertexId(1), VertexId(3), VertexId(4)]);
        let hd = hop_distances_within_subset(&g, &s, VertexId(0));
        assert_eq!(hd.distances.len(), 2);
        assert!(!satisfies_radius(&g, &s, VertexId(0), 5));
        let t = VertexSubset::from_iter([VertexId(0), VertexId(1), VertexId(2)]);
        assert!(satisfies_radius(&g, &t, VertexId(0), 2));
        assert!(!satisfies_radius(&g, &t, VertexId(0), 1));
        assert!(satisfies_radius(&g, &t, VertexId(1), 1));
        // centre outside the subset never satisfies the constraint
        assert!(!satisfies_radius(&g, &t, VertexId(4), 3));
        assert!(satisfies_radius(&g, &VertexSubset::new(), VertexId(0), 1));
    }

    #[test]
    fn components_and_connectivity() {
        let g = path_graph();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 5);
        assert_eq!(comps[1].len(), 1);
        assert!(!is_connected(&g));

        let g2 = g
            .with_edge_inserted(VertexId(4), VertexId(5), 0.5, 0.5)
            .unwrap();
        assert!(is_connected(&g2));
        assert!(is_connected(&SocialNetwork::new()));
    }

    #[test]
    fn reused_workspace_matches_fresh_workspace() {
        let g = path_graph();
        let mut reused = TraversalWorkspace::new();
        for source in g.vertices() {
            for max_hops in [0, 1, 2, u32::MAX] {
                let with_reuse = bfs_within_with(&mut reused, &g, source, max_hops);
                let fresh = bfs_within_with(&mut TraversalWorkspace::new(), &g, source, max_hops);
                assert_eq!(with_reuse.distances, fresh.distances);
            }
        }
    }

    #[test]
    fn bfs_into_reuses_buffer_and_keeps_distance_stamps() {
        let g = path_graph();
        let mut ws = TraversalWorkspace::new();
        let mut order = Vec::new();
        for source in g.vertices() {
            for max_hops in [0, 1, 3, u32::MAX] {
                bfs_within_into(&mut ws, &g, source, max_hops, &mut order);
                let fresh = bfs_within_with(&mut TraversalWorkspace::new(), &g, source, max_hops);
                assert_eq!(order, fresh.distances, "source {source} r {max_hops}");
                // the epoch-stamped distances survive until the next begin(),
                // giving O(1) region-membership tests over the same BFS
                for &(v, d) in &order {
                    assert_eq!(ws.dist(v), Some(d));
                }
            }
        }
        // stale sources leave the buffer empty rather than panicking, and
        // invalidate the previous traversal's stamps so membership tests
        // reflect the (empty) region instead of leftover distances
        bfs_within_into(&mut ws, &g, VertexId(99), 2, &mut order);
        assert!(order.is_empty());
        for v in g.vertices() {
            assert_eq!(ws.dist(v), None, "stale stamp survived for {v}");
        }
    }
}
