//! # icde-graph — social network substrate for TopL-ICDE
//!
//! This crate provides the data model from Definition 1 of the TopL-ICDE
//! paper: an attributed, undirected, weighted **social network** where each
//! vertex carries a keyword set and each edge carries an activation
//! probability, plus everything the upper layers need to work with it:
//!
//! * [`SocialNetwork`] — **frozen CSR** graph store (flat offsets + packed
//!   neighbour array) with per-vertex keyword sets and per-edge propagation
//!   probabilities; all structure is built in one shot by the mutable
//!   [`GraphBuilder`] and read back through the [`Neighbors`] cursor, which
//!   is the raw contiguous slice for overlay-free rows,
//! * [`overlay`] — the **delta overlay** (per-vertex inserted runs +
//!   tombstones) that makes edge insert/delete O(degree · log degree)
//!   instead of a full CSR rebuild, with amortised compaction,
//! * [`builder`] — the mutable accumulation side of the builder/frozen
//!   split: append-only buffering, O(1) incremental queries for the
//!   generators, one-shot validate + counting-sort freeze,
//! * [`keywords`] — keyword sets and the B-bit hashed [`bitvec::BitVector`]
//!   signatures used by the keyword pruning rule,
//! * [`traversal`] — BFS, r-hop subgraph extraction `hop(v, r)`, hop
//!   distances and connected components,
//! * [`workspace`] — the reusable [`TraversalWorkspace`] (epoch-stamped
//!   scratch arrays, ring buffer, monotone bucket queue) every traversal and
//!   propagation loop borrows instead of allocating per call,
//! * [`subgraph`] — light-weight vertex-subset views over a network,
//! * [`generators`] — synthetic workload generators (Newman–Watts–Strogatz
//!   small-world, DBLP-like, Amazon-like, keyword distributions, edge
//!   weights),
//! * [`io`] — edge-list / JSON snapshot readers and writers,
//! * [`snapshot`] — sectioned, checksummed **binary snapshots** of the
//!   frozen store that load zero-copy via `mmap(2)` (with a buffered
//!   fallback path), so production starts skip the JSON re-parse entirely.
//!
//! The representation is bespoke (rather than reusing a generic graph crate)
//! so that keyword bit vectors, edge supports and per-radius aggregates can
//! be stored next to the topology and accessed without hashing.

pub mod bitvec;
pub mod builder;
pub mod error;
pub mod generators;
pub mod graph;
pub mod io;
pub mod keywords;
pub mod overlay;
pub mod snapshot;
pub mod statistics;
pub mod subgraph;
pub mod traversal;
pub mod types;
pub mod workspace;

pub use bitvec::{BitVector, SignatureRef, SignatureScratch, SignatureTable};
pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{GraphParts, SocialNetwork};
pub use keywords::{Keyword, KeywordSet};
pub use overlay::{DeltaOverlay, EdgeIdRemap, Neighbors, NeighborsIter};
pub use subgraph::VertexSubset;
pub use types::{vertex_ids_from_raw, EdgeId, VertexId, Weight};
pub use workspace::TraversalWorkspace;
