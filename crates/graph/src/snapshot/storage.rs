//! [`FlatVec`]: flat array storage that is either an owned `Vec<T>` or a
//! zero-copy view into a loaded snapshot region.
//!
//! The frozen [`crate::SocialNetwork`] stores its CSR arrays in `FlatVec`s:
//! graphs built in memory own plain vectors, graphs loaded from a binary
//! snapshot point straight into the `mmap`'d (or buffered) file bytes. Reads
//! go through `Deref<Target = [T]>` either way, so the hot paths are
//! oblivious to the backing. The rare attribute mutations
//! ([`SocialNetwork::set_edge_weights`]) call [`FlatVec::to_mut`], which
//! converts a mapped view into an owned copy on first write
//! (copy-on-write at whole-array granularity).
//!
//! [`SocialNetwork::set_edge_weights`]: crate::SocialNetwork::set_edge_weights

use super::region::MappedRegion;
use serde::{DeError, Deserialize, Serialize, Value};
use std::marker::PhantomData;
use std::ops::Deref;
use std::sync::Arc;

/// Marker for element types that may be viewed directly inside a snapshot
/// region: fixed-size, no padding, no invalid bit patterns *as written by the
/// snapshot writer*, alignment ≤ 8.
///
/// # Safety
/// Implementors guarantee `T` has no uninitialised/padding bytes and that any
/// bit pattern the snapshot writer produced is a valid `T`. Pair types
/// additionally require the runtime layout check in the graph loader before a
/// mapped `FlatVec` is constructed.
pub unsafe trait SectionElement: Copy + 'static {}

unsafe impl SectionElement for u8 {}
unsafe impl SectionElement for u32 {}
unsafe impl SectionElement for u64 {}
unsafe impl SectionElement for f64 {}
// Pair sections (CSR slots, edge endpoints): guarded by the
// `pair_layout_is_transparent` runtime check before any mapped construction.
unsafe impl SectionElement for (crate::types::VertexId, crate::types::EdgeId) {}
unsafe impl SectionElement for (crate::types::VertexId, crate::types::VertexId) {}

enum Inner<T> {
    Owned(Vec<T>),
    Mapped {
        region: Arc<MappedRegion>,
        byte_offset: usize,
        len: usize,
        _elem: PhantomData<T>,
    },
}

/// A flat array that is owned or a view into a snapshot region (see the
/// module docs).
pub struct FlatVec<T> {
    inner: Inner<T>,
}

impl<T> FlatVec<T> {
    /// Wraps an owned vector.
    pub fn from_vec(v: Vec<T>) -> Self {
        FlatVec {
            inner: Inner::Owned(v),
        }
    }

    /// Returns `true` if the storage is a zero-copy view into a region.
    pub fn is_mapped(&self) -> bool {
        matches!(self.inner, Inner::Mapped { .. })
    }

    /// Returns `true` if the storage views a region that is an `mmap` of the
    /// file (as opposed to a buffered heap read or owned storage).
    pub fn is_file_mapped(&self) -> bool {
        match &self.inner {
            Inner::Owned(_) => false,
            Inner::Mapped { region, .. } => region.is_mapped(),
        }
    }
}

impl<T: SectionElement> FlatVec<T> {
    /// Builds a zero-copy view of `len` elements starting `byte_offset` bytes
    /// into `region`.
    ///
    /// # Safety
    /// The caller guarantees the range `byte_offset .. byte_offset +
    /// len * size_of::<T>()` lies inside the region, `byte_offset` is aligned
    /// for `T`, and the bytes are a valid `[T; len]` under `T`'s
    /// [`SectionElement`] contract (for pair types: the layout check passed).
    pub(crate) unsafe fn from_region(
        region: Arc<MappedRegion>,
        byte_offset: usize,
        len: usize,
    ) -> Self {
        debug_assert!(byte_offset + len * std::mem::size_of::<T>() <= region.len());
        debug_assert_eq!(
            (region.as_ptr() as usize + byte_offset) % std::mem::align_of::<T>(),
            0
        );
        FlatVec {
            inner: Inner::Mapped {
                region,
                byte_offset,
                len,
                _elem: PhantomData,
            },
        }
    }
}

impl<T: Clone> FlatVec<T> {
    /// Mutable access to the elements, converting a mapped view into an owned
    /// copy on first use (whole-array copy-on-write).
    pub fn to_mut(&mut self) -> &mut Vec<T> {
        if let Inner::Mapped { .. } = self.inner {
            let owned: Vec<T> = self.as_slice().to_vec();
            self.inner = Inner::Owned(owned);
        }
        match &mut self.inner {
            Inner::Owned(v) => v,
            Inner::Mapped { .. } => unreachable!("converted to owned above"),
        }
    }
}

impl<T> FlatVec<T> {
    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match &self.inner {
            Inner::Owned(v) => v.as_slice(),
            Inner::Mapped {
                region,
                byte_offset,
                len,
                ..
            } => {
                if *len == 0 {
                    &[]
                } else {
                    // Safety: upheld by the `from_region` contract; the Arc
                    // keeps the region alive for the borrow's duration.
                    unsafe {
                        std::slice::from_raw_parts(
                            region.as_ptr().add(*byte_offset) as *const T,
                            *len,
                        )
                    }
                }
            }
        }
    }
}

impl<T> Deref for FlatVec<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> Default for FlatVec<T> {
    fn default() -> Self {
        FlatVec::from_vec(Vec::new())
    }
}

impl<T> From<Vec<T>> for FlatVec<T> {
    fn from(v: Vec<T>) -> Self {
        FlatVec::from_vec(v)
    }
}

impl<T: Clone> Clone for FlatVec<T> {
    fn clone(&self) -> Self {
        match &self.inner {
            Inner::Owned(v) => FlatVec::from_vec(v.clone()),
            Inner::Mapped {
                region,
                byte_offset,
                len,
                ..
            } => FlatVec {
                // sharing the region is cheap and keeps the clone zero-copy
                inner: Inner::Mapped {
                    region: Arc::clone(region),
                    byte_offset: *byte_offset,
                    len: *len,
                    _elem: PhantomData,
                },
            },
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for FlatVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice().iter()).finish()
    }
}

impl<T: PartialEq> PartialEq for FlatVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

// JSON persistence sees a `FlatVec` exactly as the `Vec` it wraps: mapped
// views serialise their elements, deserialisation always produces owned
// storage (a JSON file has no region to point into).
impl<T: Serialize> Serialize for FlatVec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for FlatVec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(FlatVec::from_vec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::File;
    use std::io::Write;

    #[test]
    fn owned_roundtrip() {
        let mut v: FlatVec<u32> = vec![1, 2, 3].into();
        assert_eq!(&v[..], &[1, 2, 3]);
        assert!(!v.is_mapped());
        v.to_mut().push(4);
        assert_eq!(&v[..], &[1, 2, 3, 4]);
    }

    #[test]
    fn mapped_view_reads_region_and_cow_detaches() {
        let path = std::env::temp_dir().join("icde_flatvec_region.bin");
        let payload: Vec<u8> = [7u64, 8, 9].iter().flat_map(|v| v.to_le_bytes()).collect();
        File::create(&path).unwrap().write_all(&payload).unwrap();
        let mut f = File::open(&path).unwrap();
        let region = MappedRegion::read_file(&mut f).unwrap();
        let mut v: FlatVec<u64> = unsafe { FlatVec::from_region(region, 0, 3) };
        assert!(v.is_mapped());
        assert_eq!(&v[..], &[7, 8, 9]);
        let snapshot = v.clone();
        v.to_mut()[0] = 42;
        assert!(!v.is_mapped());
        assert_eq!(&v[..], &[42, 8, 9]);
        // the clone still reads the untouched region
        assert!(snapshot.is_mapped());
        assert_eq!(&snapshot[..], &[7, 8, 9]);
        let _ = std::fs::remove_file(path);
    }
}
