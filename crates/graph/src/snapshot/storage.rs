//! [`FlatVec`]: flat array storage that is either an owned `Vec<T>` or a
//! zero-copy view into a loaded snapshot region.
//!
//! The frozen [`crate::SocialNetwork`] stores its CSR arrays in `FlatVec`s:
//! graphs built in memory own plain vectors, graphs loaded from a binary
//! snapshot point straight into the `mmap`'d (or buffered) file bytes. Reads
//! go through `Deref<Target = [T]>` either way, so the hot paths are
//! oblivious to the backing. The rare attribute mutations
//! ([`SocialNetwork::set_edge_weights`]) call [`FlatVec::to_mut`], which
//! converts a mapped view into an owned copy on first write
//! (copy-on-write at whole-array granularity).
//!
//! [`SocialNetwork::set_edge_weights`]: crate::SocialNetwork::set_edge_weights

use super::region::MappedRegion;
use serde::{DeError, Deserialize, Serialize, Value};
use std::marker::PhantomData;
use std::ops::Deref;
use std::sync::Arc;

/// Marker for element types that may be viewed directly inside a snapshot
/// region: fixed-size, no padding, no invalid bit patterns *as written by the
/// snapshot writer*, alignment ≤ 8.
///
/// # Safety
/// Implementors guarantee `T` has no uninitialised/padding bytes and that any
/// bit pattern the snapshot writer produced is a valid `T`. Pair types
/// additionally require the runtime layout check in the graph loader before a
/// mapped `FlatVec` is constructed.
pub unsafe trait SectionElement: Copy + 'static {}

unsafe impl SectionElement for u8 {}
unsafe impl SectionElement for u32 {}
unsafe impl SectionElement for u64 {}
unsafe impl SectionElement for f64 {}
// Pair sections (CSR slots, edge endpoints): guarded by the
// `pair_layout_is_transparent` runtime check before any mapped construction.
unsafe impl SectionElement for (crate::types::VertexId, crate::types::EdgeId) {}
unsafe impl SectionElement for (crate::types::VertexId, crate::types::VertexId) {}

enum Inner<T> {
    Owned(Vec<T>),
    /// Immutable storage shared between clones: cloning is an `Arc` bump and
    /// `to_mut` detaches (or reclaims a uniquely-held buffer without copying).
    Shared(Arc<Vec<T>>),
    Mapped {
        region: Arc<MappedRegion>,
        byte_offset: usize,
        len: usize,
        _elem: PhantomData<T>,
    },
}

/// A flat array that is owned or a view into a snapshot region (see the
/// module docs).
pub struct FlatVec<T> {
    inner: Inner<T>,
}

impl<T> FlatVec<T> {
    /// Wraps an owned vector.
    pub fn from_vec(v: Vec<T>) -> Self {
        FlatVec {
            inner: Inner::Owned(v),
        }
    }

    /// Wraps an already-shared buffer (clones are `Arc` bumps).
    pub fn from_shared(v: Arc<Vec<T>>) -> Self {
        FlatVec {
            inner: Inner::Shared(v),
        }
    }

    /// Returns `true` if the storage is a zero-copy view into a region.
    pub fn is_mapped(&self) -> bool {
        matches!(self.inner, Inner::Mapped { .. })
    }

    /// Returns `true` if the storage is `Arc`-shared between clones.
    pub fn is_shared(&self) -> bool {
        matches!(self.inner, Inner::Shared(_))
    }

    /// Converts owned storage into shared storage in place (O(1)): subsequent
    /// clones bump an `Arc` instead of copying the buffer. Mapped views are
    /// left alone — they are already cheap to clone — and shared storage is a
    /// no-op.
    pub fn share(&mut self) {
        if matches!(self.inner, Inner::Owned(_)) {
            let Inner::Owned(v) = std::mem::replace(&mut self.inner, Inner::Owned(Vec::new()))
            else {
                unreachable!("matched Owned above")
            };
            self.inner = Inner::Shared(Arc::new(v));
        }
    }

    /// Returns `true` if the storage views a region that is an `mmap` of the
    /// file (as opposed to a buffered heap read or owned storage).
    pub fn is_file_mapped(&self) -> bool {
        match &self.inner {
            Inner::Owned(_) | Inner::Shared(_) => false,
            Inner::Mapped { region, .. } => region.is_mapped(),
        }
    }
}

impl<T: SectionElement> FlatVec<T> {
    /// Builds a zero-copy view of `len` elements starting `byte_offset` bytes
    /// into `region`.
    ///
    /// # Safety
    /// The caller guarantees the range `byte_offset .. byte_offset +
    /// len * size_of::<T>()` lies inside the region, `byte_offset` is aligned
    /// for `T`, and the bytes are a valid `[T; len]` under `T`'s
    /// [`SectionElement`] contract (for pair types: the layout check passed).
    pub(crate) unsafe fn from_region(
        region: Arc<MappedRegion>,
        byte_offset: usize,
        len: usize,
    ) -> Self {
        debug_assert!(byte_offset + len * std::mem::size_of::<T>() <= region.len());
        debug_assert_eq!(
            (region.as_ptr() as usize + byte_offset) % std::mem::align_of::<T>(),
            0
        );
        FlatVec {
            inner: Inner::Mapped {
                region,
                byte_offset,
                len,
                _elem: PhantomData,
            },
        }
    }
}

impl<T: Clone> FlatVec<T> {
    /// Mutable access to the elements, converting a mapped view into an owned
    /// copy on first use (whole-array copy-on-write).
    pub fn to_mut(&mut self) -> &mut Vec<T> {
        match &self.inner {
            Inner::Mapped { .. } => {
                let owned: Vec<T> = self.as_slice().to_vec();
                self.inner = Inner::Owned(owned);
            }
            Inner::Shared(_) => {
                let Inner::Shared(arc) =
                    std::mem::replace(&mut self.inner, Inner::Owned(Vec::new()))
                else {
                    unreachable!("matched Shared above")
                };
                // A uniquely-held buffer is reclaimed without copying.
                let owned = Arc::try_unwrap(arc).unwrap_or_else(|arc| (*arc).clone());
                self.inner = Inner::Owned(owned);
            }
            Inner::Owned(_) => {}
        }
        match &mut self.inner {
            Inner::Owned(v) => v,
            _ => unreachable!("converted to owned above"),
        }
    }
}

impl<T> FlatVec<T> {
    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match &self.inner {
            Inner::Owned(v) => v.as_slice(),
            Inner::Shared(v) => v.as_slice(),
            Inner::Mapped {
                region,
                byte_offset,
                len,
                ..
            } => {
                if *len == 0 {
                    &[]
                } else {
                    // Safety: upheld by the `from_region` contract; the Arc
                    // keeps the region alive for the borrow's duration.
                    unsafe {
                        std::slice::from_raw_parts(
                            region.as_ptr().add(*byte_offset) as *const T,
                            *len,
                        )
                    }
                }
            }
        }
    }
}

impl<T> Deref for FlatVec<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> Default for FlatVec<T> {
    fn default() -> Self {
        FlatVec::from_vec(Vec::new())
    }
}

impl<T> From<Vec<T>> for FlatVec<T> {
    fn from(v: Vec<T>) -> Self {
        FlatVec::from_vec(v)
    }
}

impl<T: Clone> Clone for FlatVec<T> {
    fn clone(&self) -> Self {
        match &self.inner {
            Inner::Owned(v) => FlatVec::from_vec(v.clone()),
            Inner::Shared(v) => FlatVec {
                inner: Inner::Shared(Arc::clone(v)),
            },
            Inner::Mapped {
                region,
                byte_offset,
                len,
                ..
            } => FlatVec {
                // sharing the region is cheap and keeps the clone zero-copy
                inner: Inner::Mapped {
                    region: Arc::clone(region),
                    byte_offset: *byte_offset,
                    len: *len,
                    _elem: PhantomData,
                },
            },
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for FlatVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice().iter()).finish()
    }
}

impl<T: PartialEq> PartialEq for FlatVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

// JSON persistence sees a `FlatVec` exactly as the `Vec` it wraps: mapped
// views serialise their elements, deserialisation always produces owned
// storage (a JSON file has no region to point into).
impl<T: Serialize> Serialize for FlatVec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for FlatVec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(FlatVec::from_vec)
    }
}

/// Double-buffered publish shadow for one flat array mutated row-by-row.
///
/// A maintainer that mutates a working array in place and periodically
/// publishes immutable snapshots keeps one `SectionShadow` per array. Between
/// publishes it records which rows (fixed `stride` elements each) it dirtied;
/// at publish time the shadow replays only those rows onto one of two
/// alternating `Arc` buffers and hands out an O(1)-clone [`FlatVec`]. Each
/// buffer keeps its own pending list (a row dirtied once must be replayed
/// onto *both* buffers, one publish apart), so steady-state publish cost is
/// proportional to the rows touched since that buffer was last current — not
/// to the array length. A buffer still referenced by an old snapshot is
/// detached by `Arc::make_mut` before replay.
#[derive(Debug)]
pub struct SectionShadow<T: std::fmt::Debug> {
    bufs: [Arc<Vec<T>>; 2],
    /// `true` while the buffer has never been synced (or was invalidated by
    /// [`SectionShadow::mark_all`]): the next publish does a full copy.
    stale: [bool; 2],
    pending: [Vec<u32>; 2],
    next: usize,
    stride: usize,
}

impl<T: Copy + std::fmt::Debug> SectionShadow<T> {
    /// A shadow for an array whose rows are `stride` contiguous elements
    /// (row `i` occupies `i * stride .. (i + 1) * stride`).
    pub fn new(stride: usize) -> Self {
        assert!(stride > 0, "row stride must be positive");
        SectionShadow {
            bufs: [Arc::new(Vec::new()), Arc::new(Vec::new())],
            stale: [true, true],
            pending: [Vec::new(), Vec::new()],
            next: 0,
            stride,
        }
    }

    /// Records `row` as dirtied in the working array since the last publish.
    #[inline]
    pub fn mark_row(&mut self, row: u32) {
        self.pending[0].push(row);
        self.pending[1].push(row);
    }

    /// Records every row in `rows` as dirtied.
    pub fn mark_rows(&mut self, rows: &[u32]) {
        self.pending[0].extend_from_slice(rows);
        self.pending[1].extend_from_slice(rows);
    }

    /// Invalidates both buffers: the next two publishes copy the whole array.
    /// Use after a change that rewrites rows wholesale (compaction, repack).
    pub fn mark_all(&mut self) {
        self.stale = [true, true];
        self.pending[0].clear();
        self.pending[1].clear();
    }

    /// Syncs both buffers with `working` so even the first two publishes
    /// replay dirty rows instead of full-copying. One O(len) cost at
    /// construction time, off the steady-state publish path.
    pub fn prime(&mut self, working: &[T]) {
        for slot in 0..2 {
            let buf = Arc::make_mut(&mut self.bufs[slot]);
            buf.clear();
            buf.extend_from_slice(working);
            self.stale[slot] = false;
            self.pending[slot].clear();
        }
    }

    /// Syncs the next buffer with `working` (full copy if stale or shrunk,
    /// tail extension plus dirty-row replay otherwise) and returns it as a
    /// shared `FlatVec` whose clones are `Arc` bumps.
    pub fn publish(&mut self, working: &[T]) -> FlatVec<T> {
        let slot = self.next;
        let buf = Arc::make_mut(&mut self.bufs[slot]);
        if self.stale[slot] || buf.len() > working.len() {
            buf.clear();
            buf.extend_from_slice(working);
            self.stale[slot] = false;
        } else {
            if buf.len() < working.len() {
                let from = buf.len();
                buf.extend_from_slice(&working[from..]);
            }
            let stride = self.stride;
            for &row in &self.pending[slot] {
                let start = row as usize * stride;
                // Rows at/after the old buffer length were covered by the
                // tail extension above.
                let end = (start + stride).min(working.len());
                if start < end {
                    buf[start..end].copy_from_slice(&working[start..end]);
                }
            }
        }
        self.pending[slot].clear();
        self.next = slot ^ 1;
        FlatVec::from_shared(Arc::clone(&self.bufs[slot]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::File;
    use std::io::Write;

    #[test]
    fn owned_roundtrip() {
        let mut v: FlatVec<u32> = vec![1, 2, 3].into();
        assert_eq!(&v[..], &[1, 2, 3]);
        assert!(!v.is_mapped());
        v.to_mut().push(4);
        assert_eq!(&v[..], &[1, 2, 3, 4]);
    }

    #[test]
    fn mapped_view_reads_region_and_cow_detaches() {
        let path = std::env::temp_dir().join("icde_flatvec_region.bin");
        let payload: Vec<u8> = [7u64, 8, 9].iter().flat_map(|v| v.to_le_bytes()).collect();
        File::create(&path).unwrap().write_all(&payload).unwrap();
        let mut f = File::open(&path).unwrap();
        let region = MappedRegion::read_file(&mut f).unwrap();
        let mut v: FlatVec<u64> = unsafe { FlatVec::from_region(region, 0, 3) };
        assert!(v.is_mapped());
        assert_eq!(&v[..], &[7, 8, 9]);
        let snapshot = v.clone();
        v.to_mut()[0] = 42;
        assert!(!v.is_mapped());
        assert_eq!(&v[..], &[42, 8, 9]);
        // the clone still reads the untouched region
        assert!(snapshot.is_mapped());
        assert_eq!(&snapshot[..], &[7, 8, 9]);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn shared_clone_is_arc_bump_and_cow_detaches() {
        let mut v: FlatVec<u32> = vec![1, 2, 3].into();
        v.share();
        assert!(v.is_shared());
        let snapshot = v.clone();
        assert!(snapshot.is_shared());
        v.to_mut()[0] = 42;
        assert!(!v.is_shared());
        assert_eq!(&v[..], &[42, 2, 3]);
        assert_eq!(&snapshot[..], &[1, 2, 3]);
        // a uniquely-held shared buffer is reclaimed, not copied
        let mut solo: FlatVec<u32> = vec![9].into();
        solo.share();
        let ptr = solo.as_slice().as_ptr();
        assert_eq!(solo.to_mut().as_ptr(), ptr);
    }

    #[test]
    fn section_shadow_replays_only_dirty_rows() {
        let mut working: Vec<u32> = vec![0, 0, 10, 10, 20, 20];
        let mut shadow = SectionShadow::new(2);
        let first = shadow.publish(&working);
        assert_eq!(&first[..], &working[..]);

        working[2] = 11;
        working[3] = 12;
        shadow.mark_row(1);
        let second = shadow.publish(&working);
        assert_eq!(&second[..], &[0, 0, 11, 12, 20, 20]);
        // the first snapshot is untouched even though it shares buffer slot 0
        assert_eq!(&first[..], &[0, 0, 10, 10, 20, 20]);

        // third publish reuses slot 0: the old snapshot keeps its buffer via
        // make_mut and only the dirty row is replayed on the detached copy
        working[0] = 7;
        shadow.mark_row(0);
        working.extend_from_slice(&[30, 30]);
        let third = shadow.publish(&working);
        assert_eq!(&third[..], &[7, 0, 11, 12, 20, 20, 30, 30]);
        assert_eq!(&first[..], &[0, 0, 10, 10, 20, 20]);
        assert_eq!(&second[..], &[0, 0, 11, 12, 20, 20]);

        // mark_all forces full copies (shrink path)
        working.truncate(4);
        shadow.mark_all();
        let fourth = shadow.publish(&working);
        assert_eq!(&fourth[..], &[7, 0, 11, 12]);
    }
}
