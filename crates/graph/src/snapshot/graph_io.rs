//! Graph payload of the binary snapshot format: saving a frozen
//! [`SocialNetwork`] and loading it back with the CSR arrays viewed in place.
//!
//! # Sections (payload kind [`KIND_GRAPH`])
//!
//! | id | contents                                             | elements |
//! |----|------------------------------------------------------|----------|
//! | 1  | meta: `[num_vertices, num_edges]`                    | u64 × 2  |
//! | 2  | CSR row offsets                                      | u32 × n+1|
//! | 3  | packed CSR `(neighbour, edge id)` pairs              | u32 × 4m |
//! | 4  | per-slot outgoing weights                            | f64 × 2m |
//! | 5  | canonical edge endpoints `(u, v)`, `u < v`           | u32 × 2m |
//! | 6  | forward directed weights `p_{u→v}`                   | f64 × m  |
//! | 7  | backward directed weights `p_{v→u}`                  | f64 × m  |
//! | 8  | keyword-pool offsets per vertex                      | u32 × n+1|
//! | 9  | keyword-id pool (each vertex's ids ascending)        | u32 × Σ|W||
//!
//! Loading performs an O(n + m) structural validation (offset monotonicity,
//! id ranges, array-length agreement) so that a file which passes cannot
//! drive any graph accessor out of bounds; corruption is caught earlier by
//! the file checksum.

use super::storage::FlatVec;
use super::{LoadMode, Snapshot, SnapshotError, SnapshotResult, SnapshotWriter};
use crate::graph::SocialNetwork;
use crate::keywords::KeywordSet;
use crate::types::{EdgeId, VertexId};
use std::path::Path;

/// Payload kind of a graph snapshot.
pub const KIND_GRAPH: u32 = 1;

const SEC_META: u32 = 1;
const SEC_OFFSETS: u32 = 2;
const SEC_CSR: u32 = 3;
const SEC_OUT_WEIGHTS: u32 = 4;
const SEC_EDGES: u32 = 5;
const SEC_WEIGHT_FWD: u32 = 6;
const SEC_WEIGHT_BWD: u32 = 7;
const SEC_KW_OFFSETS: u32 = 8;
const SEC_KW_POOL: u32 = 9;

/// Runtime proof that a pair of id newtypes is laid out as two consecutive
/// `u32`s (rustc does not guarantee tuple field order for `repr(Rust)`, but
/// `VertexId`/`EdgeId` are `repr(transparent)` and same-size tuple fields are
/// kept in order by every current layout algorithm — this check makes the
/// zero-copy cast *conditional on observed truth* rather than assumption).
fn pair_layout_is_transparent() -> bool {
    if std::mem::size_of::<(VertexId, EdgeId)>() != 8
        || std::mem::align_of::<(VertexId, EdgeId)>() != 4
        || std::mem::size_of::<(VertexId, VertexId)>() != 8
    {
        return false;
    }
    let sample = [
        (VertexId(0x11), EdgeId(0x22)),
        (VertexId(0x33), EdgeId(0x44)),
    ];
    // Safety: reading the sample's memory as u32s; any layout yields *some*
    // four u32s, we only compare them against the expected order.
    let words = unsafe { std::slice::from_raw_parts(sample.as_ptr() as *const u32, 4) };
    words == [0x11, 0x22, 0x33, 0x44]
}

fn pairs_to_u32s<A: Copy + Into<u32>, B: Copy + Into<u32>>(pairs: &[(A, B)]) -> Vec<u32> {
    let mut out = Vec::with_capacity(pairs.len() * 2);
    for &(a, b) in pairs {
        out.push(a.into());
        out.push(b.into());
    }
    out
}

/// Serialises a frozen graph into snapshot bytes (exposed for tests; use
/// [`write_graph_snapshot`] for files). The graph must be overlay-free —
/// [`write_graph_snapshot`] compacts a pending overlay into a fresh CSR
/// before reaching this writer.
pub(crate) fn graph_snapshot_writer(g: &SocialNetwork) -> SnapshotWriter {
    debug_assert!(
        !g.has_overlay(),
        "snapshot writer requires a compacted graph"
    );
    let parts = g.raw_parts();
    let mut w = SnapshotWriter::new(KIND_GRAPH);
    w.add_u64s(SEC_META, &[g.num_vertices() as u64, g.num_edges() as u64]);
    w.add_u32s(SEC_OFFSETS, parts.offsets);
    w.add_u32s(SEC_CSR, &pairs_to_u32s(parts.csr));
    w.add_f64s(SEC_OUT_WEIGHTS, parts.csr_out_weights);
    w.add_u32s(SEC_EDGES, &pairs_to_u32s(parts.edges));
    w.add_f64s(SEC_WEIGHT_FWD, parts.weight_forward);
    w.add_f64s(SEC_WEIGHT_BWD, parts.weight_backward);
    let mut kw_offsets = Vec::with_capacity(parts.keywords.len() + 1);
    let mut kw_pool = Vec::new();
    kw_offsets.push(0u32);
    for set in parts.keywords {
        kw_pool.extend(set.iter().map(|kw| kw.0));
        kw_offsets.push(kw_pool.len() as u32);
    }
    w.add_u32s(SEC_KW_OFFSETS, &kw_offsets);
    w.add_u32s(SEC_KW_POOL, &kw_pool);
    w
}

/// Writes a binary snapshot of the graph to `path` (crash-safe
/// write-then-rename). A pending delta overlay is folded into a fresh CSR
/// first (on a clone; `g` itself is untouched), so the written file always
/// holds a dense, overlay-free store — edge ids in the file are the
/// post-compaction ids.
pub fn write_graph_snapshot<P: AsRef<Path>>(g: &SocialNetwork, path: P) -> SnapshotResult<()> {
    if g.has_overlay() {
        let mut compacted = g.clone();
        compacted.compact();
        graph_snapshot_writer(&compacted).write_to(path)
    } else {
        graph_snapshot_writer(g).write_to(path)
    }
}

/// Loads a graph snapshot with [`LoadMode::Auto`] (mmap where available,
/// buffered read elsewhere).
pub fn read_graph_snapshot<P: AsRef<Path>>(path: P) -> SnapshotResult<SocialNetwork> {
    read_graph_snapshot_with(path, LoadMode::Auto)
}

/// Loads a graph snapshot with an explicit load mode.
pub fn read_graph_snapshot_with<P: AsRef<Path>>(
    path: P,
    mode: LoadMode,
) -> SnapshotResult<SocialNetwork> {
    let snap = Snapshot::open_with(path, mode)?;
    graph_from_snapshot(&snap)
}

fn malformed(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Malformed(msg.into())
}

/// Reconstructs a [`SocialNetwork`] from an already-opened snapshot (for
/// callers that sniffed the payload kind themselves). The five big arrays
/// stay views into the snapshot region; the (tiny, variable-length) keyword
/// sets are decoded into owned storage.
pub fn graph_from_snapshot(snap: &Snapshot) -> SnapshotResult<SocialNetwork> {
    snap.expect_kind(KIND_GRAPH)?;
    let meta = snap.u64s_vec(SEC_META)?;
    if meta.len() != 2 {
        return Err(malformed("graph meta section must hold [n, m]"));
    }
    let n = usize::try_from(meta[0]).map_err(|_| malformed("vertex count overflows usize"))?;
    let m = usize::try_from(meta[1]).map_err(|_| malformed("edge count overflows usize"))?;
    if n > u32::MAX as usize || m > u32::MAX as usize {
        return Err(malformed("graph exceeds the u32 id space"));
    }

    let layout_ok = pair_layout_is_transparent();
    let offsets = snap.flat_u32s(SEC_OFFSETS)?;
    let csr: FlatVec<(VertexId, EdgeId)> =
        snap.flat_u32_pairs(SEC_CSR, layout_ok, |a, b| (VertexId(a), EdgeId(b)))?;
    let csr_out_weight = snap.flat_f64s(SEC_OUT_WEIGHTS)?;
    let edges: FlatVec<(VertexId, VertexId)> =
        snap.flat_u32_pairs(SEC_EDGES, layout_ok, |a, b| (VertexId(a), VertexId(b)))?;
    let weight_forward = snap.flat_f64s(SEC_WEIGHT_FWD)?;
    let weight_backward = snap.flat_f64s(SEC_WEIGHT_BWD)?;
    let kw_offsets = snap.flat_u32s(SEC_KW_OFFSETS)?;
    let kw_pool = snap.flat_u32s(SEC_KW_POOL)?;

    // --- structural validation: nothing past this point may go out of
    // bounds or violate a SocialNetwork invariant -------------------------
    if offsets.len() != n + 1 {
        return Err(malformed(format!(
            "offset section holds {} entries for {n} vertices",
            offsets.len()
        )));
    }
    if csr.len() != 2 * m {
        return Err(malformed(format!(
            "CSR section holds {} slots for {m} edges",
            csr.len()
        )));
    }
    if csr_out_weight.len() != 2 * m
        || edges.len() != m
        || weight_forward.len() != m
        || weight_backward.len() != m
    {
        return Err(malformed("edge-indexed section lengths disagree"));
    }
    if offsets[0] != 0 || offsets[n] as usize != 2 * m {
        return Err(malformed("CSR offsets do not span the slot array"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(malformed("CSR offsets are not monotone"));
    }
    for &(u, v) in edges.iter() {
        if u.index() >= n || v.index() >= n || u >= v {
            return Err(malformed(
                "edge table entry is out of range or not canonical",
            ));
        }
    }
    // Per-row walk: neighbour ids strictly ascending (edge_between and
    // patch_out_weight binary-search rows) and every slot's edge id must
    // name exactly this row's vertex and its neighbour in the edge table.
    // With all 2m slots consistent and no duplicates within a row, each
    // edge necessarily appears once in both endpoints' rows — full
    // adjacency symmetry without a separate pass.
    for vertex in 0..n {
        let row = &csr[offsets[vertex] as usize..offsets[vertex + 1] as usize];
        let mut previous: Option<VertexId> = None;
        for &(neighbor, edge) in row {
            if neighbor.index() >= n || edge.index() >= m {
                return Err(malformed("CSR slot references an out-of-range id"));
            }
            if previous.is_some_and(|p| p >= neighbor) {
                return Err(malformed(format!(
                    "CSR row of vertex {vertex} is not strictly sorted"
                )));
            }
            previous = Some(neighbor);
            let (lo, hi) = edges[edge.index()];
            let expected = if VertexId(vertex as u32) < neighbor {
                (VertexId(vertex as u32), neighbor)
            } else {
                (neighbor, VertexId(vertex as u32))
            };
            if (lo, hi) != expected {
                return Err(malformed(format!(
                    "CSR slot of vertex {vertex} disagrees with the edge table"
                )));
            }
        }
    }
    if kw_offsets.len() != n + 1
        || kw_offsets[0] != 0
        || kw_offsets[n] as usize != kw_pool.len()
        || kw_offsets.windows(2).any(|w| w[0] > w[1])
    {
        return Err(malformed("keyword pool offsets are inconsistent"));
    }

    let keywords: Vec<KeywordSet> = (0..n)
        .map(|v| {
            let range = kw_offsets[v] as usize..kw_offsets[v + 1] as usize;
            // the writer emits each set in ascending order, so this is the
            // O(n) single-allocation path
            KeywordSet::from_sorted_ids(kw_pool[range].iter().copied())
        })
        .collect();

    Ok(SocialNetwork::from_snapshot_parts(
        offsets,
        csr,
        csr_out_weight,
        edges,
        weight_forward,
        weight_backward,
        keywords,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::{DatasetKind, DatasetSpec};

    fn sample_graph() -> SocialNetwork {
        DatasetSpec::new(DatasetKind::Uniform, 150, 5)
            .with_keyword_domain(12)
            .generate()
    }

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("icde_graph_snap_{}_{name}", std::process::id()))
    }

    #[test]
    fn pair_layout_check_passes_here() {
        // every supported target lays the id pairs out transparently; should
        // this ever fail, the loader silently switches to the decode path,
        // but we want to know
        assert!(pair_layout_is_transparent());
    }

    #[test]
    fn roundtrip_is_bit_identical_on_both_paths() {
        let g = sample_graph();
        let path = temp("roundtrip.snap");
        write_graph_snapshot(&g, &path).unwrap();
        for mode in [LoadMode::Auto, LoadMode::Buffered] {
            let back = read_graph_snapshot_with(&path, mode).unwrap();
            assert_eq!(back.content_fingerprint(), g.content_fingerprint());
            assert_eq!(back.num_vertices(), g.num_vertices());
            assert_eq!(back.num_edges(), g.num_edges());
            for v in g.vertices() {
                assert_eq!(back.neighbors(v).to_vec(), g.neighbors(v).to_vec());
                assert_eq!(back.keyword_set(v), g.keyword_set(v));
            }
        }
        let _ = std::fs::remove_file(path);
    }

    #[cfg(all(unix, target_pointer_width = "64"))]
    #[test]
    fn mmap_load_is_zero_copy_and_mutation_detaches() {
        let g = sample_graph();
        let path = temp("zero_copy.snap");
        write_graph_snapshot(&g, &path).unwrap();
        let snap = Snapshot::open_with(&path, LoadMode::Mmap).unwrap();
        assert!(snap.is_mapped());
        let mut back = graph_from_snapshot(&snap).unwrap();
        assert!(back.is_snapshot_backed());
        // attribute mutation must copy-on-write, not fault on the read-only map
        let (e, u, _) = back.edges().next().unwrap();
        back.set_edge_weights(e, 0.123, 0.456).unwrap();
        assert_eq!(
            back.activation_probability(u, back.edge_endpoints(e).1)
                .unwrap(),
            0.123
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn empty_and_tiny_graphs_roundtrip() {
        for g in [SocialNetwork::new(), {
            let mut b = GraphBuilder::new();
            b.add_vertex(KeywordSet::from_ids([3, 9]));
            b.build().unwrap()
        }] {
            let path = temp(&format!("tiny_{}.snap", g.num_vertices()));
            write_graph_snapshot(&g, &path).unwrap();
            let back = read_graph_snapshot(&path).unwrap();
            assert_eq!(back.content_fingerprint(), g.content_fingerprint());
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn index_kind_snapshot_is_rejected() {
        let path = temp("wrong_kind.snap");
        SnapshotWriter::new(super::super::KIND_INDEX)
            .write_to(&path)
            .unwrap();
        assert!(matches!(
            read_graph_snapshot(&path),
            Err(SnapshotError::WrongKind { .. })
        ));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn unsorted_or_lying_csr_rows_are_rejected() {
        let g = sample_graph();
        let parts = g.raw_parts();
        let vertex = (0..g.num_vertices())
            .find(|v| parts.offsets[v + 1] - parts.offsets[*v] >= 2)
            .expect("a vertex with degree ≥ 2 exists");
        let write_with_csr = |csr: &[(VertexId, EdgeId)], name: &str| {
            let mut w = SnapshotWriter::new(KIND_GRAPH);
            w.add_u64s(SEC_META, &[g.num_vertices() as u64, g.num_edges() as u64]);
            w.add_u32s(SEC_OFFSETS, parts.offsets);
            w.add_u32s(SEC_CSR, &pairs_to_u32s(csr));
            w.add_f64s(SEC_OUT_WEIGHTS, parts.csr_out_weights);
            w.add_u32s(SEC_EDGES, &pairs_to_u32s(parts.edges));
            w.add_f64s(SEC_WEIGHT_FWD, parts.weight_forward);
            w.add_f64s(SEC_WEIGHT_BWD, parts.weight_backward);
            let mut kw_offsets = vec![0u32; g.num_vertices() + 1];
            for (i, o) in kw_offsets.iter_mut().enumerate().skip(1) {
                *o = kw_offsets_sum(&g, i);
            }
            let kw_pool: Vec<u32> = g
                .vertices()
                .flat_map(|v| g.keyword_set(v).iter().map(|k| k.0).collect::<Vec<_>>())
                .collect();
            w.add_u32s(SEC_KW_OFFSETS, &kw_offsets);
            w.add_u32s(SEC_KW_POOL, &kw_pool);
            let path = temp(name);
            w.write_to(&path).unwrap();
            path
        };
        fn kw_offsets_sum(g: &SocialNetwork, upto: usize) -> u32 {
            (0..upto)
                .map(|v| g.keyword_set(VertexId(v as u32)).len() as u32)
                .sum()
        }

        // swapping two slots inside one row breaks the strict sort
        let mut unsorted = parts.csr.to_vec();
        let start = parts.offsets[vertex] as usize;
        unsorted.swap(start, start + 1);
        let path = write_with_csr(&unsorted, "unsorted_row.snap");
        assert!(matches!(
            read_graph_snapshot(&path),
            Err(SnapshotError::Malformed(_))
        ));
        let _ = std::fs::remove_file(path);

        // an in-range but wrong edge id must be caught by the edge-table
        // agreement check (it would silently corrupt directed weights)
        let mut lying = parts.csr.to_vec();
        let (n0, e0) = lying[start];
        let other_edge = (0..g.num_edges())
            .map(EdgeId::from_index)
            .find(|e| {
                *e != e0 && {
                    let (lo, hi) = g.edge_endpoints(*e);
                    (lo, hi)
                        != (
                            VertexId(vertex as u32).min(n0),
                            VertexId(vertex as u32).max(n0),
                        )
                }
            })
            .expect("another edge exists");
        lying[start] = (n0, other_edge);
        let path = write_with_csr(&lying, "lying_row.snap");
        assert!(matches!(
            read_graph_snapshot(&path),
            Err(SnapshotError::Malformed(_))
        ));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn inconsistent_sections_are_rejected() {
        // hand-build a snapshot whose meta disagrees with the arrays
        let g = sample_graph();
        let mut w = SnapshotWriter::new(KIND_GRAPH);
        w.add_u64s(SEC_META, &[999_999, 1]);
        let parts = g.raw_parts();
        w.add_u32s(SEC_OFFSETS, parts.offsets);
        w.add_u32s(SEC_CSR, &pairs_to_u32s(parts.csr));
        w.add_f64s(SEC_OUT_WEIGHTS, parts.csr_out_weights);
        w.add_u32s(SEC_EDGES, &pairs_to_u32s(parts.edges));
        w.add_f64s(SEC_WEIGHT_FWD, parts.weight_forward);
        w.add_f64s(SEC_WEIGHT_BWD, parts.weight_backward);
        w.add_u32s(SEC_KW_OFFSETS, &[0]);
        w.add_u32s(SEC_KW_POOL, &[]);
        let path = temp("inconsistent.snap");
        w.write_to(&path).unwrap();
        assert!(matches!(
            read_graph_snapshot(&path),
            Err(SnapshotError::Malformed(_))
        ));
        let _ = std::fs::remove_file(path);
    }
}
