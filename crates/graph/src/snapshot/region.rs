//! Read-only byte regions backing a loaded snapshot: either an `mmap(2)`
//! mapping of the file or an 8-byte-aligned heap buffer the file was read
//! into.
//!
//! The mapping path is a thin unsafe wrapper over the raw `mmap`/`munmap`
//! syscalls (no external crate; the workspace builds fully offline). It is
//! compiled only on 64-bit unix targets — everywhere else
//! [`MappedRegion::map_file`] reports `Unsupported` and callers fall back to
//! [`MappedRegion::read_file`], which produces the same region type from a
//! plain read, so every consumer works on every platform.
//!
//! Regions hand out `&[u8]` only; typed views are built on top by
//! [`crate::snapshot::FlatVec`] after the snapshot reader has validated
//! alignment and bounds.

use std::fs::File;
use std::io::{self, Read};
use std::sync::Arc;

/// Alignment guaranteed for the start of a region (and therefore for every
/// 8-byte-aligned section offset inside it). `mmap` returns page-aligned
/// memory; the heap fallback allocates with this alignment explicitly.
pub const REGION_ALIGN: usize = 8;

/// How a snapshot file was brought into memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// `mmap(2)` the file and read it in place (zero-copy).
    Mmap,
    /// Read the file into an aligned heap buffer (works anywhere).
    Buffered,
    /// Try [`LoadMode::Mmap`] first, fall back to [`LoadMode::Buffered`]
    /// when mapping is unsupported or fails.
    Auto,
}

enum Backing {
    /// Anonymous empty region (zero-length files need no backing memory).
    Empty,
    /// Heap allocation with [`REGION_ALIGN`] alignment.
    Heap { layout: std::alloc::Layout },
    /// `mmap(2)` mapping, unmapped on drop.
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mmap,
}

/// A read-only, immutable, 8-byte-aligned byte region with shared ownership
/// (sections of a loaded snapshot keep an `Arc<MappedRegion>` alive).
pub struct MappedRegion {
    ptr: *const u8,
    len: usize,
    backing: Backing,
    mapped: bool,
}

// Safety: the region is immutable for its whole lifetime (PROT_READ mapping
// or a heap buffer nothing writes to after construction), so sharing
// references across threads is sound.
unsafe impl Send for MappedRegion {}
unsafe impl Sync for MappedRegion {}

impl std::fmt::Debug for MappedRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedRegion")
            .field("len", &self.len)
            .field("mapped", &self.mapped)
            .finish()
    }
}

impl MappedRegion {
    /// The region's bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        if self.len == 0 {
            &[]
        } else {
            // Safety: ptr/len describe a live allocation owned by `self`.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` for an empty region.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base pointer of the region (valid for `len` bytes).
    #[inline]
    pub(crate) fn as_ptr(&self) -> *const u8 {
        self.ptr
    }

    /// Returns `true` if the region is an `mmap` of the file rather than a
    /// heap copy.
    pub fn is_mapped(&self) -> bool {
        self.mapped
    }

    /// Maps a file read-only. Returns `ErrorKind::Unsupported` on platforms
    /// without the mapping path so callers can fall back to
    /// [`MappedRegion::read_file`].
    pub fn map_file(file: &File) -> io::Result<Arc<MappedRegion>> {
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "snapshot file exceeds the address space",
            ));
        }
        Self::map_file_impl(file, len as usize)
    }

    #[cfg(all(unix, target_pointer_width = "64"))]
    fn map_file_impl(file: &File, len: usize) -> io::Result<Arc<MappedRegion>> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            // mmap(len = 0) is EINVAL; an empty region needs no backing
            return Ok(Arc::new(MappedRegion {
                ptr: std::ptr::null(),
                len: 0,
                backing: Backing::Empty,
                mapped: true,
            }));
        }
        // Safety: length is non-zero, the fd is open; a failed mapping
        // returns MAP_FAILED which we turn into the errno error.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(Arc::new(MappedRegion {
            ptr: ptr as *const u8,
            len,
            backing: Backing::Mmap,
            mapped: true,
        }))
    }

    #[cfg(not(all(unix, target_pointer_width = "64")))]
    fn map_file_impl(_file: &File, _len: usize) -> io::Result<Arc<MappedRegion>> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "mmap is not supported on this platform; use the buffered loader",
        ))
    }

    /// Reads a whole file into a fresh [`REGION_ALIGN`]-aligned heap region —
    /// the portable fallback path.
    pub fn read_file(file: &mut File) -> io::Result<Arc<MappedRegion>> {
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "snapshot file exceeds the address space",
            ));
        }
        let len = len as usize;
        if len == 0 {
            return Ok(Arc::new(MappedRegion {
                ptr: std::ptr::null(),
                len: 0,
                backing: Backing::Empty,
                mapped: false,
            }));
        }
        let layout = std::alloc::Layout::from_size_align(len, REGION_ALIGN)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        // Safety: layout has non-zero size; allocation failure is handled.
        // Zeroed so the `&mut [u8]` handed to `read_exact` below never
        // exposes uninitialised memory (the Read contract allows reading
        // the buffer).
        let ptr = unsafe { std::alloc::alloc_zeroed(layout) };
        if ptr.is_null() {
            std::alloc::handle_alloc_error(layout);
        }
        let region = MappedRegion {
            ptr,
            len,
            backing: Backing::Heap { layout },
            mapped: false,
        };
        // Safety: the buffer is exclusively ours until the Arc is built.
        let buf = unsafe { std::slice::from_raw_parts_mut(ptr, len) };
        file.read_exact(buf)?;
        Ok(Arc::new(region))
    }
}

impl Drop for MappedRegion {
    fn drop(&mut self) {
        match self.backing {
            Backing::Empty => {}
            Backing::Heap { layout } => {
                // Safety: allocated with exactly this layout in `read_file`.
                unsafe { std::alloc::dealloc(self.ptr as *mut u8, layout) };
            }
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mmap => {
                // Safety: ptr/len came from a successful mmap of this length.
                unsafe {
                    sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
                }
            }
        }
    }
}

/// Raw `mmap`/`munmap` declarations for 64-bit unix (libc is linked by std
/// anyway; declaring the two symbols avoids an external crate).
#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        /// `off_t` is 64-bit on every LP64 unix, matching the `i64` here.
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> c_int;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(name);
        let mut f = File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        path
    }

    #[test]
    fn buffered_region_reads_whole_file() {
        let path = temp_file("icde_region_buffered.bin", b"hello snapshot");
        let mut f = File::open(&path).unwrap();
        let region = MappedRegion::read_file(&mut f).unwrap();
        assert_eq!(region.bytes(), b"hello snapshot");
        assert!(!region.is_mapped());
        assert_eq!(region.as_ptr() as usize % REGION_ALIGN, 0);
        let _ = std::fs::remove_file(path);
    }

    #[cfg(all(unix, target_pointer_width = "64"))]
    #[test]
    fn mapped_region_matches_file() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let path = temp_file("icde_region_mapped.bin", &payload);
        let f = File::open(&path).unwrap();
        let region = MappedRegion::map_file(&f).unwrap();
        assert!(region.is_mapped());
        assert_eq!(region.len(), payload.len());
        assert_eq!(region.bytes(), &payload[..]);
        assert_eq!(region.as_ptr() as usize % REGION_ALIGN, 0);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn empty_file_yields_empty_region() {
        let path = temp_file("icde_region_empty.bin", b"");
        let mut f = File::open(&path).unwrap();
        let region = MappedRegion::read_file(&mut f).unwrap();
        assert!(region.is_empty());
        assert_eq!(region.bytes(), b"");
        let _ = std::fs::remove_file(path);
    }
}
