//! Zero-copy binary snapshot persistence.
//!
//! JSON snapshots ([`crate::io`]) are human-readable and diff-friendly, but a
//! million-vertex graph pays a full re-parse and CSR re-sort on every process
//! start. This module defines a **sectioned, versioned, checksummed binary
//! format** holding the frozen arrays exactly as they live in memory, so a
//! loaded file needs no parsing at all: the big arrays are viewed in place
//! through [`FlatVec`], either off an `mmap(2)` of the file or off one
//! aligned buffered read (the portable fallback).
//!
//! # File layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "ICDESNAP"
//! 8       4     format version (currently 1)
//! 12      4     payload kind (1 = graph, 2 = community index)
//! 16      4     section count
//! 20      4     reserved (0)
//! 24      8     checksum of every byte from offset 32 to EOF
//!               (word-folded FNV-1a, see [`file_checksum`])
//! 32      24*k  section table: {id: u32, reserved: u32, offset: u64, bytes: u64}
//! ...           section payloads, each starting at an 8-byte-aligned offset
//! ```
//!
//! Section payloads are flat element arrays (`u32` / `u64` / `f64` bit
//! patterns); what each section id means is defined by the payload kind — see
//! [`graph_io`] for the graph sections and `icde_core::snapshot` for the
//! index sections. The 8-byte alignment of every section, together with the
//! page (or explicit) alignment of the region base, is what makes the
//! in-place typed views sound.
//!
//! Corrupt inputs (truncated files, foreign magic, future versions, bit rot)
//! are rejected with a typed [`SnapshotError`] — never a panic, never an
//! out-of-bounds view.

mod graph_io;
mod region;
mod storage;

pub use graph_io::{
    graph_from_snapshot, read_graph_snapshot, read_graph_snapshot_with, write_graph_snapshot,
    KIND_GRAPH,
};
pub use region::{LoadMode, MappedRegion, REGION_ALIGN};
pub use storage::{FlatVec, SectionElement, SectionShadow};

use std::fs::File;
use std::path::Path;
use std::sync::Arc;

/// Magic bytes identifying a TopL-ICDE binary snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"ICDESNAP";
/// Current binary format version.
pub const SNAPSHOT_VERSION: u32 = 1;
/// Payload kind of an index snapshot (defined here so the kinds live in one
/// registry; the index sections themselves are defined in `icde_core`).
pub const KIND_INDEX: u32 = 2;

/// Byte length of the fixed header (everything before the section table).
const HEADER_LEN: usize = 32;
/// Byte length of one section-table entry.
const SECTION_ENTRY_LEN: usize = 24;
/// Upper bound on the section count — far above any real snapshot, it only
/// stops a corrupt header from provoking a huge allocation.
const MAX_SECTIONS: u32 = 4096;

/// Errors reported by the snapshot reader/writer.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The file carries a different payload kind than the caller expected.
    WrongKind { expected: u32, found: u32 },
    /// The file ends before the header, section table, or a section payload.
    Truncated,
    /// The stored checksum does not match the file contents.
    ChecksumMismatch { stored: u64, computed: u64 },
    /// Structurally invalid content (bad section table, inconsistent array
    /// lengths, out-of-range ids, ...).
    Malformed(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a TopL-ICDE snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => write!(
                f,
                "unsupported snapshot format version {v} (this build reads version \
                 {SNAPSHOT_VERSION})"
            ),
            SnapshotError::WrongKind { expected, found } => write!(
                f,
                "snapshot holds payload kind {found}, expected kind {expected}"
            ),
            SnapshotError::Truncated => write!(f, "snapshot file is truncated"),
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            SnapshotError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Result alias for snapshot operations.
pub type SnapshotResult<T> = Result<T, SnapshotError>;

/// Returns `true` if the file at `path` starts with [`SNAPSHOT_MAGIC`] —
/// the cheap format sniff every loader that accepts "snapshot or something
/// else" dispatches on. Unreadable or too-short files report `false`.
pub fn path_is_snapshot<P: AsRef<Path>>(path: P) -> bool {
    use std::io::Read;
    let mut head = [0u8; 8];
    File::open(path)
        .and_then(|mut f| f.read_exact(&mut head))
        .map(|_| head == SNAPSHOT_MAGIC)
        .unwrap_or(false)
}

/// FNV-1a 64-bit over a byte slice. Not cryptographic; it detects truncation
/// and bit rot, not tampering.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(0xcbf2_9ce4_8422_2325, bytes)
}

/// The **file checksum**: FNV-1a folded 8 bytes per step (little-endian
/// words, tail bytes folded individually). Detection power is the same as
/// the byte-serial variant — any flipped bit changes the folded word — but
/// it runs ~8× faster, which matters because the checksum pass is the only
/// O(file) work on the zero-copy load path.
pub fn file_checksum(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        hash ^= u64::from_le_bytes(c.try_into().expect("8 bytes"));
        hash = hash.wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Folds more bytes into a running FNV-1a 64 state (used by the content
/// fingerprints that span several arrays).
pub fn fnv1a_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Little-endian element encoding
// ---------------------------------------------------------------------------

fn extend_u32s(out: &mut Vec<u8>, vals: &[u32]) {
    if cfg!(target_endian = "little") {
        // Safety: u32 has no padding; on little-endian targets the in-memory
        // bytes are already the wire format.
        let bytes =
            unsafe { std::slice::from_raw_parts(vals.as_ptr() as *const u8, vals.len() * 4) };
        out.extend_from_slice(bytes);
    } else {
        for v in vals {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

fn extend_u64s(out: &mut Vec<u8>, vals: &[u64]) {
    if cfg!(target_endian = "little") {
        // Safety: as in `extend_u32s`.
        let bytes =
            unsafe { std::slice::from_raw_parts(vals.as_ptr() as *const u8, vals.len() * 8) };
        out.extend_from_slice(bytes);
    } else {
        for v in vals {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

fn extend_f64s(out: &mut Vec<u8>, vals: &[f64]) {
    if cfg!(target_endian = "little") {
        // Safety: as in `extend_u32s`; f64 bit patterns round-trip exactly.
        let bytes =
            unsafe { std::slice::from_raw_parts(vals.as_ptr() as *const u8, vals.len() * 8) };
        out.extend_from_slice(bytes);
    } else {
        for v in vals {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
}

fn read_u32_at(bytes: &[u8], offset: usize) -> u32 {
    u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"))
}

fn read_u64_at(bytes: &[u8], offset: usize) -> u64 {
    u64::from_le_bytes(bytes[offset..offset + 8].try_into().expect("8 bytes"))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Accumulates sections and serialises them into the on-disk layout.
#[derive(Debug)]
pub struct SnapshotWriter {
    kind: u32,
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotWriter {
    /// Starts a snapshot of the given payload kind.
    pub fn new(kind: u32) -> Self {
        SnapshotWriter {
            kind,
            sections: Vec::new(),
        }
    }

    /// Adds a raw byte section.
    ///
    /// # Panics
    /// Panics if `id` was already added (a writer bug, not an input error).
    pub fn add_bytes(&mut self, id: u32, bytes: Vec<u8>) {
        assert!(
            self.sections.iter().all(|(existing, _)| *existing != id),
            "duplicate snapshot section id {id}"
        );
        self.sections.push((id, bytes));
    }

    /// Adds a `u32` array section.
    pub fn add_u32s(&mut self, id: u32, vals: &[u32]) {
        let mut bytes = Vec::with_capacity(vals.len() * 4);
        extend_u32s(&mut bytes, vals);
        self.add_bytes(id, bytes);
    }

    /// Adds a `u64` array section.
    pub fn add_u64s(&mut self, id: u32, vals: &[u64]) {
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        extend_u64s(&mut bytes, vals);
        self.add_bytes(id, bytes);
    }

    /// Adds an `f64` array section (exact bit patterns).
    pub fn add_f64s(&mut self, id: u32, vals: &[f64]) {
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        extend_f64s(&mut bytes, vals);
        self.add_bytes(id, bytes);
    }

    /// Serialises the snapshot into its byte representation.
    pub fn finish(self) -> Vec<u8> {
        let table_len = self.sections.len() * SECTION_ENTRY_LEN;
        let mut payload_offset = HEADER_LEN + table_len;
        // section table first, payloads after, every payload 8-aligned
        let mut table = Vec::with_capacity(table_len);
        let mut offsets = Vec::with_capacity(self.sections.len());
        for (id, bytes) in &self.sections {
            payload_offset = payload_offset.div_ceil(8) * 8;
            table.extend_from_slice(&id.to_le_bytes());
            table.extend_from_slice(&0u32.to_le_bytes());
            table.extend_from_slice(&(payload_offset as u64).to_le_bytes());
            table.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            offsets.push(payload_offset);
            payload_offset += bytes.len();
        }
        let total_len = payload_offset;
        let mut out = vec![0u8; total_len];
        out[0..8].copy_from_slice(&SNAPSHOT_MAGIC);
        out[8..12].copy_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out[12..16].copy_from_slice(&self.kind.to_le_bytes());
        out[16..20].copy_from_slice(&(self.sections.len() as u32).to_le_bytes());
        // bytes 20..24 reserved, 24..32 checksum (filled below)
        out[HEADER_LEN..HEADER_LEN + table_len].copy_from_slice(&table);
        for ((_, bytes), offset) in self.sections.iter().zip(&offsets) {
            out[*offset..offset + bytes.len()].copy_from_slice(bytes);
        }
        let checksum = file_checksum(&out[HEADER_LEN..]);
        out[24..32].copy_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Writes the snapshot to `path` crash-safely: the bytes go to a
    /// temporary file in the same directory which is renamed into place, so a
    /// killed process never leaves a truncated snapshot under the final name.
    pub fn write_to<P: AsRef<Path>>(self, path: P) -> SnapshotResult<()> {
        crate::io::atomic_write(path.as_ref(), &self.finish())?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A loaded, validated snapshot: the backing region plus the parsed section
/// table. Typed accessors hand out in-place views (zero-copy on
/// little-endian targets) or decoded copies.
#[derive(Debug)]
pub struct Snapshot {
    region: Arc<MappedRegion>,
    kind: u32,
    /// `(id, byte offset, byte length)` per section.
    sections: Vec<(u32, usize, usize)>,
}

impl Snapshot {
    /// Opens a snapshot file with [`LoadMode::Auto`].
    pub fn open<P: AsRef<Path>>(path: P) -> SnapshotResult<Snapshot> {
        Self::open_with(path, LoadMode::Auto)
    }

    /// Opens a snapshot file with an explicit load mode.
    pub fn open_with<P: AsRef<Path>>(path: P, mode: LoadMode) -> SnapshotResult<Snapshot> {
        let mut file = File::open(path)?;
        let region = match mode {
            LoadMode::Mmap => MappedRegion::map_file(&file)?,
            LoadMode::Buffered => MappedRegion::read_file(&mut file)?,
            LoadMode::Auto => match MappedRegion::map_file(&file) {
                Ok(region) => region,
                Err(_) => MappedRegion::read_file(&mut file)?,
            },
        };
        Self::from_region(region)
    }

    /// Validates a byte region as a snapshot (header, section table,
    /// checksum).
    pub fn from_region(region: Arc<MappedRegion>) -> SnapshotResult<Snapshot> {
        let bytes = region.bytes();
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated);
        }
        if bytes[0..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = read_u32_at(bytes, 8);
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let kind = read_u32_at(bytes, 12);
        let section_count = read_u32_at(bytes, 16);
        if section_count > MAX_SECTIONS {
            return Err(SnapshotError::Malformed(format!(
                "section count {section_count} exceeds the limit {MAX_SECTIONS}"
            )));
        }
        let table_end = HEADER_LEN + section_count as usize * SECTION_ENTRY_LEN;
        if bytes.len() < table_end {
            return Err(SnapshotError::Truncated);
        }
        let stored = read_u64_at(bytes, 24);
        let computed = file_checksum(&bytes[HEADER_LEN..]);
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }
        let mut sections = Vec::with_capacity(section_count as usize);
        for i in 0..section_count as usize {
            let entry = HEADER_LEN + i * SECTION_ENTRY_LEN;
            let id = read_u32_at(bytes, entry);
            let offset = read_u64_at(bytes, entry + 8);
            let len = read_u64_at(bytes, entry + 16);
            let end = offset.checked_add(len).ok_or_else(|| {
                SnapshotError::Malformed(format!("section {id}: offset + length overflows"))
            })?;
            if end > bytes.len() as u64 {
                return Err(SnapshotError::Truncated);
            }
            if !offset.is_multiple_of(8) {
                return Err(SnapshotError::Malformed(format!(
                    "section {id}: offset {offset} is not 8-byte aligned"
                )));
            }
            if sections.iter().any(|(existing, _, _)| *existing == id) {
                return Err(SnapshotError::Malformed(format!(
                    "duplicate section id {id}"
                )));
            }
            sections.push((id, offset as usize, len as usize));
        }
        Ok(Snapshot {
            region,
            kind,
            sections,
        })
    }

    /// The payload kind stored in the header.
    pub fn kind(&self) -> u32 {
        self.kind
    }

    /// Returns `true` if the backing region is an `mmap` of the file.
    pub fn is_mapped(&self) -> bool {
        self.region.is_mapped()
    }

    /// Errors unless the snapshot holds the expected payload kind.
    pub fn expect_kind(&self, expected: u32) -> SnapshotResult<()> {
        if self.kind == expected {
            Ok(())
        } else {
            Err(SnapshotError::WrongKind {
                expected,
                found: self.kind,
            })
        }
    }

    fn section(&self, id: u32) -> SnapshotResult<(usize, usize)> {
        self.sections
            .iter()
            .find(|(sid, _, _)| *sid == id)
            .map(|&(_, offset, len)| (offset, len))
            .ok_or_else(|| SnapshotError::Malformed(format!("missing section {id}")))
    }

    fn section_elems(&self, id: u32, elem_size: usize) -> SnapshotResult<(usize, usize)> {
        let (offset, len) = self.section(id)?;
        if len % elem_size != 0 {
            return Err(SnapshotError::Malformed(format!(
                "section {id}: {len} bytes is not a multiple of the {elem_size}-byte element"
            )));
        }
        Ok((offset, len / elem_size))
    }

    /// The raw bytes of a section.
    pub fn bytes(&self, id: u32) -> SnapshotResult<&[u8]> {
        let (offset, len) = self.section(id)?;
        Ok(&self.region.bytes()[offset..offset + len])
    }

    /// A `u32` section as a [`FlatVec`] — zero-copy on little-endian targets,
    /// decoded otherwise.
    pub fn flat_u32s(&self, id: u32) -> SnapshotResult<FlatVec<u32>> {
        let (offset, len) = self.section_elems(id, 4)?;
        if cfg!(target_endian = "little") {
            // Safety: bounds validated against the region, offset 8-aligned,
            // u32 is valid for any bit pattern.
            Ok(unsafe { FlatVec::from_region(Arc::clone(&self.region), offset, len) })
        } else {
            let bytes = &self.region.bytes()[offset..offset + len * 4];
            Ok(FlatVec::from_vec(
                bytes
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
                    .collect(),
            ))
        }
    }

    /// A `u64` section as a [`FlatVec`].
    pub fn flat_u64s(&self, id: u32) -> SnapshotResult<FlatVec<u64>> {
        let (offset, len) = self.section_elems(id, 8)?;
        if cfg!(target_endian = "little") {
            // Safety: as in `flat_u32s`.
            Ok(unsafe { FlatVec::from_region(Arc::clone(&self.region), offset, len) })
        } else {
            let bytes = &self.region.bytes()[offset..offset + len * 8];
            Ok(FlatVec::from_vec(
                bytes
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                    .collect(),
            ))
        }
    }

    /// An `f64` section as a [`FlatVec`] (exact bit patterns).
    pub fn flat_f64s(&self, id: u32) -> SnapshotResult<FlatVec<f64>> {
        let (offset, len) = self.section_elems(id, 8)?;
        if cfg!(target_endian = "little") {
            // Safety: as in `flat_u32s`; every bit pattern is a valid f64.
            Ok(unsafe { FlatVec::from_region(Arc::clone(&self.region), offset, len) })
        } else {
            let bytes = &self.region.bytes()[offset..offset + len * 8];
            Ok(FlatVec::from_vec(
                bytes
                    .chunks_exact(8)
                    .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
                    .collect(),
            ))
        }
    }

    /// A section of `u32` pairs viewed as 8-byte pair elements `T` — zero-copy
    /// when the target is little-endian **and** `layout_ok` (the caller's
    /// runtime proof that `T` is laid out as two consecutive `u32`s);
    /// otherwise decoded pairwise through `decode`.
    pub fn flat_u32_pairs<T, F>(
        &self,
        id: u32,
        layout_ok: bool,
        decode: F,
    ) -> SnapshotResult<FlatVec<T>>
    where
        T: SectionElement,
        F: Fn(u32, u32) -> T,
    {
        debug_assert_eq!(std::mem::size_of::<T>(), 8);
        let (offset, len) = self.section_elems(id, 8)?;
        if cfg!(target_endian = "little") && layout_ok {
            // Safety: bounds/alignment validated; `layout_ok` certifies the
            // pair layout matches two consecutive u32s.
            Ok(unsafe { FlatVec::from_region(Arc::clone(&self.region), offset, len) })
        } else {
            let bytes = &self.region.bytes()[offset..offset + len * 8];
            Ok(FlatVec::from_vec(
                bytes
                    .chunks_exact(8)
                    .map(|c| {
                        decode(
                            u32::from_le_bytes(c[0..4].try_into().expect("4 bytes")),
                            u32::from_le_bytes(c[4..8].try_into().expect("4 bytes")),
                        )
                    })
                    .collect(),
            ))
        }
    }

    /// Decodes a `u64` section into an owned vector (for small metadata
    /// sections where a view buys nothing).
    pub fn u64s_vec(&self, id: u32) -> SnapshotResult<Vec<u64>> {
        Ok(self.flat_u64s(id)?.as_slice().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = SnapshotWriter::new(KIND_INDEX);
        w.add_u32s(7, &[1, 2, 3]);
        w.add_u64s(9, &[u64::MAX, 0]);
        w.add_f64s(11, &[0.5, -1.25]);
        w.finish()
    }

    fn open_bytes(bytes: &[u8]) -> SnapshotResult<Snapshot> {
        let path = std::env::temp_dir().join(format!(
            "icde_snapshot_fmt_{}_{}.bin",
            std::process::id(),
            fnv1a(bytes)
        ));
        std::fs::write(&path, bytes).unwrap();
        let result = Snapshot::open_with(&path, LoadMode::Buffered);
        let _ = std::fs::remove_file(path);
        result
    }

    #[test]
    fn roundtrip_sections() {
        let snap = open_bytes(&sample()).unwrap();
        assert_eq!(snap.kind(), KIND_INDEX);
        assert_eq!(&snap.flat_u32s(7).unwrap()[..], &[1, 2, 3]);
        assert_eq!(&snap.flat_u64s(9).unwrap()[..], &[u64::MAX, 0]);
        assert_eq!(&snap.flat_f64s(11).unwrap()[..], &[0.5, -1.25]);
        assert!(snap.bytes(99).is_err());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample();
        bytes[0] = b'X';
        assert!(matches!(open_bytes(&bytes), Err(SnapshotError::BadMagic)));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = sample();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            open_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn flipped_bit_fails_checksum() {
        let mut bytes = sample();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert!(matches!(
            open_bytes(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let bytes = sample();
        for len in 0..bytes.len() {
            assert!(open_bytes(&bytes[..len]).is_err(), "prefix of {len} bytes");
        }
    }

    #[test]
    fn wrong_kind_is_reported() {
        let snap = open_bytes(&sample()).unwrap();
        assert!(snap.expect_kind(KIND_INDEX).is_ok());
        assert!(matches!(
            snap.expect_kind(KIND_GRAPH),
            Err(SnapshotError::WrongKind { .. })
        ));
    }
}
