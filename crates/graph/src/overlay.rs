//! The delta overlay that makes the frozen CSR store updatable in
//! O(degree · log degree) per edge.
//!
//! [`crate::graph::SocialNetwork`] keeps its adjacency in a frozen,
//! mmap-able CSR base. Structural updates no longer rebuild that base: they
//! are recorded in a small [`DeltaOverlay`] — per-vertex sorted **runs** of
//! inserted `(neighbour, edge id, weight)` entries plus a **tombstone** set
//! of deleted edge ids — and every reader walks a [`Neighbors`] cursor that
//! merges the base slice with the vertex's run, skipping tombstones, still
//! in ascending neighbour order. Vertices without overlay entries (and every
//! vertex of an overlay-free graph) take the [`Neighbors::Slice`] fast path,
//! which degenerates to the raw contiguous CSR slice iteration the kernels
//! were tuned on.
//!
//! Edge-id discipline: the base table owns ids `0..base_m`, inserted edges
//! get fresh ids `base_m..` in insertion order, and **tombstoned ids are
//! never reused** — edge-indexed side data (supports, weights) stays valid
//! across any update sequence. Only `compact()` (folding the overlay back
//! into a fresh CSR once it exceeds a configurable fraction of `m`)
//! renumbers, and it returns an [`EdgeIdRemap`] so side data can follow.

use crate::types::{EdgeId, VertexId, Weight};
use std::collections::{HashMap, HashSet};

/// The mutable delta layer over a frozen CSR base: inserted-edge runs per
/// vertex, a tombstone set for deleted edge ids, and the attribute columns of
/// the inserted ("extra") edges. See the module docs for the id discipline.
#[derive(Debug, Clone, Default)]
pub struct DeltaOverlay {
    /// Per-vertex run of inserted `(neighbour, edge id, p_{v→neighbour})`
    /// entries, sorted by neighbour id. Entries are removed again when the
    /// inserted edge is deleted, so a run never contains tombstoned edges.
    pub(crate) runs: HashMap<u32, Vec<(VertexId, EdgeId, Weight)>>,
    /// Deleted edge ids (base or extra). Never reused until compaction.
    pub(crate) tombstones: HashSet<u32>,
    /// Number of tombstoned **base** CSR slots per vertex row, for O(1)
    /// degrees. Extra-edge deletions shrink the runs instead.
    pub(crate) removed_in_row: HashMap<u32, u32>,
    /// Canonical endpoints of inserted edges (`u < v`); the edge with id
    /// `base_m + i` lives at index `i` and keeps its slot even when
    /// tombstoned (ids are not reused).
    pub(crate) extra_edges: Vec<(VertexId, VertexId)>,
    /// Directed weight `p_{u→v}` of each extra edge (canonical direction).
    pub(crate) extra_weight_forward: Vec<Weight>,
    /// Directed weight `p_{v→u}` of each extra edge (reverse direction).
    pub(crate) extra_weight_backward: Vec<Weight>,
}

impl DeltaOverlay {
    /// `true` when the overlay records no change at all (the graph is
    /// byte-equivalent to its base).
    pub fn is_empty(&self) -> bool {
        self.tombstones.is_empty() && self.extra_edges.is_empty()
    }

    /// Number of tombstoned (deleted, id-retired) edges.
    pub fn num_tombstones(&self) -> usize {
        self.tombstones.len()
    }

    /// Number of inserted edges (live or tombstoned — each consumed an id).
    pub fn num_extra_edges(&self) -> usize {
        self.extra_edges.len()
    }

    /// `true` if `e`'s id has been deleted.
    #[inline]
    pub fn is_tombstoned(&self, e: EdgeId) -> bool {
        self.tombstones.contains(&e.0)
    }

    /// The sorted run of inserted neighbours of `v` (empty for untouched
    /// vertices).
    #[inline]
    pub(crate) fn run(&self, v: VertexId) -> &[(VertexId, EdgeId, Weight)] {
        self.runs.get(&v.0).map_or(&[], Vec::as_slice)
    }

    /// How many of `v`'s base CSR slots are tombstoned.
    #[inline]
    pub(crate) fn removed_in_row(&self, v: VertexId) -> usize {
        self.removed_in_row.get(&v.0).copied().unwrap_or(0) as usize
    }

    /// `true` if `v`'s adjacency differs from its base CSR row.
    #[inline]
    pub(crate) fn row_is_patched(&self, v: VertexId) -> bool {
        self.removed_in_row.contains_key(&v.0) || self.runs.contains_key(&v.0)
    }

    /// Inserts `(n, e, w)` into `row`'s run, keeping it sorted by neighbour.
    pub(crate) fn insert_run_entry(&mut self, row: VertexId, n: VertexId, e: EdgeId, w: Weight) {
        let run = self.runs.entry(row.0).or_default();
        let pos = run.partition_point(|&(x, _, _)| x < n);
        run.insert(pos, (n, e, w));
    }

    /// Removes the run entry for edge `e` from `row` (if present), dropping
    /// the run when it empties so the row regains the slice fast path.
    pub(crate) fn remove_run_entry(&mut self, row: VertexId, e: EdgeId) {
        if let Some(run) = self.runs.get_mut(&row.0) {
            run.retain(|&(_, id, _)| id != e);
            if run.is_empty() {
                self.runs.remove(&row.0);
            }
        }
    }

    /// Overwrites the outgoing weight stored in `row`'s run entry for `e`.
    pub(crate) fn patch_run_weight(&mut self, row: VertexId, e: EdgeId, w: Weight) {
        if let Some(run) = self.runs.get_mut(&row.0) {
            if let Some(entry) = run.iter_mut().find(|&&mut (_, id, _)| id == e) {
                entry.2 = w;
            }
        }
    }
}

/// An old→new edge-id mapping returned by
/// [`crate::graph::SocialNetwork::compact`]: live edges keep their relative
/// order and pack densely, tombstoned ids map to nothing. Apply it to any
/// edge-indexed side array (e.g. per-edge supports) before using the array
/// against the compacted graph.
#[derive(Debug, Clone)]
pub struct EdgeIdRemap {
    /// Indexed by old id; `u32::MAX` marks a dead (tombstoned) id.
    map: Vec<u32>,
    live: usize,
}

impl EdgeIdRemap {
    const DEAD: u32 = u32::MAX;

    /// The identity mapping over `m` edge ids (a compaction of an
    /// overlay-free graph changes nothing).
    pub fn identity(m: usize) -> Self {
        EdgeIdRemap {
            map: (0..m as u32).collect(),
            live: m,
        }
    }

    pub(crate) fn from_map(map: Vec<u32>, live: usize) -> Self {
        EdgeIdRemap { map, live }
    }

    /// Size of the pre-compaction id space (live + tombstoned).
    pub fn old_id_space(&self) -> usize {
        self.map.len()
    }

    /// Number of live edges after compaction.
    pub fn live_edges(&self) -> usize {
        self.live
    }

    /// `true` when no id moved (no tombstones, no extras renumbered).
    pub fn is_identity(&self) -> bool {
        self.live == self.map.len()
    }

    /// The post-compaction id of `old`, or `None` if the edge was deleted.
    pub fn new_id(&self, old: EdgeId) -> Option<EdgeId> {
        self.map
            .get(old.index())
            .and_then(|&m| (m != Self::DEAD).then_some(EdgeId(m)))
    }

    /// Re-packs a dense edge-indexed array into post-compaction id order:
    /// `out[new_id(e)] = old[e]` for every live edge.
    pub fn remap_dense<T: Copy + Default>(&self, old: &[T]) -> Vec<T> {
        let mut out = vec![T::default(); self.live];
        for (i, &m) in self.map.iter().enumerate() {
            if m != Self::DEAD {
                if let Some(&v) = old.get(i) {
                    out[m as usize] = v;
                }
            }
        }
        out
    }
}

/// The merged adjacency cursor: what [`crate::graph::SocialNetwork::neighbors`]
/// returns instead of a raw slice. For untouched rows it *is* the raw slice
/// ([`Neighbors::Slice`]); for patched rows it merges the base slice with the
/// overlay run, skipping tombstones, preserving ascending neighbour order —
/// so every downstream merge/traversal sees exactly the sequence a rebuilt
/// CSR row would give (including float summation order).
#[derive(Clone, Copy, Debug)]
pub enum Neighbors<'a> {
    /// Overlay-free fast path: one contiguous CSR slice.
    Slice(&'a [(VertexId, EdgeId)]),
    /// Base slice ∪ overlay run, minus tombstones.
    Merged {
        base: &'a [(VertexId, EdgeId)],
        run: &'a [(VertexId, EdgeId, Weight)],
        tombstones: &'a HashSet<u32>,
    },
}

impl<'a> Neighbors<'a> {
    /// The raw contiguous slice, when this row needs no merging. Readers
    /// with a slice-tuned inner loop branch on this once per row.
    #[inline]
    pub fn as_slice(self) -> Option<&'a [(VertexId, EdgeId)]> {
        match self {
            Neighbors::Slice(s) => Some(s),
            Neighbors::Merged { .. } => None,
        }
    }

    /// Number of live neighbours (O(1) on the fast path, O(base row) when
    /// merged; prefer [`crate::graph::SocialNetwork::degree`] which is O(1)
    /// either way).
    pub fn len(self) -> usize {
        match self {
            Neighbors::Slice(s) => s.len(),
            Neighbors::Merged {
                base,
                run,
                tombstones,
            } => {
                base.iter()
                    .filter(|&&(_, e)| !tombstones.contains(&e.0))
                    .count()
                    + run.len()
            }
        }
    }

    /// `true` if the vertex has no live neighbours.
    pub fn is_empty(self) -> bool {
        match self {
            Neighbors::Slice(s) => s.is_empty(),
            Neighbors::Merged {
                base,
                run,
                tombstones,
            } => run.is_empty() && base.iter().all(|&(_, e)| tombstones.contains(&e.0)),
        }
    }

    /// The smallest-id live neighbour, if any.
    pub fn first(self) -> Option<(VertexId, EdgeId)> {
        self.iter().next()
    }

    /// Binary-searches the row for neighbour `key` (run first, then base
    /// with a tombstone check) — the [`crate::graph::SocialNetwork::edge_between`]
    /// primitive.
    pub fn find(self, key: VertexId) -> Option<EdgeId> {
        match self {
            Neighbors::Slice(s) => s
                .binary_search_by_key(&key, |&(n, _)| n)
                .ok()
                .map(|pos| s[pos].1),
            Neighbors::Merged {
                base,
                run,
                tombstones,
            } => {
                if let Ok(pos) = run.binary_search_by_key(&key, |&(n, _, _)| n) {
                    return Some(run[pos].1);
                }
                match base.binary_search_by_key(&key, |&(n, _)| n) {
                    Ok(pos) if !tombstones.contains(&base[pos].1 .0) => Some(base[pos].1),
                    _ => None,
                }
            }
        }
    }

    /// The sub-cursor of neighbours with id strictly greater than `floor`
    /// (binary search on both halves) — the ordered triangle-enumeration
    /// primitive.
    pub fn suffix_above(self, floor: VertexId) -> Neighbors<'a> {
        match self {
            Neighbors::Slice(s) => Neighbors::Slice(&s[s.partition_point(|&(n, _)| n <= floor)..]),
            Neighbors::Merged {
                base,
                run,
                tombstones,
            } => Neighbors::Merged {
                base: &base[base.partition_point(|&(n, _)| n <= floor)..],
                run: &run[run.partition_point(|&(n, _, _)| n <= floor)..],
                tombstones,
            },
        }
    }

    /// Iterates the live `(neighbour, edge id)` pairs in ascending neighbour
    /// order.
    #[inline]
    pub fn iter(self) -> NeighborsIter<'a> {
        match self {
            Neighbors::Slice(s) => NeighborsIter::Slice(s.iter()),
            Neighbors::Merged {
                base,
                run,
                tombstones,
            } => NeighborsIter::Merged {
                base,
                run,
                tombstones,
                bi: 0,
                ri: 0,
            },
        }
    }

    /// Collects the row (tests and diagnostics).
    pub fn to_vec(self) -> Vec<(VertexId, EdgeId)> {
        self.iter().collect()
    }
}

impl<'a> IntoIterator for Neighbors<'a> {
    type Item = (VertexId, EdgeId);
    type IntoIter = NeighborsIter<'a>;
    #[inline]
    fn into_iter(self) -> NeighborsIter<'a> {
        self.iter()
    }
}

impl<'a> IntoIterator for &Neighbors<'a> {
    type Item = (VertexId, EdgeId);
    type IntoIter = NeighborsIter<'a>;
    #[inline]
    fn into_iter(self) -> NeighborsIter<'a> {
        (*self).iter()
    }
}

/// Iterator over a [`Neighbors`] cursor. The `Slice` arm wraps
/// `std::slice::Iter` so the overlay-free path compiles down to the plain
/// slice loop the kernels had before the overlay existed.
#[derive(Clone, Debug)]
pub enum NeighborsIter<'a> {
    Slice(std::slice::Iter<'a, (VertexId, EdgeId)>),
    Merged {
        base: &'a [(VertexId, EdgeId)],
        run: &'a [(VertexId, EdgeId, Weight)],
        tombstones: &'a HashSet<u32>,
        bi: usize,
        ri: usize,
    },
}

impl Iterator for NeighborsIter<'_> {
    type Item = (VertexId, EdgeId);

    #[inline]
    fn next(&mut self) -> Option<(VertexId, EdgeId)> {
        match self {
            NeighborsIter::Slice(it) => it.next().copied(),
            NeighborsIter::Merged {
                base,
                run,
                tombstones,
                bi,
                ri,
            } => {
                while *bi < base.len() && tombstones.contains(&base[*bi].1 .0) {
                    *bi += 1;
                }
                match (base.get(*bi), run.get(*ri)) {
                    (None, None) => None,
                    (Some(&(n, e)), None) => {
                        *bi += 1;
                        Some((n, e))
                    }
                    (None, Some(&(n, e, _))) => {
                        *ri += 1;
                        Some((n, e))
                    }
                    (Some(&(bn, be)), Some(&(rn, re, _))) => {
                        // equal is impossible: a live base entry for `rn`
                        // would have made the insertion a duplicate edge
                        debug_assert_ne!(bn, rn, "duplicate live neighbour in base and run");
                        if bn < rn {
                            *bi += 1;
                            Some((bn, be))
                        } else {
                            *ri += 1;
                            Some((rn, re))
                        }
                    }
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            NeighborsIter::Slice(it) => it.size_hint(),
            NeighborsIter::Merged {
                base, run, bi, ri, ..
            } => {
                let run_rest = run.len() - ri;
                (run_rest, Some(base.len() - bi + run_rest))
            }
        }
    }
}

/// Iterator over `(neighbour, p_{v→neighbour})` pairs — what
/// [`crate::graph::SocialNetwork::outgoing`] returns. The `Slice` arm is the
/// pre-overlay zip of the two contiguous CSR slices; the `Merged` arm pulls
/// the inserted weights straight from the run entries.
#[derive(Clone, Debug)]
pub enum Outgoing<'a> {
    Slice(std::iter::Zip<std::slice::Iter<'a, (VertexId, EdgeId)>, std::slice::Iter<'a, Weight>>),
    Merged {
        base: &'a [(VertexId, EdgeId)],
        base_w: &'a [Weight],
        run: &'a [(VertexId, EdgeId, Weight)],
        tombstones: &'a HashSet<u32>,
        bi: usize,
        ri: usize,
    },
}

impl Iterator for Outgoing<'_> {
    type Item = (VertexId, Weight);

    #[inline]
    fn next(&mut self) -> Option<(VertexId, Weight)> {
        match self {
            Outgoing::Slice(zip) => zip.next().map(|(&(n, _), &w)| (n, w)),
            Outgoing::Merged {
                base,
                base_w,
                run,
                tombstones,
                bi,
                ri,
            } => {
                while *bi < base.len() && tombstones.contains(&base[*bi].1 .0) {
                    *bi += 1;
                }
                match (base.get(*bi), run.get(*ri)) {
                    (None, None) => None,
                    (Some(&(n, _)), None) => {
                        let w = base_w[*bi];
                        *bi += 1;
                        Some((n, w))
                    }
                    (None, Some(&(n, _, w))) => {
                        *ri += 1;
                        Some((n, w))
                    }
                    (Some(&(bn, _)), Some(&(rn, _, rw))) => {
                        debug_assert_ne!(bn, rn, "duplicate live neighbour in base and run");
                        if bn < rn {
                            let w = base_w[*bi];
                            *bi += 1;
                            Some((bn, w))
                        } else {
                            *ri += 1;
                            Some((rn, rw))
                        }
                    }
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            Outgoing::Slice(zip) => zip.size_hint(),
            Outgoing::Merged {
                base, run, bi, ri, ..
            } => {
                let run_rest = run.len() - ri;
                (run_rest, Some(base.len() - bi + run_rest))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn e(i: u32) -> EdgeId {
        EdgeId(i)
    }

    #[test]
    fn slice_cursor_behaves_like_the_slice() {
        let row = [(v(1), e(0)), (v(3), e(1)), (v(7), e(2))];
        let c = Neighbors::Slice(&row);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.as_slice(), Some(&row[..]));
        assert_eq!(c.first(), Some((v(1), e(0))));
        assert_eq!(c.find(v(3)), Some(e(1)));
        assert_eq!(c.find(v(4)), None);
        assert_eq!(
            c.suffix_above(v(1)).to_vec(),
            vec![(v(3), e(1)), (v(7), e(2))]
        );
        assert_eq!(c.to_vec(), row.to_vec());
    }

    #[test]
    fn merged_cursor_interleaves_and_skips_tombstones() {
        let base = [(v(1), e(0)), (v(3), e(1)), (v(7), e(2))];
        let run = [(v(2), e(10), 0.5), (v(9), e(11), 0.25)];
        let tombstones: HashSet<u32> = [1].into_iter().collect();
        let c = Neighbors::Merged {
            base: &base,
            run: &run,
            tombstones: &tombstones,
        };
        assert_eq!(c.as_slice(), None);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert_eq!(
            c.to_vec(),
            vec![(v(1), e(0)), (v(2), e(10)), (v(7), e(2)), (v(9), e(11))]
        );
        assert_eq!(c.first(), Some((v(1), e(0))));
        assert_eq!(c.find(v(2)), Some(e(10)));
        assert_eq!(c.find(v(3)), None, "tombstoned base edge is invisible");
        assert_eq!(c.find(v(7)), Some(e(2)));
        assert_eq!(
            c.suffix_above(v(2)).to_vec(),
            vec![(v(7), e(2)), (v(9), e(11))]
        );
    }

    #[test]
    fn merged_cursor_with_everything_tombstoned_is_empty() {
        let base = [(v(1), e(0))];
        let tombstones: HashSet<u32> = [0].into_iter().collect();
        let c = Neighbors::Merged {
            base: &base,
            run: &[],
            tombstones: &tombstones,
        };
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.first(), None);
        assert_eq!(c.to_vec(), Vec::new());
    }

    #[test]
    fn remap_packs_live_ids_in_order() {
        // old ids 0..5, ids 1 and 3 dead
        let remap = EdgeIdRemap::from_map(vec![0, u32::MAX, 1, u32::MAX, 2], 3);
        assert_eq!(remap.old_id_space(), 5);
        assert_eq!(remap.live_edges(), 3);
        assert!(!remap.is_identity());
        assert_eq!(remap.new_id(e(0)), Some(e(0)));
        assert_eq!(remap.new_id(e(1)), None);
        assert_eq!(remap.new_id(e(4)), Some(e(2)));
        assert_eq!(remap.new_id(e(9)), None);
        assert_eq!(
            remap.remap_dense(&[10u32, 11, 12, 13, 14]),
            vec![10, 12, 14]
        );
        assert!(EdgeIdRemap::identity(4).is_identity());
        assert_eq!(EdgeIdRemap::identity(4).new_id(e(3)), Some(e(3)));
    }
}
