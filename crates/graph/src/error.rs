//! Error types for graph construction and I/O.

use crate::types::VertexId;
use std::fmt;

/// Errors produced while building, mutating or (de)serialising a
/// [`crate::SocialNetwork`].
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A vertex id referenced by an edge or query does not exist.
    UnknownVertex(VertexId),
    /// An edge `(u, v)` was added twice.
    DuplicateEdge(VertexId, VertexId),
    /// Self-loops are not allowed in the social-network model.
    SelfLoop(VertexId),
    /// An edge weight was outside the valid probability range `[0, 1]`.
    InvalidWeight {
        u: VertexId,
        v: VertexId,
        weight: f64,
    },
    /// The edge `(u, v)` does not exist.
    MissingEdge(VertexId, VertexId),
    /// A text / JSON input could not be parsed.
    Parse { line: usize, message: String },
    /// Underlying I/O failure, carried as a message so the error stays `Clone`.
    Io(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownVertex(v) => write!(f, "unknown vertex {v}"),
            GraphError::DuplicateEdge(u, v) => write!(f, "duplicate edge ({u}, {v})"),
            GraphError::SelfLoop(v) => write!(f, "self-loop on vertex {v} is not allowed"),
            GraphError::InvalidWeight { u, v, weight } => {
                write!(
                    f,
                    "invalid weight {weight} on edge ({u}, {v}); must be in [0, 1]"
                )
            }
            GraphError::MissingEdge(u, v) => write!(f, "edge ({u}, {v}) does not exist"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

/// Convenient result alias used throughout the graph crate.
pub type GraphResult<T> = Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_offenders() {
        let e = GraphError::UnknownVertex(VertexId(3));
        assert!(e.to_string().contains("v3"));
        let e = GraphError::DuplicateEdge(VertexId(1), VertexId(2));
        assert!(e.to_string().contains("v1") && e.to_string().contains("v2"));
        let e = GraphError::InvalidWeight {
            u: VertexId(0),
            v: VertexId(1),
            weight: 1.5,
        };
        assert!(e.to_string().contains("1.5"));
        let e = GraphError::Parse {
            line: 12,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 12"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let g: GraphError = io.into();
        assert!(matches!(g, GraphError::Io(_)));
        assert!(g.to_string().contains("nope"));
    }
}
