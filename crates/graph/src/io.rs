//! Reading and writing social networks.
//!
//! Two formats are supported:
//!
//! * **Attributed edge-list text** — a human-readable format close to the
//!   SNAP edge lists the real DBLP/Amazon datasets ship in, extended with
//!   keyword and weight annotations so a full [`SocialNetwork`] round-trips:
//!
//!   ```text
//!   # comments and blank lines are ignored
//!   v <id> <kw1,kw2,...>          # vertex with keyword ids
//!   e <u> <v> <p_uv> [p_vu]       # undirected edge with directed weights
//!   ```
//!
//!   Plain SNAP edge lists (`<u> <v>` per line) also parse: vertices are
//!   created on demand with empty keyword sets and a default weight.
//!
//! * **JSON snapshots** via `serde_json` — exact, lossless round-trip of the
//!   in-memory structure, used by the experiment harness to cache generated
//!   graphs. Snapshots are **versioned** by a `format_version` field:
//!
//!   * *version 2* (written by this build): the canonical edge table,
//!     directed weights and keyword sets; the CSR adjacency is derived data
//!     and is rebuilt on load,
//!   * *version 1* (PR-1 snapshots, no `format_version` field): the old
//!     adjacency-list layout; still readable — the stored adjacency is
//!     ignored in favour of a rebuild from the edge table, so old caches
//!     migrate transparently.

use crate::builder::GraphBuilder;
use crate::error::{GraphError, GraphResult};
use crate::graph::SocialNetwork;
use crate::keywords::KeywordSet;
use crate::types::VertexId;
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Writes `bytes` to `path` **crash-safely**: the content goes to a uniquely
/// named temporary file in the *same directory* (same filesystem, so the
/// final step is a true rename, not a copy) and is renamed into place after
/// being flushed. A process killed mid-write can leave a stray `*.tmp-*`
/// file behind but never a truncated file under the final name; concurrent
/// writers last-write-win without ever exposing a partial file.
///
/// Every snapshot writer in the workspace (graph JSON / edge lists, binary
/// snapshots, the core index persistence) routes through this helper.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let file_name = path.file_name().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "cannot atomically write to {}: no file name",
                path.display()
            ),
        )
    })?;
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".tmp-{}-{unique}", std::process::id()));
    let tmp_path = path.with_file_name(tmp_name);
    let result = (|| {
        let mut file = fs::File::create(&tmp_path)?;
        file.write_all(bytes)?;
        // flush userspace buffers and the OS cache before the rename makes
        // the file visible under its final name
        file.sync_all()?;
        fs::rename(&tmp_path, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp_path);
    }
    result
}

/// Default activation probability used for plain `u v` edge lines that carry
/// no explicit weight (midpoint of the paper's `[0.5, 0.6)` range).
pub const DEFAULT_EDGE_WEIGHT: f64 = 0.55;

/// Parses an attributed edge-list document (see the module docs for the
/// grammar).
pub fn parse_edge_list(text: &str) -> GraphResult<SocialNetwork> {
    let mut builder = GraphBuilder::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') || line.starts_with("//") {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let first = tokens.next().expect("non-empty line has a first token");
        match first {
            "v" => {
                let id = parse_vertex(tokens.next(), lineno)?;
                builder.ensure_vertex(id);
                let keywords = match tokens.next() {
                    None | Some("-") => KeywordSet::new(),
                    Some(list) => parse_keyword_list(list, lineno)?,
                };
                builder
                    .set_keywords(id, keywords)
                    .map_err(|_| parse_err(lineno, "vertex id out of range"))?;
            }
            "e" => {
                let u = parse_vertex(tokens.next(), lineno)?;
                let v = parse_vertex(tokens.next(), lineno)?;
                let p_uv = parse_weight(tokens.next(), lineno)?.unwrap_or(DEFAULT_EDGE_WEIGHT);
                let p_vu = parse_weight(tokens.next(), lineno)?.unwrap_or(p_uv);
                builder.add_edge(u, v, p_uv, p_vu);
            }
            // Plain SNAP line: "<u> <v>" (optionally with a weight).
            _ => {
                let u = parse_vertex(Some(first), lineno)?;
                let v = parse_vertex(tokens.next(), lineno)?;
                let p = parse_weight(tokens.next(), lineno)?.unwrap_or(DEFAULT_EDGE_WEIGHT);
                builder.add_edge(u, v, p, p);
            }
        }
    }
    builder.build()
}

fn parse_err(line: usize, message: impl Into<String>) -> GraphError {
    GraphError::Parse {
        line,
        message: message.into(),
    }
}

fn parse_vertex(token: Option<&str>, line: usize) -> GraphResult<VertexId> {
    let token = token.ok_or_else(|| parse_err(line, "missing vertex id"))?;
    token
        .parse::<u32>()
        .map(VertexId)
        .map_err(|_| parse_err(line, format!("invalid vertex id '{token}'")))
}

fn parse_weight(token: Option<&str>, line: usize) -> GraphResult<Option<f64>> {
    match token {
        None => Ok(None),
        Some(t) => t
            .parse::<f64>()
            .map(Some)
            .map_err(|_| parse_err(line, format!("invalid weight '{t}'"))),
    }
}

fn parse_keyword_list(list: &str, line: usize) -> GraphResult<KeywordSet> {
    let mut ids = Vec::new();
    for part in list.split(',').filter(|p| !p.is_empty()) {
        let id = part
            .parse::<u32>()
            .map_err(|_| parse_err(line, format!("invalid keyword id '{part}'")))?;
        ids.push(id);
    }
    Ok(KeywordSet::from_ids(ids))
}

/// Serialises a graph into the attributed edge-list text format.
pub fn to_edge_list(g: &SocialNetwork) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# topl-icde attributed edge list");
    let _ = writeln!(
        out,
        "# {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );
    for v in g.vertices() {
        let kws: Vec<String> = g.keyword_set(v).iter().map(|k| k.0.to_string()).collect();
        let kw_field = if kws.is_empty() {
            "-".to_string()
        } else {
            kws.join(",")
        };
        let _ = writeln!(out, "v {} {}", v.0, kw_field);
    }
    for (e, u, v) in g.edges() {
        let _ = writeln!(
            out,
            "e {} {} {} {}",
            u.0,
            v.0,
            g.directed_weight(e, u),
            g.directed_weight(e, v)
        );
    }
    out
}

/// Loads a graph from an attributed edge-list file.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> GraphResult<SocialNetwork> {
    let text = fs::read_to_string(path)?;
    parse_edge_list(&text)
}

/// Writes a graph to an attributed edge-list file (crash-safe
/// write-then-rename, see [`atomic_write`]).
pub fn write_edge_list_file<P: AsRef<Path>>(g: &SocialNetwork, path: P) -> GraphResult<()> {
    atomic_write(path.as_ref(), to_edge_list(g).as_bytes())?;
    Ok(())
}

/// Serialises a graph to a JSON snapshot string.
pub fn to_json(g: &SocialNetwork) -> GraphResult<String> {
    serde_json::to_string(g).map_err(|e| GraphError::Io(e.to_string()))
}

/// Loads a graph from a JSON snapshot string.
pub fn from_json(json: &str) -> GraphResult<SocialNetwork> {
    serde_json::from_str(json).map_err(|e| GraphError::Parse {
        line: 0,
        message: e.to_string(),
    })
}

/// Writes a JSON snapshot of the graph to a file (crash-safe
/// write-then-rename, see [`atomic_write`]).
pub fn write_json_file<P: AsRef<Path>>(g: &SocialNetwork, path: P) -> GraphResult<()> {
    atomic_write(path.as_ref(), to_json(g)?.as_bytes())?;
    Ok(())
}

/// Reads a JSON snapshot of a graph from a file.
pub fn read_json_file<P: AsRef<Path>>(path: P) -> GraphResult<SocialNetwork> {
    let text = fs::read_to_string(path)?;
    from_json(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::VertexId;

    const SAMPLE: &str = "\
# sample graph
v 0 1,2
v 1 2
v 2 3
e 0 1 0.8 0.7
e 1 2 0.6
e 0 2 0.9
";

    #[test]
    fn parses_attributed_edge_list() {
        let g = parse_edge_list(SAMPLE).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(
            g.activation_probability(VertexId(0), VertexId(1)).unwrap(),
            0.8
        );
        assert_eq!(
            g.activation_probability(VertexId(1), VertexId(0)).unwrap(),
            0.7
        );
        // single-weight edge is symmetric
        assert_eq!(
            g.activation_probability(VertexId(2), VertexId(1)).unwrap(),
            0.6
        );
        assert!(g.keyword_set(VertexId(0)).contains(crate::Keyword(2)));
    }

    #[test]
    fn parses_plain_snap_lines() {
        let g = parse_edge_list("0 1\n1 2\n2 3 0.7\n").unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(
            g.activation_probability(VertexId(0), VertexId(1)).unwrap(),
            DEFAULT_EDGE_WEIGHT
        );
        assert_eq!(
            g.activation_probability(VertexId(2), VertexId(3)).unwrap(),
            0.7
        );
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_edge_list("v 0 1\ne 0 x 0.5\n").unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        let err = parse_edge_list("e 0 1 nope\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = parse_edge_list(SAMPLE).unwrap();
        let text = to_edge_list(&g);
        let back = parse_edge_list(&text).unwrap();
        assert_eq!(back.num_vertices(), g.num_vertices());
        assert_eq!(back.num_edges(), g.num_edges());
        for (e, u, v) in g.edges() {
            let e2 = back.edge_between(u, v).unwrap();
            assert!((back.directed_weight(e2, u) - g.directed_weight(e, u)).abs() < 1e-12);
        }
        for v in g.vertices() {
            assert_eq!(back.keyword_set(v), g.keyword_set(v));
        }
    }

    #[test]
    fn json_roundtrip() {
        let g = parse_edge_list(SAMPLE).unwrap();
        let json = to_json(&g).unwrap();
        assert!(json.contains("\"format_version\":2"), "{json}");
        let back = from_json(&json).unwrap();
        assert_eq!(back.num_vertices(), 3);
        assert_eq!(back.num_edges(), 3);
    }

    /// A verbatim PR-1 snapshot of `SAMPLE` (captured from the seed
    /// serialiser before the CSR refactor): adjacency-list layout, no
    /// `format_version` field.
    const V1_SNAPSHOT: &str = r#"{"adjacency":[[[1,0],[2,2]],[[0,0],[2,1]],[[0,2],[1,1]]],"edges":[[0,1],[1,2],[0,2]],"weight_forward":[0.8,0.6,0.9],"weight_backward":[0.7,0.6,0.9],"keywords":[{"keywords":[1,2]},{"keywords":[2]},{"keywords":[3]}]}"#;

    #[test]
    fn reads_version_1_snapshots() {
        let old = from_json(V1_SNAPSHOT).unwrap();
        let expected = parse_edge_list(SAMPLE).unwrap();
        assert_eq!(old.num_vertices(), expected.num_vertices());
        assert_eq!(old.num_edges(), expected.num_edges());
        for (e, u, v) in expected.edges() {
            assert_eq!(old.edge_endpoints(e), (u, v));
            assert_eq!(old.directed_weight(e, u), expected.directed_weight(e, u));
            assert_eq!(old.directed_weight(e, v), expected.directed_weight(e, v));
        }
        for v in expected.vertices() {
            assert_eq!(old.keyword_set(v), expected.keyword_set(v));
        }
    }

    #[test]
    fn reads_v1_snapshot_with_explicit_version_marker() {
        // v1 layout stamped with an explicit marker (e.g. by an external
        // tool) must load the same as a marker-less PR-1 file
        let stamped = V1_SNAPSHOT.replacen('{', "{\"format_version\":1,", 1);
        let old = from_json(&stamped).unwrap();
        assert_eq!(old.num_vertices(), 3);
        assert_eq!(old.num_edges(), 3);
        assert_eq!(
            old.activation_probability(VertexId(1), VertexId(0))
                .unwrap(),
            0.7
        );
    }

    #[test]
    fn v1_snapshot_migrates_to_v2_on_rewrite() {
        let old = from_json(V1_SNAPSHOT).unwrap();
        let rewritten = to_json(&old).unwrap();
        assert!(rewritten.contains("\"format_version\":2"));
        assert!(!rewritten.contains("\"adjacency\""));
        let back = from_json(&rewritten).unwrap();
        assert_eq!(back.num_edges(), old.num_edges());
        assert_eq!(
            back.activation_probability(VertexId(1), VertexId(0))
                .unwrap(),
            0.7
        );
    }

    #[test]
    fn file_roundtrip() {
        let g = parse_edge_list(SAMPLE).unwrap();
        let dir = std::env::temp_dir();
        let path = dir.join("topl_icde_io_test.graph");
        write_edge_list_file(&g, &path).unwrap();
        let back = read_edge_list_file(&path).unwrap();
        assert_eq!(back.num_edges(), 3);
        let json_path = dir.join("topl_icde_io_test.json");
        write_json_file(&g, &json_path).unwrap();
        let back = read_json_file(&json_path).unwrap();
        assert_eq!(back.num_vertices(), 3);
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(json_path);
    }

    #[test]
    fn atomic_write_replaces_content_and_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("icde_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        // overwrite must swap the whole content in one rename
        atomic_write(&path, b"second, longer content").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer content");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "temporary files left behind");
        // writing to a path without a parent file name errors cleanly
        assert!(atomic_write(Path::new("/"), b"x").is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_edge_list_file("/nonexistent/definitely/not/here.graph").unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }
}
