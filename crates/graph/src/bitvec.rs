//! B-bit keyword signatures (`v_i.BV`, `Q.BV`) used by the keyword pruning
//! rule (Lemma 1 / Lemma 5).
//!
//! Section V-A of the paper hashes every keyword `w` of a vertex keyword set
//! into a bit vector of size `B` via a hash function `f(w) ∈ [0, B-1]` and
//! sets that bit. Aggregated signatures for r-hop subgraphs and index entries
//! are bit-ORs of member signatures. The query keyword set is hashed the same
//! way, and an index entry can be pruned when `N_i.BV_r ∧ Q.BV = 0`.
//!
//! The signature is a *filter*: hash collisions can cause false positives
//! (an entry survives pruning although no real keyword matches) but never
//! false dismissals — the property tests in this module and in the core crate
//! assert exactly that invariant.

use crate::keywords::{Keyword, KeywordSet};
use crate::types::VertexId;
use serde::{Deserialize, Serialize};

/// Default signature width in bits; matches a 2-word signature which is wide
/// enough for the keyword domains used in the paper (|Σ| ≤ 80).
pub const DEFAULT_SIGNATURE_BITS: usize = 128;

/// A fixed-width bit vector storing hashed keyword signatures.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVector {
    /// Number of usable bits (`B` in the paper).
    bits: u32,
    /// Backing words, `ceil(bits / 64)` entries.
    words: Vec<u64>,
}

impl BitVector {
    /// Creates an all-zero signature of `bits` bits.
    ///
    /// # Panics
    /// Panics if `bits` is zero.
    pub fn zeros(bits: usize) -> Self {
        assert!(bits > 0, "bit vector width must be positive");
        BitVector {
            bits: bits as u32,
            words: vec![0u64; bits.div_ceil(64)],
        }
    }

    /// Creates a signature of the default width.
    pub fn default_width() -> Self {
        Self::zeros(DEFAULT_SIGNATURE_BITS)
    }

    /// Hashes a full keyword set into a fresh signature of `bits` bits.
    pub fn from_keywords(set: &KeywordSet, bits: usize) -> Self {
        let mut bv = Self::zeros(bits);
        for kw in set.iter() {
            bv.set_keyword(kw);
        }
        bv
    }

    /// Number of usable bits.
    #[inline]
    pub fn num_bits(&self) -> usize {
        self.bits as usize
    }

    /// The hash function `f(w)` mapping a keyword to a bit position.
    #[inline]
    pub fn hash_position(&self, kw: Keyword) -> usize {
        hash_position(self.bits, kw)
    }

    /// Sets the bit corresponding to keyword `kw`.
    #[inline]
    pub fn set_keyword(&mut self, kw: Keyword) {
        let pos = self.hash_position(kw);
        self.set_bit(pos);
    }

    /// Sets bit `pos`.
    #[inline]
    pub fn set_bit(&mut self, pos: usize) {
        debug_assert!(pos < self.bits as usize);
        self.words[pos / 64] |= 1u64 << (pos % 64);
    }

    /// Returns bit `pos`.
    #[inline]
    pub fn get_bit(&self, pos: usize) -> bool {
        debug_assert!(pos < self.bits as usize);
        (self.words[pos / 64] >> (pos % 64)) & 1 == 1
    }

    /// Returns `true` if the keyword's bit is set (i.e. the keyword *may* be
    /// present).
    #[inline]
    pub fn maybe_contains(&self, kw: Keyword) -> bool {
        self.get_bit(self.hash_position(kw))
    }

    /// In-place bit-OR with another signature of the same width (the
    /// aggregation `BV_r = ⋁ v_l.BV` from Algorithm 2).
    ///
    /// # Panics
    /// Panics if widths differ.
    pub fn or_assign(&mut self, other: &BitVector) {
        assert_eq!(self.bits, other.bits, "bit vector width mismatch");
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w |= *o;
        }
    }

    /// Returns the bit-OR of two signatures.
    pub fn or(&self, other: &BitVector) -> BitVector {
        let mut out = self.clone();
        out.or_assign(other);
        out
    }

    /// Returns `true` if the bitwise AND of the two signatures is non-zero
    /// (i.e. the sets *may* intersect). `intersects == false` is a safe
    /// pruning condition: the underlying keyword sets definitely do not
    /// intersect.
    pub fn intersects(&self, other: &BitVector) -> bool {
        assert_eq!(self.bits, other.bits, "bit vector width mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// The backing words (`ceil(bits / 64)` entries, low bits first) — the
    /// raw block the flattened aggregate tables and the binary snapshot
    /// writer store.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Borrows this signature as a [`SignatureRef`].
    #[inline]
    pub fn as_sig(&self) -> SignatureRef<'_> {
        SignatureRef {
            bits: self.bits,
            words: &self.words,
        }
    }

    /// Rebuilds a signature from its width and backing words (the inverse of
    /// [`BitVector::words`]); returns `None` when the word count does not
    /// match the width.
    pub fn from_words(bits: usize, words: Vec<u64>) -> Option<Self> {
        if bits == 0 || words.len() != bits.div_ceil(64) {
            return None;
        }
        Some(BitVector {
            bits: bits as u32,
            words,
        })
    }

    /// In-place bit-OR with a borrowed signature of the same width.
    ///
    /// # Panics
    /// Panics if widths differ.
    pub fn or_assign_sig(&mut self, other: SignatureRef<'_>) {
        assert_eq!(self.bits, other.bits, "bit vector width mismatch");
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w |= *o;
        }
    }
}

/// A borrowed signature: the same bit semantics as [`BitVector`], viewing a
/// word block owned elsewhere (one row of a flattened aggregate table, or a
/// mapped snapshot section). Copy-cheap; comparisons and intersection tests
/// behave exactly like the owned type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignatureRef<'a> {
    bits: u32,
    words: &'a [u64],
}

impl<'a> SignatureRef<'a> {
    /// Wraps a word block as a signature of `bits` bits.
    ///
    /// # Panics
    /// Panics if the word count does not match the width.
    pub fn new(bits: usize, words: &'a [u64]) -> Self {
        assert!(bits > 0, "bit vector width must be positive");
        assert_eq!(words.len(), bits.div_ceil(64), "word count mismatch");
        SignatureRef {
            bits: bits as u32,
            words,
        }
    }

    /// Number of usable bits.
    #[inline]
    pub fn num_bits(&self) -> usize {
        self.bits as usize
    }

    /// The backing words.
    #[inline]
    pub fn words(&self) -> &'a [u64] {
        self.words
    }

    /// Returns bit `pos`.
    #[inline]
    pub fn get_bit(&self, pos: usize) -> bool {
        debug_assert!(pos < self.bits as usize);
        (self.words[pos / 64] >> (pos % 64)) & 1 == 1
    }

    /// Returns `true` if the keyword's bit is set (the keyword *may* be
    /// present).
    #[inline]
    pub fn maybe_contains(&self, kw: Keyword) -> bool {
        self.get_bit(hash_position(self.bits, kw))
    }

    /// Returns `true` if the bitwise AND with `other` is non-zero (the sets
    /// *may* intersect); `false` is a safe pruning condition.
    ///
    /// # Panics
    /// Panics if widths differ.
    pub fn intersects(&self, other: &BitVector) -> bool {
        assert_eq!(self.bits, other.bits, "bit vector width mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Copies the view into an owned [`BitVector`].
    pub fn to_owned_sig(&self) -> BitVector {
        BitVector {
            bits: self.bits,
            words: self.words.to_vec(),
        }
    }
}

/// A per-graph flat signature table: the keyword signature of every vertex,
/// stored as one contiguous `n × ⌈bits/64⌉` word array built once.
///
/// The offline pre-computation ORs member signatures into region aggregates
/// for every `(vertex, radius)` pair; hashing each member's keyword set into
/// a fresh [`BitVector`] there meant one heap allocation *per member per
/// region* (hundreds of millions on a 50k graph). A [`SignatureTable`] pays
/// the hashing once and hands out borrowed word rows, so aggregation is a
/// branch-free word-OR over flat memory with no per-member allocation.
///
/// Rows are bit-identical to `BitVector::from_keywords(g.keyword_set(v), bits)`
/// — both go through the same [`hash_position`] — which the equivalence tests
/// rely on.
#[derive(Debug, Clone, PartialEq)]
pub struct SignatureTable {
    bits: u32,
    words_per_row: usize,
    words: Vec<u64>,
}

impl SignatureTable {
    /// Hashes every vertex keyword set of `g` into a flat table of `bits`-bit
    /// signatures.
    ///
    /// # Panics
    /// Panics if `bits` is zero.
    pub fn for_graph(g: &crate::graph::SocialNetwork, bits: usize) -> Self {
        assert!(bits > 0, "bit vector width must be positive");
        let words_per_row = bits.div_ceil(64);
        let n = g.num_vertices();
        let mut words = vec![0u64; n * words_per_row];
        for v in g.vertices() {
            let start = v.index() * words_per_row;
            let row = &mut words[start..start + words_per_row];
            for kw in g.keyword_set(v).iter() {
                let pos = hash_position(bits as u32, kw);
                row[pos / 64] |= 1u64 << (pos % 64);
            }
        }
        SignatureTable {
            bits: bits as u32,
            words_per_row,
            words,
        }
    }

    /// Signature width in bits.
    #[inline]
    pub fn num_bits(&self) -> usize {
        self.bits as usize
    }

    /// Number of vertex rows.
    #[inline]
    pub fn len(&self) -> usize {
        // words_per_row ≥ 1: the constructor rejects zero-width signatures
        self.words.len() / self.words_per_row
    }

    /// Returns `true` if the table holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The raw word row of vertex `v`.
    ///
    /// # Panics
    /// Panics if `v` is outside the table.
    #[inline]
    pub fn row(&self, v: VertexId) -> &[u64] {
        let start = v.index() * self.words_per_row;
        &self.words[start..start + self.words_per_row]
    }

    /// The signature of vertex `v` as a borrowed [`SignatureRef`].
    #[inline]
    pub fn signature(&self, v: VertexId) -> SignatureRef<'_> {
        SignatureRef {
            bits: self.bits,
            words: self.row(v),
        }
    }

    /// ORs vertex `v`'s signature row into `acc` (the aggregation primitive
    /// of the frontier-incremental offline phase — no allocation, no branch
    /// per bit).
    ///
    /// # Panics
    /// Panics if `acc` is narrower than one row.
    #[inline]
    pub fn or_into(&self, v: VertexId, acc: &mut [u64]) {
        for (a, w) in acc.iter_mut().zip(self.row(v)) {
            *a |= *w;
        }
    }
}

/// Log2 of the page size of the scratch's vertex→slot map: 256 entries.
const SIG_PAGE_BITS: usize = 8;
/// Entries per map page.
const SIG_PAGE_LEN: usize = 1 << SIG_PAGE_BITS;
/// Mask extracting the within-page slot from a vertex index.
const SIG_PAGE_MASK: usize = SIG_PAGE_LEN - 1;

/// One page of the sparse vertex→row-slot map: an epoch stamp plus the slot
/// index the vertex's signature row occupies in the packed arena.
#[derive(Debug)]
struct SigMapPage {
    stamp: [u32; SIG_PAGE_LEN],
    slot: [u32; SIG_PAGE_LEN],
}

impl SigMapPage {
    fn new_boxed() -> Box<SigMapPage> {
        Box::new(SigMapPage {
            stamp: [0; SIG_PAGE_LEN],
            slot: [0; SIG_PAGE_LEN],
        })
    }
}

/// An epoch-stamped sparse signature arena: the shard-local replacement for
/// a full-graph [`SignatureTable`].
///
/// A [`SignatureTable`] hashes *every* vertex of the graph up front —
/// `n × ⌈bits/64⌉` words — which is the right trade for a build that will
/// visit every vertex, but a shard worker only ever touches the vertices
/// inside its shard's r_max ball cover, and the streaming maintainer only
/// the balls around an update batch. This scratch hashes a vertex's keyword
/// set on **first touch**, caches the row in a dense-packed grow-only arena
/// (id-remapped through a lazily-paged vertex→slot map) and replays the
/// cached row on every later touch, so resident bytes track the touched
/// set, not `n`.
///
/// Rows go through the same [`keyword_bit_position`] hash as every other
/// signature formulation, so aggregates built through the scratch are
/// bit-identical to the table and on-the-fly paths.
///
/// Keyword sets are immutable under edge updates and compaction, so a
/// scratch owned by a maintainer stays warm across update batches with no
/// invalidation. Callers that reuse one scratch across *different graphs*
/// (or widths) must call [`invalidate`] in between; [`ensure`] does so
/// automatically when the width or vertex count changes.
///
/// [`invalidate`]: SignatureScratch::invalidate
/// [`ensure`]: SignatureScratch::ensure
#[derive(Debug)]
pub struct SignatureScratch {
    bits: u32,
    words_per_row: usize,
    /// Vertex count the map is sized for (cache key for [`ensure`]).
    len: usize,
    /// Map entries are valid iff their stamp equals this epoch.
    epoch: u32,
    /// Lazily-allocated pages of the vertex→slot map.
    map: Vec<Option<Box<SigMapPage>>>,
    /// Dense-packed row arena: slot `s` occupies
    /// `rows[s * words_per_row ..][..words_per_row]`. Grow-only.
    rows: Vec<u64>,
    /// Next free slot in the arena.
    next_slot: u32,
}

impl Default for SignatureScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl SignatureScratch {
    /// Creates an empty scratch; pages and rows grow on first use.
    pub fn new() -> Self {
        SignatureScratch {
            bits: 0,
            words_per_row: 0,
            len: 0,
            epoch: 1,
            map: Vec::new(),
            rows: Vec::new(),
            next_slot: 0,
        }
    }

    /// Prepares the scratch for an `n`-vertex graph with `bits`-wide
    /// signatures. Cached rows stay warm when the shape is unchanged; a
    /// width or vertex-count change invalidates them (a different shape
    /// means a different graph).
    ///
    /// # Panics
    /// Panics if `bits` is zero.
    pub fn ensure(&mut self, n: usize, bits: usize) {
        assert!(bits > 0, "bit vector width must be positive");
        if self.bits != bits as u32 || self.len != n {
            self.bits = bits as u32;
            self.words_per_row = bits.div_ceil(64);
            self.len = n;
            self.invalidate();
        }
        let num_pages = n.div_ceil(SIG_PAGE_LEN);
        if self.map.len() < num_pages {
            self.map.resize_with(num_pages, || None);
        }
    }

    /// Drops every cached row (one epoch bump; no memory is released).
    /// Required when reusing the scratch across graphs whose shape happens
    /// to match, or after keyword sets change.
    pub fn invalidate(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // wraparound: stamps from 2^32 invalidations ago would alias
            for page in self.map.iter_mut().flatten() {
                page.stamp = [0; SIG_PAGE_LEN];
            }
            self.epoch = 1;
        }
        self.next_slot = 0;
    }

    /// ORs vertex `v`'s signature row into `acc`, hashing the keyword set
    /// only on the first touch since the last [`invalidate`] and replaying
    /// the cached arena row afterwards.
    ///
    /// # Panics
    /// Panics if `v` is outside the prepared vertex range or `acc` is
    /// narrower than one row.
    ///
    /// [`invalidate`]: SignatureScratch::invalidate
    #[inline]
    pub fn or_row_into(&mut self, g: &crate::graph::SocialNetwork, v: VertexId, acc: &mut [u64]) {
        let i = v.index();
        let epoch = self.epoch;
        let page: &mut SigMapPage =
            self.map[i >> SIG_PAGE_BITS].get_or_insert_with(SigMapPage::new_boxed);
        let s = i & SIG_PAGE_MASK;
        let slot = if page.stamp[s] == epoch {
            page.slot[s] as usize
        } else {
            let slot = self.next_slot as usize;
            page.stamp[s] = epoch;
            page.slot[s] = self.next_slot;
            self.next_slot += 1;
            let start = slot * self.words_per_row;
            if self.rows.len() < start + self.words_per_row {
                self.rows.resize(start + self.words_per_row, 0);
            }
            // the region may hold residue from before an invalidation (or a
            // reshape that left a partially-stale prefix) — zero it always
            self.rows[start..start + self.words_per_row].fill(0);
            let bits = self.bits as usize;
            let row = &mut self.rows[start..start + self.words_per_row];
            for kw in g.keyword_set(v).iter() {
                let pos = keyword_bit_position(bits, kw);
                row[pos / 64] |= 1u64 << (pos % 64);
            }
            slot
        };
        let start = slot * self.words_per_row;
        for (a, w) in acc
            .iter_mut()
            .zip(&self.rows[start..start + self.words_per_row])
        {
            *a |= *w;
        }
    }

    /// Number of distinct vertices whose rows are cached this epoch.
    pub fn rows_cached(&self) -> usize {
        self.next_slot as usize
    }

    /// Resident bytes of the scratch: allocated map pages plus the row
    /// arena. The bench compares this against the `n × ⌈bits/64⌉ × 8` a
    /// full [`SignatureTable`] would pin per worker.
    pub fn allocated_bytes(&self) -> usize {
        self.map.iter().flatten().count() * std::mem::size_of::<SigMapPage>()
            + self.map.capacity() * std::mem::size_of::<Option<Box<SigMapPage>>>()
            + self.rows.capacity() * std::mem::size_of::<u64>()
    }
}

/// The bit position keyword `kw` occupies in a `bits`-wide signature — the
/// shared hash `f(w)` behind [`BitVector`], [`SignatureRef`] and
/// [`SignatureTable`], exposed so callers that OR keyword sets into raw word
/// buffers (the offline engine's small-batch maintenance path) stay
/// bit-identical to the owned/table formulations.
///
/// # Panics
/// Panics if `bits` is zero.
#[inline]
pub fn keyword_bit_position(bits: usize, kw: Keyword) -> usize {
    assert!(bits > 0, "bit vector width must be positive");
    hash_position(bits as u32, kw)
}

/// The hash function `f(w)` shared by [`BitVector`] and [`SignatureRef`]:
/// a 64-bit splitmix finaliser, so nearby keyword ids scatter across the
/// signature instead of clustering in the low bits.
#[inline]
fn hash_position(bits: u32, kw: Keyword) -> usize {
    let mut x = kw.0 as u64;
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % bits as u64) as usize
}

impl PartialEq<BitVector> for SignatureRef<'_> {
    fn eq(&self, other: &BitVector) -> bool {
        self.bits == other.bits && self.words == other.words.as_slice()
    }
}

impl PartialEq<SignatureRef<'_>> for BitVector {
    fn eq(&self, other: &SignatureRef<'_>) -> bool {
        other == self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_is_empty() {
        let bv = BitVector::zeros(64);
        assert!(bv.is_zero());
        assert_eq!(bv.count_ones(), 0);
        assert_eq!(bv.num_bits(), 64);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_panics() {
        let _ = BitVector::zeros(0);
    }

    #[test]
    fn set_and_get_bits() {
        let mut bv = BitVector::zeros(130);
        bv.set_bit(0);
        bv.set_bit(64);
        bv.set_bit(129);
        assert!(bv.get_bit(0) && bv.get_bit(64) && bv.get_bit(129));
        assert!(!bv.get_bit(1));
        assert_eq!(bv.count_ones(), 3);
    }

    #[test]
    fn keyword_membership_never_false_negative() {
        let set = KeywordSet::from_ids([3, 17, 99, 1000]);
        let bv = BitVector::from_keywords(&set, 128);
        for kw in set.iter() {
            assert!(bv.maybe_contains(kw));
        }
    }

    #[test]
    fn or_aggregates_signatures() {
        let a = BitVector::from_keywords(&KeywordSet::from_ids([1, 2]), 128);
        let b = BitVector::from_keywords(&KeywordSet::from_ids([3]), 128);
        let u = a.or(&b);
        for kw in [1u32, 2, 3] {
            assert!(u.maybe_contains(Keyword(kw)));
        }
        assert!(u.count_ones() >= a.count_ones());
        assert!(u.count_ones() >= b.count_ones());
    }

    #[test]
    fn disjoint_small_sets_usually_do_not_intersect() {
        // With 128 bits and 2+2 keywords, these particular ids do not collide.
        let a = BitVector::from_keywords(&KeywordSet::from_ids([1, 2]), 128);
        let b = BitVector::from_keywords(&KeywordSet::from_ids([40, 41]), 128);
        assert!(!a.intersects(&b));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let a = BitVector::zeros(64);
        let b = BitVector::zeros(128);
        let _ = a.intersects(&b);
    }

    #[test]
    fn signature_table_rows_match_from_keywords() {
        let mut b = crate::builder::GraphBuilder::new();
        for ids in [vec![1u32, 2], vec![], vec![7, 99, 1000], vec![3]] {
            b.add_vertex(KeywordSet::from_ids(ids));
        }
        let g = b.build().unwrap();
        for bits in [64usize, 128, 130] {
            let table = SignatureTable::for_graph(&g, bits);
            assert_eq!(table.len(), g.num_vertices());
            assert_eq!(table.num_bits(), bits);
            let mut acc = vec![0u64; bits.div_ceil(64)];
            let mut reference = BitVector::zeros(bits);
            for v in g.vertices() {
                let owned = BitVector::from_keywords(g.keyword_set(v), bits);
                assert_eq!(table.signature(v), owned, "vertex {v} bits {bits}");
                assert_eq!(table.row(v), owned.words());
                table.or_into(v, &mut acc);
                reference.or_assign(&owned);
            }
            assert_eq!(&acc, reference.words());
        }
    }

    #[test]
    fn empty_graph_signature_table_is_empty() {
        let g = crate::graph::SocialNetwork::new();
        let table = SignatureTable::for_graph(&g, 128);
        assert!(table.is_empty());
        assert_eq!(table.len(), 0);
    }

    #[test]
    fn signature_scratch_matches_table_and_caches_rows() {
        let mut b = crate::builder::GraphBuilder::new();
        for ids in [vec![1u32, 2], vec![], vec![7, 99, 1000], vec![3], vec![42]] {
            b.add_vertex(KeywordSet::from_ids(ids));
        }
        let g = b.build().unwrap();
        for bits in [64usize, 128, 130] {
            let table = SignatureTable::for_graph(&g, bits);
            let mut scratch = SignatureScratch::new();
            scratch.ensure(g.num_vertices(), bits);
            let words = bits.div_ceil(64);
            for v in g.vertices() {
                // touch twice: first hashes, second replays the cached row
                for _ in 0..2 {
                    let mut via_scratch = vec![0u64; words];
                    scratch.or_row_into(&g, v, &mut via_scratch);
                    let mut via_table = vec![0u64; words];
                    table.or_into(v, &mut via_table);
                    assert_eq!(via_scratch, via_table, "vertex {v} bits {bits}");
                }
            }
            assert_eq!(scratch.rows_cached(), g.num_vertices());
        }
    }

    #[test]
    fn signature_scratch_only_pays_for_touched_vertices() {
        let mut b = crate::builder::GraphBuilder::new();
        for i in 0..(4 * SIG_PAGE_LEN as u32) {
            b.add_vertex(KeywordSet::from_ids(vec![i]));
        }
        let g = b.build().unwrap();
        let mut scratch = SignatureScratch::new();
        scratch.ensure(g.num_vertices(), 128);
        let mut acc = vec![0u64; 2];
        scratch.or_row_into(&g, VertexId(0), &mut acc);
        scratch.or_row_into(&g, VertexId(1), &mut acc);
        assert_eq!(scratch.rows_cached(), 2);
        // one map page + two 2-word rows, far below the full-table footprint
        let full_table_bytes = g.num_vertices() * 2 * std::mem::size_of::<u64>();
        assert!(scratch.allocated_bytes() < full_table_bytes);
    }

    #[test]
    fn signature_scratch_invalidate_drops_cached_rows() {
        let mut b = crate::builder::GraphBuilder::new();
        b.add_vertex(KeywordSet::from_ids(vec![5]));
        let g = b.build().unwrap();
        let mut scratch = SignatureScratch::new();
        scratch.ensure(1, 64);
        let mut acc = vec![0u64; 1];
        scratch.or_row_into(&g, VertexId(0), &mut acc);
        assert_eq!(scratch.rows_cached(), 1);
        scratch.invalidate();
        assert_eq!(scratch.rows_cached(), 0);
        // re-touch re-hashes and still matches the owned formulation
        let mut acc2 = vec![0u64; 1];
        scratch.or_row_into(&g, VertexId(0), &mut acc2);
        let owned = BitVector::from_keywords(g.keyword_set(VertexId(0)), 64);
        assert_eq!(&acc2, owned.words());
        assert_eq!(acc, acc2);
    }

    #[test]
    fn signature_scratch_reshape_invalidates_automatically() {
        let mut b = crate::builder::GraphBuilder::new();
        b.add_vertex(KeywordSet::from_ids(vec![9]));
        b.add_vertex(KeywordSet::from_ids(vec![10]));
        let g = b.build().unwrap();
        let mut scratch = SignatureScratch::new();
        scratch.ensure(2, 64);
        let mut acc = vec![0u64; 1];
        scratch.or_row_into(&g, VertexId(0), &mut acc);
        assert_eq!(scratch.rows_cached(), 1);
        scratch.ensure(2, 128); // width change → stale rows dropped
        assert_eq!(scratch.rows_cached(), 0);
        let mut wide = vec![0u64; 2];
        scratch.or_row_into(&g, VertexId(1), &mut wide);
        let owned = BitVector::from_keywords(g.keyword_set(VertexId(1)), 128);
        assert_eq!(&wide, owned.words());
    }

    proptest! {
        /// Keyword-pruning soundness: if the real keyword sets intersect then
        /// the signatures must intersect (no false dismissals).
        #[test]
        fn prop_no_false_dismissal(
            a in proptest::collection::vec(0u32..500, 0..10),
            b in proptest::collection::vec(0u32..500, 0..10),
            bits in prop_oneof![Just(32usize), Just(64), Just(128), Just(256)],
        ) {
            let sa = KeywordSet::from_ids(a);
            let sb = KeywordSet::from_ids(b);
            let bva = BitVector::from_keywords(&sa, bits);
            let bvb = BitVector::from_keywords(&sb, bits);
            if sa.intersects(&sb) {
                prop_assert!(bva.intersects(&bvb));
            }
        }

        /// OR-aggregation soundness: a member's keyword is always visible in
        /// the aggregated signature.
        #[test]
        fn prop_or_preserves_membership(
            sets in proptest::collection::vec(proptest::collection::vec(0u32..200, 1..6), 1..8),
        ) {
            let mut agg = BitVector::zeros(128);
            let keyword_sets: Vec<KeywordSet> =
                sets.into_iter().map(KeywordSet::from_ids).collect();
            for s in &keyword_sets {
                agg.or_assign(&BitVector::from_keywords(s, 128));
            }
            for s in &keyword_sets {
                for kw in s.iter() {
                    prop_assert!(agg.maybe_contains(kw));
                }
            }
        }
    }
}
