//! The social network graph store (Definition 1).
//!
//! A [`SocialNetwork`] is an attributed, undirected, weighted graph
//! `G = (V(G), E(G), Φ(G))`: the *structure* (who is connected to whom) is
//! undirected, while each structural edge carries two directed activation
//! probabilities `p_{u,v}` (u activates v) and `p_{v,u}` (v activates u) used
//! by the MIA propagation model. Each vertex carries a keyword set `v_i.W`.
//!
//! # Layered store: frozen CSR base + delta overlay
//!
//! The adjacency lives in two layers:
//!
//! * The **frozen CSR base**, produced in one shot by the mutable
//!   [`crate::builder::GraphBuilder`] (or the I/O loaders): `offsets:
//!   Vec<u32>` of length `n + 1` and one flat `csr: Vec<(VertexId, EdgeId)>`
//!   of length `2m` holding every vertex's neighbour list back to back,
//!   sorted by neighbour id. The base is mmap-able and never touched by
//!   structural updates.
//! * A small **delta overlay** ([`crate::overlay::DeltaOverlay`]): per-vertex
//!   sorted runs of inserted `(neighbour, edge id, weight)` entries plus a
//!   tombstone set of deleted edge ids.
//!
//! [`SocialNetwork::neighbors`] returns a [`Neighbors`] cursor that merges
//! the base slice with the vertex's run (minus tombstones, still sorted);
//! for untouched rows — every row of an overlay-free graph — the cursor *is*
//! the contiguous base slice, so the traversal kernels keep their slice-speed
//! inner loops. [`SocialNetwork::degree`] stays O(1) and
//! [`SocialNetwork::edge_between`] a binary search. Edge- and vertex-indexed
//! attributes (directed weights, keyword sets) live in parallel flat vectors
//! addressed by [`EdgeId`] / [`VertexId`]; inserted edges append to overlay
//! columns, and tombstoned ids are **never reused**, so edge-indexed side
//! data stays valid across updates.
//!
//! Structural updates go through [`SocialNetwork::apply_edge_inserted`] /
//! [`SocialNetwork::apply_edge_removed`] — O(degree · log degree) overlay
//! patches — and [`SocialNetwork::compact`] folds the overlay back into a
//! fresh CSR (returning an [`EdgeIdRemap`] for side data) once it exceeds a
//! configurable fraction of `m`; see [`SocialNetwork::maybe_compact`].
//! Attributes stay mutable without the overlay ([`set_edge_weights`],
//! [`set_keyword_set`]): the generators draw weights and keywords after the
//! topology is fixed, and neither touches the CSR arrays.
//!
//! [`set_edge_weights`]: SocialNetwork::set_edge_weights
//! [`set_keyword_set`]: SocialNetwork::set_keyword_set

use crate::error::{GraphError, GraphResult};
use crate::keywords::KeywordSet;
use crate::overlay::{DeltaOverlay, EdgeIdRemap, Neighbors, Outgoing};
use crate::snapshot::{fnv1a, fnv1a_extend, FlatVec};
use crate::types::{is_valid_probability, EdgeId, VertexId, Weight};
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::HashSet;
use std::sync::Arc;

/// Default overlay-size trigger for [`SocialNetwork::maybe_compact`]: fold
/// the overlay back into the CSR once tombstones + inserted edges exceed
/// this fraction of the base edge count.
pub const DEFAULT_COMPACT_THRESHOLD: f64 = 0.125;

/// Persisted snapshot format version written by [`Serialize`]; version 1 (the
/// PR-1 adjacency-list layout, no `format_version` field) is still accepted on
/// read. See [`crate::io`] for the format documentation.
pub const GRAPH_FORMAT_VERSION: u32 = 2;

/// An attributed, undirected, weighted social network (Definition 1), frozen
/// into a flat CSR store. Construct one through
/// [`crate::builder::GraphBuilder`].
#[derive(Debug, Clone)]
pub struct SocialNetwork {
    /// CSR row offsets: the neighbours of `v` live in
    /// `csr[offsets[v] .. offsets[v + 1]]`. Length `n + 1`.
    ///
    /// The flat arrays live in [`FlatVec`]s: owned vectors for graphs built
    /// in memory, zero-copy views into the file region for graphs loaded
    /// from a binary snapshot ([`crate::snapshot`]).
    offsets: FlatVec<u32>,
    /// Packed `(neighbour, edge id)` pairs, sorted by neighbour id within each
    /// vertex's row. Length `2m`.
    csr: FlatVec<(VertexId, EdgeId)>,
    /// Outgoing activation probability per CSR slot: `csr_out_weight[s]` is
    /// `p_{v→n}` where slot `s` of `v`'s row points at `n`. Keeps the
    /// max-product Dijkstra inner loop on two contiguous slices instead of
    /// chasing the edge table per neighbour. Derived data, rebuilt alongside
    /// the CSR and patched by [`SocialNetwork::set_edge_weights`].
    csr_out_weight: FlatVec<Weight>,
    /// Canonical edge table: `edges[e] = (u, v)` with `u < v`.
    edges: FlatVec<(VertexId, VertexId)>,
    /// Directed activation probability `p_{u,v}` for the canonical direction
    /// (`u < v`).
    weight_forward: FlatVec<Weight>,
    /// Directed activation probability `p_{v,u}` for the reverse direction.
    weight_backward: FlatVec<Weight>,
    /// Per-vertex keyword sets `v_i.W`. `Arc`-shared so snapshot clones are
    /// O(1); the rare mutation ([`SocialNetwork::set_keyword_set`]) detaches
    /// a uniquely-referenced vector for free via `Arc::make_mut`.
    keywords: Arc<Vec<KeywordSet>>,
    /// The delta overlay holding structural updates since the base was
    /// frozen: `None` (the common case) means every reader takes the raw
    /// slice fast path. Boxed so the frozen store stays lean.
    overlay: Option<Box<DeltaOverlay>>,
}

impl Default for SocialNetwork {
    fn default() -> Self {
        SocialNetwork {
            offsets: vec![0].into(),
            csr: FlatVec::default(),
            csr_out_weight: FlatVec::default(),
            edges: FlatVec::default(),
            weight_forward: FlatVec::default(),
            weight_backward: FlatVec::default(),
            keywords: Arc::new(Vec::new()),
            overlay: None,
        }
    }
}

/// Borrowed view of every flat array of a frozen [`SocialNetwork`] — the
/// graph's "raw parts", consumed by the binary snapshot writer and the
/// content fingerprint, and useful for any external tool that wants the CSR
/// without going through the accessor methods.
#[derive(Debug, Clone, Copy)]
pub struct GraphParts<'a> {
    /// CSR row offsets (`n + 1` entries).
    pub offsets: &'a [u32],
    /// Packed `(neighbour, edge id)` CSR slots (`2m` entries).
    pub csr: &'a [(VertexId, EdgeId)],
    /// Outgoing activation probability per CSR slot (`2m` entries).
    pub csr_out_weights: &'a [Weight],
    /// Canonical edge endpoints, `u < v` (`m` entries).
    pub edges: &'a [(VertexId, VertexId)],
    /// Directed weights in the canonical direction (`m` entries).
    pub weight_forward: &'a [Weight],
    /// Directed weights in the reverse direction (`m` entries).
    pub weight_backward: &'a [Weight],
    /// Per-vertex keyword sets (`n` entries).
    pub keywords: &'a [KeywordSet],
}

/// Builds the CSR arrays for `n` vertices from a canonical edge table with a
/// counting sort: one pass to count degrees, a prefix sum for the offsets,
/// one pass to scatter, and a per-row sort by neighbour id.
pub(crate) fn build_csr(
    n: usize,
    edges: &[(VertexId, VertexId)],
) -> (Vec<u32>, Vec<(VertexId, EdgeId)>) {
    let mut offsets = vec![0u32; n + 1];
    for &(u, v) in edges {
        offsets[u.index() + 1] += 1;
        offsets[v.index() + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut csr = vec![(VertexId(0), EdgeId(0)); 2 * edges.len()];
    let mut cursor: Vec<u32> = offsets[..n].to_vec();
    for (i, &(u, v)) in edges.iter().enumerate() {
        let e = EdgeId::from_index(i);
        csr[cursor[u.index()] as usize] = (v, e);
        cursor[u.index()] += 1;
        csr[cursor[v.index()] as usize] = (u, e);
        cursor[v.index()] += 1;
    }
    for v in 0..n {
        csr[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable_by_key(|&(w, _)| w);
    }
    (offsets, csr)
}

impl SocialNetwork {
    /// Creates an empty (zero-vertex) frozen network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Validates an in-insertion-order edge table against `keywords.len()`
    /// vertices and freezes it into a CSR store. Edge `i` of the table gets
    /// [`EdgeId`] `i`; endpoints are canonicalised to `u < v` and the directed
    /// weights follow. This is the single construction path shared by the
    /// builder, the snapshot loaders and the structural-update helpers.
    pub(crate) fn assemble(
        keywords: Vec<KeywordSet>,
        edge_table: Vec<(VertexId, VertexId, Weight, Weight)>,
    ) -> GraphResult<Self> {
        let n = keywords.len();
        let mut edges = Vec::with_capacity(edge_table.len());
        let mut weight_forward = Vec::with_capacity(edge_table.len());
        let mut weight_backward = Vec::with_capacity(edge_table.len());
        let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(edge_table.len());
        for (u, v, p_uv, p_vu) in edge_table {
            if u.index() >= n {
                return Err(GraphError::UnknownVertex(u));
            }
            if v.index() >= n {
                return Err(GraphError::UnknownVertex(v));
            }
            if u == v {
                return Err(GraphError::SelfLoop(u));
            }
            if !is_valid_probability(p_uv) {
                return Err(GraphError::InvalidWeight { u, v, weight: p_uv });
            }
            if !is_valid_probability(p_vu) {
                return Err(GraphError::InvalidWeight {
                    u: v,
                    v: u,
                    weight: p_vu,
                });
            }
            let (lo, hi) = if u < v { (u, v) } else { (v, u) };
            if !seen.insert((lo.0, hi.0)) {
                return Err(GraphError::DuplicateEdge(u, v));
            }
            let (p_lo_hi, p_hi_lo) = if u < v { (p_uv, p_vu) } else { (p_vu, p_uv) };
            edges.push((lo, hi));
            weight_forward.push(p_lo_hi);
            weight_backward.push(p_hi_lo);
        }
        let (offsets, csr) = build_csr(n, &edges);
        let mut network = SocialNetwork {
            offsets: offsets.into(),
            csr: csr.into(),
            csr_out_weight: FlatVec::default(),
            edges: edges.into(),
            weight_forward: weight_forward.into(),
            weight_backward: weight_backward.into(),
            keywords: Arc::new(keywords),
            overlay: None,
        };
        network.refresh_csr_out_weights();
        Ok(network)
    }

    /// Assembles a frozen network directly from already-validated flat parts
    /// (the binary snapshot loader, which has checked every structural
    /// invariant and hands over zero-copy views where possible).
    pub(crate) fn from_snapshot_parts(
        offsets: FlatVec<u32>,
        csr: FlatVec<(VertexId, EdgeId)>,
        csr_out_weight: FlatVec<Weight>,
        edges: FlatVec<(VertexId, VertexId)>,
        weight_forward: FlatVec<Weight>,
        weight_backward: FlatVec<Weight>,
        keywords: Vec<KeywordSet>,
    ) -> Self {
        SocialNetwork {
            offsets,
            csr,
            csr_out_weight,
            edges,
            weight_forward,
            weight_backward,
            keywords: Arc::new(keywords),
            overlay: None,
        }
    }

    /// Borrowed view of every flat array (see [`GraphParts`]). The view
    /// covers the frozen **base** only; callers that need the full logical
    /// graph as flat arrays (the binary snapshot writer) must
    /// [`compact`](SocialNetwork::compact) first.
    pub fn raw_parts(&self) -> GraphParts<'_> {
        GraphParts {
            offsets: &self.offsets,
            csr: &self.csr,
            csr_out_weights: &self.csr_out_weight,
            edges: &self.edges,
            weight_forward: &self.weight_forward,
            weight_backward: &self.weight_backward,
            keywords: &self.keywords[..],
        }
    }

    /// Converts every owned base array to `Arc`-shared storage in place
    /// (O(1) per array), so [`Clone`] copies nothing but refcounts. Streamed
    /// structural updates only touch the overlay — the base arrays stay
    /// frozen until [`compact`](SocialNetwork::compact) rebuilds them as
    /// owned vectors, after which callers re-share. Mapped (snapshot-backed)
    /// arrays are already cheap to clone and are left untouched.
    pub fn share_sections(&mut self) {
        self.offsets.share();
        self.csr.share();
        self.csr_out_weight.share();
        self.edges.share();
        self.weight_forward.share();
        self.weight_backward.share();
    }

    /// Returns `true` if any flat array is a zero-copy view into a loaded
    /// binary snapshot (attribute mutation copies on first write).
    pub fn is_snapshot_backed(&self) -> bool {
        self.offsets.is_mapped()
            || self.csr.is_mapped()
            || self.csr_out_weight.is_mapped()
            || self.edges.is_mapped()
            || self.weight_forward.is_mapped()
            || self.weight_backward.is_mapped()
    }

    /// Returns `true` if any flat array views an actual `mmap(2)` of the
    /// snapshot file (the buffered fallback also produces snapshot-backed
    /// views, but over a heap region).
    pub fn is_mmap_backed(&self) -> bool {
        self.offsets.is_file_mapped()
            || self.csr.is_file_mapped()
            || self.csr_out_weight.is_file_mapped()
            || self.edges.is_file_mapped()
            || self.weight_forward.is_file_mapped()
            || self.weight_backward.is_file_mapped()
    }

    /// An FNV-1a fingerprint of the complete graph content (topology,
    /// weights bit patterns, keywords). Two graphs with equal fingerprints
    /// are byte-identical in every flat array — the bit-identity check used
    /// by the snapshot round-trip tests and the `bench4` loader comparison.
    pub fn content_fingerprint(&self) -> u64 {
        let mut h = fnv1a(b"icde-graph-content-v1");
        let word = |h: u64, v: u64| fnv1a_extend(h, &v.to_le_bytes());
        h = word(h, self.num_vertices() as u64);
        h = word(h, self.num_edges() as u64);
        for &o in self.offsets.iter() {
            h = word(h, u64::from(o));
        }
        for &(n, e) in self.csr.iter() {
            h = word(h, u64::from(n.0) << 32 | u64::from(e.0));
        }
        for &w in self.csr_out_weight.iter() {
            h = word(h, w.to_bits());
        }
        for &(u, v) in self.edges.iter() {
            h = word(h, u64::from(u.0) << 32 | u64::from(v.0));
        }
        for &w in self.weight_forward.iter() {
            h = word(h, w.to_bits());
        }
        for &w in self.weight_backward.iter() {
            h = word(h, w.to_bits());
        }
        for set in self.keywords.iter() {
            h = word(h, set.len() as u64);
            for kw in set.iter() {
                h = word(h, u64::from(kw.0));
            }
        }
        // overlay state folds in after the base so an overlay-free graph
        // keeps the exact byte path (and fingerprint) of earlier versions
        if let Some(o) = self.overlay.as_deref() {
            if !o.is_empty() {
                h = fnv1a_extend(h, b"overlay");
                let mut dead: Vec<u32> = o.tombstones.iter().copied().collect();
                dead.sort_unstable();
                h = word(h, dead.len() as u64);
                for id in dead {
                    h = word(h, u64::from(id));
                }
                h = word(h, o.extra_edges.len() as u64);
                for (i, &(u, v)) in o.extra_edges.iter().enumerate() {
                    h = word(h, u64::from(u.0) << 32 | u64::from(v.0));
                    h = word(h, o.extra_weight_forward[i].to_bits());
                    h = word(h, o.extra_weight_backward[i].to_bits());
                }
            }
        }
        h
    }

    /// Recomputes the packed per-slot outgoing weights from the directed
    /// weight tables in one O(m) pass.
    fn refresh_csr_out_weights(&mut self) {
        let mut out = vec![0.0; self.csr.len()];
        for (slot, value) in out.iter_mut().enumerate() {
            // a slot pointing at the higher endpoint lives in the lower
            // endpoint's row, so the outgoing direction is forward
            let (n, e) = self.csr[slot];
            let (_, hi) = self.edges[e.index()];
            *value = if n == hi {
                self.weight_forward[e.index()]
            } else {
                self.weight_backward[e.index()]
            };
        }
        self.csr_out_weight = out.into();
    }

    /// Number of vertices `|V(G)|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.keywords.len()
    }

    /// Number of **live** undirected edges `|E(G)|` (tombstoned edges
    /// excluded).
    #[inline]
    pub fn num_edges(&self) -> usize {
        match self.overlay.as_deref() {
            None => self.edges.len(),
            Some(o) => self.edges.len() + o.extra_edges.len() - o.tombstones.len(),
        }
    }

    /// Size of the edge-**id** space: one more than the largest id ever
    /// handed out, including tombstoned ids (which are never reused until
    /// [`compact`](SocialNetwork::compact)). Dense edge-indexed side arrays
    /// must be sized by this, not by [`num_edges`](SocialNetwork::num_edges).
    #[inline]
    pub fn edge_id_space(&self) -> usize {
        self.edges.len() + self.overlay.as_deref().map_or(0, |o| o.extra_edges.len())
    }

    /// `true` when structural updates are pending in the delta overlay (the
    /// graph differs from its frozen CSR base).
    pub fn has_overlay(&self) -> bool {
        self.overlay.as_deref().is_some_and(|o| !o.is_empty())
    }

    /// Overlay size relative to the base edge count: `(tombstones + inserted
    /// edges) / base_m`. The [`maybe_compact`](SocialNetwork::maybe_compact)
    /// trigger.
    pub fn overlay_fraction(&self) -> f64 {
        match self.overlay.as_deref() {
            None => 0.0,
            Some(o) => {
                (o.tombstones.len() + o.extra_edges.len()) as f64 / self.edges.len().max(1) as f64
            }
        }
    }

    /// Returns `true` if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.keywords.is_empty()
    }

    /// Returns `true` if `v` is a valid vertex id of this graph.
    #[inline]
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        v.index() < self.keywords.len()
    }

    /// Iterates over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.keywords.len()).map(VertexId::from_index)
    }

    /// Iterates over the **live** edges as `(edge id, u, v)` with `u < v`,
    /// in ascending id order (base edges first, then overlay insertions;
    /// tombstoned ids are skipped).
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, VertexId, VertexId)> + '_ {
        let extras: &[(VertexId, VertexId)] =
            self.overlay.as_deref().map_or(&[], |o| &o.extra_edges);
        self.edges
            .iter()
            .chain(extras.iter())
            .enumerate()
            .filter(move |&(i, _)| !self.is_tombstoned(EdgeId::from_index(i)))
            .map(|(i, &(u, v))| (EdgeId::from_index(i), u, v))
    }

    /// `true` if `e`'s id has been retired by
    /// [`apply_edge_removed`](SocialNetwork::apply_edge_removed).
    #[inline]
    fn is_tombstoned(&self, e: EdgeId) -> bool {
        self.overlay.as_deref().is_some_and(|o| o.is_tombstoned(e))
    }

    /// Returns the edge id between `u` and `v`, if any (binary search of the
    /// shorter row's cursor).
    pub fn edge_between(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        if !self.contains_vertex(u) || !self.contains_vertex(v) {
            return None;
        }
        let (probe, key) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(probe).find(key)
    }

    /// Returns `true` if `{u, v}` is an edge.
    pub fn contains_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// Returns the canonical endpoints `(u, v)` with `u < v` of an edge
    /// (base or overlay id; tombstoned ids keep their endpoints until
    /// compaction).
    #[inline]
    pub fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        if e.index() < self.edges.len() {
            self.edges[e.index()]
        } else {
            self.overlay
                .as_deref()
                .expect("extra edge id implies an overlay")
                .extra_edges[e.index() - self.edges.len()]
        }
    }

    /// Directed activation probability `p_{u→v}` along an existing edge.
    ///
    /// Returns an error if `{u, v}` is not an edge.
    pub fn activation_probability(&self, u: VertexId, v: VertexId) -> GraphResult<Weight> {
        let eid = self
            .edge_between(u, v)
            .ok_or(GraphError::MissingEdge(u, v))?;
        Ok(self.directed_weight(eid, u))
    }

    /// Directed activation probability along edge `e` when leaving from
    /// `from` (which must be one of the endpoints).
    #[inline]
    pub fn directed_weight(&self, e: EdgeId, from: VertexId) -> Weight {
        if e.index() < self.edges.len() {
            let (lo, _hi) = self.edges[e.index()];
            if from == lo {
                self.weight_forward[e.index()]
            } else {
                self.weight_backward[e.index()]
            }
        } else {
            let o = self
                .overlay
                .as_deref()
                .expect("extra edge id implies an overlay");
            let i = e.index() - self.edges.len();
            let (lo, _hi) = o.extra_edges[i];
            if from == lo {
                o.extra_weight_forward[i]
            } else {
                o.extra_weight_backward[i]
            }
        }
    }

    /// Degree of a vertex: an offset subtraction, plus two O(1) overlay
    /// lookups when updates are pending.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let base = (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize;
        match self.overlay.as_deref() {
            None => base,
            Some(o) => base - o.removed_in_row(v) + o.run(v).len(),
        }
    }

    /// Average degree over all vertices (`avg_deg` in the complexity
    /// analyses), 0.0 for the empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.keywords.is_empty() {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Maximum degree over all vertices.
    pub fn max_degree(&self) -> usize {
        if self.has_overlay() {
            self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
        } else {
            self.offsets
                .windows(2)
                .map(|w| (w[1] - w[0]) as usize)
                .max()
                .unwrap_or(0)
        }
    }

    /// The base CSR row of `v` (pre-overlay adjacency).
    #[inline]
    fn base_row(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        &self.csr[self.offsets[v.index()] as usize..self.offsets[v.index() + 1] as usize]
    }

    /// The neighbours of `v` as a [`Neighbors`] cursor over `(neighbour,
    /// edge id)` pairs in ascending neighbour order. For rows without
    /// pending overlay entries — every row of an overlay-free graph — the
    /// cursor is the contiguous CSR slice ([`Neighbors::Slice`]).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> Neighbors<'_> {
        match self.overlay.as_deref() {
            None => Neighbors::Slice(self.base_row(v)),
            Some(o) if !o.row_is_patched(v) => Neighbors::Slice(self.base_row(v)),
            Some(o) => Neighbors::Merged {
                base: self.base_row(v),
                run: o.run(v),
                tombstones: &o.tombstones,
            },
        }
    }

    /// Iterates over the neighbours of `v` together with the *outgoing*
    /// activation probability `p_{v→n}`. Overlay-free rows zip the two
    /// contiguous CSR slices (no per-neighbour edge-table lookup); patched
    /// rows merge in the run entries, which carry their weights inline.
    pub fn outgoing(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let range = self.offsets[v.index()] as usize..self.offsets[v.index() + 1] as usize;
        match self.overlay.as_deref() {
            Some(o) if o.row_is_patched(v) => Outgoing::Merged {
                base: &self.csr[range.clone()],
                base_w: &self.csr_out_weight[range],
                run: o.run(v),
                tombstones: &o.tombstones,
                bi: 0,
                ri: 0,
            },
            _ => Outgoing::Slice(
                self.csr[range.clone()]
                    .iter()
                    .zip(&self.csr_out_weight[range]),
            ),
        }
    }

    /// Keyword set `v.W` of a vertex.
    #[inline]
    pub fn keyword_set(&self, v: VertexId) -> &KeywordSet {
        &self.keywords[v.index()]
    }

    /// Replaces the keyword set of a vertex (used by the generators when
    /// keywords are assigned after the topology is frozen; attribute-only,
    /// the CSR structure is untouched).
    pub fn set_keyword_set(&mut self, v: VertexId, keywords: KeywordSet) {
        Arc::make_mut(&mut self.keywords)[v.index()] = keywords;
    }

    /// Overwrites both directed weights of an existing edge (attribute-only,
    /// the CSR structure is untouched).
    pub fn set_edge_weights(
        &mut self,
        e: EdgeId,
        p_forward: Weight,
        p_backward: Weight,
    ) -> GraphResult<()> {
        let (lo, hi) = self.edge_endpoints(e);
        if !is_valid_probability(p_forward) {
            return Err(GraphError::InvalidWeight {
                u: lo,
                v: hi,
                weight: p_forward,
            });
        }
        if !is_valid_probability(p_backward) {
            return Err(GraphError::InvalidWeight {
                u: hi,
                v: lo,
                weight: p_backward,
            });
        }
        if e.index() < self.edges.len() {
            self.weight_forward.to_mut()[e.index()] = p_forward;
            self.weight_backward.to_mut()[e.index()] = p_backward;
            // keep the packed per-slot outgoing weights in sync: the forward
            // direction leaves lo's row (slot pointing at hi) and vice versa
            self.patch_out_weight(lo, hi, p_forward);
            self.patch_out_weight(hi, lo, p_backward);
        } else {
            let base_m = self.edges.len();
            let o = self
                .overlay
                .as_deref_mut()
                .expect("extra edge id implies an overlay");
            let i = e.index() - base_m;
            o.extra_weight_forward[i] = p_forward;
            o.extra_weight_backward[i] = p_backward;
            // the run entries carry the outgoing weights inline
            o.patch_run_weight(lo, e, p_forward);
            o.patch_run_weight(hi, e, p_backward);
        }
        Ok(())
    }

    /// Overwrites the directed weights of many edges at once (attribute-only,
    /// the CSR structure is untouched). Validates every update before
    /// applying any, then refreshes the packed per-slot weights in one O(m)
    /// pass — the generators re-draw *every* edge after freezing, where
    /// per-edge [`set_edge_weights`] would pay two binary searches per edge.
    ///
    /// [`set_edge_weights`]: SocialNetwork::set_edge_weights
    pub fn set_edge_weights_bulk(
        &mut self,
        updates: &[(EdgeId, Weight, Weight)],
    ) -> GraphResult<()> {
        for &(e, p_forward, p_backward) in updates {
            let (lo, hi) = self.edge_endpoints(e);
            if !is_valid_probability(p_forward) {
                return Err(GraphError::InvalidWeight {
                    u: lo,
                    v: hi,
                    weight: p_forward,
                });
            }
            if !is_valid_probability(p_backward) {
                return Err(GraphError::InvalidWeight {
                    u: hi,
                    v: lo,
                    weight: p_backward,
                });
            }
        }
        let base_m = self.edges.len();
        for &(e, p_forward, p_backward) in updates {
            if e.index() < base_m {
                self.weight_forward.to_mut()[e.index()] = p_forward;
                self.weight_backward.to_mut()[e.index()] = p_backward;
            } else {
                let (lo, hi) = self.edge_endpoints(e);
                let o = self
                    .overlay
                    .as_deref_mut()
                    .expect("extra edge id implies an overlay");
                let i = e.index() - base_m;
                o.extra_weight_forward[i] = p_forward;
                o.extra_weight_backward[i] = p_backward;
                o.patch_run_weight(lo, e, p_forward);
                o.patch_run_weight(hi, e, p_backward);
            }
        }
        self.refresh_csr_out_weights();
        Ok(())
    }

    /// Overwrites the packed outgoing weight of the slot in `from`'s row that
    /// points at `to` (the slot exists for every edge endpoint pair).
    fn patch_out_weight(&mut self, from: VertexId, to: VertexId, weight: Weight) {
        let start = self.offsets[from.index()] as usize;
        let row = &self.csr[start..self.offsets[from.index() + 1] as usize];
        let pos = row
            .binary_search_by_key(&to, |&(n, _)| n)
            .expect("endpoints of an existing edge are mutual neighbours");
        self.csr_out_weight.to_mut()[start + pos] = weight;
    }

    /// Inserts the edge `{u, v}` as a delta-overlay patch: the CSR base is
    /// untouched, the edge gets the next fresh id
    /// ([`edge_id_space`](SocialNetwork::edge_id_space)), and a sorted run
    /// entry is spliced into each endpoint's row — O(degree · log degree),
    /// not O(n + m). Returns the new edge's id.
    pub fn apply_edge_inserted(
        &mut self,
        u: VertexId,
        v: VertexId,
        p_uv: Weight,
        p_vu: Weight,
    ) -> GraphResult<EdgeId> {
        if !self.contains_vertex(u) {
            return Err(GraphError::UnknownVertex(u));
        }
        if !self.contains_vertex(v) {
            return Err(GraphError::UnknownVertex(v));
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if !is_valid_probability(p_uv) {
            return Err(GraphError::InvalidWeight { u, v, weight: p_uv });
        }
        if !is_valid_probability(p_vu) {
            return Err(GraphError::InvalidWeight {
                u: v,
                v: u,
                weight: p_vu,
            });
        }
        if self.contains_edge(u, v) {
            return Err(GraphError::DuplicateEdge(u, v));
        }
        let e = EdgeId::from_index(self.edge_id_space());
        let (lo, hi) = if u < v { (u, v) } else { (v, u) };
        let (p_lo_hi, p_hi_lo) = if u < v { (p_uv, p_vu) } else { (p_vu, p_uv) };
        let o = self.overlay.get_or_insert_with(Default::default);
        o.extra_edges.push((lo, hi));
        o.extra_weight_forward.push(p_lo_hi);
        o.extra_weight_backward.push(p_hi_lo);
        o.insert_run_entry(lo, hi, e, p_lo_hi);
        o.insert_run_entry(hi, lo, e, p_hi_lo);
        Ok(e)
    }

    /// Removes the edge `{u, v}` as a delta-overlay patch: its id is
    /// tombstoned (retired, never reused until
    /// [`compact`](SocialNetwork::compact)), so edge-indexed side data for
    /// the surviving edges stays valid. O(degree) for overlay-inserted
    /// edges, O(1) for base edges. Returns the removed edge's id.
    pub fn apply_edge_removed(&mut self, u: VertexId, v: VertexId) -> GraphResult<EdgeId> {
        let e = self
            .edge_between(u, v)
            .ok_or(GraphError::MissingEdge(u, v))?;
        let base_m = self.edges.len();
        let (lo, hi) = self.edge_endpoints(e);
        let o = self.overlay.get_or_insert_with(Default::default);
        o.tombstones.insert(e.0);
        if e.index() < base_m {
            // a base edge: its CSR slots stay but become invisible
            *o.removed_in_row.entry(lo.0).or_insert(0) += 1;
            *o.removed_in_row.entry(hi.0).or_insert(0) += 1;
        } else {
            // an overlay edge: drop its run entries (runs hold live edges
            // only); the extras slot stays so ids above it don't shift
            o.remove_run_entry(lo, e);
            o.remove_run_entry(hi, e);
        }
        Ok(e)
    }

    /// Folds the delta overlay back into a fresh frozen CSR: live edges keep
    /// their relative order and pack densely into ids `0..num_edges()`. The
    /// only remaining O(n + m) step of the update path, amortised by
    /// [`maybe_compact`](SocialNetwork::maybe_compact). Returns the old→new
    /// [`EdgeIdRemap`] for edge-indexed side data (identity if the overlay
    /// was empty).
    pub fn compact(&mut self) -> EdgeIdRemap {
        if !self.has_overlay() {
            self.overlay = None;
            return EdgeIdRemap::identity(self.edges.len());
        }
        let id_space = self.edge_id_space();
        let mut map = vec![u32::MAX; id_space];
        let mut table = Vec::with_capacity(self.num_edges());
        for (e, u, v) in self.edges() {
            map[e.index()] = table.len() as u32;
            table.push((u, v, self.directed_weight(e, u), self.directed_weight(e, v)));
        }
        let live = table.len();
        let keywords = std::mem::take(&mut self.keywords);
        // A snapshot may still hold the keyword Arc; compaction is already
        // O(n + m), so falling back to one clone is fine.
        let keywords = Arc::try_unwrap(keywords).unwrap_or_else(|arc| (*arc).clone());
        *self = Self::assemble(keywords, table)
            .expect("live edges of a valid graph re-assemble cleanly");
        EdgeIdRemap::from_map(map, live)
    }

    /// Compacts when the overlay exceeds `threshold` as a fraction of the
    /// base edge count (see
    /// [`overlay_fraction`](SocialNetwork::overlay_fraction) and
    /// [`DEFAULT_COMPACT_THRESHOLD`]); returns the remap when it fired.
    pub fn maybe_compact(&mut self, threshold: f64) -> Option<EdgeIdRemap> {
        (self.overlay_fraction() > threshold).then(|| self.compact())
    }

    /// Clone-and-patch convenience around
    /// [`apply_edge_inserted`](SocialNetwork::apply_edge_inserted): returns
    /// an updated copy, leaving `self` untouched. Existing edge ids are
    /// preserved; the new edge receives the next fresh id.
    pub fn with_edge_inserted(
        &self,
        u: VertexId,
        v: VertexId,
        p_uv: Weight,
        p_vu: Weight,
    ) -> GraphResult<SocialNetwork> {
        let mut updated = self.clone();
        updated.apply_edge_inserted(u, v, p_uv, p_vu)?;
        Ok(updated)
    }

    /// Clone-and-patch convenience around
    /// [`apply_edge_removed`](SocialNetwork::apply_edge_removed): returns an
    /// updated copy and the removed edge's id. Surviving edges **keep their
    /// ids** (the removed id is tombstoned, not reused) — edge-indexed side
    /// data stays valid, unlike the pre-overlay rebuild which shifted every
    /// id above the removed edge.
    pub fn with_edge_removed(
        &self,
        u: VertexId,
        v: VertexId,
    ) -> GraphResult<(SocialNetwork, EdgeId)> {
        let mut updated = self.clone();
        let removed = updated.apply_edge_removed(u, v)?;
        Ok((updated, removed))
    }

    /// The live canonical edge table with weights, in edge-id order, as a
    /// borrowing iterator — only [`compact`](SocialNetwork::compact) and the
    /// snapshot writers ever materialise it.
    pub fn edge_table_iter(
        &self,
    ) -> impl Iterator<Item = (VertexId, VertexId, Weight, Weight)> + '_ {
        self.edges()
            .map(|(e, u, v)| (u, v, self.directed_weight(e, u), self.directed_weight(e, v)))
    }

    /// Counts the number of common neighbours of `u` and `v` (the number of
    /// triangles through the edge `{u, v}` when they are adjacent).
    ///
    /// Linear merge over the two sorted rows (raw-slice merge when neither
    /// row has overlay entries).
    pub fn common_neighbor_count(&self, u: VertexId, v: VertexId) -> usize {
        merge_count_cursors(self.neighbors(u), self.neighbors(v))
    }

    /// Counts common neighbours of `u` and `v` with id strictly greater than
    /// `floor` — the ordered-enumeration primitive of triangle counting
    /// (count each triangle `{a < b < c}` at its smallest edge). Binary
    /// searches skip both rows to `floor` before merging.
    pub fn common_neighbor_count_above(&self, u: VertexId, v: VertexId, floor: VertexId) -> usize {
        merge_count_cursors(
            self.neighbors(u).suffix_above(floor),
            self.neighbors(v).suffix_above(floor),
        )
    }

    /// Collects the common neighbours of `u` and `v`.
    pub fn common_neighbors(&self, u: VertexId, v: VertexId) -> Vec<VertexId> {
        let mut out = Vec::new();
        self.for_each_common_neighbor(u, v, |w, _, _| out.push(w));
        out
    }

    /// Visits every common neighbour `w` of `u` and `v` together with the
    /// connecting edge ids `(w, e_{u,w}, e_{v,w})` in one merge — the peeling
    /// loops use this to avoid two extra `edge_between` binary searches per
    /// triangle.
    pub fn for_each_common_neighbor<F: FnMut(VertexId, EdgeId, EdgeId)>(
        &self,
        u: VertexId,
        v: VertexId,
        mut f: F,
    ) {
        let ca = self.neighbors(u);
        let cb = self.neighbors(v);
        if let (Some(a), Some(b)) = (ca.as_slice(), cb.as_slice()) {
            // overlay-free fast path: the original two-slice merge
            let (mut i, mut j) = (0usize, 0usize);
            while i < a.len() && j < b.len() {
                match a[i].0.cmp(&b[j].0) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        f(a[i].0, a[i].1, b[j].1);
                        i += 1;
                        j += 1;
                    }
                }
            }
            return;
        }
        let mut ai = ca.iter();
        let mut bi = cb.iter();
        let (mut x, mut y) = (ai.next(), bi.next());
        while let (Some((an, ae)), Some((bn, be))) = (x, y) {
            match an.cmp(&bn) {
                std::cmp::Ordering::Less => x = ai.next(),
                std::cmp::Ordering::Greater => y = bi.next(),
                std::cmp::Ordering::Equal => {
                    f(an, ae, be);
                    x = ai.next();
                    y = bi.next();
                }
            }
        }
    }
}

/// Counts matching neighbour ids in a merge over two sorted cursors,
/// dispatching to the raw two-slice merge when both rows are overlay-free.
fn merge_count_cursors(a: Neighbors<'_>, b: Neighbors<'_>) -> usize {
    match (a.as_slice(), b.as_slice()) {
        (Some(a), Some(b)) => merge_count(a, b),
        _ => {
            let mut ai = a.iter();
            let mut bi = b.iter();
            let (mut x, mut y) = (ai.next(), bi.next());
            let mut count = 0usize;
            while let (Some((an, _)), Some((bn, _))) = (x, y) {
                match an.cmp(&bn) {
                    std::cmp::Ordering::Less => x = ai.next(),
                    std::cmp::Ordering::Greater => y = bi.next(),
                    std::cmp::Ordering::Equal => {
                        count += 1;
                        x = ai.next();
                        y = bi.next();
                    }
                }
            }
            count
        }
    }
}

/// Counts matching neighbour ids in a merge over two sorted CSR slices.
fn merge_count(a: &[(VertexId, EdgeId)], b: &[(VertexId, EdgeId)]) -> usize {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

// ---------------------------------------------------------------------------
// Versioned persistence
// ---------------------------------------------------------------------------

/// Serialises as the **version-2 snapshot**: the canonical edge table plus
/// attributes. The CSR arrays are derived data and are rebuilt on load, which
/// keeps snapshots smaller than the PR-1 layout (no redundant adjacency) and
/// makes it impossible for a hand-edited file to desynchronise adjacency from
/// the edge table. A pending delta overlay is folded into the written edge
/// table (live edges in id order), so loading acts as an implicit compaction:
/// edge ids are renumbered exactly as [`SocialNetwork::compact`] would.
impl Serialize for SocialNetwork {
    fn to_value(&self) -> Value {
        let (edges, weight_forward, weight_backward) = if self.has_overlay() {
            let mut edges = Vec::with_capacity(self.num_edges());
            let mut wf = Vec::with_capacity(self.num_edges());
            let mut wb = Vec::with_capacity(self.num_edges());
            for (u, v, f, b) in self.edge_table_iter() {
                edges.push((u, v));
                wf.push(f);
                wb.push(b);
            }
            (edges.to_value(), wf.to_value(), wb.to_value())
        } else {
            (
                self.edges.as_slice().to_value(),
                self.weight_forward.as_slice().to_value(),
                self.weight_backward.as_slice().to_value(),
            )
        };
        Value::Object(vec![
            (
                "format_version".to_string(),
                Value::UInt(u64::from(GRAPH_FORMAT_VERSION)),
            ),
            (
                "num_vertices".to_string(),
                Value::UInt(self.num_vertices() as u64),
            ),
            ("edges".to_string(), edges),
            ("weight_forward".to_string(), weight_forward),
            ("weight_backward".to_string(), weight_backward),
            ("keywords".to_string(), self.keywords.to_value()),
        ])
    }
}

/// Accepts both snapshot versions:
///
/// * **v2** (`format_version: 2`) — edge table + attributes, CSR rebuilt,
/// * **v1** (`format_version: 1` or no marker field, has `adjacency`) — the
///   PR-1 adjacency-list layout; the stored adjacency is ignored and rebuilt
///   from the edge table.
impl Deserialize for SocialNetwork {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let version = match v.get("format_version") {
            Some(raw) => Some(
                u32::from_value(raw)
                    .map_err(|e| DeError(format!("SocialNetwork.format_version: {e}")))?,
            ),
            // PR-1 snapshots carry no marker field; the adjacency-list layout
            // identifies them.
            None if v.get("adjacency").is_some() => Some(1),
            None => None,
        };
        let (num_vertices, edges, weight_forward, weight_backward, keywords) = match version {
            Some(2) => (
                serde::__de_field::<u64>(v, "SocialNetwork", "num_vertices")? as usize,
                serde::__de_field::<Vec<(VertexId, VertexId)>>(v, "SocialNetwork", "edges")?,
                serde::__de_field::<Vec<f64>>(v, "SocialNetwork", "weight_forward")?,
                serde::__de_field::<Vec<f64>>(v, "SocialNetwork", "weight_backward")?,
                serde::__de_field::<Vec<KeywordSet>>(v, "SocialNetwork", "keywords")?,
            ),
            Some(1) => {
                // v1: vertex count comes from the adjacency-list length.
                let n = match v.get("adjacency") {
                    Some(Value::Array(rows)) => rows.len(),
                    Some(other) => return Err(DeError::expected("array", other)),
                    None => {
                        return Err(DeError(
                            "SocialNetwork: format_version 1 snapshot without adjacency"
                                .to_string(),
                        ))
                    }
                };
                (
                    n,
                    serde::__de_field::<Vec<(VertexId, VertexId)>>(v, "SocialNetwork", "edges")?,
                    serde::__de_field::<Vec<f64>>(v, "SocialNetwork", "weight_forward")?,
                    serde::__de_field::<Vec<f64>>(v, "SocialNetwork", "weight_backward")?,
                    serde::__de_field::<Vec<KeywordSet>>(v, "SocialNetwork", "keywords")?,
                )
            }
            Some(version) => {
                return Err(DeError(format!(
                    "unsupported graph format_version {version} (this build reads \
                     versions 1–{GRAPH_FORMAT_VERSION})"
                )))
            }
            None => {
                return Err(DeError(
                    "SocialNetwork: neither format_version (v2) nor adjacency (v1) present"
                        .to_string(),
                ))
            }
        };
        if keywords.len() != num_vertices {
            return Err(DeError(format!(
                "SocialNetwork: {} keyword sets for {num_vertices} vertices",
                keywords.len()
            )));
        }
        if edges.len() != weight_forward.len() || edges.len() != weight_backward.len() {
            return Err(DeError(format!(
                "SocialNetwork: {} edges but {}/{} directed weights",
                edges.len(),
                weight_forward.len(),
                weight_backward.len()
            )));
        }
        let table = edges
            .into_iter()
            .zip(weight_forward.into_iter().zip(weight_backward))
            .map(|((u, v), (wf, wb))| (u, v, wf, wb))
            .collect();
        SocialNetwork::assemble(keywords, table)
            .map_err(|e| DeError(format!("SocialNetwork: invalid snapshot: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::keywords::KeywordSet;

    fn triangle() -> SocialNetwork {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex(KeywordSet::from_ids([1]));
        let bb = b.add_vertex(KeywordSet::from_ids([1, 2]));
        let c = b.add_vertex(KeywordSet::from_ids([2]));
        b.add_edge(a, bb, 0.8, 0.7);
        b.add_edge(bb, c, 0.6, 0.5);
        b.add_edge(a, c, 0.9, 0.9);
        b.build().unwrap()
    }

    #[test]
    fn empty_graph() {
        let g = SocialNetwork::new();
        assert!(g.is_empty());
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn freeze_builds_csr() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(VertexId(0)), 2);
        assert_eq!(g.average_degree(), 2.0);
        assert_eq!(g.max_degree(), 2);
        assert!(g.contains_edge(VertexId(0), VertexId(1)));
        assert!(g.contains_edge(VertexId(1), VertexId(0)));
        assert!(!g.contains_edge(VertexId(0), VertexId(3)));
    }

    #[test]
    fn neighbor_slices_are_sorted_and_contiguous() {
        let g = triangle();
        // overlay-free rows are raw slices tiling the single CSR allocation
        let base = g.csr.as_ptr();
        let mut expected_offset = 0usize;
        for v in g.vertices() {
            let row = g
                .neighbors(v)
                .as_slice()
                .expect("overlay-free rows take the slice fast path");
            assert!(row.windows(2).all(|w| w[0].0 < w[1].0), "row sorted");
            assert_eq!(
                row.as_ptr() as usize - base as usize,
                expected_offset * std::mem::size_of::<(VertexId, EdgeId)>()
            );
            expected_offset += row.len();
        }
        assert_eq!(expected_offset, 2 * g.num_edges());
    }

    #[test]
    fn directed_weights_are_kept_per_direction() {
        let g = triangle();
        let (a, b) = (VertexId(0), VertexId(1));
        assert_eq!(g.activation_probability(a, b).unwrap(), 0.8);
        assert_eq!(g.activation_probability(b, a).unwrap(), 0.7);
        // edge added as (b, c) with p_bc = 0.6, p_cb = 0.5
        assert_eq!(
            g.activation_probability(VertexId(1), VertexId(2)).unwrap(),
            0.6
        );
        assert_eq!(
            g.activation_probability(VertexId(2), VertexId(1)).unwrap(),
            0.5
        );
    }

    #[test]
    fn outgoing_iterates_with_weights() {
        let g = triangle();
        let out: Vec<(VertexId, f64)> = g.outgoing(VertexId(0)).collect();
        assert_eq!(out, vec![(VertexId(1), 0.8), (VertexId(2), 0.9)]);
    }

    #[test]
    fn missing_edge_weight_lookup_errors() {
        let mut b = GraphBuilder::with_vertices(4);
        b.add_symmetric_edge(VertexId(0), VertexId(1), 0.5);
        let g = b.build().unwrap();
        assert!(matches!(
            g.activation_probability(VertexId(0), VertexId(3)),
            Err(GraphError::MissingEdge(..))
        ));
        assert_eq!(g.edge_between(VertexId(0), VertexId(9)), None);
    }

    #[test]
    fn common_neighbors_of_triangle_edge() {
        let g = triangle();
        assert_eq!(g.common_neighbor_count(VertexId(0), VertexId(1)), 1);
        assert_eq!(
            g.common_neighbors(VertexId(0), VertexId(1)),
            vec![VertexId(2)]
        );
        // only vertex 2 > 1 qualifies above floor 1; nothing above floor 2
        assert_eq!(
            g.common_neighbor_count_above(VertexId(0), VertexId(1), VertexId(1)),
            1
        );
        assert_eq!(
            g.common_neighbor_count_above(VertexId(0), VertexId(1), VertexId(2)),
            0
        );
    }

    #[test]
    fn for_each_common_neighbor_yields_both_edge_ids() {
        let g = triangle();
        let mut seen = Vec::new();
        g.for_each_common_neighbor(VertexId(0), VertexId(1), |w, e_uw, e_vw| {
            seen.push((w, e_uw, e_vw));
        });
        assert_eq!(seen.len(), 1);
        let (w, e_uw, e_vw) = seen[0];
        assert_eq!(w, VertexId(2));
        assert_eq!(g.edge_between(VertexId(0), VertexId(2)), Some(e_uw));
        assert_eq!(g.edge_between(VertexId(1), VertexId(2)), Some(e_vw));
    }

    #[test]
    fn keyword_sets_accessible_and_mutable() {
        let mut g = triangle();
        assert!(g.keyword_set(VertexId(0)).contains(crate::Keyword(1)));
        g.set_keyword_set(VertexId(0), KeywordSet::from_ids([7]));
        assert!(g.keyword_set(VertexId(0)).contains(crate::Keyword(7)));
    }

    #[test]
    fn set_edge_weights_validates() {
        let mut g = triangle();
        let e = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        g.set_edge_weights(e, 0.2, 0.3).unwrap();
        assert_eq!(
            g.activation_probability(VertexId(0), VertexId(1)).unwrap(),
            0.2
        );
        assert_eq!(
            g.activation_probability(VertexId(1), VertexId(0)).unwrap(),
            0.3
        );
        // the packed per-slot outgoing weights must be patched too
        assert!(g
            .outgoing(VertexId(0))
            .any(|(n, w)| n == VertexId(1) && w == 0.2));
        assert!(g
            .outgoing(VertexId(1))
            .any(|(n, w)| n == VertexId(0) && w == 0.3));
        assert!(g.set_edge_weights(e, -1.0, 0.5).is_err());
    }

    #[test]
    fn bulk_weight_update_patches_packed_slots() {
        let mut g = triangle();
        let updates: Vec<(EdgeId, f64, f64)> = g
            .edges()
            .map(|(e, _, _)| {
                (
                    e,
                    0.11 + 0.1 * e.index() as f64,
                    0.21 + 0.1 * e.index() as f64,
                )
            })
            .collect();
        g.set_edge_weights_bulk(&updates).unwrap();
        for &(e, wf, wb) in &updates {
            let (lo, hi) = g.edge_endpoints(e);
            assert_eq!(g.activation_probability(lo, hi).unwrap(), wf);
            assert_eq!(g.activation_probability(hi, lo).unwrap(), wb);
            assert!(g.outgoing(lo).any(|(n, w)| n == hi && w == wf));
            assert!(g.outgoing(hi).any(|(n, w)| n == lo && w == wb));
        }
        // an invalid entry anywhere rejects the whole batch before applying
        let before: Vec<f64> = g.outgoing(VertexId(0)).map(|(_, w)| w).collect();
        assert!(g
            .set_edge_weights_bulk(&[(EdgeId(0), 0.5, 0.5), (EdgeId(1), 1.5, 0.5)])
            .is_err());
        let after: Vec<f64> = g.outgoing(VertexId(0)).map(|(_, w)| w).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn packed_outgoing_weights_agree_with_edge_table() {
        let g = triangle();
        for v in g.vertices() {
            let packed: Vec<(VertexId, f64)> = g.outgoing(v).collect();
            let via_table: Vec<(VertexId, f64)> = g
                .neighbors(v)
                .iter()
                .map(|(n, e)| (n, g.directed_weight(e, v)))
                .collect();
            assert_eq!(packed, via_table, "vertex {v}");
        }
    }

    #[test]
    fn edge_iteration_is_canonical() {
        let g = triangle();
        for (e, u, v) in g.edges() {
            assert!(u < v);
            assert_eq!(g.edge_endpoints(e), (u, v));
        }
        assert_eq!(g.edges().count(), 3);
    }

    #[test]
    fn insert_edge_preserves_existing_edge_ids() {
        let mut b = GraphBuilder::with_vertices(4);
        b.add_edge(VertexId(0), VertexId(1), 0.8, 0.7);
        b.add_symmetric_edge(VertexId(1), VertexId(2), 0.6);
        let g = b.build().unwrap();
        let g2 = g
            .with_edge_inserted(VertexId(3), VertexId(0), 0.4, 0.3)
            .unwrap();
        assert_eq!(g2.num_edges(), 3);
        for (e, u, v) in g.edges() {
            assert_eq!(g2.edge_endpoints(e), (u, v));
            assert_eq!(g2.directed_weight(e, u), g.directed_weight(e, u));
        }
        // the new edge got the next id, canonicalised to (0, 3)
        assert_eq!(g2.edge_endpoints(EdgeId(2)), (VertexId(0), VertexId(3)));
        assert_eq!(
            g2.activation_probability(VertexId(3), VertexId(0)).unwrap(),
            0.4
        );
        assert_eq!(
            g2.activation_probability(VertexId(0), VertexId(3)).unwrap(),
            0.3
        );
        // invalid inserts are rejected
        assert!(matches!(
            g2.with_edge_inserted(VertexId(0), VertexId(1), 0.5, 0.5),
            Err(GraphError::DuplicateEdge(..))
        ));
        assert!(matches!(
            g2.with_edge_inserted(VertexId(0), VertexId(9), 0.5, 0.5),
            Err(GraphError::UnknownVertex(_))
        ));
    }

    #[test]
    fn remove_edge_tombstones_without_shifting_ids() {
        let g = triangle();
        let (g2, removed) = g.with_edge_removed(VertexId(1), VertexId(0)).unwrap();
        assert_eq!(removed, EdgeId(0));
        assert_eq!(g2.num_edges(), 2);
        assert_eq!(g2.edge_id_space(), 3, "the tombstoned id is not reused");
        assert!(!g2.contains_edge(VertexId(0), VertexId(1)));
        // surviving edges keep their ids — no shift-down footgun
        assert_eq!(g2.edge_endpoints(EdgeId(1)), (VertexId(1), VertexId(2)));
        assert_eq!(g2.edge_endpoints(EdgeId(2)), (VertexId(0), VertexId(2)));
        assert_eq!(
            g2.edges().map(|(e, _, _)| e).collect::<Vec<_>>(),
            vec![EdgeId(1), EdgeId(2)]
        );
        assert!(matches!(
            g2.with_edge_removed(VertexId(0), VertexId(1)),
            Err(GraphError::MissingEdge(..))
        ));
        // a reinsert gets a fresh id, never the tombstoned one
        let mut g3 = g2.clone();
        let e = g3
            .apply_edge_inserted(VertexId(0), VertexId(1), 0.4, 0.3)
            .unwrap();
        assert_eq!(e, EdgeId(3));
        assert_eq!(g3.num_edges(), 3);
        assert_eq!(
            g3.activation_probability(VertexId(0), VertexId(1)).unwrap(),
            0.4
        );
    }

    #[test]
    fn overlay_rows_merge_and_degrade_to_slices() {
        let mut b = GraphBuilder::with_vertices(5);
        b.add_edge(VertexId(0), VertexId(1), 0.8, 0.7);
        b.add_edge(VertexId(0), VertexId(3), 0.6, 0.5);
        let mut g = b.build().unwrap();
        assert!(!g.has_overlay());
        g.apply_edge_inserted(VertexId(0), VertexId(2), 0.9, 0.85)
            .unwrap();
        assert!(g.has_overlay());
        // touched rows merge (base ∪ run, sorted); untouched rows stay slices
        assert!(g.neighbors(VertexId(0)).as_slice().is_none());
        assert!(g.neighbors(VertexId(1)).as_slice().is_some());
        assert_eq!(
            g.neighbors(VertexId(0))
                .iter()
                .map(|(n, _)| n)
                .collect::<Vec<_>>(),
            vec![VertexId(1), VertexId(2), VertexId(3)]
        );
        assert_eq!(g.degree(VertexId(0)), 3);
        assert_eq!(g.degree(VertexId(2)), 1);
        assert_eq!(g.max_degree(), 3);
        let out: Vec<(VertexId, f64)> = g.outgoing(VertexId(0)).collect();
        assert_eq!(
            out,
            vec![(VertexId(1), 0.8), (VertexId(2), 0.9), (VertexId(3), 0.6)]
        );
        assert_eq!(
            g.activation_probability(VertexId(2), VertexId(0)).unwrap(),
            0.85
        );
        // removing a base edge tombstones its CSR slots
        g.apply_edge_removed(VertexId(0), VertexId(3)).unwrap();
        assert_eq!(g.degree(VertexId(0)), 2);
        assert!(g.neighbors(VertexId(3)).is_empty());
        assert_eq!(
            g.neighbors(VertexId(0))
                .iter()
                .map(|(n, _)| n)
                .collect::<Vec<_>>(),
            vec![VertexId(1), VertexId(2)]
        );
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn compaction_renumbers_and_returns_the_remap() {
        let mut g = triangle();
        g.apply_edge_removed(VertexId(0), VertexId(1)).unwrap(); // id 0 dies
        let e_new = g
            .apply_edge_inserted(VertexId(0), VertexId(1), 0.4, 0.3)
            .unwrap(); // id 3
        assert!(g.overlay_fraction() > 0.5);
        let fingerprint_before: Vec<(VertexId, VertexId, f64, f64)> = g.edge_table_iter().collect();
        let remap = g.compact();
        assert!(!g.has_overlay());
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge_id_space(), 3);
        // live ids packed in old-id order: 1→0, 2→1, 3→2; dead id 0 gone
        assert_eq!(remap.new_id(EdgeId(0)), None);
        assert_eq!(remap.new_id(EdgeId(1)), Some(EdgeId(0)));
        assert_eq!(remap.new_id(EdgeId(2)), Some(EdgeId(1)));
        assert_eq!(remap.new_id(e_new), Some(EdgeId(2)));
        let after: Vec<(VertexId, VertexId, f64, f64)> = g.edge_table_iter().collect();
        assert_eq!(
            fingerprint_before, after,
            "compaction preserves the logical graph"
        );
        // compacting an overlay-free graph is the identity
        assert!(g.compact().is_identity());
        assert!(g
            .maybe_compact(crate::graph::DEFAULT_COMPACT_THRESHOLD)
            .is_none());
    }

    #[test]
    fn overlay_graph_matches_from_scratch_rebuild() {
        let mut b = GraphBuilder::with_vertices(6);
        b.add_edge(VertexId(0), VertexId(1), 0.8, 0.7);
        b.add_edge(VertexId(1), VertexId(2), 0.6, 0.5);
        b.add_edge(VertexId(2), VertexId(3), 0.9, 0.9);
        b.add_edge(VertexId(3), VertexId(4), 0.3, 0.4);
        b.add_edge(VertexId(0), VertexId(4), 0.2, 0.1);
        let mut g = b.build().unwrap();
        g.apply_edge_inserted(VertexId(1), VertexId(4), 0.45, 0.55)
            .unwrap();
        g.apply_edge_inserted(VertexId(0), VertexId(5), 0.35, 0.25)
            .unwrap();
        g.apply_edge_removed(VertexId(2), VertexId(3)).unwrap();
        // rebuild from scratch at the same logical state
        let rebuilt = {
            let mut c = g.clone();
            c.compact();
            c
        };
        assert_eq!(g.num_edges(), rebuilt.num_edges());
        for v in g.vertices() {
            assert_eq!(
                g.neighbors(v).iter().map(|(n, _)| n).collect::<Vec<_>>(),
                rebuilt
                    .neighbors(v)
                    .iter()
                    .map(|(n, _)| n)
                    .collect::<Vec<_>>(),
                "neighbour sequence of {v}"
            );
            let a: Vec<(VertexId, f64)> = g.outgoing(v).collect();
            let b: Vec<(VertexId, f64)> = rebuilt.outgoing(v).collect();
            assert_eq!(a, b, "outgoing weights of {v}");
            assert_eq!(g.degree(v), rebuilt.degree(v));
        }
        for u in g.vertices() {
            for v in g.vertices() {
                if u < v {
                    assert_eq!(
                        g.common_neighbor_count(u, v),
                        rebuilt.common_neighbor_count(u, v)
                    );
                    assert_eq!(
                        g.common_neighbor_count_above(u, v, VertexId(1)),
                        rebuilt.common_neighbor_count_above(u, v, VertexId(1))
                    );
                    assert_eq!(g.contains_edge(u, v), rebuilt.contains_edge(u, v));
                }
            }
        }
    }

    #[test]
    fn serde_roundtrip_is_version_2() {
        let g = triangle();
        let json = serde_json::to_string(&g).unwrap();
        assert!(json.contains("\"format_version\":2"));
        assert!(!json.contains("\"adjacency\""));
        let back: SocialNetwork = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_vertices(), g.num_vertices());
        assert_eq!(back.num_edges(), g.num_edges());
        assert_eq!(
            back.activation_probability(VertexId(0), VertexId(1))
                .unwrap(),
            0.8
        );
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        // duplicate edge
        let bad = r#"{"format_version":2,"num_vertices":2,"edges":[[0,1],[1,0]],
            "weight_forward":[0.5,0.5],"weight_backward":[0.5,0.5],
            "keywords":[{"keywords":[]},{"keywords":[]}]}"#;
        assert!(serde_json::from_str::<SocialNetwork>(bad).is_err());
        // out-of-range endpoint
        let bad = r#"{"format_version":2,"num_vertices":2,"edges":[[0,7]],
            "weight_forward":[0.5],"weight_backward":[0.5],
            "keywords":[{"keywords":[]},{"keywords":[]}]}"#;
        assert!(serde_json::from_str::<SocialNetwork>(bad).is_err());
        // future version
        let bad = r#"{"format_version":99,"num_vertices":0,"edges":[],
            "weight_forward":[],"weight_backward":[],"keywords":[]}"#;
        assert!(serde_json::from_str::<SocialNetwork>(bad).is_err());
        // neither version marker nor adjacency
        assert!(serde_json::from_str::<SocialNetwork>("{\"edges\":[]}").is_err());
    }
}
