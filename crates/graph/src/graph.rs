//! The social network graph store (Definition 1).
//!
//! A [`SocialNetwork`] is an attributed, undirected, weighted graph
//! `G = (V(G), E(G), Φ(G))`: the *structure* (who is connected to whom) is
//! undirected, while each structural edge carries two directed activation
//! probabilities `p_{u,v}` (u activates v) and `p_{v,u}` (v activates u) used
//! by the MIA propagation model. Each vertex carries a keyword set `v_i.W`.
//!
//! Internally the graph is stored as sorted adjacency lists over dense vertex
//! ids plus a canonical edge table (each undirected edge appears once with
//! `u < v`), which gives `O(log deg)` edge lookups and lets edge-indexed data
//! (supports, trussness) live in flat vectors.

use crate::error::{GraphError, GraphResult};
use crate::keywords::KeywordSet;
use crate::types::{is_valid_probability, EdgeId, VertexId, Weight};
use serde::{Deserialize, Serialize};

/// An attributed, undirected, weighted social network (Definition 1).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SocialNetwork {
    /// `adjacency[v]` — sorted list of `(neighbour, edge id)` pairs.
    adjacency: Vec<Vec<(VertexId, EdgeId)>>,
    /// Canonical edge table: `edges[e] = (u, v)` with `u < v`.
    edges: Vec<(VertexId, VertexId)>,
    /// Directed activation probability `p_{u,v}` for the canonical direction
    /// (`u < v`).
    weight_forward: Vec<Weight>,
    /// Directed activation probability `p_{v,u}` for the reverse direction.
    weight_backward: Vec<Weight>,
    /// Per-vertex keyword sets `v_i.W`.
    keywords: Vec<KeywordSet>,
}

impl SocialNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty network with capacity hints.
    pub fn with_capacity(vertices: usize, edges: usize) -> Self {
        SocialNetwork {
            adjacency: Vec::with_capacity(vertices),
            edges: Vec::with_capacity(edges),
            weight_forward: Vec::with_capacity(edges),
            weight_backward: Vec::with_capacity(edges),
            keywords: Vec::with_capacity(vertices),
        }
    }

    /// Number of vertices `|V(G)|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges `|E(G)|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Returns `true` if `v` is a valid vertex id of this graph.
    #[inline]
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        v.index() < self.adjacency.len()
    }

    /// Iterates over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.adjacency.len()).map(VertexId::from_index)
    }

    /// Iterates over the canonical edge table as `(edge id, u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, VertexId, VertexId)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| (EdgeId::from_index(i), u, v))
    }

    /// Adds an isolated vertex with the given keyword set and returns its id.
    pub fn add_vertex(&mut self, keywords: KeywordSet) -> VertexId {
        let id = VertexId::from_index(self.adjacency.len());
        self.adjacency.push(Vec::new());
        self.keywords.push(keywords);
        id
    }

    /// Adds an undirected edge `{u, v}` with directed activation
    /// probabilities `p_uv` (u activates v) and `p_vu` (v activates u).
    ///
    /// Returns the new edge id or an error if the edge is invalid
    /// (unknown endpoint, self-loop, duplicate, or out-of-range weight).
    pub fn add_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
        p_uv: Weight,
        p_vu: Weight,
    ) -> GraphResult<EdgeId> {
        if !self.contains_vertex(u) {
            return Err(GraphError::UnknownVertex(u));
        }
        if !self.contains_vertex(v) {
            return Err(GraphError::UnknownVertex(v));
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if !is_valid_probability(p_uv) {
            return Err(GraphError::InvalidWeight { u, v, weight: p_uv });
        }
        if !is_valid_probability(p_vu) {
            return Err(GraphError::InvalidWeight {
                u: v,
                v: u,
                weight: p_vu,
            });
        }
        if self.edge_between(u, v).is_some() {
            return Err(GraphError::DuplicateEdge(u, v));
        }
        let (lo, hi) = if u < v { (u, v) } else { (v, u) };
        let (p_lo_hi, p_hi_lo) = if u < v { (p_uv, p_vu) } else { (p_vu, p_uv) };
        let eid = EdgeId::from_index(self.edges.len());
        self.edges.push((lo, hi));
        self.weight_forward.push(p_lo_hi);
        self.weight_backward.push(p_hi_lo);
        Self::insert_sorted(&mut self.adjacency[u.index()], (v, eid));
        Self::insert_sorted(&mut self.adjacency[v.index()], (u, eid));
        Ok(eid)
    }

    /// Adds an undirected edge with the same activation probability in both
    /// directions (the synthetic generators in the paper draw a single weight
    /// per edge).
    pub fn add_symmetric_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
        p: Weight,
    ) -> GraphResult<EdgeId> {
        self.add_edge(u, v, p, p)
    }

    fn insert_sorted(list: &mut Vec<(VertexId, EdgeId)>, entry: (VertexId, EdgeId)) {
        match list.binary_search_by_key(&entry.0, |&(n, _)| n) {
            Ok(_) => unreachable!("duplicate edges are rejected before insertion"),
            Err(pos) => list.insert(pos, entry),
        }
    }

    /// Returns the edge id between `u` and `v`, if any.
    pub fn edge_between(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        let list = self.adjacency.get(u.index())?;
        list.binary_search_by_key(&v, |&(n, _)| n)
            .ok()
            .map(|pos| list[pos].1)
    }

    /// Returns `true` if `{u, v}` is an edge.
    pub fn contains_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// Returns the canonical endpoints `(u, v)` with `u < v` of an edge.
    pub fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.edges[e.index()]
    }

    /// Directed activation probability `p_{u→v}` along an existing edge.
    ///
    /// Returns an error if `{u, v}` is not an edge.
    pub fn activation_probability(&self, u: VertexId, v: VertexId) -> GraphResult<Weight> {
        let eid = self
            .edge_between(u, v)
            .ok_or(GraphError::MissingEdge(u, v))?;
        Ok(self.directed_weight(eid, u))
    }

    /// Directed activation probability along edge `e` when leaving from
    /// `from` (which must be one of the endpoints).
    #[inline]
    pub fn directed_weight(&self, e: EdgeId, from: VertexId) -> Weight {
        let (lo, _hi) = self.edges[e.index()];
        if from == lo {
            self.weight_forward[e.index()]
        } else {
            self.weight_backward[e.index()]
        }
    }

    /// Degree of a vertex.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adjacency[v.index()].len()
    }

    /// Average degree over all vertices (`avg_deg` in the complexity
    /// analyses), 0.0 for the empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.adjacency.is_empty() {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Maximum degree over all vertices.
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterates over the neighbours of `v` as `(neighbour, edge id)` in
    /// ascending neighbour order.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        self.adjacency[v.index()].iter().copied()
    }

    /// Iterates over the neighbours of `v` together with the *outgoing*
    /// activation probability `p_{v→n}`.
    pub fn outgoing(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.adjacency[v.index()]
            .iter()
            .map(move |&(n, e)| (n, self.directed_weight(e, v)))
    }

    /// Returns the sorted neighbour list of `v` as a slice of
    /// `(neighbour, edge id)` pairs.
    #[inline]
    pub fn neighbor_slice(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        &self.adjacency[v.index()]
    }

    /// Keyword set `v.W` of a vertex.
    #[inline]
    pub fn keyword_set(&self, v: VertexId) -> &KeywordSet {
        &self.keywords[v.index()]
    }

    /// Replaces the keyword set of a vertex (used by the generators when
    /// keywords are assigned after the topology is built).
    pub fn set_keyword_set(&mut self, v: VertexId, keywords: KeywordSet) {
        self.keywords[v.index()] = keywords;
    }

    /// Overwrites both directed weights of an existing edge.
    pub fn set_edge_weights(
        &mut self,
        e: EdgeId,
        p_forward: Weight,
        p_backward: Weight,
    ) -> GraphResult<()> {
        let (lo, hi) = self.edges[e.index()];
        if !is_valid_probability(p_forward) {
            return Err(GraphError::InvalidWeight {
                u: lo,
                v: hi,
                weight: p_forward,
            });
        }
        if !is_valid_probability(p_backward) {
            return Err(GraphError::InvalidWeight {
                u: hi,
                v: lo,
                weight: p_backward,
            });
        }
        self.weight_forward[e.index()] = p_forward;
        self.weight_backward[e.index()] = p_backward;
        Ok(())
    }

    /// Counts the number of common neighbours of `u` and `v` (the number of
    /// triangles through the edge `{u, v}` when they are adjacent).
    ///
    /// Linear merge over the two sorted adjacency lists.
    pub fn common_neighbor_count(&self, u: VertexId, v: VertexId) -> usize {
        let a = &self.adjacency[u.index()];
        let b = &self.adjacency[v.index()];
        let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Collects the common neighbours of `u` and `v`.
    pub fn common_neighbors(&self, u: VertexId, v: VertexId) -> Vec<VertexId> {
        let a = &self.adjacency[u.index()];
        let b = &self.adjacency[v.index()];
        let (mut i, mut j) = (0usize, 0usize);
        let mut out = Vec::new();
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i].0);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keywords::KeywordSet;

    fn triangle() -> SocialNetwork {
        let mut g = SocialNetwork::new();
        let a = g.add_vertex(KeywordSet::from_ids([1]));
        let b = g.add_vertex(KeywordSet::from_ids([1, 2]));
        let c = g.add_vertex(KeywordSet::from_ids([2]));
        g.add_edge(a, b, 0.8, 0.7).unwrap();
        g.add_edge(b, c, 0.6, 0.5).unwrap();
        g.add_edge(a, c, 0.9, 0.9).unwrap();
        g
    }

    #[test]
    fn empty_graph() {
        let g = SocialNetwork::new();
        assert!(g.is_empty());
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn add_vertices_and_edges() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(VertexId(0)), 2);
        assert_eq!(g.average_degree(), 2.0);
        assert_eq!(g.max_degree(), 2);
        assert!(g.contains_edge(VertexId(0), VertexId(1)));
        assert!(g.contains_edge(VertexId(1), VertexId(0)));
        assert!(!g.contains_edge(VertexId(0), VertexId(3)));
    }

    #[test]
    fn directed_weights_are_kept_per_direction() {
        let g = triangle();
        let (a, b) = (VertexId(0), VertexId(1));
        assert_eq!(g.activation_probability(a, b).unwrap(), 0.8);
        assert_eq!(g.activation_probability(b, a).unwrap(), 0.7);
        // edge added as (b, c) with p_bc = 0.6, p_cb = 0.5
        assert_eq!(
            g.activation_probability(VertexId(1), VertexId(2)).unwrap(),
            0.6
        );
        assert_eq!(
            g.activation_probability(VertexId(2), VertexId(1)).unwrap(),
            0.5
        );
    }

    #[test]
    fn outgoing_iterates_with_weights() {
        let g = triangle();
        let out: Vec<(VertexId, f64)> = g.outgoing(VertexId(0)).collect();
        assert_eq!(out, vec![(VertexId(1), 0.8), (VertexId(2), 0.9)]);
    }

    #[test]
    fn rejects_invalid_edges() {
        let mut g = SocialNetwork::new();
        let a = g.add_vertex(KeywordSet::new());
        let b = g.add_vertex(KeywordSet::new());
        assert!(matches!(
            g.add_edge(a, VertexId(9), 0.5, 0.5),
            Err(GraphError::UnknownVertex(_))
        ));
        assert!(matches!(
            g.add_edge(a, a, 0.5, 0.5),
            Err(GraphError::SelfLoop(_))
        ));
        assert!(matches!(
            g.add_edge(a, b, 1.5, 0.5),
            Err(GraphError::InvalidWeight { .. })
        ));
        g.add_edge(a, b, 0.5, 0.5).unwrap();
        assert!(matches!(
            g.add_edge(b, a, 0.5, 0.5),
            Err(GraphError::DuplicateEdge(..))
        ));
    }

    #[test]
    fn missing_edge_weight_lookup_errors() {
        let g = triangle();
        let mut g2 = g.clone();
        let d = g2.add_vertex(KeywordSet::new());
        assert!(matches!(
            g2.activation_probability(VertexId(0), d),
            Err(GraphError::MissingEdge(..))
        ));
    }

    #[test]
    fn common_neighbors_of_triangle_edge() {
        let g = triangle();
        assert_eq!(g.common_neighbor_count(VertexId(0), VertexId(1)), 1);
        assert_eq!(
            g.common_neighbors(VertexId(0), VertexId(1)),
            vec![VertexId(2)]
        );
    }

    #[test]
    fn keyword_sets_accessible_and_mutable() {
        let mut g = triangle();
        assert!(g.keyword_set(VertexId(0)).contains(crate::Keyword(1)));
        g.set_keyword_set(VertexId(0), KeywordSet::from_ids([7]));
        assert!(g.keyword_set(VertexId(0)).contains(crate::Keyword(7)));
    }

    #[test]
    fn set_edge_weights_validates() {
        let mut g = triangle();
        let e = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        g.set_edge_weights(e, 0.2, 0.3).unwrap();
        assert_eq!(
            g.activation_probability(VertexId(0), VertexId(1)).unwrap(),
            0.2
        );
        assert_eq!(
            g.activation_probability(VertexId(1), VertexId(0)).unwrap(),
            0.3
        );
        assert!(g.set_edge_weights(e, -1.0, 0.5).is_err());
    }

    #[test]
    fn edge_iteration_is_canonical() {
        let g = triangle();
        for (e, u, v) in g.edges() {
            assert!(u < v);
            assert_eq!(g.edge_endpoints(e), (u, v));
        }
        assert_eq!(g.edges().count(), 3);
    }

    #[test]
    fn serde_roundtrip() {
        let g = triangle();
        let json = serde_json::to_string(&g).unwrap();
        let back: SocialNetwork = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_vertices(), g.num_vertices());
        assert_eq!(back.num_edges(), g.num_edges());
        assert_eq!(
            back.activation_probability(VertexId(0), VertexId(1))
                .unwrap(),
            0.8
        );
    }
}
