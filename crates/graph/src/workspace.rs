//! Reusable traversal scratch state — the [`TraversalWorkspace`].
//!
//! Every hot loop of the pipeline is a graph exploration: the bounded BFS of
//! the r-hop extraction `hop(v, r)` (Algorithm 2, Definition 2's radius
//! constraint) and the max-product Dijkstra behind `upp`/`cpp` (Eqs. (2)–(4)).
//! Before this module each call allocated its own `vec![None; n]` /
//! `vec![0.0; n]` scratch and churned a fresh `VecDeque`/`BinaryHeap`, so a
//! 2 000-query batch on a 50k-vertex graph spent most of its time in `memset`
//! and allocator traffic rather than in the traversal itself.
//!
//! A [`TraversalWorkspace`] owns that scratch once and amortises it across
//! calls:
//!
//! * **Epoch-stamped, lazily-paged lanes** — `visited`/`distance`/
//!   `probability` state lives in 256-vertex pages allocated on first write;
//!   an entry is valid only when its stamp equals the workspace's current
//!   epoch, so "clearing" the lanes for the next traversal is a single
//!   counter bump ([`begin`]) instead of an O(n) wipe, and a worker whose
//!   traversals only ever touch a slice of a large graph only ever
//!   materialises that slice's pages (reads of an absent page report
//!   "unstamped", exactly like a dense array whose stamps are stale). On the
//!   (astronomically rare) epoch wraparound the stamps of the allocated
//!   pages are hard-reset, so stale entries from 2³² traversals ago can
//!   never alias.
//! * **A reusable queue buffer** — one grow-only `Vec` doubles as the BFS
//!   ring buffer (FIFO via a head cursor) and the DFS stack (LIFO).
//! * **A monotone bucket queue** for the max-product Dijkstra, keyed on a
//!   quantised `-ln p`. Probabilities only shrink along a path, so the
//!   quantised key never decreases and buckets can be drained strictly in
//!   order. Quantisation never costs exactness: every pop is re-checked
//!   against the per-vertex best value (stale entries are skipped) and a
//!   vertex whose best improves *within* a bucket is simply re-queued and
//!   re-expanded, so the computed probabilities are bit-identical to the
//!   binary-heap formulation.
//! * **A reusable binary heap** for traversals that need strict best-first
//!   order with early exit (`max_influence_path` stops at the target, which
//!   a quantised bucket cannot do exactly).
//!
//! # Borrowing contract
//!
//! The workspace is plain mutable state — no interior mutability, no locks.
//! The free functions in [`crate::traversal`] (and the influence crate's
//! `upp`/`cpp` entry points) come in two flavours:
//!
//! * `foo(g, ...)` — thin wrapper that borrows this thread's shared
//!   workspace via [`with_thread_workspace`] (re-entrant callers fall back
//!   to a fresh temporary, never panic);
//! * `foo_with(ws, g, ...)` — takes `&mut TraversalWorkspace` explicitly,
//!   for callers that run many traversals back to back (the offline
//!   pre-computation gives each `std::thread::scope` worker its own).
//!
//! A workspace may be used across graphs of different sizes; [`begin`]
//! grows the arrays as needed. Results never depend on what previous
//! traversals left behind — the property tests in
//! `crates/graph/tests/workspace_properties.rs` assert bit-identical output
//! through a reused workspace.
//!
//! [`begin`]: TraversalWorkspace::begin

use crate::types::VertexId;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Log2 of the page size of the per-vertex lanes: 256 vertices per page.
/// Small enough that a BFS ball touching 2% of a large graph allocates ~2%
/// of the pages, large enough that the page-table indirection amortises.
const PAGE_BITS: usize = 8;

/// Vertices per lane page.
const PAGE_LEN: usize = 1 << PAGE_BITS;

/// Mask extracting the within-page slot from a vertex index.
const PAGE_MASK: usize = PAGE_LEN - 1;

/// One lazily-allocated page of every per-vertex lane. The lanes are stored
/// struct-of-arrays within the page so a stamp check touches one cache line
/// of stamps rather than a 60-byte row. A page is materialised the first
/// time any vertex in its range is *written*; reads of an absent page report
/// "never stamped" (`None` / 0.0), which is exactly what a dense array whose
/// stamps predate the current epoch would report.
#[derive(Debug)]
struct WorkspacePage {
    /// Visited stamps (BFS/DFS visited set, Dijkstra reached set).
    reached: [u32; PAGE_LEN],
    /// Hop distances, valid iff `reached` is stamped.
    dist: [u32; PAGE_LEN],
    /// Best path probabilities, valid iff `reached` is stamped.
    prob: [f64; PAGE_LEN],
    /// Stamps for `expanded_at`.
    expanded: [u32; PAGE_LEN],
    /// Probability a vertex was last expanded at (settled-skip state).
    expanded_at: [f64; PAGE_LEN],
    /// Stamps for `parent`.
    parented: [u32; PAGE_LEN],
    /// Predecessor on the current best path.
    parent: [VertexId; PAGE_LEN],
}

impl WorkspacePage {
    fn new_boxed() -> Box<WorkspacePage> {
        Box::new(WorkspacePage {
            reached: [0; PAGE_LEN],
            dist: [0; PAGE_LEN],
            prob: [0.0; PAGE_LEN],
            expanded: [0; PAGE_LEN],
            expanded_at: [0.0; PAGE_LEN],
            parented: [0; PAGE_LEN],
            parent: [VertexId(0); PAGE_LEN],
        })
    }
}

/// Bytes of lane state per vertex — what a dense (unpaged) workspace pays
/// for every vertex of the graph regardless of how many a traversal touches.
pub const LANE_BYTES_PER_VERTEX: usize = std::mem::size_of::<WorkspacePage>() / PAGE_LEN;

/// Number of buckets of the monotone queue. Keys are quantised at 16 buckets
/// per halving of probability (see [`bucket_of`]), so 4096 buckets span
/// probabilities down to `2⁻²⁵⁶`; anything rarer lands in the last bucket,
/// which degrades ordering (never exactness).
const BUCKET_CAP: usize = 4096;

/// Quantisation shift: dropping 48 of the 52 mantissa bits keeps the f64
/// exponent plus the top 4 mantissa bits, i.e. 16 buckets per octave.
const KEY_SHIFT: u32 = 48;

/// Maps a probability `p ∈ (0, 1]` to its bucket index. The bit pattern of a
/// positive finite f64 is monotone in its value, so `bits(1.0) − bits(p)` is
/// a monotone non-negative cost (0 for `p = 1`) and right-shifting it
/// quantises `-ln p` without ever calling `ln`.
#[inline]
fn bucket_of(p: f64) -> usize {
    const ONE_BITS: u64 = 0x3FF0_0000_0000_0000; // 1.0f64.to_bits()
    let key = ONE_BITS.saturating_sub(p.to_bits());
    ((key >> KEY_SHIFT) as usize).min(BUCKET_CAP - 1)
}

/// Max-heap entry ordered by probability (ties broken by vertex id), shared
/// by every best-first traversal that needs strict ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbEntry {
    /// Path probability of this entry.
    pub probability: f64,
    /// Vertex the entry refers to.
    pub vertex: VertexId,
}

impl Eq for ProbEntry {}

impl Ord for ProbEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.probability
            .partial_cmp(&other.probability)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.vertex.cmp(&other.vertex))
    }
}

impl PartialOrd for ProbEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Monotone bucket queue over quantised `-ln p` keys.
#[derive(Debug, Default)]
struct BucketQueue {
    buckets: Vec<Vec<(f64, VertexId)>>,
    /// No entries live in buckets below this index.
    cursor: usize,
    /// Highest bucket index that has ever held an entry since the last reset.
    max_used: usize,
    len: usize,
}

impl BucketQueue {
    fn reset(&mut self) {
        if self.len > 0 {
            // early-exit left residue behind: clear the touched range
            for bucket in &mut self.buckets[self.cursor..=self.max_used] {
                bucket.clear();
            }
        }
        self.cursor = 0;
        self.max_used = 0;
        self.len = 0;
    }

    #[inline]
    fn push(&mut self, p: f64, v: VertexId) {
        // Keys are monotone along paths, so a new entry can never belong to
        // an already-drained bucket; clamping to the cursor is a pure
        // ordering fallback (exactness comes from the stale checks).
        let idx = bucket_of(p).max(self.cursor);
        if idx >= self.buckets.len() {
            self.buckets.resize_with(idx + 1, Vec::new);
        }
        self.buckets[idx].push((p, v));
        self.max_used = self.max_used.max(idx);
        self.len += 1;
    }

    #[inline]
    fn pop(&mut self) -> Option<(f64, VertexId)> {
        while self.len > 0 {
            if let Some(entry) = self.buckets[self.cursor].pop() {
                self.len -= 1;
                return Some(entry);
            }
            self.cursor += 1;
        }
        None
    }
}

/// Reusable scratch state for graph traversals. See the [module docs] for
/// the design and borrowing contract.
///
/// [module docs]: self
#[derive(Debug, Default)]
pub struct TraversalWorkspace {
    /// Current epoch; lane entries are valid iff their stamp equals it.
    epoch: u32,
    /// Lazily-allocated lane pages. `begin(n)` only grows this table of
    /// `None` slots; a page is boxed the first time a vertex in its range is
    /// written, so a worker whose traversals touch 2% of the graph allocates
    /// ~2% of the lane bytes a dense workspace would.
    pages: Vec<Option<Box<WorkspacePage>>>,
    /// Vertices stamped through [`set_prob`] this epoch, in first-touch
    /// order.
    ///
    /// [`set_prob`]: TraversalWorkspace::set_prob
    touched: Vec<VertexId>,
    /// Shared FIFO/LIFO buffer: `queue[head..]` are the pending entries.
    queue: Vec<(VertexId, u32)>,
    head: usize,
    /// Monotone bucket queue for the max-product Dijkstra.
    buckets: BucketQueue,
    /// Strict best-first heap for early-exit traversals.
    heap: BinaryHeap<ProbEntry>,
    /// Number of vertex expansions since [`begin`] (diagnostics; the
    /// settled-skip tests assert duplicates are not re-expanded).
    ///
    /// [`begin`]: TraversalWorkspace::begin
    expansions: usize,
}

impl TraversalWorkspace {
    /// Creates an empty workspace; arrays grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new traversal over an `n`-vertex graph: grows the page table
    /// if needed (without allocating any pages), invalidates all previous
    /// stamps with one epoch bump and clears the queue structures.
    pub fn begin(&mut self, n: usize) {
        let num_pages = n.div_ceil(PAGE_LEN);
        if self.pages.len() < num_pages {
            self.pages.resize_with(num_pages, || None);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // wraparound: stamps written 2^32 epochs ago would alias the new
            // epoch; hard-reset the allocated pages once and restart from
            // epoch 1 (absent pages hold no stamps to alias)
            for page in self.pages.iter_mut().flatten() {
                page.reached = [0; PAGE_LEN];
                page.expanded = [0; PAGE_LEN];
                page.parented = [0; PAGE_LEN];
            }
            self.epoch = 1;
        }
        self.touched.clear();
        self.queue.clear();
        self.head = 0;
        self.buckets.reset();
        self.heap.clear();
        self.expansions = 0;
    }

    /// The current epoch (diagnostics).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Forces the epoch counter, so tests can exercise the wraparound reset
    /// without running 2³² traversals. Not part of the stable API.
    #[doc(hidden)]
    pub fn force_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }

    // -- page plumbing -------------------------------------------------------

    /// Read-side page lookup: `None` when the page was never written (its
    /// vertices are unstamped by definition). Panics if `i` is beyond the
    /// page table, preserving the dense-array bounds discipline.
    #[inline]
    fn page(&self, i: usize) -> Option<(&WorkspacePage, usize)> {
        self.pages[i >> PAGE_BITS]
            .as_deref()
            .map(|page| (page, i & PAGE_MASK))
    }

    /// Write-side page lookup: allocates the page on first touch.
    #[inline]
    fn page_mut(&mut self, i: usize) -> (&mut WorkspacePage, usize) {
        let page: &mut WorkspacePage =
            self.pages[i >> PAGE_BITS].get_or_insert_with(WorkspacePage::new_boxed);
        (page, i & PAGE_MASK)
    }

    /// Number of lane pages currently materialised.
    pub fn allocated_pages(&self) -> usize {
        self.pages.iter().flatten().count()
    }

    /// Bytes of lane pages currently materialised — the lazily-grown
    /// fraction of the dense arrays an unpaged workspace would carry.
    pub fn allocated_lane_bytes(&self) -> usize {
        self.allocated_pages() * std::mem::size_of::<WorkspacePage>()
    }

    /// Bytes of lane state a dense (unpaged) workspace would allocate for an
    /// `n`-vertex graph; the bench compares [`allocated_lane_bytes`] against
    /// this projection.
    ///
    /// [`allocated_lane_bytes`]: TraversalWorkspace::allocated_lane_bytes
    pub fn dense_lane_bytes(n: usize) -> usize {
        n.div_ceil(PAGE_LEN) * std::mem::size_of::<WorkspacePage>()
    }

    /// Total resident scratch bytes: lane pages, the page table itself and
    /// the grow-only queue buffers.
    pub fn scratch_bytes(&self) -> usize {
        self.allocated_lane_bytes()
            + self.pages.capacity() * std::mem::size_of::<Option<Box<WorkspacePage>>>()
            + self.touched.capacity() * std::mem::size_of::<VertexId>()
            + self.queue.capacity() * std::mem::size_of::<(VertexId, u32)>()
            + self
                .buckets
                .buckets
                .iter()
                .map(|b| b.capacity() * std::mem::size_of::<(f64, VertexId)>())
                .sum::<usize>()
            + self.heap.capacity() * std::mem::size_of::<ProbEntry>()
    }

    // -- visited / distance stamps (BFS, DFS) -------------------------------

    /// Marks `v` visited at hop distance `d`; returns `false` if `v` was
    /// already visited this epoch.
    #[inline]
    pub fn try_visit(&mut self, v: VertexId, d: u32) -> bool {
        let epoch = self.epoch;
        let (page, s) = self.page_mut(v.index());
        if page.reached[s] == epoch {
            return false;
        }
        page.reached[s] = epoch;
        page.dist[s] = d;
        true
    }

    /// Hop distance recorded for `v` this epoch, if it was visited.
    #[inline]
    pub fn dist(&self, v: VertexId) -> Option<u32> {
        let (page, s) = self.page(v.index())?;
        (page.reached[s] == self.epoch).then(|| page.dist[s])
    }

    // -- best-probability stamps (max-product Dijkstra) ---------------------

    /// Best path probability recorded for `v` this epoch (0.0 when
    /// untouched, matching a dense `vec![0.0; n]`).
    #[inline]
    pub fn prob(&self, v: VertexId) -> f64 {
        match self.page(v.index()) {
            Some((page, s)) if page.reached[s] == self.epoch => page.prob[s],
            _ => 0.0,
        }
    }

    /// Records a new best probability for `v` (first touch registers `v` in
    /// [`touched`]).
    ///
    /// [`touched`]: TraversalWorkspace::touched
    #[inline]
    pub fn set_prob(&mut self, v: VertexId, p: f64) {
        let epoch = self.epoch;
        let (page, s) = self.page_mut(v.index());
        let first_touch = page.reached[s] != epoch;
        if first_touch {
            page.reached[s] = epoch;
        }
        page.prob[s] = p;
        if first_touch {
            self.touched.push(v);
        }
    }

    /// Vertices whose probability was set this epoch, in first-touch order.
    #[inline]
    pub fn touched(&self) -> &[VertexId] {
        &self.touched
    }

    /// Settled-skip check: returns `true` (and records the expansion) iff
    /// `v` has not yet been expanded this epoch at probability ≥ `p`. Equal
    /// re-pops — the duplicate-entry class the plain `probability < best`
    /// check lets through — are rejected; a strict improvement within a
    /// bucket is admitted so the traversal stays exact.
    #[inline]
    pub fn try_expand(&mut self, v: VertexId, p: f64) -> bool {
        let epoch = self.epoch;
        let (page, s) = self.page_mut(v.index());
        if page.expanded[s] == epoch && p <= page.expanded_at[s] {
            return false;
        }
        page.expanded[s] = epoch;
        page.expanded_at[s] = p;
        self.expansions += 1;
        true
    }

    /// Number of vertex expansions since [`begin`] (diagnostics).
    ///
    /// [`begin`]: TraversalWorkspace::begin
    pub fn expansions(&self) -> usize {
        self.expansions
    }

    // -- parent pointers (path reconstruction) ------------------------------

    /// Records `u` as the predecessor of `v` on the current best path.
    #[inline]
    pub fn set_parent(&mut self, v: VertexId, u: VertexId) {
        let epoch = self.epoch;
        let (page, s) = self.page_mut(v.index());
        page.parented[s] = epoch;
        page.parent[s] = u;
    }

    /// Predecessor of `v` recorded this epoch, if any.
    #[inline]
    pub fn parent(&self, v: VertexId) -> Option<VertexId> {
        let (page, s) = self.page(v.index())?;
        (page.parented[s] == self.epoch).then(|| page.parent[s])
    }

    // -- shared queue buffer (FIFO for BFS, LIFO for DFS) -------------------

    /// Appends an entry to the queue buffer.
    #[inline]
    pub fn queue_push(&mut self, v: VertexId, d: u32) {
        self.queue.push((v, d));
    }

    /// Takes the oldest pending entry (FIFO / ring-buffer order).
    #[inline]
    pub fn queue_pop_front(&mut self) -> Option<(VertexId, u32)> {
        let entry = self.queue.get(self.head).copied();
        if entry.is_some() {
            self.head += 1;
        }
        entry
    }

    /// Takes the newest pending entry (LIFO / stack order).
    #[inline]
    pub fn queue_pop_back(&mut self) -> Option<(VertexId, u32)> {
        if self.queue.len() > self.head {
            self.queue.pop()
        } else {
            None
        }
    }

    // -- priority queues ----------------------------------------------------

    /// Pushes an entry into the monotone bucket queue.
    #[inline]
    pub fn bucket_push(&mut self, p: f64, v: VertexId) {
        self.buckets.push(p, v);
    }

    /// Pops the next entry from the lowest non-empty bucket.
    #[inline]
    pub fn bucket_pop(&mut self) -> Option<(f64, VertexId)> {
        self.buckets.pop()
    }

    /// Pushes an entry into the strict best-first heap.
    #[inline]
    pub fn heap_push(&mut self, entry: ProbEntry) {
        self.heap.push(entry);
    }

    /// Pops the highest-probability entry from the heap.
    #[inline]
    pub fn heap_pop(&mut self) -> Option<ProbEntry> {
        self.heap.pop()
    }
}

thread_local! {
    /// One shared workspace per thread, borrowed by the wrapper flavour of
    /// the traversal functions.
    static THREAD_WORKSPACE: RefCell<TraversalWorkspace> =
        RefCell::new(TraversalWorkspace::new());
}

/// Runs `f` with this thread's shared [`TraversalWorkspace`]. Re-entrant
/// calls (a caller that already holds the thread workspace invoking a
/// wrapper) fall back to a fresh temporary workspace instead of panicking,
/// so holding the workspace across arbitrary callbacks is always safe — the
/// fallback only costs the allocations the workspace would have amortised.
pub fn with_thread_workspace<R>(f: impl FnOnce(&mut TraversalWorkspace) -> R) -> R {
    THREAD_WORKSPACE.with(|cell| match cell.try_borrow_mut() {
        Ok(mut ws) => f(&mut ws),
        Err(_) => f(&mut TraversalWorkspace::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_keys_are_monotone_in_probability() {
        let probabilities = [
            1.0,
            0.999,
            0.9,
            0.5,
            0.25,
            0.1,
            0.01,
            1e-3,
            1e-6,
            1e-30,
            1e-300,
            f64::MIN_POSITIVE,
        ];
        assert_eq!(bucket_of(1.0), 0);
        for pair in probabilities.windows(2) {
            assert!(
                bucket_of(pair[0]) <= bucket_of(pair[1]),
                "bucket_of({}) > bucket_of({})",
                pair[0],
                pair[1]
            );
        }
        assert!(bucket_of(f64::MIN_POSITIVE) == BUCKET_CAP - 1);
    }

    #[test]
    fn bucket_queue_drains_in_key_order_across_buckets() {
        let mut q = BucketQueue::default();
        q.push(0.1, VertexId(1));
        q.push(0.9, VertexId(2));
        q.push(0.5, VertexId(3));
        let order: Vec<VertexId> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, vec![VertexId(2), VertexId(3), VertexId(1)]);
        assert_eq!(q.len, 0);
    }

    #[test]
    fn bucket_queue_reset_clears_early_exit_residue() {
        let mut q = BucketQueue::default();
        q.push(0.9, VertexId(1));
        q.push(0.1, VertexId(2));
        assert!(q.pop().is_some());
        q.reset(); // one entry still pending
        assert_eq!(q.len, 0);
        assert!(q.pop().is_none());
        q.push(0.5, VertexId(3));
        assert_eq!(q.pop(), Some((0.5, VertexId(3))));
    }

    #[test]
    fn stamps_reset_per_epoch() {
        let mut ws = TraversalWorkspace::new();
        ws.begin(4);
        assert!(ws.try_visit(VertexId(2), 7));
        assert!(!ws.try_visit(VertexId(2), 9));
        assert_eq!(ws.dist(VertexId(2)), Some(7));
        assert_eq!(ws.dist(VertexId(1)), None);
        ws.set_prob(VertexId(1), 0.5);
        assert_eq!(ws.prob(VertexId(1)), 0.5);
        assert_eq!(ws.touched(), &[VertexId(1)]);

        ws.begin(4);
        assert_eq!(ws.dist(VertexId(2)), None);
        assert_eq!(ws.prob(VertexId(1)), 0.0);
        assert!(ws.touched().is_empty());
        assert!(ws.try_visit(VertexId(2), 1));
    }

    #[test]
    fn expansion_check_rejects_equal_pops_but_admits_improvements() {
        let mut ws = TraversalWorkspace::new();
        ws.begin(2);
        assert!(ws.try_expand(VertexId(0), 0.5));
        assert!(!ws.try_expand(VertexId(0), 0.5), "equal duplicate re-pop");
        assert!(!ws.try_expand(VertexId(0), 0.4), "stale re-pop");
        assert!(ws.try_expand(VertexId(0), 0.6), "in-bucket improvement");
        assert_eq!(ws.expansions(), 2);
    }

    #[test]
    fn epoch_wraparound_hard_resets_stamps() {
        let mut ws = TraversalWorkspace::new();
        ws.begin(3);
        ws.try_visit(VertexId(0), 0);
        ws.set_prob(VertexId(1), 0.9);
        ws.try_expand(VertexId(1), 0.9);
        // next begin() wraps to 0 and must hard-reset, not alias old stamps
        ws.force_epoch(u32::MAX);
        ws.begin(3);
        assert_eq!(ws.epoch(), 1);
        assert_eq!(ws.dist(VertexId(0)), None);
        assert_eq!(ws.prob(VertexId(1)), 0.0);
        assert!(ws.try_expand(VertexId(1), 0.9));
    }

    #[test]
    fn queue_buffer_supports_fifo_and_lifo() {
        let mut ws = TraversalWorkspace::new();
        ws.begin(0);
        ws.queue_push(VertexId(1), 0);
        ws.queue_push(VertexId(2), 1);
        assert_eq!(ws.queue_pop_front(), Some((VertexId(1), 0)));
        ws.queue_push(VertexId(3), 2);
        assert_eq!(ws.queue_pop_back(), Some((VertexId(3), 2)));
        assert_eq!(ws.queue_pop_back(), Some((VertexId(2), 1)));
        assert_eq!(ws.queue_pop_back(), None);
        assert_eq!(ws.queue_pop_front(), None);
    }

    #[test]
    fn thread_workspace_is_reentrancy_safe() {
        let result = with_thread_workspace(|outer| {
            outer.begin(2);
            outer.try_visit(VertexId(0), 0);
            // a nested wrapper call must not disturb the outer traversal
            let inner = with_thread_workspace(|inner| {
                inner.begin(2);
                inner.try_visit(VertexId(0), 5);
                inner.dist(VertexId(0))
            });
            (outer.dist(VertexId(0)), inner)
        });
        assert_eq!(result, (Some(0), Some(5)));
    }

    #[test]
    fn workspace_grows_across_graph_sizes() {
        let mut ws = TraversalWorkspace::new();
        ws.begin(2);
        ws.try_visit(VertexId(1), 3);
        ws.begin(10);
        assert_eq!(ws.dist(VertexId(1)), None);
        assert!(ws.try_visit(VertexId(9), 1));
    }

    #[test]
    fn pages_allocate_lazily_on_write_only() {
        let mut ws = TraversalWorkspace::new();
        ws.begin(100 * PAGE_LEN);
        assert_eq!(ws.allocated_pages(), 0, "begin must not allocate pages");
        // reads of absent pages report unstamped state without allocating
        assert_eq!(ws.dist(VertexId(5_000)), None);
        assert_eq!(ws.prob(VertexId(5_000)), 0.0);
        assert_eq!(ws.parent(VertexId(5_000)), None);
        assert_eq!(ws.allocated_pages(), 0);
        // writes in two distinct pages materialise exactly those pages
        ws.try_visit(VertexId(3), 1);
        ws.set_prob(VertexId(17 * PAGE_LEN as u32 + 4), 0.5);
        assert_eq!(ws.allocated_pages(), 2);
        assert_eq!(
            ws.allocated_lane_bytes(),
            2 * PAGE_LEN * LANE_BYTES_PER_VERTEX
        );
        assert!(
            ws.allocated_lane_bytes() * 4 < TraversalWorkspace::dense_lane_bytes(100 * PAGE_LEN)
        );
    }

    #[test]
    fn pages_survive_epoch_bump_without_reallocation() {
        let mut ws = TraversalWorkspace::new();
        ws.begin(4 * PAGE_LEN);
        ws.try_visit(VertexId(10), 1);
        ws.try_expand(VertexId(10), 0.5);
        assert_eq!(ws.allocated_pages(), 1);
        ws.begin(4 * PAGE_LEN);
        // same page is reused: state invalid, allocation count unchanged
        assert_eq!(ws.allocated_pages(), 1);
        assert_eq!(ws.dist(VertexId(10)), None);
        assert!(ws.try_expand(VertexId(10), 0.5));
    }

    #[test]
    fn wraparound_resets_only_allocated_pages_and_keeps_absent_ones_lazy() {
        let mut ws = TraversalWorkspace::new();
        ws.begin(8 * PAGE_LEN);
        ws.try_visit(VertexId(0), 0);
        ws.force_epoch(u32::MAX);
        ws.begin(8 * PAGE_LEN);
        assert_eq!(ws.epoch(), 1);
        assert_eq!(ws.allocated_pages(), 1);
        assert_eq!(ws.dist(VertexId(0)), None);
        assert_eq!(ws.dist(VertexId(7 * PAGE_LEN as u32)), None);
        assert_eq!(ws.allocated_pages(), 1, "reads after wraparound stay lazy");
    }
}
