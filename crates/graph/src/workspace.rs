//! Reusable traversal scratch state — the [`TraversalWorkspace`].
//!
//! Every hot loop of the pipeline is a graph exploration: the bounded BFS of
//! the r-hop extraction `hop(v, r)` (Algorithm 2, Definition 2's radius
//! constraint) and the max-product Dijkstra behind `upp`/`cpp` (Eqs. (2)–(4)).
//! Before this module each call allocated its own `vec![None; n]` /
//! `vec![0.0; n]` scratch and churned a fresh `VecDeque`/`BinaryHeap`, so a
//! 2 000-query batch on a 50k-vertex graph spent most of its time in `memset`
//! and allocator traffic rather than in the traversal itself.
//!
//! A [`TraversalWorkspace`] owns that scratch once and amortises it across
//! calls:
//!
//! * **Epoch-stamped arrays** — `visited`/`distance`/`probability` state is
//!   paired with a `Vec<u32>` of stamps; an entry is valid only when its
//!   stamp equals the workspace's current epoch, so "clearing" the arrays
//!   for the next traversal is a single counter bump ([`begin`]) instead of
//!   an O(n) wipe. On the (astronomically rare) epoch wraparound the stamps
//!   are hard-reset, so stale entries from 2³² traversals ago can never
//!   alias.
//! * **A reusable queue buffer** — one grow-only `Vec` doubles as the BFS
//!   ring buffer (FIFO via a head cursor) and the DFS stack (LIFO).
//! * **A monotone bucket queue** for the max-product Dijkstra, keyed on a
//!   quantised `-ln p`. Probabilities only shrink along a path, so the
//!   quantised key never decreases and buckets can be drained strictly in
//!   order. Quantisation never costs exactness: every pop is re-checked
//!   against the per-vertex best value (stale entries are skipped) and a
//!   vertex whose best improves *within* a bucket is simply re-queued and
//!   re-expanded, so the computed probabilities are bit-identical to the
//!   binary-heap formulation.
//! * **A reusable binary heap** for traversals that need strict best-first
//!   order with early exit (`max_influence_path` stops at the target, which
//!   a quantised bucket cannot do exactly).
//!
//! # Borrowing contract
//!
//! The workspace is plain mutable state — no interior mutability, no locks.
//! The free functions in [`crate::traversal`] (and the influence crate's
//! `upp`/`cpp` entry points) come in two flavours:
//!
//! * `foo(g, ...)` — thin wrapper that borrows this thread's shared
//!   workspace via [`with_thread_workspace`] (re-entrant callers fall back
//!   to a fresh temporary, never panic);
//! * `foo_with(ws, g, ...)` — takes `&mut TraversalWorkspace` explicitly,
//!   for callers that run many traversals back to back (the offline
//!   pre-computation gives each `std::thread::scope` worker its own).
//!
//! A workspace may be used across graphs of different sizes; [`begin`]
//! grows the arrays as needed. Results never depend on what previous
//! traversals left behind — the property tests in
//! `crates/graph/tests/workspace_properties.rs` assert bit-identical output
//! through a reused workspace.
//!
//! [`begin`]: TraversalWorkspace::begin

use crate::types::VertexId;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Number of buckets of the monotone queue. Keys are quantised at 16 buckets
/// per halving of probability (see [`bucket_of`]), so 4096 buckets span
/// probabilities down to `2⁻²⁵⁶`; anything rarer lands in the last bucket,
/// which degrades ordering (never exactness).
const BUCKET_CAP: usize = 4096;

/// Quantisation shift: dropping 48 of the 52 mantissa bits keeps the f64
/// exponent plus the top 4 mantissa bits, i.e. 16 buckets per octave.
const KEY_SHIFT: u32 = 48;

/// Maps a probability `p ∈ (0, 1]` to its bucket index. The bit pattern of a
/// positive finite f64 is monotone in its value, so `bits(1.0) − bits(p)` is
/// a monotone non-negative cost (0 for `p = 1`) and right-shifting it
/// quantises `-ln p` without ever calling `ln`.
#[inline]
fn bucket_of(p: f64) -> usize {
    const ONE_BITS: u64 = 0x3FF0_0000_0000_0000; // 1.0f64.to_bits()
    let key = ONE_BITS.saturating_sub(p.to_bits());
    ((key >> KEY_SHIFT) as usize).min(BUCKET_CAP - 1)
}

/// Max-heap entry ordered by probability (ties broken by vertex id), shared
/// by every best-first traversal that needs strict ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbEntry {
    /// Path probability of this entry.
    pub probability: f64,
    /// Vertex the entry refers to.
    pub vertex: VertexId,
}

impl Eq for ProbEntry {}

impl Ord for ProbEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.probability
            .partial_cmp(&other.probability)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.vertex.cmp(&other.vertex))
    }
}

impl PartialOrd for ProbEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Monotone bucket queue over quantised `-ln p` keys.
#[derive(Debug, Default)]
struct BucketQueue {
    buckets: Vec<Vec<(f64, VertexId)>>,
    /// No entries live in buckets below this index.
    cursor: usize,
    /// Highest bucket index that has ever held an entry since the last reset.
    max_used: usize,
    len: usize,
}

impl BucketQueue {
    fn reset(&mut self) {
        if self.len > 0 {
            // early-exit left residue behind: clear the touched range
            for bucket in &mut self.buckets[self.cursor..=self.max_used] {
                bucket.clear();
            }
        }
        self.cursor = 0;
        self.max_used = 0;
        self.len = 0;
    }

    #[inline]
    fn push(&mut self, p: f64, v: VertexId) {
        // Keys are monotone along paths, so a new entry can never belong to
        // an already-drained bucket; clamping to the cursor is a pure
        // ordering fallback (exactness comes from the stale checks).
        let idx = bucket_of(p).max(self.cursor);
        if idx >= self.buckets.len() {
            self.buckets.resize_with(idx + 1, Vec::new);
        }
        self.buckets[idx].push((p, v));
        self.max_used = self.max_used.max(idx);
        self.len += 1;
    }

    #[inline]
    fn pop(&mut self) -> Option<(f64, VertexId)> {
        while self.len > 0 {
            if let Some(entry) = self.buckets[self.cursor].pop() {
                self.len -= 1;
                return Some(entry);
            }
            self.cursor += 1;
        }
        None
    }
}

/// Reusable scratch state for graph traversals. See the [module docs] for
/// the design and borrowing contract.
///
/// [module docs]: self
#[derive(Debug, Default)]
pub struct TraversalWorkspace {
    /// Current epoch; array entries are valid iff their stamp equals it.
    epoch: u32,
    /// Visited stamps (BFS/DFS visited set, Dijkstra reached set).
    reached: Vec<u32>,
    /// Hop distances, valid iff `reached` is stamped.
    dist: Vec<u32>,
    /// Best path probabilities, valid iff `reached` is stamped (0.0
    /// otherwise, matching the dense-array formulation).
    prob: Vec<f64>,
    /// Stamps for `expanded_at`.
    expanded: Vec<u32>,
    /// Probability a vertex was last expanded at (settled-skip state).
    expanded_at: Vec<f64>,
    /// Stamps for `parent`.
    parented: Vec<u32>,
    /// Predecessor on the current best path.
    parent: Vec<VertexId>,
    /// Vertices stamped through [`set_prob`] this epoch, in first-touch
    /// order.
    ///
    /// [`set_prob`]: TraversalWorkspace::set_prob
    touched: Vec<VertexId>,
    /// Shared FIFO/LIFO buffer: `queue[head..]` are the pending entries.
    queue: Vec<(VertexId, u32)>,
    head: usize,
    /// Monotone bucket queue for the max-product Dijkstra.
    buckets: BucketQueue,
    /// Strict best-first heap for early-exit traversals.
    heap: BinaryHeap<ProbEntry>,
    /// Number of vertex expansions since [`begin`] (diagnostics; the
    /// settled-skip tests assert duplicates are not re-expanded).
    ///
    /// [`begin`]: TraversalWorkspace::begin
    expansions: usize,
}

impl TraversalWorkspace {
    /// Creates an empty workspace; arrays grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new traversal over an `n`-vertex graph: grows the arrays if
    /// needed, invalidates all previous stamps with one epoch bump and
    /// clears the queue structures.
    pub fn begin(&mut self, n: usize) {
        if self.reached.len() < n {
            self.reached.resize(n, 0);
            self.dist.resize(n, 0);
            self.prob.resize(n, 0.0);
            self.expanded.resize(n, 0);
            self.expanded_at.resize(n, 0.0);
            self.parented.resize(n, 0);
            self.parent.resize(n, VertexId(0));
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // wraparound: stamps written 2^32 epochs ago would alias the new
            // epoch; hard-reset them once and restart from epoch 1
            self.reached.fill(0);
            self.expanded.fill(0);
            self.parented.fill(0);
            self.epoch = 1;
        }
        self.touched.clear();
        self.queue.clear();
        self.head = 0;
        self.buckets.reset();
        self.heap.clear();
        self.expansions = 0;
    }

    /// The current epoch (diagnostics).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Forces the epoch counter, so tests can exercise the wraparound reset
    /// without running 2³² traversals. Not part of the stable API.
    #[doc(hidden)]
    pub fn force_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }

    // -- visited / distance stamps (BFS, DFS) -------------------------------

    /// Marks `v` visited at hop distance `d`; returns `false` if `v` was
    /// already visited this epoch.
    #[inline]
    pub fn try_visit(&mut self, v: VertexId, d: u32) -> bool {
        let i = v.index();
        if self.reached[i] == self.epoch {
            return false;
        }
        self.reached[i] = self.epoch;
        self.dist[i] = d;
        true
    }

    /// Hop distance recorded for `v` this epoch, if it was visited.
    #[inline]
    pub fn dist(&self, v: VertexId) -> Option<u32> {
        let i = v.index();
        (self.reached[i] == self.epoch).then(|| self.dist[i])
    }

    // -- best-probability stamps (max-product Dijkstra) ---------------------

    /// Best path probability recorded for `v` this epoch (0.0 when
    /// untouched, matching a dense `vec![0.0; n]`).
    #[inline]
    pub fn prob(&self, v: VertexId) -> f64 {
        let i = v.index();
        if self.reached[i] == self.epoch {
            self.prob[i]
        } else {
            0.0
        }
    }

    /// Records a new best probability for `v` (first touch registers `v` in
    /// [`touched`]).
    ///
    /// [`touched`]: TraversalWorkspace::touched
    #[inline]
    pub fn set_prob(&mut self, v: VertexId, p: f64) {
        let i = v.index();
        if self.reached[i] != self.epoch {
            self.reached[i] = self.epoch;
            self.touched.push(v);
        }
        self.prob[i] = p;
    }

    /// Vertices whose probability was set this epoch, in first-touch order.
    #[inline]
    pub fn touched(&self) -> &[VertexId] {
        &self.touched
    }

    /// Settled-skip check: returns `true` (and records the expansion) iff
    /// `v` has not yet been expanded this epoch at probability ≥ `p`. Equal
    /// re-pops — the duplicate-entry class the plain `probability < best`
    /// check lets through — are rejected; a strict improvement within a
    /// bucket is admitted so the traversal stays exact.
    #[inline]
    pub fn try_expand(&mut self, v: VertexId, p: f64) -> bool {
        let i = v.index();
        if self.expanded[i] == self.epoch && p <= self.expanded_at[i] {
            return false;
        }
        self.expanded[i] = self.epoch;
        self.expanded_at[i] = p;
        self.expansions += 1;
        true
    }

    /// Number of vertex expansions since [`begin`] (diagnostics).
    ///
    /// [`begin`]: TraversalWorkspace::begin
    pub fn expansions(&self) -> usize {
        self.expansions
    }

    // -- parent pointers (path reconstruction) ------------------------------

    /// Records `u` as the predecessor of `v` on the current best path.
    #[inline]
    pub fn set_parent(&mut self, v: VertexId, u: VertexId) {
        let i = v.index();
        self.parented[i] = self.epoch;
        self.parent[i] = u;
    }

    /// Predecessor of `v` recorded this epoch, if any.
    #[inline]
    pub fn parent(&self, v: VertexId) -> Option<VertexId> {
        let i = v.index();
        (self.parented[i] == self.epoch).then(|| self.parent[i])
    }

    // -- shared queue buffer (FIFO for BFS, LIFO for DFS) -------------------

    /// Appends an entry to the queue buffer.
    #[inline]
    pub fn queue_push(&mut self, v: VertexId, d: u32) {
        self.queue.push((v, d));
    }

    /// Takes the oldest pending entry (FIFO / ring-buffer order).
    #[inline]
    pub fn queue_pop_front(&mut self) -> Option<(VertexId, u32)> {
        let entry = self.queue.get(self.head).copied();
        if entry.is_some() {
            self.head += 1;
        }
        entry
    }

    /// Takes the newest pending entry (LIFO / stack order).
    #[inline]
    pub fn queue_pop_back(&mut self) -> Option<(VertexId, u32)> {
        if self.queue.len() > self.head {
            self.queue.pop()
        } else {
            None
        }
    }

    // -- priority queues ----------------------------------------------------

    /// Pushes an entry into the monotone bucket queue.
    #[inline]
    pub fn bucket_push(&mut self, p: f64, v: VertexId) {
        self.buckets.push(p, v);
    }

    /// Pops the next entry from the lowest non-empty bucket.
    #[inline]
    pub fn bucket_pop(&mut self) -> Option<(f64, VertexId)> {
        self.buckets.pop()
    }

    /// Pushes an entry into the strict best-first heap.
    #[inline]
    pub fn heap_push(&mut self, entry: ProbEntry) {
        self.heap.push(entry);
    }

    /// Pops the highest-probability entry from the heap.
    #[inline]
    pub fn heap_pop(&mut self) -> Option<ProbEntry> {
        self.heap.pop()
    }
}

thread_local! {
    /// One shared workspace per thread, borrowed by the wrapper flavour of
    /// the traversal functions.
    static THREAD_WORKSPACE: RefCell<TraversalWorkspace> =
        RefCell::new(TraversalWorkspace::new());
}

/// Runs `f` with this thread's shared [`TraversalWorkspace`]. Re-entrant
/// calls (a caller that already holds the thread workspace invoking a
/// wrapper) fall back to a fresh temporary workspace instead of panicking,
/// so holding the workspace across arbitrary callbacks is always safe — the
/// fallback only costs the allocations the workspace would have amortised.
pub fn with_thread_workspace<R>(f: impl FnOnce(&mut TraversalWorkspace) -> R) -> R {
    THREAD_WORKSPACE.with(|cell| match cell.try_borrow_mut() {
        Ok(mut ws) => f(&mut ws),
        Err(_) => f(&mut TraversalWorkspace::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_keys_are_monotone_in_probability() {
        let probabilities = [
            1.0,
            0.999,
            0.9,
            0.5,
            0.25,
            0.1,
            0.01,
            1e-3,
            1e-6,
            1e-30,
            1e-300,
            f64::MIN_POSITIVE,
        ];
        assert_eq!(bucket_of(1.0), 0);
        for pair in probabilities.windows(2) {
            assert!(
                bucket_of(pair[0]) <= bucket_of(pair[1]),
                "bucket_of({}) > bucket_of({})",
                pair[0],
                pair[1]
            );
        }
        assert!(bucket_of(f64::MIN_POSITIVE) == BUCKET_CAP - 1);
    }

    #[test]
    fn bucket_queue_drains_in_key_order_across_buckets() {
        let mut q = BucketQueue::default();
        q.push(0.1, VertexId(1));
        q.push(0.9, VertexId(2));
        q.push(0.5, VertexId(3));
        let order: Vec<VertexId> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, vec![VertexId(2), VertexId(3), VertexId(1)]);
        assert_eq!(q.len, 0);
    }

    #[test]
    fn bucket_queue_reset_clears_early_exit_residue() {
        let mut q = BucketQueue::default();
        q.push(0.9, VertexId(1));
        q.push(0.1, VertexId(2));
        assert!(q.pop().is_some());
        q.reset(); // one entry still pending
        assert_eq!(q.len, 0);
        assert!(q.pop().is_none());
        q.push(0.5, VertexId(3));
        assert_eq!(q.pop(), Some((0.5, VertexId(3))));
    }

    #[test]
    fn stamps_reset_per_epoch() {
        let mut ws = TraversalWorkspace::new();
        ws.begin(4);
        assert!(ws.try_visit(VertexId(2), 7));
        assert!(!ws.try_visit(VertexId(2), 9));
        assert_eq!(ws.dist(VertexId(2)), Some(7));
        assert_eq!(ws.dist(VertexId(1)), None);
        ws.set_prob(VertexId(1), 0.5);
        assert_eq!(ws.prob(VertexId(1)), 0.5);
        assert_eq!(ws.touched(), &[VertexId(1)]);

        ws.begin(4);
        assert_eq!(ws.dist(VertexId(2)), None);
        assert_eq!(ws.prob(VertexId(1)), 0.0);
        assert!(ws.touched().is_empty());
        assert!(ws.try_visit(VertexId(2), 1));
    }

    #[test]
    fn expansion_check_rejects_equal_pops_but_admits_improvements() {
        let mut ws = TraversalWorkspace::new();
        ws.begin(2);
        assert!(ws.try_expand(VertexId(0), 0.5));
        assert!(!ws.try_expand(VertexId(0), 0.5), "equal duplicate re-pop");
        assert!(!ws.try_expand(VertexId(0), 0.4), "stale re-pop");
        assert!(ws.try_expand(VertexId(0), 0.6), "in-bucket improvement");
        assert_eq!(ws.expansions(), 2);
    }

    #[test]
    fn epoch_wraparound_hard_resets_stamps() {
        let mut ws = TraversalWorkspace::new();
        ws.begin(3);
        ws.try_visit(VertexId(0), 0);
        ws.set_prob(VertexId(1), 0.9);
        ws.try_expand(VertexId(1), 0.9);
        // next begin() wraps to 0 and must hard-reset, not alias old stamps
        ws.force_epoch(u32::MAX);
        ws.begin(3);
        assert_eq!(ws.epoch(), 1);
        assert_eq!(ws.dist(VertexId(0)), None);
        assert_eq!(ws.prob(VertexId(1)), 0.0);
        assert!(ws.try_expand(VertexId(1), 0.9));
    }

    #[test]
    fn queue_buffer_supports_fifo_and_lifo() {
        let mut ws = TraversalWorkspace::new();
        ws.begin(0);
        ws.queue_push(VertexId(1), 0);
        ws.queue_push(VertexId(2), 1);
        assert_eq!(ws.queue_pop_front(), Some((VertexId(1), 0)));
        ws.queue_push(VertexId(3), 2);
        assert_eq!(ws.queue_pop_back(), Some((VertexId(3), 2)));
        assert_eq!(ws.queue_pop_back(), Some((VertexId(2), 1)));
        assert_eq!(ws.queue_pop_back(), None);
        assert_eq!(ws.queue_pop_front(), None);
    }

    #[test]
    fn thread_workspace_is_reentrancy_safe() {
        let result = with_thread_workspace(|outer| {
            outer.begin(2);
            outer.try_visit(VertexId(0), 0);
            // a nested wrapper call must not disturb the outer traversal
            let inner = with_thread_workspace(|inner| {
                inner.begin(2);
                inner.try_visit(VertexId(0), 5);
                inner.dist(VertexId(0))
            });
            (outer.dist(VertexId(0)), inner)
        });
        assert_eq!(result, (Some(0), Some(5)));
    }

    #[test]
    fn workspace_grows_across_graph_sizes() {
        let mut ws = TraversalWorkspace::new();
        ws.begin(2);
        ws.try_visit(VertexId(1), 3);
        ws.begin(10);
        assert_eq!(ws.dist(VertexId(1)), None);
        assert!(ws.try_visit(VertexId(9), 1));
    }
}
