//! Mutable accumulation side of the builder/frozen split.
//!
//! [`GraphBuilder`] buffers vertices and edges in plain append-only vectors
//! and freezes them into the CSR [`SocialNetwork`] in one
//! [`GraphBuilder::build`] pass: validation, canonicalisation and a
//! counting-sort CSR layout all happen **once**, instead of the seed store's
//! per-edge sorted-insert memmoves (`O(deg)` per edge, quadratic per hub
//! vertex at build time).
//!
//! The builder also answers the O(1) incremental queries the synthetic
//! generators interleave with construction — [`degree`], [`contains_edge`],
//! [`neighbor_ids`] — backed by a hash set of canonical endpoint pairs and an
//! insertion-ordered adjacency mirror, so preferential attachment and
//! triadic-closure loops never pay a sort until the final freeze.
//!
//! [`degree`]: GraphBuilder::degree
//! [`contains_edge`]: GraphBuilder::contains_edge
//! [`neighbor_ids`]: GraphBuilder::neighbor_ids

use crate::error::{GraphError, GraphResult};
use crate::graph::SocialNetwork;
use crate::keywords::KeywordSet;
use crate::types::{is_valid_probability, VertexId, Weight};
use std::collections::HashSet;

/// Incremental builder for [`SocialNetwork`].
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    keywords: Vec<KeywordSet>,
    /// Buffered edges in insertion order (`EdgeId` = position after build).
    edges: Vec<(VertexId, VertexId, Weight, Weight)>,
    /// Canonical `(lo, hi)` endpoint pairs of every buffered edge, for O(1)
    /// duplicate checks during generation.
    edge_set: HashSet<(u32, u32)>,
    /// Unsorted adjacency mirror (neighbour ids only, insertion order); lets
    /// generators query degrees and neighbourhoods mid-build without paying
    /// sorted-insert costs.
    adjacency: Vec<Vec<VertexId>>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-populated with `n` keyword-less vertices.
    pub fn with_vertices(n: usize) -> Self {
        GraphBuilder {
            keywords: vec![KeywordSet::new(); n],
            adjacency: vec![Vec::new(); n],
            ..Default::default()
        }
    }

    /// Number of vertices declared so far.
    pub fn num_vertices(&self) -> usize {
        self.keywords.len()
    }

    /// Number of edges buffered so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a vertex with the given keyword set and returns its id.
    pub fn add_vertex(&mut self, keywords: KeywordSet) -> VertexId {
        self.keywords.push(keywords);
        self.adjacency.push(Vec::new());
        VertexId::from_index(self.keywords.len() - 1)
    }

    /// Ensures vertices `0..=v` exist (creating keyword-less vertices as
    /// needed). Used by edge-list loaders.
    pub fn ensure_vertex(&mut self, v: VertexId) {
        if v.index() >= self.keywords.len() {
            self.keywords.resize(v.index() + 1, KeywordSet::new());
            self.adjacency.resize(v.index() + 1, Vec::new());
        }
    }

    /// Sets (replaces) the keyword set of an already-declared vertex.
    pub fn set_keywords(&mut self, v: VertexId, keywords: KeywordSet) -> GraphResult<()> {
        if v.index() >= self.keywords.len() {
            return Err(GraphError::UnknownVertex(v));
        }
        self.keywords[v.index()] = keywords;
        Ok(())
    }

    /// Buffers an undirected edge with distinct directed probabilities.
    /// Unknown endpoints are created on the fly. Duplicates and self-loops
    /// are *not* rejected here — [`GraphBuilder::build`] reports the first
    /// offending edge for the whole batch (use
    /// [`GraphBuilder::try_add_edge`] for duplicate-tolerant generation).
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, p_uv: Weight, p_vu: Weight) -> &mut Self {
        self.ensure_vertex(u);
        self.ensure_vertex(v);
        self.record_edge(u, v, p_uv, p_vu);
        self
    }

    /// Buffers an undirected edge with a single symmetric probability.
    pub fn add_symmetric_edge(&mut self, u: VertexId, v: VertexId, p: Weight) -> &mut Self {
        self.add_edge(u, v, p, p)
    }

    /// Adds an edge only if it is structurally admissible right now: both
    /// endpoints distinct and not already connected. Returns whether the edge
    /// was added. This is the generators' duplicate-tolerant insert (the seed
    /// store's `add_edge(..).is_ok()` idiom) at O(1) instead of O(deg).
    ///
    /// # Panics
    /// Panics if a probability is invalid — generators draw from validated
    /// ranges, so an invalid weight is a programming error, not data.
    pub fn try_add_edge(&mut self, u: VertexId, v: VertexId, p_uv: Weight, p_vu: Weight) -> bool {
        assert!(
            is_valid_probability(p_uv) && is_valid_probability(p_vu),
            "try_add_edge requires valid probabilities, got ({p_uv}, {p_vu})"
        );
        if u == v {
            return false;
        }
        self.ensure_vertex(u);
        self.ensure_vertex(v);
        if self.contains_edge(u, v) {
            return false;
        }
        self.record_edge(u, v, p_uv, p_vu);
        true
    }

    /// Duplicate-tolerant symmetric insert; see [`GraphBuilder::try_add_edge`].
    pub fn try_add_symmetric_edge(&mut self, u: VertexId, v: VertexId, p: Weight) -> bool {
        self.try_add_edge(u, v, p, p)
    }

    fn record_edge(&mut self, u: VertexId, v: VertexId, p_uv: Weight, p_vu: Weight) {
        self.edges.push((u, v, p_uv, p_vu));
        let (lo, hi) = if u < v { (u, v) } else { (v, u) };
        self.edge_set.insert((lo.0, hi.0));
        if u != v {
            self.adjacency[u.index()].push(v);
            self.adjacency[v.index()].push(u);
        }
    }

    /// O(1) edge-membership test over the buffered structure.
    pub fn contains_edge(&self, u: VertexId, v: VertexId) -> bool {
        let (lo, hi) = if u < v { (u, v) } else { (v, u) };
        self.edge_set.contains(&(lo.0, hi.0))
    }

    /// Current degree of a buffered vertex (0 for unknown ids).
    pub fn degree(&self, v: VertexId) -> usize {
        self.adjacency.get(v.index()).map_or(0, Vec::len)
    }

    /// Neighbour ids of `v` in **insertion order** (unsorted — the CSR sort
    /// happens once at [`GraphBuilder::build`]). Empty for unknown ids.
    pub fn neighbor_ids(&self, v: VertexId) -> &[VertexId] {
        self.adjacency.get(v.index()).map_or(&[], Vec::as_slice)
    }

    /// Iterates over the buffered edges as canonical `(lo, hi)` endpoint
    /// pairs in insertion order (the future edge-id order).
    pub fn buffered_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.edges
            .iter()
            .map(|&(u, v, _, _)| if u < v { (u, v) } else { (v, u) })
    }

    /// Validates the buffered structure and freezes it into the CSR store.
    ///
    /// Duplicate edges (in either orientation), self-loops and invalid
    /// weights are rejected here, reporting the first offending edge in
    /// insertion order, so callers get one error for the whole batch.
    pub fn build(self) -> GraphResult<SocialNetwork> {
        SocialNetwork::assemble(self.keywords, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_graph() {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex(KeywordSet::from_ids([1]));
        let c = b.add_vertex(KeywordSet::from_ids([2]));
        b.add_symmetric_edge(a, c, 0.5);
        let g = b.build().unwrap();
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.activation_probability(a, c).unwrap(), 0.5);
    }

    #[test]
    fn ensure_vertex_creates_gaps() {
        let mut b = GraphBuilder::new();
        b.add_symmetric_edge(VertexId(0), VertexId(5), 0.6);
        let g = b.build().unwrap();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.degree(VertexId(3)), 0);
        assert!(g.contains_edge(VertexId(0), VertexId(5)));
    }

    #[test]
    fn with_vertices_prepopulates() {
        let b = GraphBuilder::with_vertices(4);
        assert_eq!(b.num_vertices(), 4);
        let g = b.build().unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn duplicate_edge_detected_at_build() {
        let mut b = GraphBuilder::with_vertices(2);
        b.add_symmetric_edge(VertexId(0), VertexId(1), 0.5);
        b.add_symmetric_edge(VertexId(1), VertexId(0), 0.6);
        assert!(matches!(b.build(), Err(GraphError::DuplicateEdge(..))));
    }

    #[test]
    fn self_loop_detected_at_build() {
        let mut b = GraphBuilder::with_vertices(1);
        b.add_symmetric_edge(VertexId(0), VertexId(0), 0.5);
        assert!(matches!(b.build(), Err(GraphError::SelfLoop(_))));
    }

    #[test]
    fn invalid_weight_detected_at_build() {
        let mut b = GraphBuilder::with_vertices(2);
        b.add_edge(VertexId(0), VertexId(1), 1.5, 0.5);
        assert!(matches!(b.build(), Err(GraphError::InvalidWeight { .. })));
    }

    #[test]
    fn set_keywords_requires_existing_vertex() {
        let mut b = GraphBuilder::with_vertices(1);
        assert!(b
            .set_keywords(VertexId(0), KeywordSet::from_ids([3]))
            .is_ok());
        assert!(b.set_keywords(VertexId(7), KeywordSet::new()).is_err());
        let g = b.build().unwrap();
        assert!(g.keyword_set(VertexId(0)).contains(crate::Keyword(3)));
    }

    #[test]
    fn try_add_skips_duplicates_and_self_loops() {
        let mut b = GraphBuilder::with_vertices(3);
        assert!(b.try_add_symmetric_edge(VertexId(0), VertexId(1), 0.5));
        assert!(!b.try_add_symmetric_edge(VertexId(1), VertexId(0), 0.5));
        assert!(!b.try_add_symmetric_edge(VertexId(2), VertexId(2), 0.5));
        assert!(b.try_add_symmetric_edge(VertexId(1), VertexId(2), 0.5));
        assert_eq!(b.num_edges(), 2);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn incremental_queries_track_buffered_structure() {
        let mut b = GraphBuilder::with_vertices(4);
        b.add_symmetric_edge(VertexId(2), VertexId(0), 0.5);
        b.add_symmetric_edge(VertexId(2), VertexId(3), 0.5);
        assert_eq!(b.degree(VertexId(2)), 2);
        assert_eq!(b.degree(VertexId(1)), 0);
        assert_eq!(b.degree(VertexId(9)), 0);
        assert!(b.contains_edge(VertexId(0), VertexId(2)));
        assert!(!b.contains_edge(VertexId(0), VertexId(3)));
        // insertion order, not sorted
        assert_eq!(b.neighbor_ids(VertexId(2)), &[VertexId(0), VertexId(3)]);
        let canonical: Vec<_> = b.buffered_edges().collect();
        assert_eq!(
            canonical,
            vec![(VertexId(0), VertexId(2)), (VertexId(2), VertexId(3))]
        );
    }

    #[test]
    fn frozen_edge_ids_follow_insertion_order() {
        let mut b = GraphBuilder::with_vertices(4);
        b.add_symmetric_edge(VertexId(3), VertexId(1), 0.5);
        b.add_symmetric_edge(VertexId(0), VertexId(2), 0.6);
        let g = b.build().unwrap();
        assert_eq!(
            g.edge_endpoints(crate::EdgeId(0)),
            (VertexId(1), VertexId(3))
        );
        assert_eq!(
            g.edge_endpoints(crate::EdgeId(1)),
            (VertexId(0), VertexId(2))
        );
    }
}
