//! Fluent construction of [`SocialNetwork`] instances.
//!
//! [`GraphBuilder`] buffers vertices and edges and performs validation only
//! once at [`GraphBuilder::build`], which makes it convenient for tests,
//! examples and file loaders that discover vertices lazily (an edge list can
//! mention vertex 10 before vertices 0..9 were explicitly declared).

use crate::error::{GraphError, GraphResult};
use crate::graph::SocialNetwork;
use crate::keywords::KeywordSet;
use crate::types::{VertexId, Weight};

/// Incremental builder for [`SocialNetwork`].
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    keywords: Vec<KeywordSet>,
    edges: Vec<(VertexId, VertexId, Weight, Weight)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-populated with `n` keyword-less vertices.
    pub fn with_vertices(n: usize) -> Self {
        GraphBuilder {
            keywords: vec![KeywordSet::new(); n],
            edges: Vec::new(),
        }
    }

    /// Number of vertices declared so far.
    pub fn num_vertices(&self) -> usize {
        self.keywords.len()
    }

    /// Number of edges buffered so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a vertex with the given keyword set and returns its id.
    pub fn add_vertex(&mut self, keywords: KeywordSet) -> VertexId {
        self.keywords.push(keywords);
        VertexId::from_index(self.keywords.len() - 1)
    }

    /// Ensures vertices `0..=v` exist (creating keyword-less vertices as
    /// needed). Used by edge-list loaders.
    pub fn ensure_vertex(&mut self, v: VertexId) {
        if v.index() >= self.keywords.len() {
            self.keywords.resize(v.index() + 1, KeywordSet::new());
        }
    }

    /// Sets (replaces) the keyword set of an already-declared vertex.
    pub fn set_keywords(&mut self, v: VertexId, keywords: KeywordSet) -> GraphResult<()> {
        if v.index() >= self.keywords.len() {
            return Err(GraphError::UnknownVertex(v));
        }
        self.keywords[v.index()] = keywords;
        Ok(())
    }

    /// Buffers an undirected edge with distinct directed probabilities.
    /// Unknown endpoints are created on the fly.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, p_uv: Weight, p_vu: Weight) -> &mut Self {
        self.ensure_vertex(u);
        self.ensure_vertex(v);
        self.edges.push((u, v, p_uv, p_vu));
        self
    }

    /// Buffers an undirected edge with a single symmetric probability.
    pub fn add_symmetric_edge(&mut self, u: VertexId, v: VertexId, p: Weight) -> &mut Self {
        self.add_edge(u, v, p, p)
    }

    /// Validates the buffered structure and produces the final graph.
    ///
    /// Duplicate edges (in either orientation) and self-loops are rejected
    /// here so that callers get one error for the whole batch.
    pub fn build(self) -> GraphResult<SocialNetwork> {
        let mut g = SocialNetwork::with_capacity(self.keywords.len(), self.edges.len());
        for kw in self.keywords {
            g.add_vertex(kw);
        }
        for (u, v, p_uv, p_vu) in self.edges {
            g.add_edge(u, v, p_uv, p_vu)?;
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_graph() {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex(KeywordSet::from_ids([1]));
        let c = b.add_vertex(KeywordSet::from_ids([2]));
        b.add_symmetric_edge(a, c, 0.5);
        let g = b.build().unwrap();
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.activation_probability(a, c).unwrap(), 0.5);
    }

    #[test]
    fn ensure_vertex_creates_gaps() {
        let mut b = GraphBuilder::new();
        b.add_symmetric_edge(VertexId(0), VertexId(5), 0.6);
        let g = b.build().unwrap();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.degree(VertexId(3)), 0);
        assert!(g.contains_edge(VertexId(0), VertexId(5)));
    }

    #[test]
    fn with_vertices_prepopulates() {
        let b = GraphBuilder::with_vertices(4);
        assert_eq!(b.num_vertices(), 4);
        let g = b.build().unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn duplicate_edge_detected_at_build() {
        let mut b = GraphBuilder::with_vertices(2);
        b.add_symmetric_edge(VertexId(0), VertexId(1), 0.5);
        b.add_symmetric_edge(VertexId(1), VertexId(0), 0.6);
        assert!(matches!(b.build(), Err(GraphError::DuplicateEdge(..))));
    }

    #[test]
    fn self_loop_detected_at_build() {
        let mut b = GraphBuilder::with_vertices(1);
        b.add_symmetric_edge(VertexId(0), VertexId(0), 0.5);
        assert!(matches!(b.build(), Err(GraphError::SelfLoop(_))));
    }

    #[test]
    fn set_keywords_requires_existing_vertex() {
        let mut b = GraphBuilder::with_vertices(1);
        assert!(b
            .set_keywords(VertexId(0), KeywordSet::from_ids([3]))
            .is_ok());
        assert!(b.set_keywords(VertexId(7), KeywordSet::new()).is_err());
        let g = b.build().unwrap();
        assert!(g.keyword_set(VertexId(0)).contains(crate::Keyword(3)));
    }
}
