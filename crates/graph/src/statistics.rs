//! Descriptive statistics of social networks.
//!
//! Used by the dataset-statistics report (Table II), by the generator tests
//! (to check that the DBLP-like / Amazon-like stand-ins have realistic degree
//! skew and clustering) and by applications that want a quick structural
//! profile of a loaded graph.

use crate::graph::SocialNetwork;
use crate::traversal::{bfs_within_with, connected_components};
use crate::types::VertexId;
use crate::workspace::with_thread_workspace;
use serde::{Deserialize, Serialize};

/// Summary statistics of one social network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStatistics {
    /// Number of vertices `|V(G)|`.
    pub num_vertices: usize,
    /// Number of undirected edges `|E(G)|`.
    pub num_edges: usize,
    /// Average degree `2|E|/|V|`.
    pub average_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Median degree.
    pub median_degree: usize,
    /// Number of connected components.
    pub connected_components: usize,
    /// Size of the largest connected component.
    pub largest_component: usize,
    /// Average keyword-set size over all vertices.
    pub average_keywords_per_vertex: f64,
    /// Number of distinct keywords observed (the realised `|Σ|`).
    pub distinct_keywords: usize,
    /// Lower bound of the diameter obtained from a double-sweep BFS over the
    /// largest component (exact diameters are too expensive at 1M vertices).
    pub diameter_lower_bound: u32,
}

/// Computes summary statistics for `g`.
pub fn graph_statistics(g: &SocialNetwork) -> GraphStatistics {
    let n = g.num_vertices();
    let mut degrees: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    degrees.sort_unstable();
    let median_degree = if degrees.is_empty() {
        0
    } else {
        degrees[degrees.len() / 2]
    };

    let components = connected_components(g);
    let largest_component = components.first().map_or(0, |c| c.len());

    let mut keyword_total = 0usize;
    let mut distinct = std::collections::HashSet::new();
    for v in g.vertices() {
        let set = g.keyword_set(v);
        keyword_total += set.len();
        for kw in set.iter() {
            distinct.insert(kw);
        }
    }

    GraphStatistics {
        num_vertices: n,
        num_edges: g.num_edges(),
        average_degree: g.average_degree(),
        max_degree: g.max_degree(),
        median_degree,
        connected_components: components.len(),
        largest_component,
        average_keywords_per_vertex: if n == 0 {
            0.0
        } else {
            keyword_total as f64 / n as f64
        },
        distinct_keywords: distinct.len(),
        diameter_lower_bound: diameter_lower_bound(g),
    }
}

/// Double-sweep BFS lower bound on the diameter: BFS from an arbitrary
/// vertex, then BFS again from the farthest vertex found; the eccentricity of
/// the second sweep lower-bounds the diameter.
pub fn diameter_lower_bound(g: &SocialNetwork) -> u32 {
    if g.num_vertices() == 0 {
        return 0;
    }
    with_thread_workspace(|ws| {
        let first = bfs_within_with(ws, g, VertexId(0), u32::MAX);
        // BFS order is non-decreasing in distance: the last vertex is (one
        // of) the farthest
        match first.distances.last() {
            Some(&(farthest, _)) => bfs_within_with(ws, g, farthest, u32::MAX).max_distance(),
            None => 0,
        }
    })
}

/// Per-degree histogram: `histogram[d]` is the number of vertices with degree
/// `d` (vector length = max degree + 1; empty for the empty graph).
pub fn degree_histogram(g: &SocialNetwork) -> Vec<usize> {
    if g.num_vertices() == 0 {
        return Vec::new();
    }
    let mut histogram = vec![0usize; g.max_degree() + 1];
    for v in g.vertices() {
        histogram[g.degree(v)] += 1;
    }
    histogram
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{DatasetKind, DatasetSpec};
    use crate::keywords::KeywordSet;

    #[test]
    fn statistics_of_small_known_graph() {
        // path 0-1-2 with keywords
        let mut b = crate::builder::GraphBuilder::new();
        for kw in [1u32, 2, 2] {
            b.add_vertex(KeywordSet::from_ids([kw]));
        }
        b.add_symmetric_edge(VertexId(0), VertexId(1), 0.5);
        b.add_symmetric_edge(VertexId(1), VertexId(2), 0.5);
        let g = b.build().unwrap();
        let stats = graph_statistics(&g);
        assert_eq!(stats.num_vertices, 3);
        assert_eq!(stats.num_edges, 2);
        assert_eq!(stats.max_degree, 2);
        assert_eq!(stats.median_degree, 1);
        assert_eq!(stats.connected_components, 1);
        assert_eq!(stats.largest_component, 3);
        assert_eq!(stats.distinct_keywords, 2);
        assert!((stats.average_keywords_per_vertex - 1.0).abs() < 1e-12);
        assert_eq!(stats.diameter_lower_bound, 2);
    }

    #[test]
    fn degree_histogram_sums_to_vertex_count() {
        let g = DatasetSpec::new(DatasetKind::AmazonLike, 500, 2).generate();
        let histogram = degree_histogram(&g);
        assert_eq!(histogram.iter().sum::<usize>(), g.num_vertices());
        assert_eq!(histogram.len(), g.max_degree() + 1);
    }

    #[test]
    fn generated_graphs_are_mostly_connected() {
        let g = DatasetSpec::new(DatasetKind::Uniform, 400, 4).generate();
        let stats = graph_statistics(&g);
        assert_eq!(stats.connected_components, 1);
        assert_eq!(stats.largest_component, 400);
        assert!(stats.diameter_lower_bound >= 2);
    }

    #[test]
    fn empty_graph_statistics() {
        let stats = graph_statistics(&SocialNetwork::new());
        assert_eq!(stats.num_vertices, 0);
        assert_eq!(stats.connected_components, 0);
        assert_eq!(stats.diameter_lower_bound, 0);
        assert!(degree_histogram(&SocialNetwork::new()).is_empty());
    }
}
