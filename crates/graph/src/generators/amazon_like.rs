//! Amazon-like co-purchase graph generator.
//!
//! The real Amazon graph in the paper (335K vertices, 926K edges) is an
//! "Also Bought" network: two products are connected when customers
//! co-purchase them. Such networks combine a heavy-tailed degree
//! distribution (popular products are co-purchased with many others) with
//! local clustering (products in the same category form small dense
//! pockets).
//!
//! The generator uses preferential attachment for the degree skew plus a
//! triadic-closure step for the clustering: each new product connects to a
//! few existing products chosen proportionally to their degree, and with some
//! probability also to a neighbour of one of those products (closing a
//! triangle, as category-mates tend to be co-purchased together).

use super::dblp_like::connect_isolated_vertices;
use crate::builder::GraphBuilder;
use crate::graph::SocialNetwork;
use crate::types::VertexId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the Amazon-like co-purchase generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AmazonLikeConfig {
    /// Number of products (vertices).
    pub num_vertices: usize,
    /// Edges added per new product (preferential attachment `m`).
    pub edges_per_vertex: usize,
    /// Probability of closing a triangle for each attachment edge.
    pub triadic_closure_probability: f64,
}

impl AmazonLikeConfig {
    /// Default configuration producing ≈2.8 edges per vertex, close to the
    /// real Amazon edge/vertex ratio (926K / 335K ≈ 2.8).
    pub fn with_vertices(num_vertices: usize) -> Self {
        AmazonLikeConfig {
            num_vertices,
            edges_per_vertex: 3,
            triadic_closure_probability: 0.4,
        }
    }
}

/// Generates an Amazon-like co-purchase network. Edges carry a placeholder
/// weight of 0.5 until [`super::assign_uniform_weights`] is run.
///
/// # Panics
/// Panics if `num_vertices <= edges_per_vertex + 1`, `edges_per_vertex == 0`,
/// or `triadic_closure_probability` is not a probability.
pub fn amazon_like<R: Rng>(config: &AmazonLikeConfig, rng: &mut R) -> SocialNetwork {
    let n = config.num_vertices;
    let m = config.edges_per_vertex;
    assert!(m >= 1, "edges_per_vertex must be at least 1");
    assert!(n > m + 1, "need more than edges_per_vertex + 1 vertices");
    assert!(
        (0.0..=1.0).contains(&config.triadic_closure_probability),
        "triadic_closure_probability must be in [0, 1], got {}",
        config.triadic_closure_probability
    );

    let mut b = GraphBuilder::with_vertices(n);

    // Seed core: a small clique so early attachments have targets and the
    // graph contains triangles from the start.
    let core = (m + 1).min(n);
    for i in 0..core {
        for j in (i + 1)..core {
            b.try_add_symmetric_edge(VertexId::from_index(i), VertexId::from_index(j), 0.5);
        }
    }

    // `attachment_pool` holds one entry per edge endpoint, so sampling from
    // it is degree-proportional (the classic Barabási–Albert trick).
    let mut attachment_pool: Vec<VertexId> = Vec::with_capacity(2 * n * m);
    for (u, v) in b.buffered_edges() {
        attachment_pool.push(u);
        attachment_pool.push(v);
    }

    for new in core..n {
        let v = VertexId::from_index(new);
        let mut added = 0usize;
        let mut guard = 0usize;
        while added < m && guard < m * 20 {
            guard += 1;
            let target = attachment_pool[rng.gen_range(0..attachment_pool.len())];
            if target == v || !b.try_add_symmetric_edge(v, target, 0.5) {
                continue;
            }
            attachment_pool.push(v);
            attachment_pool.push(target);
            added += 1;

            // Triadic closure: also co-purchase one of the target's existing
            // neighbours, creating a triangle v-target-w. The builder mirror
            // is insertion-ordered, so sort to keep the RNG-indexed pick
            // identical to the seed store's ascending neighbour lists.
            if rng.gen_bool(config.triadic_closure_probability) {
                let mut neighbors: Vec<VertexId> = b
                    .neighbor_ids(target)
                    .iter()
                    .copied()
                    .filter(|w| *w != v)
                    .collect();
                neighbors.sort_unstable();
                if !neighbors.is_empty() {
                    let w = neighbors[rng.gen_range(0..neighbors.len())];
                    if b.try_add_symmetric_edge(v, w, 0.5) {
                        attachment_pool.push(v);
                        attachment_pool.push(w);
                    }
                }
            }
        }
    }

    connect_isolated_vertices(&mut b, rng);
    b.build().expect("generator buffers only admissible edges")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn produces_co_purchase_scale() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = amazon_like(&AmazonLikeConfig::with_vertices(2000), &mut rng);
        assert_eq!(g.num_vertices(), 2000);
        let ratio = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(ratio > 2.0 && ratio < 6.0, "edge/vertex ratio {ratio}");
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = amazon_like(&AmazonLikeConfig::with_vertices(3000), &mut rng);
        let max_deg = g.max_degree() as f64;
        let avg_deg = g.average_degree();
        // preferential attachment produces hubs far above the average degree
        assert!(max_deg > avg_deg * 4.0, "max={max_deg} avg={avg_deg}");
    }

    #[test]
    fn triadic_closure_creates_triangles() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = amazon_like(&AmazonLikeConfig::with_vertices(1500), &mut rng);
        let triangle_edges = g
            .edges()
            .filter(|&(_, u, v)| g.common_neighbor_count(u, v) > 0)
            .count();
        assert!(
            triangle_edges * 4 > g.num_edges(),
            "too few triangle edges: {triangle_edges}/{}",
            g.num_edges()
        );
    }

    #[test]
    fn graph_is_connected() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = amazon_like(&AmazonLikeConfig::with_vertices(800), &mut rng);
        assert!(is_connected(&g));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = AmazonLikeConfig::with_vertices(400);
        let a = amazon_like(&cfg, &mut StdRng::seed_from_u64(9));
        let b = amazon_like(&cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    #[should_panic(expected = "edges_per_vertex")]
    fn zero_attachment_panics() {
        let cfg = AmazonLikeConfig {
            edges_per_vertex: 0,
            ..AmazonLikeConfig::with_vertices(100)
        };
        let _ = amazon_like(&cfg, &mut StdRng::seed_from_u64(0));
    }
}
