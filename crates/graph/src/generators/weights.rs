//! Edge-weight (activation probability) assignment.
//!
//! Section VIII-A: "For each edge `e_{u,v}` in graph G, we randomly generate
//! a value within the interval `[0.5, 0.6)` as the edge weight `p_{u,v}`."
//! The two directions of an edge are drawn independently, matching the
//! directed influence weights in Figure 1 of the paper.

use crate::graph::SocialNetwork;
use crate::types::Weight;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Half-open interval `[low, high)` from which activation probabilities are
/// drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightRange {
    /// Inclusive lower bound.
    pub low: Weight,
    /// Exclusive upper bound.
    pub high: Weight,
}

impl WeightRange {
    /// Creates a range after validating `0 ≤ low < high ≤ 1`.
    ///
    /// # Panics
    /// Panics if the bounds are not valid probabilities or `low >= high`.
    pub fn new(low: Weight, high: Weight) -> Self {
        assert!(
            (0.0..=1.0).contains(&low) && (0.0..=1.0).contains(&high) && low < high,
            "weight range must satisfy 0 <= low < high <= 1, got [{low}, {high})"
        );
        WeightRange { low, high }
    }

    /// The paper's range `[0.5, 0.6)`.
    pub fn paper_default() -> Self {
        WeightRange {
            low: 0.5,
            high: 0.6,
        }
    }

    /// Draws a weight from the range.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Weight {
        rng.gen_range(self.low..self.high)
    }

    /// Returns `true` if `w` lies inside the range.
    pub fn contains(&self, w: Weight) -> bool {
        w >= self.low && w < self.high
    }
}

/// Re-draws both directed activation probabilities of every edge uniformly
/// from `range`.
pub fn assign_uniform_weights<R: Rng>(g: &mut SocialNetwork, range: WeightRange, rng: &mut R) {
    let updates: Vec<_> = g
        .edges()
        .map(|(e, _, _)| (e, range.sample(rng), range.sample(rng)))
        .collect();
    g.set_edge_weights_bulk(&updates)
        .expect("weights sampled from a validated range are valid probabilities");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::small_world::{small_world, SmallWorldConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_default_bounds() {
        let r = WeightRange::paper_default();
        assert_eq!(r.low, 0.5);
        assert_eq!(r.high, 0.6);
        assert!(r.contains(0.55));
        assert!(!r.contains(0.6));
        assert!(!r.contains(0.49));
    }

    #[test]
    #[should_panic(expected = "weight range")]
    fn invalid_range_panics() {
        let _ = WeightRange::new(0.7, 0.6);
    }

    #[test]
    fn sample_stays_in_range() {
        let r = WeightRange::new(0.2, 0.3);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let w = r.sample(&mut rng);
            assert!(r.contains(w));
        }
    }

    #[test]
    fn assign_covers_every_edge_both_directions() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = small_world(&SmallWorldConfig::paper_default(80), &mut rng);
        assign_uniform_weights(&mut g, WeightRange::paper_default(), &mut rng);
        let r = WeightRange::paper_default();
        for (e, u, v) in g.edges() {
            assert!(r.contains(g.directed_weight(e, u)));
            assert!(r.contains(g.directed_weight(e, v)));
        }
    }
}
