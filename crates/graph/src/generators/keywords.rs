//! Keyword assignment following Uniform, Gaussian or Zipf distributions.
//!
//! Section VIII-A: "For each vertex, we also randomly produce a keyword set
//! `v_i.W` from the keyword domain `Σ`, following Uniform, Gaussian, or Zipf
//! distribution". The distribution shapes how popular each keyword is across
//! the population, which in turn controls how selective the keyword pruning
//! rule is.

use crate::graph::SocialNetwork;
use crate::keywords::{Keyword, KeywordSet};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Distribution of keyword popularity over the domain `Σ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KeywordDistribution {
    /// Every keyword equally likely.
    Uniform,
    /// Keyword ids drawn from a normal distribution centred on the middle of
    /// the domain (σ = |Σ|/6), clamped to the domain.
    Gaussian,
    /// Keyword `i` (1-based rank) drawn with probability ∝ 1 / i^exponent.
    Zipf {
        /// Skew exponent `s` (the paper's Zipf graphs use s = 1).
        exponent: f64,
    },
}

/// Draws a single keyword id from the configured distribution.
fn sample_keyword<R: Rng>(domain: u32, dist: KeywordDistribution, rng: &mut R) -> Keyword {
    debug_assert!(domain > 0);
    match dist {
        KeywordDistribution::Uniform => Keyword(rng.gen_range(0..domain)),
        KeywordDistribution::Gaussian => {
            // Box–Muller transform; avoids pulling in rand_distr.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let mean = (domain as f64 - 1.0) / 2.0;
            let sigma = (domain as f64 / 6.0).max(1.0);
            let id = (mean + z * sigma).round().clamp(0.0, domain as f64 - 1.0);
            Keyword(id as u32)
        }
        KeywordDistribution::Zipf { exponent } => {
            // Inverse-CDF sampling over the finite domain.
            let s = exponent.max(0.0);
            let norm: f64 = (1..=domain as u64).map(|i| 1.0 / (i as f64).powf(s)).sum();
            let target: f64 = rng.gen_range(0.0..norm);
            let mut acc = 0.0;
            for i in 1..=domain as u64 {
                acc += 1.0 / (i as f64).powf(s);
                if acc >= target {
                    return Keyword((i - 1) as u32);
                }
            }
            Keyword(domain - 1)
        }
    }
}

/// Samples a keyword set of (up to) `keywords_per_vertex` distinct keywords.
///
/// Sampling is with rejection, so the realised set can be smaller than
/// requested only if the domain itself is smaller.
pub fn sample_keyword_set<R: Rng>(
    domain: u32,
    keywords_per_vertex: usize,
    dist: KeywordDistribution,
    rng: &mut R,
) -> KeywordSet {
    let target = keywords_per_vertex.min(domain as usize);
    let mut set = KeywordSet::new();
    let mut attempts = 0usize;
    while set.len() < target && attempts < target * 32 {
        set.insert(sample_keyword(domain, dist, rng));
        attempts += 1;
    }
    // Fall back to deterministic fill if rejection sampling stalls on a very
    // skewed distribution.
    let mut next = 0u32;
    while set.len() < target && next < domain {
        set.insert(Keyword(next));
        next += 1;
    }
    set
}

/// Assigns a fresh keyword set to every vertex of `g`.
pub fn assign_keywords<R: Rng>(
    g: &mut SocialNetwork,
    domain: u32,
    keywords_per_vertex: usize,
    dist: KeywordDistribution,
    rng: &mut R,
) {
    assert!(domain > 0, "keyword domain must be non-empty");
    for v in 0..g.num_vertices() {
        let set = sample_keyword_set(domain, keywords_per_vertex, dist, rng);
        g.set_keyword_set(crate::types::VertexId::from_index(v), set);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::small_world::{small_world, SmallWorldConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(dist: KeywordDistribution, domain: u32, samples: usize) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = vec![0usize; domain as usize];
        for _ in 0..samples {
            counts[sample_keyword(domain, dist, &mut rng).index()] += 1;
        }
        counts
    }

    #[test]
    fn uniform_spreads_over_domain() {
        let counts = histogram(KeywordDistribution::Uniform, 10, 10_000);
        for c in &counts {
            // each bucket expects 1000; allow generous slack
            assert!(*c > 700 && *c < 1300, "uniform bucket out of range: {c}");
        }
    }

    #[test]
    fn gaussian_concentrates_in_middle() {
        let counts = histogram(KeywordDistribution::Gaussian, 20, 20_000);
        let middle: usize = counts[8..12].iter().sum();
        let edges: usize =
            counts[0..2].iter().sum::<usize>() + counts[18..20].iter().sum::<usize>();
        assert!(middle > edges * 3, "middle={middle} edges={edges}");
    }

    #[test]
    fn zipf_is_head_heavy() {
        let counts = histogram(KeywordDistribution::Zipf { exponent: 1.0 }, 20, 20_000);
        assert!(
            counts[0] > counts[10] * 3,
            "head={} mid={}",
            counts[0],
            counts[10]
        );
        assert!(counts[0] > counts[19] * 5);
    }

    #[test]
    fn sample_set_respects_size_and_domain() {
        let mut rng = StdRng::seed_from_u64(5);
        let set = sample_keyword_set(50, 3, KeywordDistribution::Uniform, &mut rng);
        assert_eq!(set.len(), 3);
        for kw in set.iter() {
            assert!(kw.0 < 50);
        }
        // domain smaller than the requested size: capped at the domain
        let set = sample_keyword_set(2, 5, KeywordDistribution::Zipf { exponent: 2.0 }, &mut rng);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn assign_keywords_covers_all_vertices() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut g = small_world(&SmallWorldConfig::paper_default(100), &mut rng);
        assign_keywords(&mut g, 20, 3, KeywordDistribution::Gaussian, &mut rng);
        for v in g.vertices() {
            assert_eq!(g.keyword_set(v).len(), 3);
        }
    }
}
