//! Newman–Watts–Strogatz small-world generator (Section VIII-A).
//!
//! The paper's synthetic graphs are produced by: (1) arranging `|V(G)|`
//! vertices on a ring, (2) connecting each vertex to its `m` nearest ring
//! neighbours, and (3) for each resulting edge `e_{u,v}`, adding — with
//! probability `µ` — a new shortcut edge `e_{u,w}` to a uniformly random
//! vertex `w`. The paper uses `m = 6` and `µ = 0.167`.
//!
//! Edge weights are assigned separately (see [`super::weights`]).

use crate::builder::GraphBuilder;
use crate::graph::SocialNetwork;
use crate::types::VertexId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the Newman–Watts–Strogatz generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmallWorldConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Each vertex connects to its `m` nearest ring neighbours (`m/2` on each
    /// side; the paper uses `m = 6`).
    pub ring_neighbors: usize,
    /// Shortcut probability `µ` per ring edge (the paper uses 0.167).
    pub shortcut_probability: f64,
}

impl SmallWorldConfig {
    /// The paper's parameters: `m = 6`, `µ = 0.167`.
    pub fn paper_default(num_vertices: usize) -> Self {
        SmallWorldConfig {
            num_vertices,
            ring_neighbors: 6,
            shortcut_probability: 0.167,
        }
    }

    /// A locality-dominated variant for the million-vertex scaling runs:
    /// the paper's ring degree (`m = 6`) but only `µ = 0.0002` shortcuts, so
    /// an `r_max`-hop ball stays ring-sized instead of exploding through
    /// shortcut hubs. At `n = 10⁶` this still sprinkles ~600 shortcuts —
    /// enough to exercise the cross-shard edges of a sharded offline build
    /// while keeping per-ball work (and thus per-worker scratch) bounded.
    pub fn locality(num_vertices: usize) -> Self {
        SmallWorldConfig {
            num_vertices,
            ring_neighbors: 6,
            shortcut_probability: 0.0002,
        }
    }
}

/// Generates a Newman–Watts–Strogatz small-world graph. All edges carry a
/// placeholder weight of 0.5 until [`super::assign_uniform_weights`] is run.
///
/// # Panics
/// Panics if `ring_neighbors` is odd or zero, if the graph is too small to
/// host the requested ring (fewer than `ring_neighbors + 1` vertices), or if
/// `shortcut_probability` is not a probability.
pub fn small_world<R: Rng>(config: &SmallWorldConfig, rng: &mut R) -> SocialNetwork {
    let n = config.num_vertices;
    let m = config.ring_neighbors;
    assert!(
        m >= 2 && m.is_multiple_of(2),
        "ring_neighbors must be a positive even number"
    );
    assert!(n > m, "need more than ring_neighbors vertices");
    assert!(
        (0.0..=1.0).contains(&config.shortcut_probability),
        "shortcut_probability must be in [0, 1], got {}",
        config.shortcut_probability
    );

    let mut b = GraphBuilder::with_vertices(n);

    // Ring lattice: connect each vertex to the next m/2 vertices around the
    // ring (covering m neighbours in total once both directions are counted).
    let half = m / 2;
    let mut ring_edges = Vec::with_capacity(n * half);
    for i in 0..n {
        for offset in 1..=half {
            let j = (i + offset) % n;
            let u = VertexId::from_index(i);
            let v = VertexId::from_index(j);
            if b.try_add_symmetric_edge(u, v, 0.5) {
                ring_edges.push((u, v));
            }
        }
    }

    // Newman–Watts shortcuts: for each ring edge, with probability µ add a
    // brand-new edge from u to a random vertex w (no rewiring, no removals).
    for &(u, _v) in &ring_edges {
        if rng.gen_bool(config.shortcut_probability) {
            // A handful of retries keeps the expected shortcut count close to
            // µ·|ring edges| even when collisions occur.
            for _ in 0..8 {
                let w = VertexId::from_index(rng.gen_range(0..n));
                if w != u && !b.contains_edge(u, w) {
                    let added = b.try_add_symmetric_edge(u, w, 0.5);
                    debug_assert!(added, "checked before insertion");
                    break;
                }
            }
        }
    }
    b.build().expect("generator buffers only admissible edges")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = small_world(&SmallWorldConfig::paper_default(500), &mut rng);
        assert_eq!(g.num_vertices(), 500);
        // ring alone contributes n*m/2 = 1500 edges; shortcuts add ~µ more
        assert!(g.num_edges() >= 1500);
        assert!(g.num_edges() <= (1500.0 * (1.0 + 0.167) * 1.1) as usize);
    }

    #[test]
    fn ring_makes_graph_connected() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = small_world(&SmallWorldConfig::paper_default(200), &mut rng);
        assert!(is_connected(&g));
    }

    #[test]
    fn every_vertex_has_at_least_ring_degree() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = SmallWorldConfig {
            num_vertices: 100,
            ring_neighbors: 4,
            shortcut_probability: 0.1,
        };
        let g = small_world(&cfg, &mut rng);
        for v in g.vertices() {
            assert!(g.degree(v) >= 4, "vertex {v} has degree {}", g.degree(v));
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = SmallWorldConfig::paper_default(300);
        let a = small_world(&cfg, &mut StdRng::seed_from_u64(9));
        let b = small_world(&cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.num_edges(), b.num_edges());
        let edges_a: Vec<_> = a.edges().map(|(_, u, v)| (u, v)).collect();
        let edges_b: Vec<_> = b.edges().map(|(_, u, v)| (u, v)).collect();
        assert_eq!(edges_a, edges_b);
    }

    #[test]
    fn zero_shortcut_probability_gives_pure_ring() {
        let cfg = SmallWorldConfig {
            num_vertices: 50,
            ring_neighbors: 6,
            shortcut_probability: 0.0,
        };
        let g = small_world(&cfg, &mut StdRng::seed_from_u64(4));
        assert_eq!(g.num_edges(), 50 * 3);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 6);
        }
    }

    #[test]
    fn locality_config_keeps_balls_ring_sized() {
        let cfg = SmallWorldConfig::locality(20_000);
        assert_eq!(cfg.ring_neighbors, 6);
        let g = small_world(&cfg, &mut StdRng::seed_from_u64(5));
        assert_eq!(g.num_vertices(), 20_000);
        // ring contributes exactly n·m/2 edges; shortcuts add ~µ·n·m/2 ≈ 12
        let ring_edges = 20_000 * 3;
        assert!(g.num_edges() >= ring_edges);
        assert!(
            g.num_edges() <= ring_edges + 60,
            "too many shortcuts: {}",
            g.num_edges() - ring_edges
        );
        assert!(is_connected(&g));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_ring_neighbors_panics() {
        let cfg = SmallWorldConfig {
            num_vertices: 50,
            ring_neighbors: 5,
            shortcut_probability: 0.0,
        };
        let _ = small_world(&cfg, &mut StdRng::seed_from_u64(0));
    }
}
