//! Synthetic workload generators matching Section VIII-A of the paper.
//!
//! The paper evaluates on two real graphs (DBLP, Amazon) and three synthetic
//! Newman–Watts–Strogatz small-world graphs whose vertex keywords follow
//! Uniform, Gaussian or Zipf distributions (`Uni`, `Gau`, `Zipf`). The real
//! graphs are not redistributable here, so this module additionally provides
//! *DBLP-like* (overlapping co-author cliques) and *Amazon-like*
//! (preferential-attachment co-purchase) generators that reproduce the
//! structural features the algorithms are sensitive to: triangle density,
//! degree skew and community structure. See DESIGN.md for the substitution
//! rationale.
//!
//! All generators are deterministic given a seed, so experiments are
//! reproducible run-to-run.

pub mod amazon_like;
pub mod dblp_like;
pub mod keywords;
pub mod small_world;
pub mod weights;

pub use amazon_like::{amazon_like, AmazonLikeConfig};
pub use dblp_like::{dblp_like, DblpLikeConfig};
pub use keywords::{assign_keywords, KeywordDistribution};
pub use small_world::{small_world, SmallWorldConfig};
pub use weights::{assign_uniform_weights, WeightRange};

use crate::graph::SocialNetwork;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The five dataset families used throughout the experiments (Table II and
/// the synthetic `Uni`/`Gau`/`Zipf` graphs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Small-world graph with uniformly distributed keywords.
    Uniform,
    /// Small-world graph with Gaussian-distributed keywords.
    Gaussian,
    /// Small-world graph with Zipf-distributed keywords.
    Zipf,
    /// Synthetic stand-in for the DBLP co-authorship network.
    DblpLike,
    /// Synthetic stand-in for the Amazon co-purchase network.
    AmazonLike,
}

impl DatasetKind {
    /// All dataset kinds in the order the paper reports them
    /// (DBLP, Amazon, Uni, Gau, Zipf).
    pub const ALL: [DatasetKind; 5] = [
        DatasetKind::DblpLike,
        DatasetKind::AmazonLike,
        DatasetKind::Uniform,
        DatasetKind::Gaussian,
        DatasetKind::Zipf,
    ];

    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            DatasetKind::Uniform => "Uni",
            DatasetKind::Gaussian => "Gau",
            DatasetKind::Zipf => "Zipf",
            DatasetKind::DblpLike => "DBLP*",
            DatasetKind::AmazonLike => "Amazon*",
        }
    }
}

/// Declarative description of a synthetic dataset: structure, keyword
/// distribution and scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which family of graph to generate.
    pub kind: DatasetKind,
    /// Number of vertices `|V(G)|`.
    pub num_vertices: usize,
    /// Keyword domain size `|Σ|`.
    pub keyword_domain: u32,
    /// Keywords per vertex `|v_i.W|`.
    pub keywords_per_vertex: usize,
    /// RNG seed (same seed ⇒ same graph).
    pub seed: u64,
}

impl DatasetSpec {
    /// Creates a spec with the paper's default keyword parameters
    /// (`|Σ| = 50`, `|v_i.W| = 3`, Table III).
    pub fn new(kind: DatasetKind, num_vertices: usize, seed: u64) -> Self {
        DatasetSpec {
            kind,
            num_vertices,
            keyword_domain: 50,
            keywords_per_vertex: 3,
            seed,
        }
    }

    /// Overrides the keyword domain size `|Σ|`.
    pub fn with_keyword_domain(mut self, domain: u32) -> Self {
        self.keyword_domain = domain;
        self
    }

    /// Overrides the number of keywords per vertex `|v_i.W|`.
    pub fn with_keywords_per_vertex(mut self, k: usize) -> Self {
        self.keywords_per_vertex = k;
        self
    }

    /// Generates the social network described by this spec: topology, edge
    /// weights in `[0.5, 0.6)` and keyword assignment.
    pub fn generate(&self) -> SocialNetwork {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut g = match self.kind {
            DatasetKind::Uniform | DatasetKind::Gaussian | DatasetKind::Zipf => small_world(
                &SmallWorldConfig::paper_default(self.num_vertices),
                &mut rng,
            ),
            DatasetKind::DblpLike => {
                dblp_like(&DblpLikeConfig::with_vertices(self.num_vertices), &mut rng)
            }
            DatasetKind::AmazonLike => amazon_like(
                &AmazonLikeConfig::with_vertices(self.num_vertices),
                &mut rng,
            ),
        };
        assign_uniform_weights(&mut g, WeightRange::paper_default(), &mut rng);
        let dist = match self.kind {
            DatasetKind::Gaussian => KeywordDistribution::Gaussian,
            DatasetKind::Zipf => KeywordDistribution::Zipf { exponent: 1.0 },
            _ => KeywordDistribution::Uniform,
        };
        assign_keywords(
            &mut g,
            self.keyword_domain,
            self.keywords_per_vertex,
            dist,
            &mut rng,
        );
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// FNV-1a structural fingerprint: vertex count, keyword sets, and the
    /// edge table in id order with both directed weights.
    fn fingerprint(g: &SocialNetwork) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        eat(&(g.num_vertices() as u64).to_le_bytes());
        eat(&(g.num_edges() as u64).to_le_bytes());
        for v in g.vertices() {
            for kw in g.keyword_set(v).iter() {
                eat(&kw.0.to_le_bytes());
            }
        }
        for (e, u, v) in g.edges() {
            eat(&u.0.to_le_bytes());
            eat(&v.0.to_le_bytes());
            eat(&g.directed_weight(e, u).to_bits().to_le_bytes());
            eat(&g.directed_weight(e, v).to_bits().to_le_bytes());
        }
        h
    }

    /// The batch-builder construction path must reproduce the seed
    /// adjacency-list implementation bit for bit: same RNG stream, same edge
    /// ids, same weights and keywords. Expected hashes were captured from the
    /// pre-refactor (PR-1) implementation for these exact seeds.
    #[test]
    fn generators_match_seed_output_for_fixed_seed() {
        let g = small_world(
            &SmallWorldConfig::paper_default(2000),
            &mut StdRng::seed_from_u64(42),
        );
        assert_eq!(fingerprint(&g), 0x9adf96b30aeb79dc, "small_world drifted");
        let g = dblp_like(
            &DblpLikeConfig::with_vertices(2000),
            &mut StdRng::seed_from_u64(42),
        );
        assert_eq!(fingerprint(&g), 0xe59af7a5cb6ab189, "dblp_like drifted");
        let g = amazon_like(
            &AmazonLikeConfig::with_vertices(2000),
            &mut StdRng::seed_from_u64(42),
        );
        assert_eq!(fingerprint(&g), 0xdebd1d30026d8595, "amazon_like drifted");
    }

    /// Full `DatasetSpec::generate` pipeline (topology + weights + keywords)
    /// against pre-refactor hashes, one per dataset family.
    #[test]
    fn dataset_specs_match_seed_output_for_fixed_seed() {
        let expected: [(DatasetKind, u64); 5] = [
            (DatasetKind::DblpLike, 0x581e4f1bbf5d4504),
            (DatasetKind::AmazonLike, 0xc14b77515e6994a8),
            (DatasetKind::Uniform, 0x3ba0c98fded1bf71),
            (DatasetKind::Gaussian, 0x78aeb99a81bc7bcf),
            (DatasetKind::Zipf, 0x479783b531d1f46c),
        ];
        for (kind, hash) in expected {
            let g = DatasetSpec::new(kind, 1500, 7).generate();
            assert_eq!(fingerprint(&g), hash, "{kind:?} drifted from seed output");
        }
    }

    #[test]
    fn spec_generates_deterministically() {
        let spec = DatasetSpec::new(DatasetKind::Uniform, 200, 7);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.num_vertices(), 200);
        assert_eq!(a.num_edges(), b.num_edges());
        // same seed produces identical keyword assignment
        for v in a.vertices() {
            assert_eq!(a.keyword_set(v), b.keyword_set(v));
        }
    }

    #[test]
    fn all_kinds_generate_nonempty_graphs() {
        for kind in DatasetKind::ALL {
            let g = DatasetSpec::new(kind, 150, 3).generate();
            assert_eq!(g.num_vertices(), 150, "{kind:?}");
            assert!(g.num_edges() > 100, "{kind:?} produced too few edges");
            // every vertex has the requested number of keywords available
            assert!(
                g.vertices().all(|v| !g.keyword_set(v).is_empty()),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<&str> =
            DatasetKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), DatasetKind::ALL.len());
    }

    #[test]
    fn spec_builder_overrides() {
        let spec = DatasetSpec::new(DatasetKind::Zipf, 100, 1)
            .with_keyword_domain(10)
            .with_keywords_per_vertex(2);
        assert_eq!(spec.keyword_domain, 10);
        assert_eq!(spec.keywords_per_vertex, 2);
        let g = spec.generate();
        for v in g.vertices() {
            assert!(g.keyword_set(v).len() <= 2);
            for kw in g.keyword_set(v).iter() {
                assert!(kw.0 < 10);
            }
        }
    }
}
