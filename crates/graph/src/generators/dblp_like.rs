//! DBLP-like co-authorship graph generator.
//!
//! The real DBLP graph used in the paper (317K vertices, 1.05M edges) is a
//! co-authorship network: two authors are connected if they co-authored at
//! least one paper. Structurally this produces many small overlapping
//! cliques (one per paper's author list) glued together by prolific authors,
//! giving high triangle density and strong community structure — exactly the
//! features k-truss-based seed communities are sensitive to.
//!
//! This generator reproduces that process directly: it synthesises "papers"
//! with 2–5 authors each, biasing author selection toward a local window of
//! the id space (research communities) with occasional cross-community
//! collaborations, and inserts a clique over each author list.

use crate::builder::GraphBuilder;
use crate::graph::SocialNetwork;
use crate::types::VertexId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the DBLP-like co-authorship generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DblpLikeConfig {
    /// Number of authors (vertices).
    pub num_vertices: usize,
    /// Average number of papers per author; total papers ≈
    /// `num_vertices * papers_per_author / avg authors per paper`.
    pub papers_per_author: f64,
    /// Minimum authors per paper.
    pub min_authors: usize,
    /// Maximum authors per paper (clique size cap).
    pub max_authors: usize,
    /// Size of the "research community" window from which co-authors are
    /// preferentially drawn.
    pub community_window: usize,
    /// Probability that a co-author is drawn globally instead of from the
    /// local community window (cross-community collaboration).
    pub cross_community_probability: f64,
}

impl DblpLikeConfig {
    /// Default configuration producing roughly 3.3 edges per vertex, close to
    /// the real DBLP edge/vertex ratio (1.05M / 317K ≈ 3.3).
    pub fn with_vertices(num_vertices: usize) -> Self {
        DblpLikeConfig {
            num_vertices,
            papers_per_author: 1.5,
            min_authors: 2,
            max_authors: 5,
            community_window: 50,
            cross_community_probability: 0.1,
        }
    }
}

/// Generates a DBLP-like co-authorship network. Edges carry a placeholder
/// weight of 0.5 until [`super::assign_uniform_weights`] is run.
///
/// # Panics
/// Panics if `num_vertices < max_authors`, the author bounds are invalid, or
/// `cross_community_probability` is not a probability.
pub fn dblp_like<R: Rng>(config: &DblpLikeConfig, rng: &mut R) -> SocialNetwork {
    let n = config.num_vertices;
    assert!(
        config.min_authors >= 2 && config.max_authors >= config.min_authors,
        "author bounds must satisfy 2 <= min <= max"
    );
    assert!(
        n > config.max_authors,
        "need more vertices than the largest author list"
    );
    assert!(
        (0.0..=1.0).contains(&config.cross_community_probability),
        "cross_community_probability must be in [0, 1], got {}",
        config.cross_community_probability
    );

    let mut b = GraphBuilder::with_vertices(n);

    let avg_authors = (config.min_authors + config.max_authors) as f64 / 2.0;
    let num_papers = ((n as f64 * config.papers_per_author) / avg_authors).ceil() as usize;

    let mut authors: Vec<VertexId> = Vec::with_capacity(config.max_authors);
    for _ in 0..num_papers {
        // Lead author chosen uniformly; co-authors from the lead's community
        // window, with occasional global collaborators.
        let lead = rng.gen_range(0..n);
        let paper_size = rng.gen_range(config.min_authors..=config.max_authors);
        authors.clear();
        authors.push(VertexId::from_index(lead));
        let window = config.community_window.max(paper_size + 1);
        let window_start = lead
            .saturating_sub(window / 2)
            .min(n.saturating_sub(window));
        let mut attempts = 0;
        while authors.len() < paper_size && attempts < paper_size * 16 {
            attempts += 1;
            let candidate = if rng.gen_bool(config.cross_community_probability) {
                rng.gen_range(0..n)
            } else {
                window_start + rng.gen_range(0..window.min(n - window_start))
            };
            let candidate = VertexId::from_index(candidate);
            if !authors.contains(&candidate) {
                authors.push(candidate);
            }
        }
        // Clique over the author list: co-authorship connects every pair.
        for i in 0..authors.len() {
            for j in (i + 1)..authors.len() {
                b.try_add_symmetric_edge(authors[i], authors[j], 0.5);
            }
        }
    }

    connect_isolated_vertices(&mut b, rng);
    b.build().expect("generator buffers only admissible edges")
}

/// Ensures no vertex is left isolated (the paper's social network is
/// connected); every isolated vertex is attached to a random neighbour.
pub(crate) fn connect_isolated_vertices<R: Rng>(b: &mut GraphBuilder, rng: &mut R) {
    let n = b.num_vertices();
    if n < 2 {
        return;
    }
    for i in 0..n {
        let v = VertexId::from_index(i);
        if b.degree(v) == 0 {
            loop {
                let other = VertexId::from_index(rng.gen_range(0..n));
                if other != v {
                    b.try_add_symmetric_edge(v, other, 0.5);
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn produces_co_authorship_scale() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = dblp_like(&DblpLikeConfig::with_vertices(2000), &mut rng);
        assert_eq!(g.num_vertices(), 2000);
        let ratio = g.num_edges() as f64 / g.num_vertices() as f64;
        // real DBLP has ~3.3 edges per vertex; accept a broad band
        assert!(ratio > 1.5 && ratio < 6.0, "edge/vertex ratio {ratio}");
    }

    #[test]
    fn no_isolated_vertices() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = dblp_like(&DblpLikeConfig::with_vertices(500), &mut rng);
        for v in g.vertices() {
            assert!(g.degree(v) >= 1, "vertex {v} is isolated");
        }
    }

    #[test]
    fn papers_create_triangles() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = dblp_like(&DblpLikeConfig::with_vertices(1000), &mut rng);
        // at least some edges must participate in a triangle because every
        // >=3-author paper is a clique
        let mut triangle_edges = 0usize;
        for (_, u, v) in g.edges() {
            if g.common_neighbor_count(u, v) > 0 {
                triangle_edges += 1;
            }
        }
        assert!(
            triangle_edges * 3 > g.num_edges(),
            "too few triangle edges: {triangle_edges}/{}",
            g.num_edges()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = DblpLikeConfig::with_vertices(300);
        let a = dblp_like(&cfg, &mut StdRng::seed_from_u64(42));
        let b = dblp_like(&cfg, &mut StdRng::seed_from_u64(42));
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    #[should_panic(expected = "author bounds")]
    fn invalid_author_bounds_panic() {
        let cfg = DblpLikeConfig {
            min_authors: 1,
            ..DblpLikeConfig::with_vertices(100)
        };
        let _ = dblp_like(&cfg, &mut StdRng::seed_from_u64(0));
    }
}
