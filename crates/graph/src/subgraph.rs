//! Vertex-subset views over a [`SocialNetwork`].
//!
//! Seed communities, r-hop subgraphs `hop(v, r)` and influenced communities
//! are all *vertex-induced subgraphs* of the data graph. Materialising each
//! of them as a standalone graph would copy adjacency lists constantly, so
//! the workspace instead works with [`VertexSubset`]: an ordered vertex list
//! plus an O(1) membership test, borrowed against the parent graph when edges
//! need to be enumerated.

use crate::graph::SocialNetwork;
use crate::types::{EdgeId, VertexId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// An induced-subgraph vertex set with O(1) membership testing.
#[derive(Debug, Clone, Default)]
pub struct VertexSubset {
    /// Vertices in ascending id order.
    vertices: Vec<VertexId>,
    /// Membership set (kept in sync with `vertices`).
    members: HashSet<VertexId>,
}

/// Serialises as the sorted vertex array alone: deterministic output, no
/// redundant membership set, and `members` can never desync on reload.
impl Serialize for VertexSubset {
    fn to_value(&self) -> serde::Value {
        self.vertices.to_value()
    }
}

impl Deserialize for VertexSubset {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Vec::<VertexId>::from_value(v).map(|ids| ids.into_iter().collect())
    }
}

impl VertexSubset {
    /// Creates an empty subset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of vertices in the subset.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Returns `true` if the subset is empty.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// O(1) membership test.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.members.contains(&v)
    }

    /// Adds a vertex; returns `true` if it was newly inserted.
    pub fn insert(&mut self, v: VertexId) -> bool {
        if self.members.insert(v) {
            match self.vertices.binary_search(&v) {
                Ok(_) => {}
                Err(pos) => self.vertices.insert(pos, v),
            }
            true
        } else {
            false
        }
    }

    /// Removes a vertex; returns `true` if it was present.
    pub fn remove(&mut self, v: VertexId) -> bool {
        if self.members.remove(&v) {
            if let Ok(pos) = self.vertices.binary_search(&v) {
                self.vertices.remove(pos);
            }
            true
        } else {
            false
        }
    }

    /// Iterates over members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertices.iter().copied()
    }

    /// Returns the members as a sorted slice.
    pub fn as_slice(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Returns `true` if `self ⊆ other`.
    pub fn is_subset_of(&self, other: &VertexSubset) -> bool {
        self.vertices.iter().all(|v| other.contains(*v))
    }

    /// Number of vertices present in both subsets.
    pub fn intersection_size(&self, other: &VertexSubset) -> usize {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small
            .vertices
            .iter()
            .filter(|v| large.contains(**v))
            .count()
    }

    /// Iterates over the edges of the subgraph induced by this subset in the
    /// parent graph `g`, yielding each undirected edge once (`u < v`).
    pub fn induced_edges<'a>(
        &'a self,
        g: &'a SocialNetwork,
    ) -> impl Iterator<Item = (EdgeId, VertexId, VertexId)> + 'a {
        self.vertices.iter().flat_map(move |&u| {
            g.neighbors(u)
                .iter()
                .filter(move |&(n, _)| u < n && self.contains(n))
                .map(move |(n, e)| (e, u, n))
        })
    }

    /// Number of edges in the induced subgraph.
    pub fn induced_edge_count(&self, g: &SocialNetwork) -> usize {
        self.induced_edges(g).count()
    }

    /// Degree of `v` restricted to the induced subgraph.
    pub fn induced_degree(&self, g: &SocialNetwork, v: VertexId) -> usize {
        g.neighbors(v)
            .iter()
            .filter(|&(n, _)| self.contains(n))
            .count()
    }

    /// Neighbours of `v` that fall inside the subset.
    pub fn induced_neighbors<'a>(
        &'a self,
        g: &'a SocialNetwork,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, EdgeId)> + 'a {
        g.neighbors(v)
            .iter()
            .filter(move |&(n, _)| self.contains(n))
    }

    /// Number of common neighbours of `u` and `v` *inside* the subset (the
    /// edge support within the induced subgraph). One merge over the two CSR
    /// slices, no intermediate allocation.
    pub fn induced_common_neighbors(&self, g: &SocialNetwork, u: VertexId, v: VertexId) -> usize {
        let mut count = 0usize;
        g.for_each_common_neighbor(u, v, |w, _, _| {
            if self.contains(w) {
                count += 1;
            }
        });
        count
    }

    /// Returns `true` if the induced subgraph is connected (an empty subset
    /// counts as connected).
    pub fn is_connected(&self, g: &SocialNetwork) -> bool {
        if self.vertices.is_empty() {
            return true;
        }
        let start = self.vertices[0];
        let mut seen: HashSet<VertexId> = HashSet::with_capacity(self.len());
        seen.insert(start);
        let mut stack = vec![start];
        while let Some(u) = stack.pop() {
            for (n, _) in g.neighbors(u) {
                if self.contains(n) && seen.insert(n) {
                    stack.push(n);
                }
            }
        }
        seen.len() == self.len()
    }
}

/// Collects vertices into a subset (duplicates ignored, order normalised).
impl FromIterator<VertexId> for VertexSubset {
    fn from_iter<T: IntoIterator<Item = VertexId>>(iter: T) -> Self {
        let members: HashSet<VertexId> = iter.into_iter().collect();
        let mut vertices: Vec<VertexId> = members.iter().copied().collect();
        vertices.sort_unstable();
        VertexSubset { vertices, members }
    }
}

impl PartialEq for VertexSubset {
    fn eq(&self, other: &Self) -> bool {
        self.vertices == other.vertices
    }
}

impl Eq for VertexSubset {}

#[cfg(test)]
mod tests {
    use super::*;

    /// 5-vertex graph: a triangle {0,1,2} plus a path 2-3-4.
    fn sample() -> SocialNetwork {
        let mut b = crate::builder::GraphBuilder::with_vertices(5);
        b.add_symmetric_edge(VertexId(0), VertexId(1), 0.5);
        b.add_symmetric_edge(VertexId(1), VertexId(2), 0.5);
        b.add_symmetric_edge(VertexId(0), VertexId(2), 0.5);
        b.add_symmetric_edge(VertexId(2), VertexId(3), 0.5);
        b.add_symmetric_edge(VertexId(3), VertexId(4), 0.5);
        b.build().unwrap()
    }

    #[test]
    fn from_iter_dedups_and_sorts() {
        let s = VertexSubset::from_iter([VertexId(3), VertexId(1), VertexId(3)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.as_slice(), &[VertexId(1), VertexId(3)]);
        assert!(s.contains(VertexId(1)));
        assert!(!s.contains(VertexId(2)));
    }

    #[test]
    fn insert_and_remove() {
        let mut s = VertexSubset::new();
        assert!(s.insert(VertexId(2)));
        assert!(!s.insert(VertexId(2)));
        assert!(s.insert(VertexId(1)));
        assert_eq!(s.as_slice(), &[VertexId(1), VertexId(2)]);
        assert!(s.remove(VertexId(1)));
        assert!(!s.remove(VertexId(1)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn induced_edges_of_triangle() {
        let g = sample();
        let s = VertexSubset::from_iter([VertexId(0), VertexId(1), VertexId(2)]);
        assert_eq!(s.induced_edge_count(&g), 3);
        assert_eq!(s.induced_degree(&g, VertexId(0)), 2);
        assert_eq!(s.induced_common_neighbors(&g, VertexId(0), VertexId(1)), 1);
        // every induced edge is reported once, canonical orientation
        for (_, u, v) in s.induced_edges(&g) {
            assert!(u < v);
            assert!(s.contains(u) && s.contains(v));
        }
    }

    #[test]
    fn induced_edges_exclude_outside_vertices() {
        let g = sample();
        let s = VertexSubset::from_iter([VertexId(2), VertexId(4)]);
        // 2 and 4 are not adjacent (only via 3, which is excluded)
        assert_eq!(s.induced_edge_count(&g), 0);
        assert_eq!(s.induced_degree(&g, VertexId(2)), 0);
    }

    #[test]
    fn connectivity_checks() {
        let g = sample();
        let connected =
            VertexSubset::from_iter([VertexId(0), VertexId(1), VertexId(2), VertexId(3)]);
        assert!(connected.is_connected(&g));
        let disconnected = VertexSubset::from_iter([VertexId(0), VertexId(4)]);
        assert!(!disconnected.is_connected(&g));
        assert!(VertexSubset::new().is_connected(&g));
        let single = VertexSubset::from_iter([VertexId(3)]);
        assert!(single.is_connected(&g));
    }

    #[test]
    fn subset_and_intersection() {
        let a = VertexSubset::from_iter([VertexId(1), VertexId(2)]);
        let b = VertexSubset::from_iter([VertexId(1), VertexId(2), VertexId(3)]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(b.intersection_size(&a), 2);
    }

    #[test]
    fn equality_is_by_vertex_set() {
        let a = VertexSubset::from_iter([VertexId(2), VertexId(1)]);
        let b = VertexSubset::from_iter([VertexId(1), VertexId(2)]);
        assert_eq!(a, b);
    }
}
