//! Equivalence property tests for the sharded offline engine.
//!
//! A sharded build partitions the vertex-id space into contiguous ranges and
//! gives every worker only ball-cover-sized scratch — but the per-vertex
//! computation is self-contained, so the output contract is strict: for ANY
//! shard plan (even boundaries, arbitrary boundaries, shards smaller than a
//! work-stealing chunk, `n` not divisible by the shard count) the aggregate
//! table, edge supports, seed bounds and fingerprint must be **bit-identical**
//! to the sequential unsharded engine, floats included — and therefore so is
//! every Top-L answer served off the resulting index.

use icde_core::precompute::{PrecomputeConfig, PrecomputedData, ShardPlan};
use icde_core::query::TopLQuery;
use icde_core::topl::TopLProcessor;
use icde_core::IndexBuilder;
use icde_graph::generators::{DatasetKind, DatasetSpec};
use icde_graph::{KeywordSet, SocialNetwork};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn generated_graph(n: usize, seed: u64) -> SocialNetwork {
    DatasetSpec::new(DatasetKind::Uniform, n.max(8), seed)
        .with_keyword_domain(12)
        .generate()
}

/// The trusted reference: one worker, no sharding.
fn sequential_config() -> PrecomputeConfig {
    PrecomputeConfig {
        parallel: false,
        ..PrecomputeConfig::new(2, vec![0.1, 0.2, 0.3])
    }
}

fn sharded_config(workers: usize) -> PrecomputeConfig {
    PrecomputeConfig::new(2, vec![0.1, 0.2, 0.3]).with_num_threads(Some(workers))
}

/// Folds raw draws into strictly-increasing interior boundaries in `(0, n)` —
/// this deliberately produces uneven plans, single-vertex shards (smaller
/// than one work-stealing chunk), and boundary counts independent of `n`.
fn interior_boundaries(n: usize, raw: &[usize]) -> Vec<usize> {
    raw.iter()
        .map(|r| 1 + r % (n - 1))
        .collect::<BTreeSet<usize>>()
        .into_iter()
        .collect()
}

fn assert_bit_identical(sharded: &PrecomputedData, reference: &PrecomputedData) {
    assert_eq!(sharded.edge_supports, reference.edge_supports);
    // exact table equality — signatures, supports, region sizes AND floats
    assert_eq!(sharded.table(), reference.table());
    assert_eq!(
        sharded.table().structural_fingerprint(),
        reference.table().structural_fingerprint()
    );
    assert_eq!(
        sharded.table().max_score_delta(reference.table()),
        0.0,
        "sharding must not perturb a single score bit"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn arbitrary_shard_boundaries_write_the_same_table(
        n in 10usize..100,
        raw in collection::vec(0usize..10_000, 0..8),
        seed in any::<u64>(),
        workers in 1usize..5,
    ) {
        let g = generated_graph(n, seed);
        let interior = interior_boundaries(g.num_vertices(), &raw);
        let reference = PrecomputedData::compute(&g, sequential_config());
        let plan = ShardPlan::from_interior_boundaries(g.num_vertices(), &interior).unwrap();
        let (sharded, stats) = PrecomputedData::compute_with_plan(&g, sharded_config(workers), &plan);
        prop_assert_eq!(stats.shards, plan.num_shards());
        assert_bit_identical(&sharded, &reference);
    }

    #[test]
    fn shard_counts_beyond_chunks_and_workers_agree(
        n in 10usize..90,
        seed in any::<u64>(),
        shards in 1usize..200,
        workers in 1usize..5,
    ) {
        // shards routinely exceeds n here, so the plan clamps to one-vertex
        // shards — each smaller than a work-stealing chunk
        let g = generated_graph(n, seed);
        let reference = PrecomputedData::compute(&g, sequential_config());
        let sharded = PrecomputedData::compute(
            &g,
            sharded_config(workers).with_num_shards(Some(shards)),
        );
        assert_bit_identical(&sharded, &reference);
    }

    #[test]
    fn topl_answers_are_identical_off_a_sharded_index(
        n in 20usize..80,
        seed in any::<u64>(),
        shards in 2usize..16,
    ) {
        let g = generated_graph(n, seed);
        let reference_index = IndexBuilder::new(sequential_config()).build(&g);
        let sharded_index = IndexBuilder::new(
            sharded_config(3).with_num_shards(Some(shards)),
        )
        .build(&g);
        prop_assert_eq!(
            reference_index.content_fingerprint(),
            sharded_index.content_fingerprint()
        );
        let query = TopLQuery::new(KeywordSet::from_ids([0u32, 1, 2, 3]), 3, 2, 0.2, 3);
        let a = TopLProcessor::new(&g, &reference_index).run(&query).unwrap();
        let b = TopLProcessor::new(&g, &sharded_index).run(&query).unwrap();
        prop_assert_eq!(a.communities, b.communities);
    }
}
