//! Equivalence property for the incremental index-patch path (PR 10): drive
//! a [`StreamingMaintainer`] with random interleaved insert/delete batches —
//! plus explicit compactions and a forced repack — across a sweep of
//! `leaf_capacity × fanout` tree shapes, and at every sampled state demand:
//!
//! * **Top-L answers bit-identical** (modulo the tie-dependent center label,
//!   see [`answer_bits`]) to a freshly built index over a from-scratch
//!   rebuild of the same logical graph, and
//! * every **leaf aggregate equal to a fresh re-merge** of its members'
//!   per-vertex rows (radius by radius), so the in-place patch can never
//!   leave a stale bound behind, and
//! * **placement stability**: vertex → leaf assignments only move when a
//!   repack rebuilds the tree, never under a patch.

use icde_core::index::{IndexBuilder, NodeRef};
use icde_core::precompute::{PrecomputeConfig, RadiusAggregate};
use icde_core::query::TopLQuery;
use icde_core::streaming::{EdgeUpdate, StreamingMaintainer};
use icde_core::topl::{TopLAnswer, TopLProcessor};
use icde_core::CommunityIndex;
use icde_graph::generators::{DatasetKind, DatasetSpec};
use icde_graph::{GraphBuilder, KeywordSet, SocialNetwork, VertexId};
use proptest::prelude::*;
use std::collections::HashSet;

fn build_index(g: &SocialNetwork, leaf_capacity: usize, fanout: usize) -> CommunityIndex {
    IndexBuilder::new(PrecomputeConfig {
        parallel: false,
        ..Default::default()
    })
    .with_leaf_capacity(leaf_capacity)
    .with_fanout(fanout)
    .build(g)
}

/// Rebuilds the logical graph from scratch: fresh builder over the live
/// edge table, dense CSR, no overlay, edge ids repacked.
fn rebuild_from_scratch(g: &SocialNetwork) -> SocialNetwork {
    let mut b = GraphBuilder::with_vertices(g.num_vertices());
    for v in g.vertices() {
        b.set_keywords(v, g.keyword_set(v).clone()).unwrap();
    }
    for (u, v, wf, wb) in g.edge_table_iter() {
        b.add_edge(u, v, wf, wb);
    }
    b.build().unwrap()
}

/// Bit-level view of an answer, minus the reported center: two centers in
/// one community can tie bit-exactly on score (the Top-L dedup keys on the
/// vertex set for exactly this reason), and which one gets credited depends
/// on index traversal order — i.e. tree shape, which a patched index keeps
/// and a fresh build re-sorts. Score bits, reach and vertex set are the
/// shape-independent part of the answer.
fn answer_bits(a: &TopLAnswer) -> Vec<(u64, u64, Vec<u32>)> {
    a.communities
        .iter()
        .map(|c| {
            (
                c.influential_score.to_bits(),
                c.influenced_size as u64,
                c.vertices.iter().map(|v| v.0).collect(),
            )
        })
        .collect()
}

fn query_pool() -> Vec<TopLQuery> {
    vec![
        TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3]), 3, 2, 0.2, 5),
        TopLQuery::new(KeywordSet::from_ids([1, 4, 7]), 2, 2, 0.3, 3),
        TopLQuery::new(KeywordSet::from_ids([0, 2, 5, 8, 9]), 4, 1, 0.25, 8),
    ]
}

/// Every leaf's stored aggregate must equal a fresh max/OR re-merge of its
/// members' per-vertex rows — the invariant `patch_vertices` maintains.
fn assert_leaf_aggregates_fresh(index: &CommunityIndex) {
    let data = &index.precomputed;
    let num_thresholds = data.config.thresholds.len();
    for id in 0..index.node_count() {
        if let NodeRef::Leaf { vertices } = index.node(id) {
            for r in 1..=index.r_max() {
                let mut fresh = RadiusAggregate::empty(index.signature_bits(), num_thresholds);
                for &v in vertices {
                    fresh.merge_max_ref(data.aggregate(v, r));
                }
                assert_eq!(
                    index.aggregate(id, r).to_owned_aggregate(),
                    fresh,
                    "leaf {id} radius {r} aggregate is stale"
                );
            }
        }
    }
}

/// The vertex → leaf map the maintainer's placement currently encodes.
fn leaf_assignment(maintainer: &StreamingMaintainer) -> Vec<usize> {
    (0..maintainer.graph().num_vertices())
        .map(|v| maintainer.placement().leaf_of(VertexId(v as u32)))
        .collect()
}

/// Generates one conflict-free batch against `live` (the canonical live
/// edge set, updated as the batch is generated so every update applies).
fn random_batch(
    next: &mut impl FnMut() -> u64,
    n: u32,
    live: &mut Vec<(u32, u32)>,
    live_set: &mut HashSet<(u32, u32)>,
    size: usize,
) -> Vec<EdgeUpdate> {
    let mut batch = Vec::with_capacity(size);
    while batch.len() < size {
        if next() % 8 < 3 && !live.is_empty() {
            let pick = (next() % live.len() as u64) as usize;
            let (lo, hi) = live.swap_remove(pick);
            live_set.remove(&(lo, hi));
            batch.push(EdgeUpdate::Remove {
                u: VertexId(lo),
                v: VertexId(hi),
            });
        } else {
            let a = (next() % n as u64) as u32;
            let b = (next() % n as u64) as u32;
            let (lo, hi) = (a.min(b), a.max(b));
            if lo == hi || live_set.contains(&(lo, hi)) {
                continue;
            }
            let p_uv = (1 + next() % 999) as f64 / 1000.0;
            let p_vu = (1 + next() % 999) as f64 / 1000.0;
            live.push((lo, hi));
            live_set.insert((lo, hi));
            batch.push(EdgeUpdate::Insert {
                u: VertexId(lo),
                v: VertexId(hi),
                p_uv,
                p_vu,
            });
        }
    }
    batch
}

proptest! {
    // Each case pays for several from-scratch index builds across the
    // leaf_capacity × fanout sweep — keep the case count modest.
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn patched_index_is_equivalent_to_fresh_build(
        n in 40usize..90,
        seed in any::<u64>(),
        leaf_capacity in prop_oneof![Just(4usize), Just(8usize), Just(16usize)],
        fanout in prop_oneof![Just(2usize), Just(4usize), Just(8usize)],
        // Straddle the compaction threshold: 0.01 folds the overlay after
        // nearly every batch (patching across remapped edge ids), infinity
        // leaves compaction to the explicit compact_now round.
        threshold in prop_oneof![Just(0.01), Just(f64::INFINITY)],
    ) {
        let g = DatasetSpec::new(DatasetKind::Uniform, n, seed)
            .with_keyword_domain(12)
            .generate();
        // repack only when forced below: every other refresh takes the
        // in-place patch path under test
        let mut maintainer =
            StreamingMaintainer::new(g.clone(), build_index(&g, leaf_capacity, fanout))
                .with_compact_threshold(threshold)
                .with_repack_threshold(f64::INFINITY);

        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut live: Vec<(u32, u32)> = g.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        let mut live_set: HashSet<(u32, u32)> = live.iter().copied().collect();
        let pool = query_pool();
        let mut assignment = leaf_assignment(&maintainer);
        let mut repacks_seen = 0u64;

        for round in 0..4 {
            if round == 2 {
                maintainer.force_repack_next();
            }
            let batch = random_batch(&mut next, n as u32, &mut live, &mut live_set, 6);
            maintainer.apply_batch(&batch);
            prop_assert_eq!(maintainer.stats().updates_skipped, 0, "batches are conflict-free");
            if round == 1 {
                // interleave an explicit compaction (edge-id renumbering)
                maintainer.compact_now();
            }

            // placement only moves across a repack, never under a patch
            let repacks = maintainer.stats().repacks;
            if repacks > repacks_seen {
                repacks_seen = repacks;
                assignment = leaf_assignment(&maintainer);
            } else {
                prop_assert_eq!(
                    &leaf_assignment(&maintainer),
                    &assignment,
                    "patching moved a vertex between leaves"
                );
            }

            assert_leaf_aggregates_fresh(maintainer.index());

            // Top-L through the patched index vs a fresh index (same tree
            // parameters) over a from-scratch rebuild: bit-identical answers.
            let scratch = rebuild_from_scratch(maintainer.graph());
            let scratch_index = build_index(&scratch, leaf_capacity, fanout);
            for q in &pool {
                let served =
                    TopLProcessor::new(maintainer.graph(), maintainer.index()).run(q).unwrap();
                let reference = TopLProcessor::new(&scratch, &scratch_index).run(q).unwrap();
                prop_assert_eq!(
                    answer_bits(&served),
                    answer_bits(&reference),
                    "Top-L diverged for {:?}",
                    q
                );
            }
        }
        prop_assert!(maintainer.stats().repacks >= 1, "round 2 forces a repack");
        prop_assert!(maintainer.stats().index_patches >= 1, "other rounds patch in place");
    }
}
