//! End-to-end equivalence property for the delta-overlay update path: drive
//! a [`StreamingMaintainer`] with random insert/delete batches (compaction
//! thresholds straddled, so some runs fold the overlay mid-stream and some
//! never do), and at every checkpoint demand that the overlaid graph is
//! indistinguishable from a from-scratch rebuild of the same logical graph —
//! UPP vectors **bit-identical**, truss supports equal edge by edge, and
//! Top-L answers bit-identical through a freshly built index.

use icde_core::index::IndexBuilder;
use icde_core::precompute::PrecomputeConfig;
use icde_core::query::TopLQuery;
use icde_core::streaming::{EdgeUpdate, StreamingMaintainer};
use icde_core::topl::{TopLAnswer, TopLProcessor};
use icde_core::CommunityIndex;
use icde_graph::generators::{DatasetKind, DatasetSpec};
use icde_graph::{GraphBuilder, KeywordSet, SocialNetwork, VertexId};
use icde_influence::mia::single_source_upp;
use icde_truss::edge_supports_global;
use proptest::prelude::*;
use std::collections::{BTreeMap, HashSet};

fn build_index(g: &SocialNetwork) -> CommunityIndex {
    IndexBuilder::new(PrecomputeConfig {
        parallel: false,
        ..Default::default()
    })
    .with_leaf_capacity(8)
    .build(g)
}

/// Rebuilds the logical graph from scratch: fresh builder over the live
/// edge table, dense CSR, no overlay, edge ids repacked.
fn rebuild_from_scratch(g: &SocialNetwork) -> SocialNetwork {
    let mut b = GraphBuilder::with_vertices(g.num_vertices());
    for v in g.vertices() {
        b.set_keywords(v, g.keyword_set(v).clone()).unwrap();
    }
    for (u, v, wf, wb) in g.edge_table_iter() {
        b.add_edge(u, v, wf, wb);
    }
    b.build().unwrap()
}

fn answer_bits(a: &TopLAnswer) -> Vec<(u32, u64, Vec<u32>)> {
    a.communities
        .iter()
        .map(|c| {
            (
                c.center.0,
                c.influential_score.to_bits(),
                c.vertices.iter().map(|v| v.0).collect(),
            )
        })
        .collect()
}

/// Truss supports keyed by canonical endpoints — edge ids differ between the
/// overlaid store and a scratch rebuild, the supports themselves must not.
fn supports_by_endpoints(g: &SocialNetwork) -> BTreeMap<(u32, u32), u32> {
    let supports = edge_supports_global(g);
    g.edges()
        .map(|(e, u, v)| ((u.0, v.0), supports[e.index()]))
        .collect()
}

fn query_pool() -> Vec<TopLQuery> {
    vec![
        TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3]), 3, 2, 0.2, 5),
        TopLQuery::new(KeywordSet::from_ids([1, 4, 7]), 2, 2, 0.3, 3),
        TopLQuery::new(KeywordSet::from_ids([0, 2, 5, 8, 9]), 4, 1, 0.25, 8),
    ]
}

/// Generates one conflict-free batch against `live` (the canonical live
/// edge set, updated as the batch is generated so every update applies).
fn random_batch(
    next: &mut impl FnMut() -> u64,
    n: u32,
    live: &mut Vec<(u32, u32)>,
    live_set: &mut HashSet<(u32, u32)>,
    size: usize,
) -> Vec<EdgeUpdate> {
    let mut batch = Vec::with_capacity(size);
    while batch.len() < size {
        if next() % 8 < 3 && !live.is_empty() {
            let pick = (next() % live.len() as u64) as usize;
            let (lo, hi) = live.swap_remove(pick);
            live_set.remove(&(lo, hi));
            batch.push(EdgeUpdate::Remove {
                u: VertexId(lo),
                v: VertexId(hi),
            });
        } else {
            let a = (next() % n as u64) as u32;
            let b = (next() % n as u64) as u32;
            let (lo, hi) = (a.min(b), a.max(b));
            if lo == hi || live_set.contains(&(lo, hi)) {
                continue;
            }
            let p_uv = (1 + next() % 999) as f64 / 1000.0;
            let p_vu = (1 + next() % 999) as f64 / 1000.0;
            live.push((lo, hi));
            live_set.insert((lo, hi));
            batch.push(EdgeUpdate::Insert {
                u: VertexId(lo),
                v: VertexId(hi),
                p_uv,
                p_vu,
            });
        }
    }
    batch
}

proptest! {
    // Each case pays for several from-scratch index builds — keep the case
    // count modest; the graph-level overlay_properties suite carries the
    // high-volume structural coverage.
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn streamed_overlay_graph_is_equivalent_to_scratch_rebuild(
        n in 40usize..90,
        seed in any::<u64>(),
        // Straddle the compaction threshold: 0.01 folds the overlay after
        // nearly every batch, 0.5 lets it grow uncompacted for the whole run.
        threshold in prop_oneof![Just(0.01), Just(0.5)],
    ) {
        let g = DatasetSpec::new(DatasetKind::Uniform, n, seed)
            .with_keyword_domain(12)
            .generate();
        let mut maintainer =
            StreamingMaintainer::new(g.clone(), build_index(&g)).with_compact_threshold(threshold);

        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut live: Vec<(u32, u32)> = g.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        let mut live_set: HashSet<(u32, u32)> = live.iter().copied().collect();
        let pool = query_pool();

        for _ in 0..3 {
            let batch = random_batch(&mut next, n as u32, &mut live, &mut live_set, 6);
            maintainer.apply_batch(&batch);
            prop_assert_eq!(maintainer.stats().updates_skipped, 0, "batches are conflict-free");

            let current = maintainer.graph();
            let scratch = rebuild_from_scratch(current);
            prop_assert_eq!(current.num_edges(), scratch.num_edges());

            // UPP: same influence floor, bit-identical path products.
            for src in [0u32, (n as u32) / 3, (n as u32) / 2, n as u32 - 1] {
                let a = single_source_upp(current, VertexId(src), 0.2);
                let b = single_source_upp(&scratch, VertexId(src), 0.2);
                let a_bits: Vec<u64> = a.iter().map(|w| w.to_bits()).collect();
                let b_bits: Vec<u64> = b.iter().map(|w| w.to_bits()).collect();
                prop_assert_eq!(a_bits, b_bits, "UPP from {} diverged", src);
            }

            // Truss supports: identical per endpoint pair.
            prop_assert_eq!(supports_by_endpoints(current), supports_by_endpoints(&scratch));

            // Top-L through the incrementally maintained index vs a fresh
            // index over the fresh graph: bit-identical answers.
            let scratch_index = build_index(&scratch);
            for q in &pool {
                let served = TopLProcessor::new(current, maintainer.index()).run(q).unwrap();
                let reference = TopLProcessor::new(&scratch, &scratch_index).run(q).unwrap();
                prop_assert_eq!(
                    answer_bits(&served),
                    answer_bits(&reference),
                    "Top-L diverged for {:?}",
                    q
                );
            }
        }
        if threshold == 0.01 {
            prop_assert!(maintainer.stats().compactions >= 1, "tight threshold must compact");
        }
    }
}
