//! The progressive kernel's contract: **bit-identical** answers to the eager
//! reference formulation of Algorithm 3, under every pruning configuration.
//!
//! "Bit-identical" means the full answer list matches element by element —
//! same length, same order, same centres, same vertex sets, and scores equal
//! down to the last bit (`f64::to_bits`). The sweep crosses random graphs,
//! all four `PruningToggles` ablation configs, `L ∈ {1, 5, 20}`, thresholds
//! on/below/between the precomputed grid, and radii including the
//! `support < SEED_BOUND_SUPPORT` fallback where the kernel must ignore the
//! offline seed bounds.

use icde_core::index::IndexBuilder;
use icde_core::precompute::PrecomputeConfig;
use icde_core::query::TopLQuery;
use icde_core::topl::{PruningToggles, TopLAnswer, TopLProcessor};
use icde_graph::generators::{DatasetKind, DatasetSpec};
use icde_graph::{KeywordSet, SocialNetwork};

fn build(kind: DatasetKind, n: usize, seed: u64) -> (SocialNetwork, icde_core::CommunityIndex) {
    let g = DatasetSpec::new(kind, n, seed)
        .with_keyword_domain(12)
        .generate();
    let index = IndexBuilder::new(PrecomputeConfig {
        parallel: false,
        ..Default::default()
    })
    .with_fanout(4)
    .with_leaf_capacity(8)
    .build(&g);
    (g, index)
}

fn assert_bit_identical(progressive: &TopLAnswer, eager: &TopLAnswer, label: &str) {
    assert_eq!(
        progressive.communities.len(),
        eager.communities.len(),
        "{label}: answer count"
    );
    for (i, (p, e)) in progressive
        .communities
        .iter()
        .zip(eager.communities.iter())
        .enumerate()
    {
        assert_eq!(
            p.influential_score.to_bits(),
            e.influential_score.to_bits(),
            "{label}: score at rank {i} ({} vs {})",
            p.influential_score,
            e.influential_score
        );
        assert_eq!(p.vertices, e.vertices, "{label}: vertex set at rank {i}");
        assert_eq!(p.center, e.center, "{label}: centre at rank {i}");
        assert_eq!(
            p.influenced_size, e.influenced_size,
            "{label}: influenced size at rank {i}"
        );
    }
}

fn sweep(graph: &SocialNetwork, index: &icde_core::CommunityIndex, query: TopLQuery, label: &str) {
    let processor = TopLProcessor::new(graph, index);
    let configs = [
        ("all", PruningToggles::all()),
        ("none", PruningToggles::none()),
        ("keyword_only", PruningToggles::keyword_only()),
        ("keyword_support", PruningToggles::keyword_support()),
    ];
    for (name, toggles) in configs {
        let progressive = processor.run_with_toggles(&query, toggles).unwrap();
        let eager = processor.run_eager_with_toggles(&query, toggles).unwrap();
        let label = format!("{label}/{name}");
        assert_bit_identical(&progressive, &eager, &label);
        // the kernel's whole point: it never expands more candidates exactly
        // than the eager path refines
        assert!(
            progressive.stats.exact_verifications <= eager.stats.candidates_refined,
            "{label}: progressive expanded {} > eager's {}",
            progressive.stats.exact_verifications,
            eager.stats.candidates_refined
        );
        // internal sanity: cache hits can only reduce exact expansions
        assert!(
            progressive.stats.exact_verifications <= progressive.stats.candidates_refined,
            "{label}: verifications exceed refinements"
        );
    }
}

#[test]
fn random_graphs_all_toggles_and_result_sizes() {
    for seed in [11u64, 29, 47] {
        let (g, index) = build(DatasetKind::Uniform, 220, seed);
        for l in [1usize, 5, 20] {
            let q = TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3, 4]), 3, 2, 0.2, l);
            sweep(&g, &index, q, &format!("uniform/seed{seed}/l{l}"));
        }
    }
}

#[test]
fn theta_off_grid_and_below_every_threshold() {
    let (g, index) = build(DatasetKind::Uniform, 200, 5);
    // 0.25 sits between grid thresholds (bound rounds down to θ_z = 0.2);
    // 0.05 is below every threshold, so every score bound degrades to +∞ and
    // the kernel must still terminate with the right answer
    for theta in [0.25f64, 0.05] {
        let q = TopLQuery::new(KeywordSet::from_ids([1, 2, 3]), 3, 2, theta, 5);
        sweep(&g, &index, q, &format!("theta{theta}"));
    }
}

#[test]
fn support_below_seed_bound_support_skips_the_seed_table() {
    // k = 2 < SEED_BOUND_SUPPORT: the offline seed bounds are not sound here
    // and the kernel must fall back to region bounds alone
    let (g, index) = build(DatasetKind::Uniform, 200, 13);
    let q = TopLQuery::new(KeywordSet::from_ids([0, 2, 4]), 2, 2, 0.2, 5);
    sweep(&g, &index, q, "support2");
    // and a high-support query on the same index for contrast
    let q = TopLQuery::new(KeywordSet::from_ids([0, 2, 4]), 4, 2, 0.2, 5);
    sweep(&g, &index, q, "support4");
}

#[test]
fn radius_extremes() {
    let (g, index) = build(DatasetKind::DblpLike, 240, 7);
    for r in [1u32, 3] {
        let q = TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3]), 3, r, 0.2, 5);
        sweep(&g, &index, q, &format!("radius{r}"));
    }
}

#[test]
fn no_matching_keywords_and_tiny_graphs() {
    let (g, index) = build(DatasetKind::Uniform, 200, 3);
    // keyword 500 is outside the domain: both paths must return nothing
    let q = TopLQuery::new(KeywordSet::from_ids([500]), 3, 2, 0.2, 5);
    sweep(&g, &index, q, "no-keywords");
    // a graph small enough that L exceeds the number of communities
    let (g, index) = build(DatasetKind::Uniform, 40, 17);
    let q = TopLQuery::new(KeywordSet::from_ids([0, 1, 2, 3, 4, 5]), 3, 2, 0.2, 20);
    sweep(&g, &index, q, "tiny");
}
