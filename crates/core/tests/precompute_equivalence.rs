//! Equivalence property tests for the offline pre-computation engine.
//!
//! The frontier-incremental, multi-threshold, work-stealing engine behind
//! [`PrecomputedData::compute`] must be indistinguishable from the in-tree
//! reference path ([`PrecomputedData::compute_reference`] — one full
//! influence expansion per `(vertex, radius, threshold)` and per-region
//! re-scans): keyword signatures, support bounds and region sizes
//! **bit-identical**, every `σ_z` within 1e-9 (the two paths sum the same
//! settled `cpp` values in different orders). Scheduling must be invisible —
//! any worker count writes the exact same table — and the incremental
//! maintenance path must agree with a from-scratch build after edge
//! insertions and deletions.

use icde_core::maintenance::{refresh_after_edge_insertion, update_index_after_edge_deletion};
use icde_core::precompute::{PrecomputeConfig, PrecomputedData};
use icde_core::IndexBuilder;
use icde_graph::generators::{DatasetKind, DatasetSpec};
use icde_graph::{SocialNetwork, VertexId};
use proptest::prelude::*;

fn generated_graph(n: usize, seed: u64, keyword_domain: u32) -> SocialNetwork {
    DatasetSpec::new(DatasetKind::Uniform, n.max(4), seed)
        .with_keyword_domain(keyword_domain.max(2))
        .generate()
}

fn config_strategy() -> impl Strategy<Value = PrecomputeConfig> {
    (
        1u32..5,
        prop_oneof![
            Just(vec![0.1, 0.2, 0.3]),
            Just(vec![0.2]),
            Just(vec![0.05, 0.15, 0.25, 0.5]),
            Just(vec![0.0, 0.3]),
        ],
    )
        .prop_map(|(r_max, thresholds)| {
            PrecomputeConfig::new(r_max, thresholds).with_parallel(false)
        })
}

/// Asserts the engine-vs-reference equivalence contract between two tables.
fn assert_equivalent(fast: &PrecomputedData, reference: &PrecomputedData) {
    assert_eq!(fast.edge_supports, reference.edge_supports);
    assert_eq!(fast.num_vertices(), reference.num_vertices());
    assert_eq!(
        fast.table().structural_fingerprint(),
        reference.table().structural_fingerprint(),
        "signatures / supports / region sizes must be bit-identical"
    );
    let delta = fast.table().max_score_delta(reference.table());
    assert!(delta < 1e-9, "score bounds diverged by {delta}");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn engine_matches_reference_on_generated_graphs(
        n in 8usize..90,
        seed in any::<u64>(),
        keyword_domain in 2u32..24,
        config in config_strategy(),
    ) {
        let g = generated_graph(n, seed, keyword_domain);
        let fast = PrecomputedData::compute(&g, config.clone());
        let reference = PrecomputedData::compute_reference(&g, config);
        assert_equivalent(&fast, &reference);
        // and row-by-row, so a failure names the offending aggregate
        for v in g.vertices() {
            for r in 1..=fast.config.r_max {
                let a = fast.aggregate(v, r);
                let b = reference.aggregate(v, r);
                prop_assert_eq!(a.keyword_signature, b.keyword_signature, "{} r={}", v, r);
                prop_assert_eq!(a.support_upper_bound, b.support_upper_bound, "{} r={}", v, r);
                prop_assert_eq!(a.region_size, b.region_size, "{} r={}", v, r);
                for (z, (sa, sb)) in a
                    .score_upper_bounds
                    .iter()
                    .zip(b.score_upper_bounds.iter())
                    .enumerate()
                {
                    prop_assert!((sa - sb).abs() < 1e-9, "{} r={} z={}: {} vs {}", v, r, z, sa, sb);
                }
            }
        }
    }

    #[test]
    fn any_worker_count_writes_the_same_table(
        n in 8usize..120,
        seed in any::<u64>(),
        workers in 2usize..6,
        config in config_strategy(),
    ) {
        let g = generated_graph(n, seed, 12);
        let sequential = PrecomputedData::compute(&g, config.clone().with_num_threads(Some(1)));
        let parallel = PrecomputedData::compute(&g, config.with_num_threads(Some(workers)));
        // the engine computes every vertex identically no matter which worker
        // claims it: exact equality, floats included
        prop_assert_eq!(sequential.table(), parallel.table());
        prop_assert_eq!(&sequential.edge_supports, &parallel.edge_supports);
    }

    #[test]
    fn maintenance_round_trip_agrees_with_from_scratch(
        n in 16usize..70,
        seed in any::<u64>(),
    ) {
        let config = PrecomputeConfig::default().with_parallel(false);
        let g_before = generated_graph(n, seed, 10);

        // --- insertion ---------------------------------------------------
        let mut endpoints = None;
        'outer: for u in g_before.vertices() {
            for v in g_before.vertices() {
                if u < v && !g_before.contains_edge(u, v) {
                    endpoints = Some((u, v));
                    break 'outer;
                }
            }
        }
        let Some((u, v)) = endpoints else {
            return; // complete graph: nothing to insert
        };
        let g_after = g_before.with_edge_inserted(u, v, 0.4, 0.6).unwrap();
        let mut patched = PrecomputedData::compute(&g_before, config.clone());
        let refreshed = refresh_after_edge_insertion(&g_after, &mut patched, u, v, None);
        prop_assert!(refreshed > 0);
        let scratch = PrecomputedData::compute(&g_after, config.clone());
        assert_equivalent(&patched, &scratch);

        // --- deletion (through the index-level API) ----------------------
        let (_, du, dv) = g_after.edges().next().expect("graph has edges");
        let index = IndexBuilder::new(config.clone()).build(&g_after);
        let (g_deleted, patched_index, _) =
            update_index_after_edge_deletion(index, &g_after, du, dv, None).unwrap();
        let scratch = PrecomputedData::compute(&g_deleted, config);
        assert_equivalent(&patched_index.precomputed, &scratch);
    }
}

#[test]
fn single_vertex_recompute_rides_the_engine() {
    // recompute_vertex (the singular maintenance entry point) must reproduce
    // the row a from-scratch engine build computes, for every vertex. At
    // 200 vertices a single-vertex batch hashes signatures on the fly while
    // the full batch goes through the flat table — both paths must agree
    // with the bulk build bit for bit.
    let g = generated_graph(200, 7, 8);
    let config = PrecomputeConfig::default().with_parallel(false);
    let scratch = PrecomputedData::compute(&g, config.clone());
    let mut data = PrecomputedData::compute(&g, config);
    for v in g.vertices() {
        data.recompute_vertex(&g, v);
    }
    assert_eq!(data.table(), scratch.table());
    // batch form, deliberately unsorted and with repeats
    let mut batch: Vec<VertexId> = g.vertices().collect();
    batch.reverse();
    batch.push(VertexId(0));
    data.recompute_vertices(&g, &batch);
    assert_eq!(data.table(), scratch.table());
}
