//! The hierarchical tree index `I` (Section V-B).
//!
//! The index is built over the per-vertex pre-computed aggregates of
//! [`crate::precompute`]. Leaf nodes hold batches of vertices; non-leaf nodes
//! hold child entries, each annotated with aggregated bounds per radius:
//!
//! * an OR-folded keyword signature `N_i.BV_r`,
//! * the maximum support upper bound `N_i.ub_sup_r`,
//! * the maximum influential-score upper bound `N_i.σ_z` per pre-selected
//!   threshold.
//!
//! Construction follows the paper: vertices are sorted by the average of
//! their support and score bounds (so that similar vertices share subtrees
//! and the aggregated bounds stay tight), then recursively partitioned into
//! equally-sized children until batches fit into leaves.

use crate::precompute::{PrecomputeConfig, PrecomputedData, RadiusAggregate};
use icde_graph::{SocialNetwork, VertexId};
use serde::{Deserialize, Serialize};

/// Default number of children per non-leaf node (the fan-out `γ`).
pub const DEFAULT_FANOUT: usize = 8;
/// Default number of vertices per leaf node.
pub const DEFAULT_LEAF_CAPACITY: usize = 16;

/// Aggregated bounds of one index node, one entry per radius `r ∈ [1, r_max]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeAggregate {
    /// `per_radius[r - 1]` — aggregate for radius `r`.
    pub per_radius: Vec<RadiusAggregate>,
}

impl NodeAggregate {
    fn empty(config: &PrecomputeConfig) -> Self {
        NodeAggregate {
            per_radius: (0..config.r_max)
                .map(|_| RadiusAggregate::empty(config.signature_bits, config.thresholds.len()))
                .collect(),
        }
    }

    fn merge_vertex(&mut self, data: &PrecomputedData, v: VertexId) {
        for (r, agg) in self.per_radius.iter_mut().enumerate() {
            agg.merge_max(&data.vertices[v.index()].per_radius[r]);
        }
    }

    fn merge_node(&mut self, other: &NodeAggregate) {
        for (mine, theirs) in self.per_radius.iter_mut().zip(&other.per_radius) {
            mine.merge_max(theirs);
        }
    }

    /// The aggregate for radius `r` (1-based).
    pub fn for_radius(&self, r: u32) -> &RadiusAggregate {
        &self.per_radius[(r - 1) as usize]
    }
}

/// One node of the tree index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IndexNode {
    /// Leaf node holding a batch of vertices (candidate centres).
    Leaf {
        /// Vertices stored in this leaf.
        vertices: Vec<VertexId>,
    },
    /// Internal node holding child node ids.
    Internal {
        /// Ids of the children in [`CommunityIndex::nodes`].
        children: Vec<usize>,
    },
}

/// The tree index `I` over one social network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CommunityIndex {
    /// The pre-computed data the index aggregates.
    pub precomputed: PrecomputedData,
    nodes: Vec<IndexNode>,
    aggregates: Vec<NodeAggregate>,
    root: usize,
    num_graph_vertices: usize,
    fanout: usize,
    leaf_capacity: usize,
}

impl CommunityIndex {
    /// Id of the root node.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Total number of index nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of graph vertices the index covers.
    pub fn num_graph_vertices(&self) -> usize {
        self.num_graph_vertices
    }

    /// Maximum radius supported by the underlying pre-computation.
    pub fn r_max(&self) -> u32 {
        self.precomputed.config.r_max
    }

    /// Signature width used by the underlying pre-computation.
    pub fn signature_bits(&self) -> usize {
        self.precomputed.config.signature_bits
    }

    /// The fan-out the index was built with.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// The leaf capacity the index was built with.
    pub fn leaf_capacity(&self) -> usize {
        self.leaf_capacity
    }

    /// The node with the given id.
    pub fn node(&self, id: usize) -> &IndexNode {
        &self.nodes[id]
    }

    /// The aggregated bounds of the node with the given id.
    pub fn aggregate(&self, id: usize) -> &NodeAggregate {
        &self.aggregates[id]
    }

    /// Influential-score upper bound of a node for radius `r` and online
    /// threshold `theta` (`+∞` when no pre-selected threshold applies).
    pub fn node_score_bound(&self, id: usize, r: u32, theta: f64) -> f64 {
        match self.precomputed.config.threshold_index(theta) {
            Some(z) => self.aggregate(id).for_radius(r).score_upper_bounds[z],
            None => f64::INFINITY,
        }
    }

    /// Height of the tree (a single leaf-root has height 1).
    pub fn height(&self) -> usize {
        fn depth(index: &CommunityIndex, node: usize) -> usize {
            match &index.nodes[node] {
                IndexNode::Leaf { .. } => 1,
                IndexNode::Internal { children } => {
                    1 + children.iter().map(|c| depth(index, *c)).max().unwrap_or(0)
                }
            }
        }
        depth(self, self.root)
    }

    /// Iterates over every leaf vertex (in index order) — used by tests to
    /// check the index covers the whole graph.
    pub fn all_leaf_vertices(&self) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.num_graph_vertices);
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            match &self.nodes[id] {
                IndexNode::Leaf { vertices } => out.extend(vertices.iter().copied()),
                IndexNode::Internal { children } => stack.extend(children.iter().copied()),
            }
        }
        out
    }
}

/// Builder for [`CommunityIndex`].
#[derive(Debug, Clone)]
pub struct IndexBuilder {
    config: PrecomputeConfig,
    fanout: usize,
    leaf_capacity: usize,
}

impl IndexBuilder {
    /// Creates a builder with the given offline configuration and default
    /// fan-out / leaf capacity.
    pub fn new(config: PrecomputeConfig) -> Self {
        IndexBuilder {
            config,
            fanout: DEFAULT_FANOUT,
            leaf_capacity: DEFAULT_LEAF_CAPACITY,
        }
    }

    /// Overrides the fan-out `γ` of non-leaf nodes.
    ///
    /// # Panics
    /// Panics if `fanout < 2`.
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        assert!(fanout >= 2, "fanout must be at least 2");
        self.fanout = fanout;
        self
    }

    /// Overrides the number of vertices per leaf.
    ///
    /// # Panics
    /// Panics if `leaf_capacity` is zero.
    pub fn with_leaf_capacity(mut self, leaf_capacity: usize) -> Self {
        assert!(leaf_capacity >= 1, "leaf capacity must be at least 1");
        self.leaf_capacity = leaf_capacity;
        self
    }

    /// Runs the offline pre-computation for `g` and builds the index over it.
    pub fn build(&self, g: &SocialNetwork) -> CommunityIndex {
        let data = PrecomputedData::compute(g, self.config.clone());
        self.build_from_precomputed(g, data)
    }

    /// Builds the index over already pre-computed data (useful when the same
    /// data backs several index configurations, e.g. the fan-out ablation).
    pub fn build_from_precomputed(
        &self,
        g: &SocialNetwork,
        data: PrecomputedData,
    ) -> CommunityIndex {
        let n = g.num_vertices();
        // Sort vertices by the average of their support bound and largest
        // score bound at r_max, so vertices with similar bounds share leaves
        // and aggregated bounds stay discriminative (Section V-B).
        let mut order: Vec<VertexId> = g.vertices().collect();
        if data.config.r_max >= 1 && !data.config.thresholds.is_empty() {
            let key = |v: &VertexId| {
                let agg = data.aggregate(*v, data.config.r_max);
                let score = agg.score_upper_bounds.first().copied().unwrap_or(0.0);
                agg.support_upper_bound as f64 / 2.0 + score / 2.0
            };
            order.sort_by(|a, b| {
                key(b)
                    .partial_cmp(&key(a))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        }

        let mut nodes = Vec::new();
        let mut aggregates: Vec<NodeAggregate> = Vec::new();

        // Leaf level.
        let mut level: Vec<usize> = Vec::new();
        if n == 0 {
            nodes.push(IndexNode::Leaf {
                vertices: Vec::new(),
            });
            aggregates.push(NodeAggregate::empty(&data.config));
            level.push(0);
        } else {
            for chunk in order.chunks(self.leaf_capacity) {
                let mut agg = NodeAggregate::empty(&data.config);
                for &v in chunk {
                    agg.merge_vertex(&data, v);
                }
                nodes.push(IndexNode::Leaf {
                    vertices: chunk.to_vec(),
                });
                aggregates.push(agg);
                level.push(nodes.len() - 1);
            }
        }

        // Internal levels until a single root remains.
        while level.len() > 1 {
            let mut next_level = Vec::new();
            for group in level.chunks(self.fanout) {
                let mut agg = NodeAggregate::empty(&data.config);
                for &child in group {
                    agg.merge_node(&aggregates[child]);
                }
                nodes.push(IndexNode::Internal {
                    children: group.to_vec(),
                });
                aggregates.push(agg);
                next_level.push(nodes.len() - 1);
            }
            level = next_level;
        }

        let root = level[0];
        CommunityIndex {
            precomputed: data,
            nodes,
            aggregates,
            root,
            num_graph_vertices: n,
            fanout: self.fanout,
            leaf_capacity: self.leaf_capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icde_graph::generators::{DatasetKind, DatasetSpec};
    use icde_graph::BitVector;
    use icde_graph::KeywordSet;

    fn graph() -> SocialNetwork {
        DatasetSpec::new(DatasetKind::Uniform, 200, 11)
            .with_keyword_domain(20)
            .generate()
    }

    fn build(g: &SocialNetwork) -> CommunityIndex {
        IndexBuilder::new(PrecomputeConfig {
            parallel: false,
            ..Default::default()
        })
        .with_fanout(4)
        .with_leaf_capacity(8)
        .build(g)
    }

    #[test]
    fn index_covers_every_vertex_exactly_once() {
        let g = graph();
        let index = build(&g);
        let mut leaves = index.all_leaf_vertices();
        leaves.sort_unstable();
        let expected: Vec<VertexId> = g.vertices().collect();
        assert_eq!(leaves, expected);
        assert_eq!(index.num_graph_vertices(), g.num_vertices());
    }

    #[test]
    fn tree_shape_respects_fanout_and_capacity() {
        let g = graph();
        let index = build(&g);
        assert!(index.height() >= 2);
        for id in 0..index.node_count() {
            match index.node(id) {
                IndexNode::Leaf { vertices } => assert!(vertices.len() <= 8),
                IndexNode::Internal { children } => {
                    assert!(children.len() <= 4);
                    assert!(!children.is_empty());
                }
            }
        }
    }

    #[test]
    fn aggregates_dominate_children() {
        let g = graph();
        let index = build(&g);
        for id in 0..index.node_count() {
            if let IndexNode::Internal { children } = index.node(id) {
                for &child in children {
                    for r in 1..=index.r_max() {
                        let parent = index.aggregate(id).for_radius(r);
                        let child_agg = index.aggregate(child).for_radius(r);
                        assert!(parent.support_upper_bound >= child_agg.support_upper_bound);
                        for z in 0..parent.score_upper_bounds.len() {
                            assert!(
                                parent.score_upper_bounds[z] >= child_agg.score_upper_bounds[z]
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn leaf_aggregates_dominate_member_vertices() {
        let g = graph();
        let index = build(&g);
        for id in 0..index.node_count() {
            if let IndexNode::Leaf { vertices } = index.node(id) {
                for &v in vertices {
                    for r in 1..=index.r_max() {
                        let node_agg = index.aggregate(id).for_radius(r);
                        let vert_agg = index.precomputed.aggregate(v, r);
                        assert!(node_agg.support_upper_bound >= vert_agg.support_upper_bound);
                        for z in 0..node_agg.score_upper_bounds.len() {
                            assert!(
                                node_agg.score_upper_bounds[z] >= vert_agg.score_upper_bounds[z]
                            );
                        }
                        // every keyword visible at the vertex is visible at the node
                        for u in [v] {
                            for kw in g.keyword_set(u).iter() {
                                if vert_agg.keyword_signature.maybe_contains(kw) {
                                    assert!(node_agg.keyword_signature.maybe_contains(kw));
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn score_bound_uses_threshold_brackets() {
        let g = graph();
        let index = build(&g);
        let root = index.root();
        let low = index.node_score_bound(root, 2, 0.1);
        let high = index.node_score_bound(root, 2, 0.3);
        assert!(low >= high, "lower thresholds give larger bounds");
        assert!(index.node_score_bound(root, 2, 0.01).is_infinite());
    }

    #[test]
    fn empty_graph_builds_a_single_leaf() {
        let g = SocialNetwork::new();
        let index = IndexBuilder::new(PrecomputeConfig {
            parallel: false,
            ..Default::default()
        })
        .build(&g);
        assert_eq!(index.node_count(), 1);
        assert_eq!(index.height(), 1);
        assert!(index.all_leaf_vertices().is_empty());
    }

    #[test]
    fn builder_validation() {
        let b = IndexBuilder::new(PrecomputeConfig::default())
            .with_fanout(2)
            .with_leaf_capacity(1);
        assert_eq!(b.fanout, 2);
        assert_eq!(b.leaf_capacity, 1);
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn tiny_fanout_panics() {
        let _ = IndexBuilder::new(PrecomputeConfig::default()).with_fanout(1);
    }

    #[test]
    fn single_vertex_graph_index() {
        let mut b = icde_graph::GraphBuilder::new();
        b.add_vertex(KeywordSet::from_ids([1]));
        let g = b.build().unwrap();
        let index = IndexBuilder::new(PrecomputeConfig {
            parallel: false,
            ..Default::default()
        })
        .build(&g);
        assert_eq!(index.all_leaf_vertices().len(), 1);
        let agg = index.aggregate(index.root()).for_radius(1);
        let q = BitVector::from_keywords(&KeywordSet::from_ids([1]), index.signature_bits());
        assert!(agg.keyword_signature.intersects(&q));
    }
}
