//! The hierarchical tree index `I` (Section V-B), stored flat.
//!
//! The index is built over the per-vertex pre-computed aggregates of
//! [`crate::precompute`]. Leaf nodes hold batches of vertices; non-leaf nodes
//! hold child entries, each annotated with aggregated bounds per radius:
//!
//! * an OR-folded keyword signature `N_i.BV_r`,
//! * the maximum support upper bound `N_i.ub_sup_r`,
//! * the maximum influential-score upper bound `N_i.σ_z` per pre-selected
//!   threshold.
//!
//! Construction follows the paper: vertices are sorted by the average of
//! their support and score bounds (so that similar vertices share subtrees
//! and the aggregated bounds stay tight), then recursively partitioned into
//! equally-sized children until batches fit into leaves.
//!
//! # Flat layout
//!
//! Before PR 4 the tree was a `Vec<IndexNode>` of enum nodes, each leaf and
//! internal owning its own `Vec`, with a parallel `Vec<NodeAggregate>` of
//! nested per-radius vectors — fine for building, hostile to traversal cache
//! locality and impossible to serialise flat. The frozen index now keeps:
//!
//! * one shared `u32` **item pool**: the items of node `i` live in
//!   `item_pool[item_start[i] .. item_start[i+1]]` and are leaf vertices or
//!   child node ids depending on the node's bit in `leaf_mask`,
//! * one [`AggregateTable`] keyed `(node, r, θ_index)` for all node bounds.
//!
//! Traversal borrows node views through [`NodeRef`] / [`AggregateRef`]; the
//! binary snapshot writer (`crate::snapshot`) dumps the arrays verbatim.

use crate::aggregate::{AggregateRef, AggregateTable, TableShadow};
use crate::precompute::{PrecomputeConfig, PrecomputeShadow, PrecomputedData, RadiusAggregate};
use icde_graph::snapshot::{fnv1a, fnv1a_extend, FlatVec};
use icde_graph::{vertex_ids_from_raw, SocialNetwork, VertexId};
use serde::{Deserialize, Serialize};

/// Default number of children per non-leaf node (the fan-out `γ`).
pub const DEFAULT_FANOUT: usize = 8;
/// Default number of vertices per leaf node.
pub const DEFAULT_LEAF_CAPACITY: usize = 16;

/// Aggregated bounds of one index node while the tree is being built, one
/// entry per radius `r ∈ [1, r_max]`. The frozen index flattens these into
/// its [`AggregateTable`]; this owned form only lives inside the builder.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeAggregate {
    /// `per_radius[r - 1]` — aggregate for radius `r`.
    pub per_radius: Vec<RadiusAggregate>,
}

impl NodeAggregate {
    fn empty(config: &PrecomputeConfig) -> Self {
        NodeAggregate {
            per_radius: (0..config.r_max)
                .map(|_| RadiusAggregate::empty(config.signature_bits, config.thresholds.len()))
                .collect(),
        }
    }

    fn merge_vertex(&mut self, data: &PrecomputedData, v: VertexId) {
        for (r, agg) in self.per_radius.iter_mut().enumerate() {
            agg.merge_max_ref(data.aggregate(v, (r + 1) as u32));
        }
    }

    fn merge_node(&mut self, other: &NodeAggregate) {
        for (mine, theirs) in self.per_radius.iter_mut().zip(&other.per_radius) {
            mine.merge_max(theirs);
        }
    }
}

/// Maintainer-side scratch for [`CommunityIndex::patch_vertices`]: the
/// vertex→leaf and child→parent maps plus the dirty-propagation workspace.
///
/// Both maps are fully derivable from the frozen tree arrays in O(n), so they
/// are **never serialised** — a maintainer derives them once per tree shape
/// ([`CommunityIndex::derive_placement`]) and re-derives after a repack
/// changes vertex→leaf placement. The dirty bitset and level queues are
/// allocated once and reused across batches, so a steady-state patch performs
/// no O(n) work.
#[derive(Debug, Clone)]
pub struct IndexPlacement {
    /// `vertex_leaf[v]` — id of the leaf holding vertex `v`.
    vertex_leaf: Vec<u32>,
    /// `parent[i]` — parent node id of node `i` (`u32::MAX` for the root).
    parent: Vec<u32>,
    /// Dirty-node bitset over node ids; always all-zero between patches.
    dirty: Vec<u64>,
    level: Vec<u32>,
    next: Vec<u32>,
}

impl IndexPlacement {
    /// The leaf node currently holding vertex `v`.
    #[inline]
    pub fn leaf_of(&self, v: VertexId) -> usize {
        self.vertex_leaf[v.index()] as usize
    }

    /// Returns `true` if this placement was derived from a tree with the
    /// given vertex and node counts (the cheap staleness check).
    pub fn matches(&self, index: &CommunityIndex) -> bool {
        self.vertex_leaf.len() == index.num_graph_vertices()
            && self.parent.len() == index.node_count()
    }
}

/// Borrowed view of one index node: a batch of candidate centres (leaf) or a
/// batch of child node ids (internal), both slices of the shared item pool.
#[derive(Debug, Clone, Copy)]
pub enum NodeRef<'a> {
    /// Leaf node holding a batch of vertices (candidate centres).
    Leaf {
        /// Vertices stored in this leaf.
        vertices: &'a [VertexId],
    },
    /// Internal node holding child node ids.
    Internal {
        /// Ids of the children (indexes into the same node space).
        children: &'a [u32],
    },
}

/// The tree index `I` over one social network (flat storage, see the module
/// docs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CommunityIndex {
    /// The pre-computed data the index aggregates.
    pub precomputed: PrecomputedData,
    /// `item_start[i] .. item_start[i+1]` bounds node `i`'s items in the
    /// pool. Length `node_count + 1`. [`FlatVec`]-backed so snapshot loads
    /// serve the tree straight off the mapped file.
    item_start: FlatVec<u32>,
    /// Shared item pool: leaf vertices or child node ids (see `leaf_mask`).
    item_pool: FlatVec<u32>,
    /// Bit `i` set ⇔ node `i` is a leaf. `⌈node_count/64⌉` words.
    leaf_mask: FlatVec<u64>,
    /// Aggregated bounds keyed `(node, r, θ_index)`.
    node_aggregates: AggregateTable,
    root: usize,
    num_graph_vertices: usize,
    fanout: usize,
    leaf_capacity: usize,
}

impl CommunityIndex {
    /// Id of the root node.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Total number of index nodes.
    pub fn node_count(&self) -> usize {
        self.item_start.len() - 1
    }

    /// Number of graph vertices the index covers.
    pub fn num_graph_vertices(&self) -> usize {
        self.num_graph_vertices
    }

    /// Maximum radius supported by the underlying pre-computation.
    pub fn r_max(&self) -> u32 {
        self.precomputed.config.r_max
    }

    /// Signature width used by the underlying pre-computation.
    pub fn signature_bits(&self) -> usize {
        self.precomputed.config.signature_bits
    }

    /// The fan-out the index was built with.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// The leaf capacity the index was built with.
    pub fn leaf_capacity(&self) -> usize {
        self.leaf_capacity
    }

    /// Returns `true` if node `id` is a leaf.
    #[inline]
    pub fn is_leaf(&self, id: usize) -> bool {
        (self.leaf_mask[id / 64] >> (id % 64)) & 1 == 1
    }

    /// The node with the given id, as a borrowed view of the item pool.
    #[inline]
    pub fn node(&self, id: usize) -> NodeRef<'_> {
        let items = &self.item_pool[self.item_start[id] as usize..self.item_start[id + 1] as usize];
        if self.is_leaf(id) {
            NodeRef::Leaf {
                vertices: vertex_ids_from_raw(items),
            }
        } else {
            NodeRef::Internal { children: items }
        }
    }

    /// The aggregated bounds of node `id` for radius `r` (a borrowed row of
    /// the flat node table).
    ///
    /// # Panics
    /// Panics if `r` is 0 or exceeds `r_max`, or `id` is out of range.
    #[inline]
    pub fn aggregate(&self, id: usize, r: u32) -> AggregateRef<'_> {
        self.node_aggregates.row(id, r)
    }

    /// The flattened node-aggregate table (the snapshot writer's view).
    pub fn node_aggregates(&self) -> &AggregateTable {
        &self.node_aggregates
    }

    /// The flat tree arrays `(item_start, item_pool, leaf_mask)` — the
    /// snapshot writer's view of the topology.
    pub fn tree_parts(&self) -> (&[u32], &[u32], &[u64]) {
        (&self.item_start, &self.item_pool, &self.leaf_mask)
    }

    /// Influential-score upper bound of a node for radius `r` and online
    /// threshold `theta` (`+∞` when no pre-selected threshold applies).
    pub fn node_score_bound(&self, id: usize, r: u32, theta: f64) -> f64 {
        match self.precomputed.config.threshold_index(theta) {
            Some(z) => self.node_aggregates.score(id, r, z),
            None => f64::INFINITY,
        }
    }

    /// Height of the tree (a single leaf-root has height 1).
    ///
    /// Children always carry smaller ids than their parent (the builder
    /// freezes levels bottom-up and [`CommunityIndex::validate`] enforces
    /// it), so one ascending pass computes every depth iteratively — no
    /// recursion, no cycle hazard.
    pub fn height(&self) -> usize {
        let nodes = self.node_count();
        let mut depth = vec![1usize; nodes];
        for id in 0..nodes {
            if let NodeRef::Internal { children } = self.node(id) {
                depth[id] = 1 + children
                    .iter()
                    .map(|c| depth[*c as usize])
                    .max()
                    .unwrap_or(0);
            }
        }
        depth[self.root]
    }

    /// Iterates over every leaf vertex (in index order) — used by tests to
    /// check the index covers the whole graph.
    pub fn all_leaf_vertices(&self) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.num_graph_vertices);
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            match self.node(id) {
                NodeRef::Leaf { vertices } => out.extend(vertices.iter().copied()),
                NodeRef::Internal { children } => {
                    stack.extend(children.iter().map(|c| *c as usize))
                }
            }
        }
        out
    }

    /// Derives the [`IndexPlacement`] maps from the frozen tree arrays in
    /// one O(n + node_count) pass. Call once per tree shape (after build or
    /// repack); [`CommunityIndex::patch_vertices`] keeps the placement valid
    /// because it never moves items between nodes.
    pub fn derive_placement(&self) -> IndexPlacement {
        let nodes = self.node_count();
        let mut vertex_leaf = vec![u32::MAX; self.num_graph_vertices];
        let mut parent = vec![u32::MAX; nodes];
        for id in 0..nodes {
            match self.node(id) {
                NodeRef::Leaf { vertices } => {
                    for &v in vertices {
                        vertex_leaf[v.index()] = id as u32;
                    }
                }
                NodeRef::Internal { children } => {
                    for &c in children {
                        parent[c as usize] = id as u32;
                    }
                }
            }
        }
        IndexPlacement {
            vertex_leaf,
            parent,
            dirty: vec![0u64; nodes.div_ceil(64)],
            level: Vec::new(),
            next: Vec::new(),
        }
    }

    /// Re-merges the aggregated bounds of exactly the leaves holding
    /// `vertices` and their ancestor paths to the root, leaving the tree
    /// shape (and therefore `placement`) untouched. Ids of every recomputed
    /// node are appended to `patched_nodes` (for publish dirty tracking).
    ///
    /// Cost is O(|dirty leaves| · leaf_capacity + |dirty ancestors| · fanout)
    /// row merges — proportional to the update footprint, not to `n`. The
    /// patched bounds are *identical* to what a full re-merge of the same
    /// tree would produce (max/OR folds are order-independent), so answers
    /// match a from-scratch rebuild wherever answers are shape-independent.
    ///
    /// # Panics
    /// Panics if `placement` was derived from a different tree shape.
    pub fn patch_vertices(
        &mut self,
        vertices: &[VertexId],
        placement: &mut IndexPlacement,
        patched_nodes: &mut Vec<u32>,
    ) {
        assert!(
            placement.matches(self),
            "index placement is stale: derive_placement after build/repack"
        );
        let before = patched_nodes.len();
        placement.level.clear();
        for &v in vertices {
            let leaf = placement.vertex_leaf[v.index()];
            let (w, b) = (leaf as usize / 64, leaf as usize % 64);
            if placement.dirty[w] >> b & 1 == 0 {
                placement.dirty[w] |= 1 << b;
                placement.level.push(leaf);
            }
        }
        let r_max = self.precomputed.config.r_max as usize;
        while !placement.level.is_empty() {
            placement.next.clear();
            for &id in &placement.level {
                let id = id as usize;
                let start = self.item_start[id] as usize;
                let end = self.item_start[id + 1] as usize;
                let mut agg = NodeAggregate::empty(&self.precomputed.config);
                if self.is_leaf(id) {
                    for &v in vertex_ids_from_raw(&self.item_pool[start..end]) {
                        agg.merge_vertex(&self.precomputed, v);
                    }
                } else {
                    for i in start..end {
                        let child = self.item_pool[i] as usize;
                        for r0 in 0..r_max {
                            agg.per_radius[r0]
                                .merge_max_ref(self.node_aggregates.row(child, (r0 + 1) as u32));
                        }
                    }
                }
                self.node_aggregates.set_entity(id, &agg.per_radius);
                patched_nodes.push(id as u32);
                let p = placement.parent[id];
                if p != u32::MAX {
                    let (w, b) = (p as usize / 64, p as usize % 64);
                    if placement.dirty[w] >> b & 1 == 0 {
                        placement.dirty[w] |= 1 << b;
                        placement.next.push(p);
                    }
                }
            }
            std::mem::swap(&mut placement.level, &mut placement.next);
        }
        // restore the all-zero invariant without an O(nodes) sweep
        for &id in &patched_nodes[before..] {
            placement.dirty[id as usize / 64] &= !(1u64 << (id as usize % 64));
        }
    }

    /// Converts the owned tree arrays to `Arc`-shared storage in place (the
    /// streaming maintainer never mutates them between repacks, so snapshot
    /// publishes can share them for free).
    pub fn share_tree_sections(&mut self) {
        self.item_start.share();
        self.item_pool.share();
        self.leaf_mask.share();
    }

    /// An FNV-1a fingerprint of the complete index content (configuration,
    /// per-vertex table, edge supports, tree arrays, node table). Equal
    /// fingerprints mean byte-identical flat arrays — the bit-identity check
    /// used by snapshot round-trip tests and the `bench4` loader comparison.
    pub fn content_fingerprint(&self) -> u64 {
        let mut h = fnv1a(b"icde-index-content-v1");
        let word = |h: u64, v: u64| fnv1a_extend(h, &v.to_le_bytes());
        let config = &self.precomputed.config;
        h = word(h, u64::from(config.r_max));
        h = word(h, config.signature_bits as u64);
        for t in &config.thresholds {
            h = word(h, t.to_bits());
        }
        let hash_table = |mut h: u64, table: &AggregateTable| {
            h = word(h, table.entities() as u64);
            for &w in table.raw_signatures() {
                h = word(h, w);
            }
            for &s in table.raw_supports() {
                h = word(h, u64::from(s));
            }
            for &s in table.raw_scores() {
                h = word(h, s.to_bits());
            }
            for &s in table.raw_region_sizes() {
                h = word(h, u64::from(s));
            }
            h
        };
        h = hash_table(h, self.precomputed.table());
        for &s in self.precomputed.edge_supports.iter() {
            h = word(h, u64::from(s));
        }
        for &b in self.precomputed.seed_bounds() {
            h = word(h, b.to_bits());
        }
        for &v in self.item_start.iter() {
            h = word(h, u64::from(v));
        }
        for &v in self.item_pool.iter() {
            h = word(h, u64::from(v));
        }
        for &v in self.leaf_mask.iter() {
            h = word(h, v);
        }
        h = hash_table(h, &self.node_aggregates);
        h = word(h, self.root as u64);
        h = word(h, self.num_graph_vertices as u64);
        h = word(h, self.fanout as u64);
        h = word(h, self.leaf_capacity as u64);
        h
    }

    /// Reassembles a frozen index from flat parts (the binary snapshot
    /// loader), validating every structural invariant the traversal relies
    /// on so no accessor can go out of bounds afterwards.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_flat_parts(
        precomputed: PrecomputedData,
        item_start: impl Into<FlatVec<u32>>,
        item_pool: impl Into<FlatVec<u32>>,
        leaf_mask: impl Into<FlatVec<u64>>,
        node_aggregates: AggregateTable,
        root: usize,
        num_graph_vertices: usize,
        fanout: usize,
        leaf_capacity: usize,
    ) -> Result<Self, String> {
        let index = CommunityIndex {
            precomputed,
            item_start: item_start.into(),
            item_pool: item_pool.into(),
            leaf_mask: leaf_mask.into(),
            node_aggregates,
            root,
            num_graph_vertices,
            fanout,
            leaf_capacity,
        };
        index.validate()?;
        Ok(index)
    }

    /// Checks every structural invariant traversal relies on, without
    /// assuming anything about where the data came from. Both untrusted
    /// sources — the binary snapshot loader and the JSON deserialiser —
    /// run this before an index is handed to callers, so no accessor can
    /// go out of bounds, loop, or panic on a malformed file afterwards.
    pub(crate) fn validate(&self) -> Result<(), String> {
        // the serde derive can produce arbitrary field combinations; check
        // the aggregate tables' internal consistency first so the per-node
        // walk below cannot index past their arrays
        let config = &self.precomputed.config;
        self.precomputed.validate()?;
        self.node_aggregates.validate()?;
        if self.node_aggregates.r_max() != config.r_max
            || self.node_aggregates.signature_bits() != config.signature_bits
            || self.node_aggregates.num_thresholds() != config.thresholds.len()
        {
            return Err("node aggregate table disagrees with the configuration".to_string());
        }
        if self.item_start.is_empty() {
            return Err("item_start must hold at least one entry".to_string());
        }
        let nodes = self.item_start.len() - 1;
        if nodes == 0 {
            return Err("index must hold at least one node".to_string());
        }
        if self.item_start[0] != 0
            || self.item_start[nodes] as usize != self.item_pool.len()
            || self.item_start.windows(2).any(|w| w[0] > w[1])
        {
            return Err("item_start does not partition the item pool".to_string());
        }
        if self.leaf_mask.len() != nodes.div_ceil(64) {
            return Err("leaf mask length disagrees with the node count".to_string());
        }
        if self.node_aggregates.entities() != nodes {
            return Err("node aggregate table disagrees with the node count".to_string());
        }
        if self.root >= nodes {
            return Err("root node id out of range".to_string());
        }
        if self.num_graph_vertices != self.precomputed.num_vertices() {
            return Err("index vertex count disagrees with the pre-computed data".to_string());
        }
        for id in 0..nodes {
            match self.node(id) {
                NodeRef::Leaf { vertices } => {
                    if vertices
                        .iter()
                        .any(|v| v.index() >= self.num_graph_vertices)
                    {
                        return Err(format!("leaf {id} references an out-of-range vertex"));
                    }
                }
                NodeRef::Internal { children } => {
                    if children.is_empty() {
                        return Err(format!("internal node {id} has no children"));
                    }
                    // the builder freezes levels bottom-up, so children
                    // always have smaller ids; enforcing that here also
                    // proves acyclicity (a crafted cycle would otherwise
                    // make height()/all_leaf_vertices() diverge)
                    if children.iter().any(|c| *c as usize >= id) {
                        return Err(format!(
                            "node {id} references a child with a non-smaller id"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Publish shadow over a whole [`CommunityIndex`]: the per-vertex data
/// shadow plus one for the node-aggregate table. The tree arrays are never
/// mutated between repacks, so publishing clones them directly (an `Arc`
/// bump once [`CommunityIndex::share_tree_sections`] has run). The published
/// index is replayed row-for-row from an already-validated working index, so
/// no O(n) re-validation runs per publish.
#[derive(Debug)]
pub(crate) struct IndexShadow {
    data: PrecomputeShadow,
    nodes: TableShadow,
}

impl IndexShadow {
    pub(crate) fn new(index: &CommunityIndex) -> Self {
        IndexShadow {
            data: PrecomputeShadow::new(&index.precomputed),
            nodes: TableShadow::new(&index.node_aggregates),
        }
    }

    /// Marks vertices whose per-vertex rows (table + seed bounds) changed.
    pub(crate) fn mark_vertices(&mut self, vertices: &[u32]) {
        self.data.mark_vertices(vertices);
    }

    /// Marks edge ids whose support slots changed.
    pub(crate) fn mark_edges(&mut self, edges: &[u32]) {
        self.data.mark_edges(edges);
    }

    /// Invalidates the support shadow after an edge-id renumbering.
    pub(crate) fn mark_all_edges(&mut self) {
        self.data.mark_all_edges();
    }

    /// Marks index nodes whose aggregate rows were patched.
    pub(crate) fn mark_nodes(&mut self, nodes: &[u32]) {
        self.nodes.mark_entities(nodes);
    }

    /// Invalidates everything (a repack rebuilt the tree wholesale).
    pub(crate) fn mark_all(&mut self) {
        self.data.mark_all();
        self.nodes.mark_all();
    }

    /// Syncs both double-buffer slots with `index` so the first publishes
    /// after construction replay dirty rows instead of full-copying — the
    /// one-time O(n) sync runs at maintainer construction, not on the
    /// steady-state batch path.
    pub(crate) fn prime(&mut self, index: &CommunityIndex) {
        self.data.prime(&index.precomputed);
        self.nodes.prime(&index.node_aggregates);
    }

    /// Builds a structurally-shared snapshot copy of `index`: untouched rows
    /// alias the shadow buffers, dirty rows are replayed, tree arrays are
    /// shared.
    pub(crate) fn publish(&mut self, index: &CommunityIndex) -> CommunityIndex {
        CommunityIndex {
            precomputed: self.data.publish(&index.precomputed),
            item_start: index.item_start.clone(),
            item_pool: index.item_pool.clone(),
            leaf_mask: index.leaf_mask.clone(),
            node_aggregates: self.nodes.publish(&index.node_aggregates),
            root: index.root,
            num_graph_vertices: index.num_graph_vertices,
            fanout: index.fanout,
            leaf_capacity: index.leaf_capacity,
        }
    }
}

/// Builder for [`CommunityIndex`].
#[derive(Debug, Clone)]
pub struct IndexBuilder {
    config: PrecomputeConfig,
    fanout: usize,
    leaf_capacity: usize,
}

impl IndexBuilder {
    /// Creates a builder with the given offline configuration and default
    /// fan-out / leaf capacity.
    pub fn new(config: PrecomputeConfig) -> Self {
        IndexBuilder {
            config,
            fanout: DEFAULT_FANOUT,
            leaf_capacity: DEFAULT_LEAF_CAPACITY,
        }
    }

    /// Overrides the fan-out `γ` of non-leaf nodes.
    ///
    /// # Panics
    /// Panics if `fanout < 2`.
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        assert!(fanout >= 2, "fanout must be at least 2");
        self.fanout = fanout;
        self
    }

    /// Overrides the number of vertices per leaf.
    ///
    /// # Panics
    /// Panics if `leaf_capacity` is zero.
    pub fn with_leaf_capacity(mut self, leaf_capacity: usize) -> Self {
        assert!(leaf_capacity >= 1, "leaf capacity must be at least 1");
        self.leaf_capacity = leaf_capacity;
        self
    }

    /// Runs the offline pre-computation for `g` and builds the index over it.
    pub fn build(&self, g: &SocialNetwork) -> CommunityIndex {
        let data = PrecomputedData::compute(g, self.config.clone());
        self.build_from_precomputed(g, data)
    }

    /// Builds the index over already pre-computed data (useful when the same
    /// data backs several index configurations, e.g. the fan-out ablation).
    pub fn build_from_precomputed(
        &self,
        g: &SocialNetwork,
        data: PrecomputedData,
    ) -> CommunityIndex {
        let n = g.num_vertices();
        // Sort vertices by the average of their support bound and largest
        // score bound at r_max, so vertices with similar bounds share leaves
        // and aggregated bounds stay discriminative (Section V-B).
        let mut order: Vec<VertexId> = g.vertices().collect();
        if data.config.r_max >= 1 && !data.config.thresholds.is_empty() {
            let key = |v: &VertexId| {
                let agg = data.aggregate(*v, data.config.r_max);
                let score = agg.score_upper_bounds.first().copied().unwrap_or(0.0);
                agg.support_upper_bound as f64 / 2.0 + score / 2.0
            };
            order.sort_by(|a, b| {
                key(b)
                    .partial_cmp(&key(a))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        }

        // Grow the flat arrays node by node: each new node appends its items
        // (leaf vertices or child ids) to the shared pool.
        let mut item_start: Vec<u32> = vec![0];
        let mut item_pool: Vec<u32> = Vec::new();
        let mut is_leaf: Vec<bool> = Vec::new();
        let mut aggregates: Vec<NodeAggregate> = Vec::new();
        let mut push_node = |items: &[u32], leaf: bool| -> usize {
            item_pool.extend_from_slice(items);
            item_start.push(item_pool.len() as u32);
            is_leaf.push(leaf);
            is_leaf.len() - 1
        };

        // Leaf level.
        let mut level: Vec<usize> = Vec::new();
        if n == 0 {
            aggregates.push(NodeAggregate::empty(&data.config));
            level.push(push_node(&[], true));
        } else {
            for chunk in order.chunks(self.leaf_capacity) {
                let mut agg = NodeAggregate::empty(&data.config);
                for &v in chunk {
                    agg.merge_vertex(&data, v);
                }
                let items: Vec<u32> = chunk.iter().map(|v| v.0).collect();
                aggregates.push(agg);
                level.push(push_node(&items, true));
            }
        }

        // Internal levels until a single root remains.
        while level.len() > 1 {
            let mut next_level = Vec::new();
            for group in level.chunks(self.fanout) {
                let mut agg = NodeAggregate::empty(&data.config);
                for &child in group {
                    agg.merge_node(&aggregates[child]);
                }
                let items: Vec<u32> = group.iter().map(|c| *c as u32).collect();
                aggregates.push(agg);
                next_level.push(push_node(&items, false));
            }
            level = next_level;
        }
        let root = level[0];

        // Flatten the per-node accumulators into the SoA table.
        let nodes = is_leaf.len();
        let mut node_aggregates = AggregateTable::new(
            nodes,
            data.config.r_max,
            data.config.signature_bits,
            data.config.thresholds.len(),
        );
        for (i, agg) in aggregates.iter().enumerate() {
            node_aggregates.set_entity(i, &agg.per_radius);
        }
        let mut leaf_mask = vec![0u64; nodes.div_ceil(64)];
        for (i, leaf) in is_leaf.iter().enumerate() {
            if *leaf {
                leaf_mask[i / 64] |= 1u64 << (i % 64);
            }
        }

        CommunityIndex {
            precomputed: data,
            item_start: item_start.into(),
            item_pool: item_pool.into(),
            leaf_mask: leaf_mask.into(),
            node_aggregates,
            root,
            num_graph_vertices: n,
            fanout: self.fanout,
            leaf_capacity: self.leaf_capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icde_graph::generators::{DatasetKind, DatasetSpec};
    use icde_graph::BitVector;
    use icde_graph::KeywordSet;

    fn graph() -> SocialNetwork {
        DatasetSpec::new(DatasetKind::Uniform, 200, 11)
            .with_keyword_domain(20)
            .generate()
    }

    fn build(g: &SocialNetwork) -> CommunityIndex {
        IndexBuilder::new(PrecomputeConfig {
            parallel: false,
            ..Default::default()
        })
        .with_fanout(4)
        .with_leaf_capacity(8)
        .build(g)
    }

    #[test]
    fn index_covers_every_vertex_exactly_once() {
        let g = graph();
        let index = build(&g);
        let mut leaves = index.all_leaf_vertices();
        leaves.sort_unstable();
        let expected: Vec<VertexId> = g.vertices().collect();
        assert_eq!(leaves, expected);
        assert_eq!(index.num_graph_vertices(), g.num_vertices());
    }

    #[test]
    fn tree_shape_respects_fanout_and_capacity() {
        let g = graph();
        let index = build(&g);
        assert!(index.height() >= 2);
        for id in 0..index.node_count() {
            match index.node(id) {
                NodeRef::Leaf { vertices } => assert!(vertices.len() <= 8),
                NodeRef::Internal { children } => {
                    assert!(children.len() <= 4);
                    assert!(!children.is_empty());
                }
            }
        }
    }

    #[test]
    fn aggregates_dominate_children() {
        let g = graph();
        let index = build(&g);
        for id in 0..index.node_count() {
            if let NodeRef::Internal { children } = index.node(id) {
                for &child in children {
                    for r in 1..=index.r_max() {
                        let parent = index.aggregate(id, r);
                        let child_agg = index.aggregate(child as usize, r);
                        assert!(parent.support_upper_bound >= child_agg.support_upper_bound);
                        for z in 0..parent.score_upper_bounds.len() {
                            assert!(
                                parent.score_upper_bounds[z] >= child_agg.score_upper_bounds[z]
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn leaf_aggregates_dominate_member_vertices() {
        let g = graph();
        let index = build(&g);
        for id in 0..index.node_count() {
            if let NodeRef::Leaf { vertices } = index.node(id) {
                for &v in vertices {
                    for r in 1..=index.r_max() {
                        let node_agg = index.aggregate(id, r);
                        let vert_agg = index.precomputed.aggregate(v, r);
                        assert!(node_agg.support_upper_bound >= vert_agg.support_upper_bound);
                        for z in 0..node_agg.score_upper_bounds.len() {
                            assert!(
                                node_agg.score_upper_bounds[z] >= vert_agg.score_upper_bounds[z]
                            );
                        }
                        // every keyword visible at the vertex is visible at the node
                        for u in [v] {
                            for kw in g.keyword_set(u).iter() {
                                if vert_agg.keyword_signature.maybe_contains(kw) {
                                    assert!(node_agg.keyword_signature.maybe_contains(kw));
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn score_bound_uses_threshold_brackets() {
        let g = graph();
        let index = build(&g);
        let root = index.root();
        let low = index.node_score_bound(root, 2, 0.1);
        let high = index.node_score_bound(root, 2, 0.3);
        assert!(low >= high, "lower thresholds give larger bounds");
        assert!(index.node_score_bound(root, 2, 0.01).is_infinite());
    }

    #[test]
    fn empty_graph_builds_a_single_leaf() {
        let g = SocialNetwork::new();
        let index = IndexBuilder::new(PrecomputeConfig {
            parallel: false,
            ..Default::default()
        })
        .build(&g);
        assert_eq!(index.node_count(), 1);
        assert_eq!(index.height(), 1);
        assert!(index.all_leaf_vertices().is_empty());
        assert!(index.is_leaf(index.root()));
    }

    #[test]
    fn builder_validation() {
        let b = IndexBuilder::new(PrecomputeConfig::default())
            .with_fanout(2)
            .with_leaf_capacity(1);
        assert_eq!(b.fanout, 2);
        assert_eq!(b.leaf_capacity, 1);
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn tiny_fanout_panics() {
        let _ = IndexBuilder::new(PrecomputeConfig::default()).with_fanout(1);
    }

    #[test]
    fn single_vertex_graph_index() {
        let mut b = icde_graph::GraphBuilder::new();
        b.add_vertex(KeywordSet::from_ids([1]));
        let g = b.build().unwrap();
        let index = IndexBuilder::new(PrecomputeConfig {
            parallel: false,
            ..Default::default()
        })
        .build(&g);
        assert_eq!(index.all_leaf_vertices().len(), 1);
        let agg = index.aggregate(index.root(), 1);
        let q = BitVector::from_keywords(&KeywordSet::from_ids([1]), index.signature_bits());
        assert!(agg.keyword_signature.intersects(&q));
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let g = graph();
        let a = build(&g);
        let b = build(&g);
        assert_eq!(a.content_fingerprint(), b.content_fingerprint());
        let other = DatasetSpec::new(DatasetKind::Uniform, 200, 12)
            .with_keyword_domain(20)
            .generate();
        let c = build(&other);
        assert_ne!(a.content_fingerprint(), c.content_fingerprint());
    }

    #[test]
    fn flat_parts_reassemble_and_reject_corruption() {
        let g = graph();
        let index = build(&g);
        let (item_start, item_pool, leaf_mask) = index.tree_parts();
        let rebuilt = CommunityIndex::from_flat_parts(
            index.precomputed.clone(),
            item_start.to_vec(),
            item_pool.to_vec(),
            leaf_mask.to_vec(),
            index.node_aggregates().clone(),
            index.root(),
            index.num_graph_vertices(),
            index.fanout(),
            index.leaf_capacity(),
        )
        .unwrap();
        assert_eq!(rebuilt.content_fingerprint(), index.content_fingerprint());
        // out-of-range root
        assert!(CommunityIndex::from_flat_parts(
            index.precomputed.clone(),
            item_start.to_vec(),
            item_pool.to_vec(),
            leaf_mask.to_vec(),
            index.node_aggregates().clone(),
            index.node_count() + 7,
            index.num_graph_vertices(),
            index.fanout(),
            index.leaf_capacity(),
        )
        .is_err());
        // corrupt pool partition
        let mut bad_start = item_start.to_vec();
        bad_start[1] = u32::MAX;
        assert!(CommunityIndex::from_flat_parts(
            index.precomputed.clone(),
            bad_start,
            item_pool.to_vec(),
            leaf_mask.to_vec(),
            index.node_aggregates().clone(),
            index.root(),
            index.num_graph_vertices(),
            index.fanout(),
            index.leaf_capacity(),
        )
        .is_err());
    }
}
