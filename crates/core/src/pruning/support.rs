//! Support pruning (Lemma 2, community level; Lemma 6, index level).
//!
//! A seed community must be a k-truss, i.e. every edge must lie in at least
//! `k − 2` triangles of the community. Since a community is always a subgraph
//! of the r-hop region it is extracted from (and of the data graph), the edge
//! support inside any supergraph is an **upper bound** `ub_sup(e)` of the
//! support inside the community.
//!
//! *Lemma 2*: a candidate region can be pruned if the *maximum* support upper
//! bound over its edges is below `k − 2` — then no edge of any subgraph can
//! reach the required support, so no k-truss with at least one edge exists.
//!
//! *Lemma 6*: an index entry can be pruned if the maximum of those per-region
//! bounds over every vertex below the entry is still below the requirement.
//!
//! Note on constants: the paper states Lemma 6 with `N_i.ub_sup_r < k`; we
//! use the tight form `< k − 2` consistently with the k-truss definition used
//! everywhere else (`sup(e) ≥ k − 2`). The tight form prunes strictly less
//! aggressively than a `< k` test would only for regions whose best support
//! equals `k − 2` or `k − 1`, and those regions genuinely can contain valid
//! communities, so the `< k` form would not be safe.

/// Returns `true` (prune) when the best available support upper bound cannot
/// satisfy the k-truss requirement `sup(e) ≥ k − 2`.
///
/// Works for both community-level bounds (`ub_sup_r` of a single r-hop
/// region, Lemma 2) and index-level bounds (the maximum over an entry's
/// children, Lemma 6).
#[inline]
pub fn can_prune_by_support(max_support_upper_bound: u32, k: u32) -> bool {
    max_support_upper_bound < k.saturating_sub(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icde_graph::{VertexId, VertexSubset};
    use icde_truss::support::max_edge_support;

    #[test]
    fn prunes_only_below_requirement() {
        // k = 4 requires support >= 2
        assert!(can_prune_by_support(0, 4));
        assert!(can_prune_by_support(1, 4));
        assert!(!can_prune_by_support(2, 4));
        assert!(!can_prune_by_support(5, 4));
        // k = 2 and k = 3 with bound 0/1
        assert!(!can_prune_by_support(0, 2));
        assert!(can_prune_by_support(0, 3));
        assert!(!can_prune_by_support(1, 3));
    }

    #[test]
    fn never_false_dismisses_a_real_truss() {
        // Build a K5; its max edge support inside any region containing it is
        // 3, so the rule must keep every k <= 5.
        let mut b = icde_graph::GraphBuilder::with_vertices(5);
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                b.add_symmetric_edge(VertexId(i), VertexId(j), 0.5);
            }
        }
        let g = b.build().unwrap();
        let region = VertexSubset::from_iter(g.vertices());
        let ub = max_edge_support(&g, &region);
        assert_eq!(ub, 3);
        for k in 2..=5 {
            assert!(!can_prune_by_support(ub, k), "k={k}");
        }
        assert!(can_prune_by_support(ub, 6));
    }

    #[test]
    fn saturating_behaviour_for_tiny_k() {
        assert!(!can_prune_by_support(0, 0));
        assert!(!can_prune_by_support(0, 1));
    }
}
