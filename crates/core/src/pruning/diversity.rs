//! Diversity-score pruning for the DTopL-ICDE greedy refinement (Lemma 9).
//!
//! During the greedy selection, each round picks the candidate with the
//! largest marginal diversity gain `ΔD_g(S)` with respect to the *current*
//! answer set `S`. Recomputing every candidate's gain each round costs
//! `O(nL²)` evaluations; Lemma 9 avoids most of them by exploiting
//! submodularity: a gain computed against an *older* (smaller) answer set
//! `S' ⊆ S` is an **upper bound** of the gain against `S`. Therefore a
//! candidate whose stale upper bound is already below the best freshly
//! computed gain of this round can be skipped without re-evaluation.
//!
//! The lazy-greedy loop in [`crate::dtopl`] stores stale gains in a max-heap;
//! this predicate is the heap-entry test.

/// Returns `true` (prune / skip re-evaluation) when a candidate's stale gain
/// upper bound cannot beat the best gain already confirmed for this round.
#[inline]
pub fn can_prune_by_diversity_gain(stale_gain_upper_bound: f64, best_confirmed_gain: f64) -> bool {
    stale_gain_upper_bound < best_confirmed_gain
}

#[cfg(test)]
mod tests {
    use super::*;
    use icde_graph::{VertexId, VertexSubset};
    use icde_influence::{DiversityState, InfluenceConfig, InfluenceEvaluator};

    #[test]
    fn basic_threshold_behaviour() {
        assert!(can_prune_by_diversity_gain(1.0, 2.0));
        assert!(!can_prune_by_diversity_gain(2.0, 2.0));
        assert!(!can_prune_by_diversity_gain(3.0, 2.0));
    }

    #[test]
    fn stale_gains_really_are_upper_bounds() {
        // Submodularity check on real influenced communities: the gain of a
        // candidate w.r.t. a smaller answer set is >= its gain w.r.t. a
        // larger one, so treating stale gains as upper bounds is safe.
        let mut builder = icde_graph::GraphBuilder::with_vertices(10);
        // three overlapping stars
        for n in [1u32, 2, 3, 4] {
            builder.add_symmetric_edge(VertexId(0), VertexId(n), 0.8);
        }
        for n in [3u32, 4, 5, 6] {
            builder.add_symmetric_edge(VertexId(9), VertexId(n), 0.8);
        }
        for n in [5u32, 6, 7].iter().copied() {
            builder.add_symmetric_edge(VertexId(8), VertexId(n), 0.8);
        }
        let g = builder.build().unwrap();
        let eval = InfluenceEvaluator::new(&g, InfluenceConfig::new(0.5));
        let a = eval.influenced_community(&VertexSubset::from_iter([VertexId(0)]));
        let b = eval.influenced_community(&VertexSubset::from_iter([VertexId(9)]));
        let c = eval.influenced_community(&VertexSubset::from_iter([VertexId(8)]));

        let mut small = DiversityState::new();
        small.add(&a);
        let stale_gain = small.gain(&c);

        let mut large = DiversityState::new();
        large.add(&a);
        large.add(&b);
        let fresh_gain = large.gain(&c);

        assert!(stale_gain + 1e-12 >= fresh_gain);
        // and the pruning predicate is consistent with that ordering
        if can_prune_by_diversity_gain(stale_gain, fresh_gain) {
            panic!("a stale upper bound can never be below the fresh gain of the same candidate");
        }
    }
}
