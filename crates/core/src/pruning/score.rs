//! Influential-score pruning (Lemma 4, community level; Lemma 7, index
//! level).
//!
//! Once `L` candidate seed communities have been collected, let `σ_L` be the
//! smallest influential score among them. Any candidate whose score *upper
//! bound* does not exceed `σ_L` can never displace a current answer, so it
//! can be pruned without refinement (Lemma 4). The same argument applies to a
//! whole index entry whose aggregated upper bound `N_i.σ_z` does not exceed
//! `σ_L` (Lemma 7), and to the early-termination test of Algorithm 3: the
//! traversal heap is ordered by upper bound, so once the best remaining bound
//! fails the test every remaining entry fails it too.
//!
//! Upper bounds come from the offline pre-computation: `σ_z(hop(v_i, r))`,
//! the score of the *whole* r-hop region evaluated at a pre-selected
//! threshold `θ_z ≤ θ`, over-estimates the score of every seed community
//! inside the region at the online threshold `θ` (larger seed ⇒ larger score;
//! smaller threshold ⇒ larger score).

/// Returns `true` (prune) when a candidate's score upper bound cannot beat
/// the current `L`-th best score.
///
/// `sigma_l` is `-∞` until `L` candidates have been found, in which case
/// nothing is pruned — matching the initialisation of Algorithm 3 (line 4).
#[inline]
pub fn can_prune_by_score(score_upper_bound: f64, sigma_l: f64) -> bool {
    score_upper_bound <= sigma_l
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prunes_bounds_at_or_below_sigma_l() {
        assert!(can_prune_by_score(3.0, 3.0));
        assert!(can_prune_by_score(2.9, 3.0));
        assert!(!can_prune_by_score(3.1, 3.0));
    }

    #[test]
    fn nothing_pruned_before_l_answers_exist() {
        let sigma_l = f64::NEG_INFINITY;
        assert!(!can_prune_by_score(0.0, sigma_l));
        assert!(!can_prune_by_score(-5.0, sigma_l));
    }

    #[test]
    fn infinity_bound_is_never_pruned() {
        assert!(!can_prune_by_score(f64::INFINITY, 1e12));
    }
}
