//! Keyword pruning (Lemma 1, community level; Lemma 5, index level).
//!
//! *Lemma 1*: a candidate subgraph can be pruned if it contains a vertex
//! whose keyword set does not intersect the query keyword set `Q` — that
//! vertex could never be a member of a seed community, so the subgraph as a
//! whole is not a valid answer. In this implementation the vertex-level
//! filter is applied during seed extraction (see [`crate::seed`]); the
//! predicate here is used when deciding whether an entire candidate *region*
//! can produce any answer at all.
//!
//! *Lemma 5*: an index entry `N_i` can be pruned if its aggregated keyword
//! signature shares no bit with the query signature,
//! `N_i.BV_r ∧ Q.BV = 0` — then no vertex below the entry carries any query
//! keyword, so no seed community can be formed under it. Because the
//! signature is an OR-fold of hashed keyword sets, a zero intersection proves
//! emptiness (no false dismissals); a non-zero intersection may still be a
//! hash collision, which is resolved later by exact refinement.

use icde_graph::{BitVector, KeywordSet, SignatureRef, SocialNetwork, VertexSubset};

/// Index-level keyword pruning (Lemma 5): returns `true` (prune) when the
/// aggregated signature of the entry cannot intersect the query signature.
/// Takes the entry side as a borrowed [`SignatureRef`] so index traversal
/// reads straight out of the flattened aggregate tables; owned signatures
/// pass [`BitVector::as_sig`].
#[inline]
pub fn can_prune_by_keyword_signature(
    entry_signature: SignatureRef<'_>,
    query_signature: &BitVector,
) -> bool {
    !entry_signature.intersects(query_signature)
}

/// Community-level keyword check (Lemma 1): returns `true` when `subgraph`
/// contains at least one vertex without any query keyword. Such a subgraph
/// cannot itself be a seed community (though a *subset* of it still can — the
/// caller decides whether it wants the strict Lemma 1 test or the weaker
/// "no qualified vertex at all" region test).
pub fn subgraph_violates_keyword_constraint(
    g: &SocialNetwork,
    subgraph: &VertexSubset,
    query: &KeywordSet,
) -> bool {
    subgraph.iter().any(|v| !g.keyword_set(v).intersects(query))
}

/// Region-level keyword check: returns `true` when *no* vertex of the region
/// carries a query keyword, i.e. the region cannot contain any member of any
/// seed community. This is the exact counterpart of the signature test of
/// Lemma 5 and is what the leaf level of Algorithm 3 uses.
pub fn region_has_no_query_keyword(
    g: &SocialNetwork,
    region: &VertexSubset,
    query: &KeywordSet,
) -> bool {
    region.iter().all(|v| !g.keyword_set(v).intersects(query))
}

#[cfg(test)]
mod tests {
    use super::*;
    use icde_graph::{Keyword, VertexId};

    fn graph() -> SocialNetwork {
        let mut b = icde_graph::GraphBuilder::new();
        b.add_vertex(KeywordSet::from_ids([1, 2]));
        b.add_vertex(KeywordSet::from_ids([3]));
        b.add_vertex(KeywordSet::from_ids([9]));
        b.add_symmetric_edge(VertexId(0), VertexId(1), 0.5);
        b.add_symmetric_edge(VertexId(1), VertexId(2), 0.5);
        b.build().unwrap()
    }

    #[test]
    fn signature_pruning_requires_empty_intersection() {
        let entry = BitVector::from_keywords(&KeywordSet::from_ids([1, 2, 3]), 128);
        let query_hit = BitVector::from_keywords(&KeywordSet::from_ids([3, 7]), 128);
        let query_miss = BitVector::from_keywords(&KeywordSet::from_ids([40, 41]), 128);
        assert!(!can_prune_by_keyword_signature(entry.as_sig(), &query_hit));
        assert!(can_prune_by_keyword_signature(entry.as_sig(), &query_miss));
    }

    #[test]
    fn signature_pruning_never_false_dismisses() {
        // If any vertex under the entry shares a keyword with the query, the
        // OR-fold signature must intersect the query signature.
        let sets = [
            KeywordSet::from_ids([1, 5]),
            KeywordSet::from_ids([8]),
            KeywordSet::from_ids([12, 13]),
        ];
        let mut agg = BitVector::zeros(64);
        for s in &sets {
            agg.or_assign(&BitVector::from_keywords(s, 64));
        }
        for s in &sets {
            for kw in s.iter() {
                let q = KeywordSet::from_iter([kw, Keyword(500)]);
                let qbv = BitVector::from_keywords(&q, 64);
                assert!(!can_prune_by_keyword_signature(agg.as_sig(), &qbv));
            }
        }
    }

    #[test]
    fn subgraph_violation_detects_unqualified_member() {
        let g = graph();
        let q = KeywordSet::from_ids([1, 3]);
        let all = VertexSubset::from_iter([0, 1, 2].map(VertexId));
        assert!(subgraph_violates_keyword_constraint(&g, &all, &q));
        let qualified = VertexSubset::from_iter([0, 1].map(VertexId));
        assert!(!subgraph_violates_keyword_constraint(&g, &qualified, &q));
        assert!(!subgraph_violates_keyword_constraint(
            &g,
            &VertexSubset::new(),
            &q
        ));
    }

    #[test]
    fn region_level_check_requires_every_vertex_to_miss() {
        let g = graph();
        let q = KeywordSet::from_ids([9]);
        let first_two = VertexSubset::from_iter([0, 1].map(VertexId));
        assert!(region_has_no_query_keyword(&g, &first_two, &q));
        let all = VertexSubset::from_iter([0, 1, 2].map(VertexId));
        assert!(!region_has_no_query_keyword(&g, &all, &q));
    }
}
