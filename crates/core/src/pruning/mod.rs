//! Pruning rules (Sections IV, VI-A and VII-B).
//!
//! Every rule is a *safe* filter: it may keep a candidate that will later be
//! rejected by exact refinement (false positives are allowed), but it never
//! discards a candidate that could belong to the answer set (no false
//! dismissals). The module is split by rule so each lemma's statement, proof
//! sketch and tests live together:
//!
//! | Module | Community level | Index level |
//! |--------|-----------------|-------------|
//! | [`keyword`]   | Lemma 1 | Lemma 5 |
//! | [`support`]   | Lemma 2 | Lemma 6 |
//! | [`radius`]    | Lemma 3 | (enables the per-radius pre-computation) |
//! | [`score`]     | Lemma 4 | Lemma 7 |
//! | [`diversity`] | Lemma 9 (DTopL-ICDE greedy refinement) | — |

pub mod diversity;
pub mod keyword;
pub mod radius;
pub mod score;
pub mod support;

pub use diversity::can_prune_by_diversity_gain;
pub use keyword::{can_prune_by_keyword_signature, subgraph_violates_keyword_constraint};
pub use radius::can_prune_by_radius;
pub use score::can_prune_by_score;
pub use support::can_prune_by_support;
