//! Radius pruning (Lemma 3).
//!
//! Every member of a seed community centred at `v_i` must lie within `r` hops
//! of the centre (measured inside the community). Therefore any vertex whose
//! hop distance from the centre already exceeds `r` in the *data graph* can
//! never belong to the community — distances inside a subgraph are never
//! shorter than in the full graph.
//!
//! The rule has two uses:
//!
//! * online, a candidate subgraph containing a vertex farther than `r` hops
//!   from its centre can be discarded (the form stated in Lemma 3);
//! * offline, it justifies pre-computing aggregates only over the r-hop
//!   regions `hop(v_i, r)` for `r ∈ [1, r_max]` (Algorithm 2): anything
//!   outside the ball is irrelevant for a query with that radius.

use icde_graph::traversal::hop_distances_within_subset_with;
use icde_graph::workspace::with_thread_workspace;
use icde_graph::{SocialNetwork, VertexId, VertexSubset};

/// Community-level radius pruning (Lemma 3): returns `true` (prune) when some
/// member of `subgraph` is farther than `radius` hops from `center`, with
/// distances measured inside the subgraph (unreachable members count as
/// infinitely far).
pub fn can_prune_by_radius(
    g: &SocialNetwork,
    subgraph: &VertexSubset,
    center: VertexId,
    radius: u32,
) -> bool {
    if subgraph.is_empty() {
        return false;
    }
    if !subgraph.contains(center) {
        return true;
    }
    let distances =
        with_thread_workspace(|ws| hop_distances_within_subset_with(ws, g, subgraph, center));
    distances.distances.len() != subgraph.len() || distances.max_distance() > radius
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path 0-1-2-3-4.
    fn path() -> SocialNetwork {
        let mut b = icde_graph::GraphBuilder::with_vertices(5);
        for i in 0..4u32 {
            b.add_symmetric_edge(VertexId(i), VertexId(i + 1), 0.5);
        }
        b.build().unwrap()
    }

    #[test]
    fn prunes_subgraphs_with_far_members() {
        let g = path();
        let all = VertexSubset::from_iter(g.vertices());
        assert!(can_prune_by_radius(&g, &all, VertexId(0), 3));
        assert!(!can_prune_by_radius(&g, &all, VertexId(0), 4));
        assert!(!can_prune_by_radius(&g, &all, VertexId(2), 2));
    }

    #[test]
    fn distances_are_measured_inside_the_subgraph() {
        let g = path();
        // {0, 1, 3, 4}: vertex 3 unreachable from 0 without vertex 2
        let gapped = VertexSubset::from_iter([0, 1, 3, 4].map(VertexId));
        assert!(can_prune_by_radius(&g, &gapped, VertexId(0), 10));
    }

    #[test]
    fn center_must_belong_to_the_subgraph() {
        let g = path();
        let tail = VertexSubset::from_iter([3, 4].map(VertexId));
        assert!(can_prune_by_radius(&g, &tail, VertexId(0), 5));
        assert!(!can_prune_by_radius(&g, &tail, VertexId(3), 1));
    }

    #[test]
    fn empty_subgraph_is_never_pruned() {
        let g = path();
        assert!(!can_prune_by_radius(
            &g,
            &VertexSubset::new(),
            VertexId(0),
            1
        ));
    }
}
