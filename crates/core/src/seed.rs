//! Seed communities (Definition 2): extraction and validation.
//!
//! A seed community `g` centred at `v_q` with parameters `(k, r, Q)` is a
//! connected subgraph such that
//!
//! 1. `v_q ∈ V(g)`,
//! 2. every member is within `r` hops of `v_q` *inside* `g`,
//! 3. `g` is a k-truss (every edge of `g` lies in ≥ `k − 2` triangles of `g`),
//! 4. every member's keyword set intersects the query keyword set `Q`.
//!
//! [`extract_seed_community`] computes the (unique) maximal such subgraph for
//! one centre by alternating three monotone reductions until a fixpoint:
//! keyword filtering, k-truss peeling, and radius trimming. Each step only
//! removes vertices/edges that can never belong to any valid seed community
//! around this centre, so the fixpoint is the maximal valid community (or
//! nothing if the centre itself is eliminated).

use icde_graph::traversal::{
    hop_distances_within_subset, hop_distances_within_subset_with, hop_subgraph_with,
};
use icde_graph::workspace::{with_thread_workspace, TraversalWorkspace};
use icde_graph::{KeywordSet, SocialNetwork, VertexId, VertexSubset};
use icde_truss::ktruss::maximal_ktruss;
use serde::{Deserialize, Serialize};

/// A fully-refined seed community together with its influential score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeedCommunity {
    /// The centre vertex `v_q`.
    pub center: VertexId,
    /// Members of the community (centre included).
    pub vertices: VertexSubset,
    /// Exact influential score `σ(g)` under the query threshold.
    pub influential_score: f64,
    /// Size of the influenced community `g^Inf` (members + influenced users).
    pub influenced_size: usize,
}

impl SeedCommunity {
    /// Number of members of the seed community.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Returns `true` if the community has no members (never produced by the
    /// processors; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Number of influenced users outside the seed community.
    pub fn influenced_only(&self) -> usize {
        self.influenced_size.saturating_sub(self.vertices.len())
    }
}

/// Extracts the maximal seed community centred at `center` for parameters
/// `(k, r, Q)`, or `None` if no valid community containing the centre exists.
pub fn extract_seed_community(
    g: &SocialNetwork,
    center: VertexId,
    support: u32,
    radius: u32,
    query_keywords: &KeywordSet,
) -> Option<VertexSubset> {
    // The refinement loop runs one BFS per fixpoint round; borrow the
    // thread workspace once instead of once per traversal.
    with_thread_workspace(|ws| {
        extract_seed_community_with(ws, g, center, support, radius, query_keywords)
    })
}

/// [`extract_seed_community`] against a caller-owned workspace, for callers
/// (the progressive kernel, the offline engine) that refine many centres in a
/// row and want zero per-candidate workspace churn.
pub fn extract_seed_community_with(
    ws: &mut TraversalWorkspace,
    g: &SocialNetwork,
    center: VertexId,
    support: u32,
    radius: u32,
    query_keywords: &KeywordSet,
) -> Option<VertexSubset> {
    extract_seed_community_in(ws, g, center, support, radius, Some(query_keywords))
}

/// The keyword-*unconstrained* maximal seed community `X_all(center; k, r)`:
/// the fixpoint of truss peeling and radius trimming over the full r-hop
/// ball, with no keyword filter.
///
/// Every keyword-constrained seed community for the same `(k, r)` is a
/// subgraph of this set (the extraction fixpoint is monotone in its starting
/// set), so `σ_θ(X_all)` upper-bounds `σ_θ` of any query's community at this
/// centre. The offline engine stores exactly that bound per `(v, r, θ_z)`.
pub fn extract_unconstrained_seed_community_with(
    ws: &mut TraversalWorkspace,
    g: &SocialNetwork,
    center: VertexId,
    support: u32,
    radius: u32,
) -> Option<VertexSubset> {
    extract_seed_community_in(ws, g, center, support, radius, None)
}

/// Shared extraction fixpoint; `query_keywords: None` skips the keyword
/// filter entirely (the `X_all` variant used by the offline seed bounds).
fn extract_seed_community_in(
    ws: &mut TraversalWorkspace,
    g: &SocialNetwork,
    center: VertexId,
    support: u32,
    radius: u32,
    query_keywords: Option<&KeywordSet>,
) -> Option<VertexSubset> {
    if !g.contains_vertex(center) {
        return None;
    }
    // The centre itself must satisfy the keyword constraint.
    if let Some(q) = query_keywords {
        if !g.keyword_set(center).intersects(q) {
            return None;
        }
    }

    // Start from the r-hop ball and keep only keyword-qualified vertices.
    let ball = hop_subgraph_with(ws, g, center, radius);
    let mut candidate = match query_keywords {
        Some(q) => VertexSubset::from_iter(ball.iter().filter(|v| g.keyword_set(*v).intersects(q))),
        None => ball,
    };

    loop {
        if candidate.len() <= 1 {
            return None;
        }
        // k-truss peel restricted to the candidate set; keep the connected
        // component containing the centre.
        let peel = maximal_ktruss(g, &candidate, support);
        let component = peel.component_containing(center)?;

        // Radius constraint *inside* the community: trim vertices farther
        // than r hops from the centre (or unreachable within the component).
        let distances = hop_distances_within_subset_with(ws, g, &component, center);
        let within: VertexSubset = distances
            .distances
            .iter()
            .filter(|(_, d)| *d <= radius)
            .map(|(v, _)| *v)
            .collect();

        if within.len() == component.len() && within == candidate {
            return Some(within);
        }
        if within.len() <= 1 {
            return None;
        }
        // Some vertices were trimmed; re-run the peel on the smaller set.
        candidate = within;
    }
}

/// Checks whether `subset` is a valid seed community for `(center, k, r, Q)`
/// per Definition 2 (connectivity, centre membership, radius, truss and
/// keyword constraints).
///
/// The k-truss constraint uses the edge-subgraph semantics standard in truss
/// community search: the maximal k-truss of the subgraph induced by `subset`
/// must span every member and connect them all to the centre through truss
/// edges. (Stray induced edges that do not reach the required support are not
/// part of the community's edge set; they do not invalidate it.)
pub fn is_valid_seed_community(
    g: &SocialNetwork,
    subset: &VertexSubset,
    center: VertexId,
    support: u32,
    radius: u32,
    query_keywords: &KeywordSet,
) -> bool {
    if subset.is_empty() || !subset.contains(center) {
        return false;
    }
    if !subset
        .iter()
        .all(|v| g.keyword_set(v).intersects(query_keywords))
    {
        return false;
    }
    if !subset.is_connected(g) {
        return false;
    }
    // radius constraint measured inside the subgraph
    let distances = hop_distances_within_subset(g, subset, center);
    if distances.distances.len() != subset.len() || distances.max_distance() > radius {
        return false;
    }
    // truss constraint: the k-truss of the induced subgraph must cover the
    // whole subset and keep it connected around the centre
    match maximal_ktruss(g, subset, support).component_containing(center) {
        Some(component) => component == *subset,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icde_graph::KeywordSet;

    /// Graph used across the seed tests:
    /// * K4 on {0,1,2,3} — all tagged with keyword 1,
    /// * vertex 4 attached to 0,1,2 (forming a K5 minus edge 3-4) — keyword 2,
    /// * a far triangle {5,6,7} tagged keyword 1, connected to 3 by one edge.
    fn test_graph() -> SocialNetwork {
        let mut b = icde_graph::GraphBuilder::new();
        for kw in [1u32, 1, 1, 1, 2, 1, 1, 1] {
            b.add_vertex(KeywordSet::from_ids([kw]));
        }
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.add_symmetric_edge(VertexId(i), VertexId(j), 0.6);
            }
        }
        for n in [0u32, 1, 2] {
            b.add_symmetric_edge(VertexId(4), VertexId(n), 0.6);
        }
        b.add_symmetric_edge(VertexId(3), VertexId(5), 0.6);
        b.add_symmetric_edge(VertexId(5), VertexId(6), 0.6);
        b.add_symmetric_edge(VertexId(6), VertexId(7), 0.6);
        b.add_symmetric_edge(VertexId(5), VertexId(7), 0.6);
        b.build().unwrap()
    }

    #[test]
    fn extracts_clique_community() {
        let g = test_graph();
        let q = KeywordSet::from_ids([1]);
        let c = extract_seed_community(&g, VertexId(0), 4, 2, &q).unwrap();
        // vertex 4 fails the keyword constraint, so the community is the K4
        assert_eq!(c.as_slice(), &[0, 1, 2, 3].map(VertexId));
        assert!(is_valid_seed_community(&g, &c, VertexId(0), 4, 2, &q));
    }

    #[test]
    fn keyword_2_admits_vertex_4() {
        let g = test_graph();
        let q = KeywordSet::from_ids([1, 2]);
        let c = extract_seed_community(&g, VertexId(0), 4, 2, &q).unwrap();
        // with both keywords allowed, vertex 4 joins and the 4-truss covers
        // {0,1,2,3,4}
        assert_eq!(c.as_slice(), &[0, 1, 2, 3, 4].map(VertexId));
        assert!(is_valid_seed_community(&g, &c, VertexId(0), 4, 2, &q));
    }

    #[test]
    fn center_without_query_keyword_yields_none() {
        let g = test_graph();
        let q = KeywordSet::from_ids([1]);
        assert!(extract_seed_community(&g, VertexId(4), 3, 2, &q).is_none());
    }

    #[test]
    fn triangle_center_with_k3() {
        let g = test_graph();
        let q = KeywordSet::from_ids([1]);
        let c = extract_seed_community(&g, VertexId(6), 3, 1, &q).unwrap();
        assert_eq!(c.as_slice(), &[5, 6, 7].map(VertexId));
        // k = 4 is too demanding for the triangle
        assert!(extract_seed_community(&g, VertexId(6), 4, 2, &q).is_none());
    }

    #[test]
    fn radius_constraint_trims_far_vertices() {
        let g = test_graph();
        let q = KeywordSet::from_ids([1]);
        // radius 1 around vertex 5: the triangle is within one hop, the K4 is
        // not (vertex 3 is adjacent but its clique-mates are 2 hops away)
        let c = extract_seed_community(&g, VertexId(5), 3, 1, &q).unwrap();
        assert_eq!(c.as_slice(), &[5, 6, 7].map(VertexId));
    }

    #[test]
    fn unreachable_or_low_support_centers_yield_none() {
        // test_graph plus an isolated vertex 8
        let g = {
            let mut b = icde_graph::GraphBuilder::new();
            for kw in [1u32, 1, 1, 1, 2, 1, 1, 1, 1] {
                b.add_vertex(KeywordSet::from_ids([kw]));
            }
            for i in 0..4u32 {
                for j in (i + 1)..4 {
                    b.add_symmetric_edge(VertexId(i), VertexId(j), 0.6);
                }
            }
            for n in [0u32, 1, 2] {
                b.add_symmetric_edge(VertexId(4), VertexId(n), 0.6);
            }
            b.add_symmetric_edge(VertexId(3), VertexId(5), 0.6);
            b.add_symmetric_edge(VertexId(5), VertexId(6), 0.6);
            b.add_symmetric_edge(VertexId(6), VertexId(7), 0.6);
            b.add_symmetric_edge(VertexId(5), VertexId(7), 0.6);
            b.build().unwrap()
        };
        let isolated = VertexId(8);
        let q = KeywordSet::from_ids([1]);
        assert!(extract_seed_community(&g, isolated, 3, 2, &q).is_none());
        // support 5 exceeds anything in the graph (K4 edges only have 2
        // triangles each inside {0,1,2,3})
        assert!(extract_seed_community(&g, VertexId(0), 6, 2, &q).is_none());
    }

    #[test]
    fn validation_rejects_constraint_violations() {
        let g = test_graph();
        let q = KeywordSet::from_ids([1]);
        let k4 = VertexSubset::from_iter([0, 1, 2, 3].map(VertexId));
        assert!(is_valid_seed_community(&g, &k4, VertexId(0), 4, 2, &q));
        // centre outside
        assert!(!is_valid_seed_community(&g, &k4, VertexId(5), 4, 2, &q));
        // keyword violation: vertex 4 has keyword 2 only
        let with4 = VertexSubset::from_iter([0, 1, 2, 3, 4].map(VertexId));
        assert!(!is_valid_seed_community(&g, &with4, VertexId(0), 4, 2, &q));
        // disconnected set
        let disconnected = VertexSubset::from_iter([0, 1, 6].map(VertexId));
        assert!(!is_valid_seed_community(
            &g,
            &disconnected,
            VertexId(0),
            2,
            3,
            &q
        ));
        // truss violation: {3,5,6} forms a path (edge 3-5 in no triangle)
        let path = VertexSubset::from_iter([3, 5, 6].map(VertexId));
        assert!(!is_valid_seed_community(&g, &path, VertexId(3), 3, 2, &q));
        // radius violation: K4 plus the triangle around centre 0 at radius 1
        let all = VertexSubset::from_iter([0, 1, 2, 3, 5, 6, 7].map(VertexId));
        assert!(!is_valid_seed_community(&g, &all, VertexId(0), 3, 1, &q));
        // empty set
        assert!(!is_valid_seed_community(
            &g,
            &VertexSubset::new(),
            VertexId(0),
            3,
            1,
            &q
        ));
    }

    #[test]
    fn extracted_community_is_always_valid() {
        // For every centre and a few parameter combinations, whatever the
        // extractor returns must pass the validator.
        let g = test_graph();
        for center in g.vertices() {
            for (k, r, kws) in [
                (3u32, 1u32, vec![1u32]),
                (3, 2, vec![1, 2]),
                (4, 2, vec![1]),
                (4, 3, vec![1, 2]),
                (5, 2, vec![1, 2]),
            ] {
                let q = KeywordSet::from_ids(kws.clone());
                if let Some(c) = extract_seed_community(&g, center, k, r, &q) {
                    assert!(
                        is_valid_seed_community(&g, &c, center, k, r, &q),
                        "center {center} k {k} r {r} {kws:?} -> {:?}",
                        c.as_slice()
                    );
                }
            }
        }
    }

    #[test]
    fn unconstrained_extraction_ignores_keywords_and_dominates() {
        let g = test_graph();
        // vertex 4 (keyword 2 only) joins X_all regardless of query keywords
        let c = with_thread_workspace(|ws| {
            extract_unconstrained_seed_community_with(ws, &g, VertexId(0), 4, 2)
        })
        .unwrap();
        assert_eq!(c.as_slice(), &[0, 1, 2, 3, 4].map(VertexId));
        // every keyword-constrained community at the same centre is a subset
        for kws in [vec![1u32], vec![2], vec![1, 2]] {
            let q = KeywordSet::from_ids(kws);
            if let Some(sub) = extract_seed_community(&g, VertexId(0), 4, 2, &q) {
                assert!(sub.iter().all(|v| c.contains(v)));
            }
        }
    }

    #[test]
    fn seed_community_accessors() {
        let sc = SeedCommunity {
            center: VertexId(3),
            vertices: VertexSubset::from_iter([1, 2, 3].map(VertexId)),
            influential_score: 4.5,
            influenced_size: 7,
        };
        assert_eq!(sc.len(), 3);
        assert!(!sc.is_empty());
        assert_eq!(sc.influenced_only(), 4);
    }
}
